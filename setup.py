"""Setuptools shim.

``pip install -e .`` uses pyproject.toml on any normal machine.  This file
exists for wheel-less offline environments where PEP 660 editable builds
cannot run (``python setup.py develop`` needs neither network nor the
``wheel`` package).
"""

from setuptools import setup

setup()
