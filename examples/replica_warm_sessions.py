#!/usr/bin/env python
"""Warm restarts: the replica cache across back-to-back sessions.

The paper's interactive loop (§4) assumes an analyst returns to the same
dataset many times — tune a cut, close the session, come back tomorrow.
A cold stage pays the full §3.4 pipeline: WAN fetch from the repository,
serial split on the storage element, scatter to the workers.  With the
replica catalog, the second session finds the whole file already on the
SE and every split part still cached on the workers, so staging collapses
to a catalog consult.

This example runs two identical sessions back to back and prints the
staging-time breakdown for each, plus where every part came from.

Run:  python examples/replica_warm_sessions.py
"""

from repro.analysis import counting
from repro.bench.tables import ComparisonTable, format_seconds
from repro.client import IPAClient
from repro.core import GridSite, SiteConfig


def main() -> None:
    site = GridSite(SiteConfig(n_workers=8, enable_observability=True))
    site.register_dataset(
        "ilc-z",
        "/ilc/z-pole",
        size_mb=471.0,
        n_events=8_000,
        content={"kind": "ilc", "seed": 11},
    )
    cred = site.enroll_user("/O=ILC/CN=analyst")
    env = site.env

    table = ComparisonTable(
        "Staging a 471 MB dataset, twice",
        ["session", "fetch", "split", "move parts", "total", "parts from"],
    )
    trees = []

    def one_session(label, dataset_hint=None):
        client = IPAClient(site, cred)
        yield from client.obtain_proxy_and_connect(dataset_hint=dataset_hint)
        staged = yield from client.select_dataset("ilc-z")
        yield from client.upload_code(counting.SOURCE)
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=5.0)
        trees.append(final.tree.to_dict())
        yield from client.close()
        sources = (
            f"{staged.local_hits} cached, {staged.peer_hits} peer, "
            f"{staged.se_hits} SE, {staged.cold_parts} cold"
        )
        table.add_row(
            label,
            format_seconds(staged.fetch_seconds),
            format_seconds(staged.split_seconds),
            format_seconds(staged.move_parts_seconds),
            format_seconds(staged.stage_seconds),
            sources,
        )
        return staged

    def scenario():
        cold = yield from one_session("1 (cold)")
        # Same analyst, same dataset, new session: the dataset_hint lets
        # the scheduler place engines on the workers that cached parts.
        warm = yield from one_session("2 (warm)", dataset_hint="ilc-z")
        print(table.render())
        print(
            f"warm staging {cold.stage_seconds / warm.stage_seconds:.0f}x "
            f"faster, {warm.saved_mb:.0f} MB never moved "
            f"(WAN fetch skipped: {warm.fetch_skipped})"
        )
        print(
            "merged results identical across sessions:",
            trees[0] == trees[1],
        )

    env.run(until=env.process(scenario()))


if __name__ == "__main__":
    main()
