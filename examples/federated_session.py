#!/usr/bin/env python
"""Federated sessions: data-local brokering, then failover on partition.

Stands up a two-site federation sharing one WAN, registers the demo
dataset homed at site1, and runs the Higgs search twice:

1. a brokered session — the SessionBroker scores both sites and routes
   the client to the data-local one (no WAN bytes move);
2. a chaos session — the dataset is first pinned to 2 copies (SE→SE
   third-party transfer to site2), then site1's WAN boundary is severed
   mid-run and the client transparently fails over to site2.

Both merged trees must be bit-identical to each other: the federation
moves sessions and replicas, never physics.

Run:  python examples/federated_session.py
"""

from repro.analysis import higgs
from repro.core import SiteConfig
from repro.federation import FederatedClient, Federation
from repro.obs.dashboard import sites_section

DATASET = "ilc-demo"


def build_federation():
    fed = Federation(n_sites=2, site_config=SiteConfig(n_workers=4))
    fed.register_dataset(
        DATASET,
        "/ilc/demo",
        size_mb=50.0,
        n_events=5_000,
        metadata={"experiment": "ilc", "energy": 500},
        content={"kind": "ilc", "seed": 2006},
        home="site1",
    )
    return fed


def analysis(fed, client, out, chaos=False):
    if chaos:
        # Replicate first so the failover target already holds the data.
        placed = yield from fed.policy.ensure_pinned(DATASET, 2)
        print(f"pinned 2 copies (migrated to {', '.join(placed)}) "
              f"at t={fed.env.now:.1f} s")
    yield from client.connect(dataset_hint=DATASET)
    print(f"broker routed {client.client_id} -> {client.site_name}")
    yield from client.select_dataset(DATASET)
    yield from client.upload_code(higgs.SOURCE)
    yield from client.run()
    if chaos:
        yield fed.env.timeout(3.0)
        victim = client.site_name
        fed.partition_site(victim)
        print(f"partitioned {victim} mid-run at t={fed.env.now:.1f} s")
    final = yield from client.wait_for_completion(poll_interval=5.0)
    print(f"completed at {client.site_name} (t={fed.env.now:.1f} s)")
    out["tree"] = final.tree.to_dict()
    out["site"] = client.site_name
    yield from client.close()


def main() -> None:
    # Run 1: the broker picks the data-local site on its own.
    fed = build_federation()
    local = {}
    client = FederatedClient(fed, fed.enroll_user("/O=ILC/CN=local-user"))
    fed.run(until=fed.env.process(analysis(fed, client, local)))
    assert local["site"] == "site1", "expected the data-local site to win"

    # Run 2: fresh federation, partition the session's site mid-run.
    print()
    fed2 = build_federation()
    failed_over = {}
    client2 = FederatedClient(fed2, fed2.enroll_user("/O=ILC/CN=chaos-user"))
    fed2.run(
        until=fed2.env.process(
            analysis(fed2, client2, failed_over, chaos=True)
        )
    )
    assert failed_over["site"] != local["site"], "expected a failover"
    assert fed2.stats()["failovers"] == 1

    assert failed_over["tree"] == local["tree"], (
        "failover changed the merged tree"
    )
    print("\nmerged trees bit-identical across brokering and failover")
    print("\nper-site panel after the chaos run:")
    for line in sites_section(fed2.stats()["sites"]):
        print(line)


if __name__ == "__main__":
    main()
