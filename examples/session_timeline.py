#!/usr/bin/env python
"""Where does the session time go?  An ASCII Gantt of the IPA pipeline.

Runs the paper-scale workload (471 MB, 16 nodes) while tracing every
phase of Fig. 2 on the simulated clock, then renders the timeline — the
visual form of Table 1's message: staging dominates, analysis is short,
and nothing overlaps (the pipeline is sequential end to end, which is
precisely why the split/scatter design inside staging matters).

Run:  python examples/session_timeline.py
"""

from repro.analysis import higgs
from repro.client import IPAClient
from repro.core import GridSite, SiteConfig
from repro.core.timeline import Timeline


def main() -> None:
    site = GridSite(SiteConfig(n_workers=16))
    site.register_standard_datasets()
    client = IPAClient(site, site.enroll_user("/O=ILC/CN=tracer"))
    env = site.env
    timeline = Timeline(env)

    def scenario():
        timeline.begin("session setup")
        yield from client.obtain_proxy_and_connect()
        timeline.end("session setup")

        staged_start = env.now
        staged = yield from client.select_dataset("ilc-zh-500gev")
        # The session service reports per-phase durations; replay them as
        # contiguous spans (fetch -> split -> scatter).
        t = staged_start
        timeline.record("fetch whole (LAN)", t, t + staged.fetch_seconds)
        t += staged.fetch_seconds
        timeline.record("split (SE, serial)", t, t + staged.split_seconds)
        t += staged.split_seconds
        timeline.record("scatter parts", t, t + staged.move_parts_seconds)

        timeline.begin("stage code")
        yield from client.upload_code(higgs.SOURCE)
        timeline.end("stage code")

        timeline.begin("analysis + merge")
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=5.0)
        timeline.end("analysis + merge")
        yield from client.close()
        return final

    final = env.run(until=env.process(scenario()))
    print(timeline.render(width=64))
    print()
    mass = final.tree.get("/higgs/dijet_mass")
    print(f"output: {mass.entries} Higgs candidates from "
          f"{final.progress.events_processed} events, "
          f"{final.progress.engines_reporting} engines")


if __name__ == "__main__":
    main()
