#!/usr/bin/env python
"""The paper's evaluation scenario, end to end: Higgs search on 471 MB.

Reproduces the workflow behind Tables 1 and 2 on a 16-node site with the
paper-scale dataset, showing each step of Fig. 2 with its simulated timing:

1. obtain proxy + mutual authentication,
2. create the session (16 analysis engines via GRAM on the dedicated
   interactive queue),
3. browse/search the dataset catalog,
4. stage the dataset (fetch to SE + split + scatter),
5. stage the analysis code,
6. run, watching intermediate merged histograms stream in,
7. fit the final dijet spectrum and report the Higgs mass.

Run:  python examples/grid_higgs_session.py
"""

from repro.aida.fit import fit_histogram
from repro.analysis import higgs
from repro.bench.tables import format_seconds
from repro.client import IPAClient, dashboard
from repro.core import GridSite, SiteConfig


def main() -> None:
    site = GridSite(SiteConfig(n_workers=16))
    site.register_standard_datasets()
    credential = site.enroll_user("/O=ILC/CN=physicist")
    client = IPAClient(site, credential)
    env = site.env

    def scenario():
        # Steps 1-3: proxy, auth, session.
        t0 = env.now
        info = yield from client.obtain_proxy_and_connect()
        print(f"[t={env.now:7.1f}s] session ready: {info.n_engines} engines "
              f"(setup {format_seconds(env.now - t0)})")

        # Step 4: find the dataset by browsing and by query.
        listing = yield from client.browse_catalog("/ilc/simulation")
        print(f"[t={env.now:7.1f}s] catalog /ilc/simulation: "
              f"{listing['datasets']}")
        hits = yield from client.search_catalog(
            'experiment == "ilc" and energy == 500 and size_mb > 100'
        )
        dataset = hits[0]
        print(f"[t={env.now:7.1f}s] query matched: {dataset.dataset_id} "
              f"({dataset.size_mb:.0f} MB, {dataset.n_events} events)")

        # Step 5: stage it.
        t0 = env.now
        staged = yield from client.select_dataset(dataset.dataset_id)
        print(f"[t={env.now:7.1f}s] staged: fetch "
              f"{format_seconds(staged.fetch_seconds)}, split "
              f"{format_seconds(staged.split_seconds)}, scatter "
              f"{format_seconds(staged.move_parts_seconds)}")

        # Step 6: code.
        duration = yield from client.upload_code(higgs.SOURCE)
        print(f"[t={env.now:7.1f}s] code staged in {format_seconds(duration)}")

        # Step 7: run with live progress.
        yield from client.run()
        while True:
            yield env.timeout(20.0)
            poll = yield from client.poll()
            progress = poll.progress
            print(f"[t={env.now:7.1f}s] merged "
                  f"{progress.events_processed}/{progress.total_events} events "
                  f"from {progress.engines_reporting} engines")
            if progress.complete:
                final = poll
                break

        print(dashboard(final.tree, final.progress, max_objects=1))
        mass = final.tree.get("/higgs/dijet_mass")
        # The spectrum has combinatorial W/Z peaks at 80-91 GeV; fit the
        # signal region above them, seeded at the expected Higgs mass.
        peak = mass.max_bin_height
        fit = fit_histogram(
            mass,
            "gaussian+linear",
            fit_range=(103, 160),
            seed=(peak / 4, 120.0, 6.0, peak / 10, 0.0),
        )
        print(f"fitted Higgs mass: {fit.parameters['mean']:.1f} "
              f"+/- {fit.errors['mean']:.1f} GeV (truth: 120.0)")
        yield from client.close()

    env.run(until=env.process(scenario()))
    print(f"total session: {format_seconds(env.now)} simulated "
          f"(paper's grid case: ~4-7 minutes)")


if __name__ == "__main__":
    main()
