#!/usr/bin/env python
"""Service-crash recovery: survive a manager restart mid-analysis.

Runs the bundled Higgs search on a 4-worker site, then — mid-run —
crashes the manager-node service processes (SessionService + AIDA
manager).  Their volatile state is wiped and the client's session token
is revoked, but the write-ahead session journal and the periodic merge
checkpoints live on a durable store.  After a minute of downtime the
services restart, replay the journal, restore the last committed
checkpoint, re-bind the still-running engines, and ask each one for a
fresh keyframe; the client reconnects with backoff and the analysis
finishes with results identical to an uninterrupted run.

Run:  python examples/session_reconnect.py
"""

from repro.analysis import higgs
from repro.client import IPAClient
from repro.core import GridSite, SiteConfig


def main() -> None:
    # checkpoint_every_s controls how often each session's merge state is
    # checkpointed; the journal is written ahead of every state change.
    site = GridSite(SiteConfig(n_workers=4, checkpoint_every_s=10.0))
    site.register_dataset(
        "ilc-demo",
        "/ilc/demo",
        size_mb=50.0,
        n_events=5_000,
        metadata={"experiment": "ilc", "energy": 500},
        content={"kind": "ilc", "seed": 2006},
    )
    client = IPAClient(site, site.enroll_user("/O=ILC/CN=reconnect-user"))

    def scenario():
        info = yield from client.obtain_proxy_and_connect()
        yield from client.select_dataset("ilc-demo")
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()

        # Let the run get genuinely mid-flight: every engine has merged
        # at least one partial snapshot.
        while site.aida.snapshot_count(info.session_id) < info.n_engines:
            yield site.env.timeout(1.0)
        print(f"t={site.env.now:7.1f} s  CRASH: manager services die "
              f"({site.aida.snapshot_count(info.session_id)} snapshots merged)")
        site.injector.crash_services()

        # A minute of downtime; the engines keep crunching on the workers
        # (their snapshot submissions simply never arrive).
        yield site.env.timeout(60.0)
        yield site.injector.restart_services()
        print(f"t={site.env.now:7.1f} s  RESTART: journal replayed, "
              f"checkpoint restored, engines republishing")

        # Reconnect re-authenticates and re-issues the polling token.
        refreshed = yield from client.reconnect()
        print(f"t={site.env.now:7.1f} s  reconnected to "
              f"{refreshed.session_id} ({refreshed.n_engines} engines)")

        final = yield from client.wait_for_completion(
            poll_interval=5.0, reconnect=True
        )
        mass = final.tree.get("/higgs/dijet_mass")
        print(f"t={site.env.now:7.1f} s  complete: {mass.entries} candidates, "
              f"spectrum mean {mass.mean:.1f} GeV")
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    print(f"whole session took {site.env.now:.1f} simulated seconds, "
          f"crash included")


if __name__ == "__main__":
    main()
