#!/usr/bin/env python
"""Scaling study: regenerate the paper's Tables 1-2 and the Figure 5 sweep.

Runs the Table 1 comparison (local vs 16-node grid at 471 MB), the Table 2
node sweep, and a coarse Figure 5 lattice, printing paper-vs-measured
tables — the same content as the benchmark harness, packaged as a plain
script for exploration (tweak the constants below and rerun).

Run:  python examples/scaling_study.py
"""

from repro.bench.surface import compute_surfaces
from repro.bench.tables import ComparisonTable, format_seconds
from repro.core import run_grid_experiment, run_local_experiment

SIZE_MB = 471.0
NODE_SWEEP = (1, 2, 4, 8, 16)
FIGURE5_SIZES = (5.0, 20.0, 100.0, 471.0)
FIGURE5_NODES = (1, 4, 16)


def table1() -> None:
    local = run_local_experiment(SIZE_MB)
    grid = run_grid_experiment(SIZE_MB, 16, events_per_mb=4, collect_tree=False)
    table = ComparisonTable(
        f"Table 1: local vs grid(16), {SIZE_MB:.0f} MB",
        ["phase", "local", "grid"],
    )
    table.add_row("get dataset (WAN)", format_seconds(local.download), "-")
    table.add_row("stage dataset (LAN)", "-", format_seconds(grid.stage_dataset))
    table.add_row("stage code", "-", format_seconds(grid.stage_code))
    table.add_row("analysis", format_seconds(local.analysis),
                  format_seconds(grid.analysis))
    table.add_row("total", format_seconds(local.total), format_seconds(grid.total))
    print(table.render())
    print(f"grid speedup: {local.total / grid.total:.1f}x\n")


def table2() -> None:
    table = ComparisonTable(
        f"Table 2: staging/analysis vs nodes, {SIZE_MB:.0f} MB (seconds)",
        ["nodes", "move whole", "split", "move parts", "analysis"],
    )
    for n in NODE_SWEEP:
        grid = run_grid_experiment(SIZE_MB, n, events_per_mb=2, collect_tree=False)
        table.add_row(
            n,
            f"{grid.move_whole:.0f}",
            f"{grid.split:.0f}",
            f"{grid.move_parts:.0f}",
            f"{grid.analysis:.0f}",
        )
    print(table.render())
    print()


def figure5() -> None:
    local_cache = {}

    def local_fn(size):
        if size not in local_cache:
            local_cache[size] = run_local_experiment(size).total
        return local_cache[size]

    def grid_fn(size, nodes):
        return run_grid_experiment(
            size, nodes, events_per_mb=2, collect_tree=False
        ).total

    result = compute_surfaces(FIGURE5_SIZES, FIGURE5_NODES, local_fn, grid_fn)
    print(result.render_ascii())
    print("crossover (grid wins above): "
          + ", ".join(
              f"N={int(n)}: {c:.0f} MB"
              for n, c in zip(result.nodes, result.crossover_mb)
          ))


def main() -> None:
    table1()
    table2()
    figure5()


if __name__ == "__main__":
    main()
