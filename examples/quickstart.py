#!/usr/bin/env python
"""Quickstart: analyze a dataset on a simulated grid site in ~40 lines.

Builds a 4-worker site, registers a small synthetic Linear-Collider
dataset, runs the bundled Higgs search through the full IPA pipeline
(proxy -> session -> catalog -> staging -> code -> run -> merged results),
and prints the live dashboard with the dijet-mass histogram.

Run:  python examples/quickstart.py
"""

from repro.analysis import higgs
from repro.client import IPAClient, dashboard
from repro.core import GridSite, SiteConfig


def main() -> None:
    # 1. Build a simulated grid site with 4 worker nodes.
    site = GridSite(SiteConfig(n_workers=4))
    site.register_dataset(
        "ilc-demo",
        "/ilc/demo",
        size_mb=50.0,
        n_events=5_000,
        metadata={"experiment": "ilc", "energy": 500},
        content={"kind": "ilc", "seed": 2006},
    )

    # 2. Enroll a user in the VO and create their client.
    credential = site.enroll_user("/O=ILC/CN=quickstart-user")
    client = IPAClient(site, credential)

    def scenario():
        # 3. Proxy + mutual auth + session (engines start on the grid).
        info = yield from client.obtain_proxy_and_connect()
        print(f"session {info.session_id}: {info.n_engines} engines ready "
              f"at t={site.env.now:.1f} s")

        # 4. Pick the dataset and stage it to the workers.
        staged = yield from client.select_dataset("ilc-demo")
        print(f"staged {staged.size_mb:.0f} MB in "
              f"{staged.stage_seconds:.1f} s (simulated)")

        # 5. Ship the analysis code and run.
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=5.0)

        # 6. Display the merged results.
        print(dashboard(final.tree, final.progress, max_objects=2))
        mass = final.tree.get("/higgs/dijet_mass")
        print(f"Higgs candidates: {mass.entries}, "
              f"spectrum mean {mass.mean:.1f} GeV")
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    print(f"whole session took {site.env.now:.1f} simulated seconds")


if __name__ == "__main__":
    main()
