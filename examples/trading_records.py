#!/usr/bin/env python
"""Cross-domain demo: stock-trading records through the same framework.

The paper claims the framework "is not specific to any particular science
application, although it does require record-based data" and names "stock
trading records in business" among the target domains (§1, §6).  Here a
trading dataset (one record per trading day, one entry per trade) flows
through the *identical* pipeline — catalog, locator, splitter, engines,
merge — with a VWAP/volume analysis instead of a physics one.

Run:  python examples/trading_records.py
"""

from repro.aida.render import render_profile
from repro.analysis import trading
from repro.client import IPAClient
from repro.core import GridSite, SiteConfig


def main() -> None:
    site = GridSite(SiteConfig(n_workers=4))
    site.register_standard_datasets()  # includes /business/trading/nyse-2006
    client = IPAClient(site, site.enroll_user("/O=BANK/CN=quant"))
    # The quant joins the same VO machinery — the site just authorizes a
    # different community in practice.
    results = {}

    def scenario():
        yield from client.obtain_proxy_and_connect()
        hits = yield from client.search_catalog(
            'domain == "finance" and year >= 2006'
        )
        dataset = hits[0]
        print(f"found {dataset.dataset_id}: {dataset.n_events} trading days, "
              f"{dataset.size_mb:.0f} MB")
        yield from client.select_dataset(dataset.dataset_id)
        yield from client.upload_code(trading.SOURCE)
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=5.0)
        results["tree"] = final.tree
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))

    tree = results["tree"]
    volume = tree.get("/trading/daily_volume")
    vwap = tree.get("/trading/vwap_by_day")
    print(render_profile(vwap, width=60, height=8))
    print(f"days analyzed: {volume.entries}")
    print(f"mean daily volume: {volume.mean:,.0f} shares")
    print(f"session finished at t={site.env.now:.0f} simulated seconds")


if __name__ == "__main__":
    main()
