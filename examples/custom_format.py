#!/usr/bin/env python
"""Extending the framework: a custom data format + a database-located dataset.

Two of the paper's architectural claims, demonstrated live:

* §2.3 — freshly started engines "dynamically pickup new data format
  readers": we register a brand-new record format (environmental sensor
  readings) with the content store at runtime and analyze it with the
  standard pipeline, no framework changes;
* §3.4 — a dataset location "could be ... a set of contiguous records in a
  database server": the same data registered as a database location skips
  the whole-file fetch and the split pass, and we print the staging delta.

Run:  python examples/custom_format.py
"""

import numpy as np

from repro.client import IPAClient
from repro.core import GridSite, SiteConfig
from repro.dataset.events import EventBatch

# --- 1. A new record format: one record per station-day of sensor data ----


def sensor_reader(content, block_seed, n_events):
    """Deterministic synthetic sensor data: temperature readings.

    Field mapping: one "particle" per hourly reading; ``e`` carries the
    temperature (Kelvin), ``px`` the humidity fraction.
    """
    rng = np.random.default_rng(block_seed)
    readings_per_day = int(content.get("readings_per_day", 24))
    base = float(content.get("base_temperature", 288.0))
    n_readings = n_events * readings_per_day
    day_cycle = 5.0 * np.sin(
        np.tile(np.linspace(0, 2 * np.pi, readings_per_day), n_events)
    )
    temperature = base + day_cycle + rng.normal(0, 1.5, n_readings)
    humidity = np.clip(rng.normal(0.6, 0.15, n_readings), 0, 1)
    return EventBatch(
        event_ids=np.arange(n_events),
        process=np.zeros(n_events, dtype=np.int16),
        weights=np.ones(n_events),
        offsets=np.arange(n_events + 1, dtype=np.int64) * readings_per_day,
        pdg=np.full(n_readings, 1, dtype=np.int32),
        e=temperature,
        px=humidity,
        py=np.zeros(n_readings),
        pz=np.zeros(n_readings),
    )


ANALYSIS = '''
class SensorAnalysis(Analysis):
    """Daily mean temperature and humidity distributions."""

    name = "sensor-summary"

    def start(self, tree):
        tree.put("/sensors/daily_mean_temp", Histogram1D(
            "daily_mean_temp", "Daily mean temperature [K]",
            bins=40, lower=275, upper=300))
        tree.put("/sensors/humidity", Histogram1D(
            "humidity", "Hourly humidity", bins=20, lower=0, upper=1))

    def process_batch(self, batch, tree):
        for i in range(len(batch)):
            lo, hi = batch.offsets[i], batch.offsets[i + 1]
            tree.get("/sensors/daily_mean_temp").fill(
                float(batch.e[lo:hi].mean()))
        tree.get("/sensors/humidity").fill_array(batch.px)
'''


def main() -> None:
    site = GridSite(SiteConfig(n_workers=4))
    # Register the new format once; every engine picks it up (§2.3).
    site.content_store.register_kind("sensor", sensor_reader)
    common = dict(
        size_mb=80.0,
        n_events=2_000,
        metadata={"domain": "environment"},
        content={"kind": "sensor", "seed": 12, "readings_per_day": 24},
    )
    site.register_dataset("sensors-file", "/env/sensors-file", **common)
    site.register_dataset(
        "sensors-db", "/env/sensors-db", kind="database", **common
    )
    client = IPAClient(site, site.enroll_user("/O=ENV/CN=analyst"))
    staging = {}

    def scenario():
        yield from client.obtain_proxy_and_connect()
        for dataset_id in ("sensors-file", "sensors-db"):
            staged = yield from client.select_dataset(dataset_id)
            staging[dataset_id] = staged
        # Analyze the (last-selected) database-located dataset.
        yield from client.upload_code(ANALYSIS)
        yield from client.rewind()
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=5.0)
        temp = final.tree.get("/sensors/daily_mean_temp")
        print(f"analyzed {temp.entries} station-days; "
              f"mean daily temperature {temp.mean:.1f} K")
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    file_staged = staging["sensors-file"]
    db_staged = staging["sensors-db"]
    print(f"staging as file:     fetch {file_staged.fetch_seconds:.0f} s + "
          f"split {file_staged.split_seconds:.0f} s + "
          f"scatter {file_staged.move_parts_seconds:.0f} s "
          f"= {file_staged.stage_seconds:.0f} s")
    print(f"staging as database: fetch {db_staged.fetch_seconds:.0f} s + "
          f"plan {db_staged.split_seconds:.0f} s + "
          f"scatter {db_staged.move_parts_seconds:.0f} s "
          f"= {db_staged.stage_seconds:.0f} s")
    saved = file_staged.stage_seconds - db_staged.stage_seconds
    print(f"database location saves {saved:.0f} s of staging (§3.4)")


if __name__ == "__main__":
    main()
