#!/usr/bin/env python
"""Interactive fine-tuning: run, pause, tweak a cut, reload, rewind, rerun.

Demonstrates the paper's definition of interactivity (§1, §3.6): the user
"can change their analysis algorithms on the fly", with "controls to stop
and restart an analysis that is in progress", and each iteration only
re-ships kilobytes of code instead of re-staging the dataset.

The scenario sweeps a visible-energy cut over three iterations, watching
the selection efficiency converge, then runs the final pass to completion.

Run:  python examples/interactive_rerun.py
"""

from repro.analysis import cuts
from repro.bench.tables import ComparisonTable, format_seconds
from repro.client import IPAClient
from repro.core import GridSite, SiteConfig


def main() -> None:
    site = GridSite(SiteConfig(n_workers=8))
    site.register_dataset(
        "ilc-tune",
        "/ilc/tune",
        size_mb=120.0,
        n_events=10_000,
        metadata={"experiment": "ilc"},
        content={"kind": "ilc", "seed": 31},
    )
    client = IPAClient(site, site.enroll_user("/O=ILC/CN=tuner"))
    env = site.env
    iterations = ComparisonTable(
        "Cut-tuning iterations",
        ["iteration", "min_energy [GeV]", "efficiency", "iteration time"],
    )

    def efficiency(tree) -> float:
        decision = tree.get("/cuts/decision")
        total = decision.entries
        return decision.bin_height(1) / total if total else float("nan")

    def scenario():
        yield from client.obtain_proxy_and_connect()
        staged = yield from client.select_dataset("ilc-tune")
        print(f"dataset staged once: {format_seconds(staged.stage_seconds)} "
              "(never again during tuning)")
        yield from client.upload_code(cuts.SOURCE, parameters={"min_energy": 0.0})

        thresholds = [0.0, 350.0, 480.0]
        for index, threshold in enumerate(thresholds):
            started = env.now
            if index > 0:
                # The interactive loop: new parameters, kB-scale reload,
                # rewind, rerun — no dataset movement.
                yield from client.reload_code(
                    parameters={"min_energy": threshold}
                )
                yield from client.rewind()
            yield from client.run()
            final = yield from client.wait_for_completion(poll_interval=5.0)
            iterations.add_row(
                index + 1,
                f"{threshold:.0f}",
                f"{efficiency(final.tree):.3f}",
                format_seconds(env.now - started),
            )

        # Demonstrate pause/step mid-run on a fresh pass.
        yield from client.rewind()
        yield from client.step(400)
        yield env.timeout(120.0)
        status = yield from client.status()
        print(f"after step(400): cursors = "
              f"{[e['cursor'] for e in status['engines']]} (all paused)")
        yield from client.run()
        yield from client.wait_for_completion(poll_interval=5.0)
        yield from client.close()

    env.run(until=env.process(scenario()))
    print(iterations.render())
    print("each tuning iteration costs seconds of code staging, not the "
          "minutes of dataset staging a batch workflow would pay")


if __name__ == "__main__":
    main()
