"""§2.5 ablation — flat merging vs a sub-merger tree at the AIDA manager.

"The component that performs the merging and displaying of analysis
results will become a bottleneck if there are a large number of users.
The system should be adaptable in such situations by being able to
accommodate a sub-level of components that performs the merging" (§2.5).

We measure the simulated merge latency per poll as the engine count grows,
for the flat merger and for sub-merger trees of fan-in 2, 4 and 8, and
run a full end-to-end session at each extreme to confirm results are
bit-identical regardless of merge topology.
"""

import numpy as np
import pytest

from repro.aida.tree import ObjectTree
from repro.analysis import counting
from repro.bench.tables import ComparisonTable
from repro.client.client import IPAClient
from repro.core.site import GridSite, SiteConfig
from repro.services.aida_manager import AIDAManagerService
from repro.sim import Environment

ENGINE_COUNTS = (4, 16, 64, 256)
FAN_INS = (None, 8, 4, 2)


def latency_matrix():
    env = Environment()
    matrix = {}
    for fan_in in FAN_INS:
        manager = AIDAManagerService(env, merge_cost_per_tree=0.05, fan_in=fan_in)
        for count in ENGINE_COUNTS:
            matrix[(fan_in, count)] = manager.merge_latency(count)
    return matrix


def end_to_end_tree(fan_in):
    site = GridSite(SiteConfig(n_workers=8, merge_fan_in=fan_in))
    site.register_dataset(
        "ds", "/x/ds", size_mb=30.0, n_events=2000,
        content={"kind": "ilc", "seed": 4},
    )
    client = IPAClient(site, site.enroll_user("/CN=u"))
    result = {}

    def scenario():
        yield from client.obtain_proxy_and_connect()
        yield from client.select_dataset("ds")
        yield from client.upload_code(counting.SOURCE)
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=3.0)
        result["tree"] = final.tree
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    return result["tree"]


def run_all():
    return latency_matrix(), end_to_end_tree(None), end_to_end_tree(2)


def test_merge_tree(benchmark, report):
    matrix, flat_tree, tree_tree = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    table = ComparisonTable(
        "Merge latency per poll vs engine count (seconds; 0.05 s per tree)",
        ["engines"] + [
            "flat" if fan_in is None else f"fan-in {fan_in}"
            for fan_in in FAN_INS
        ],
    )
    for count in ENGINE_COUNTS:
        table.add_row(
            count, *(f"{matrix[(f, count)]:.2f}" for f in FAN_INS)
        )
    report("merge_tree", table.render())

    # Flat merging grows linearly; trees grow logarithmically.
    assert matrix[(None, 256)] == pytest.approx(0.05 * 256)
    assert matrix[(4, 256)] == pytest.approx(0.05 * 4 * 4)  # log4(256)=4
    assert matrix[(4, 256)] < matrix[(None, 256)] / 10
    # Deeper trees win at scale over flat, and fan-in trades depth/width.
    for count in (64, 256):
        assert matrix[(8, count)] < matrix[(None, count)]
    # Merge topology must not change the physics: identical merged output.
    flat_hist = flat_tree.get("/counts/multiplicity")
    tree_hist = tree_tree.get("/counts/multiplicity")
    assert flat_hist.entries == tree_hist.entries == 2000
    assert np.allclose(flat_hist.heights(), tree_hist.heights())
