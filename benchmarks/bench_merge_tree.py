"""§2.5 — the real hierarchical merge tier vs the flat incremental fold.

"The component that performs the merging and displaying of analysis
results will become a bottleneck if there are a large number of users.
The system should be adaptable in such situations by being able to
accommodate a sub-level of components that performs the merging" (§2.5).

Earlier revisions only modelled this with a closed-form latency formula.
The manager now *runs* the sub-merger tree: engines publish to per-group
combiners holding incremental partials, combiners republish upward, and a
poll re-folds only dirty subtrees while the combiner levels charge their
latency concurrently on the simulated clock.

This benchmark feeds two managers — flat incremental and tiered (fan-in
8) — byte-identical delta/keyframe snapshot streams at 4..1024 engines.
Every poll is taken in the worst case for the tier ablation, all engines
dirty, where flat charges O(n) tree merges and the tier charges
O(f·log_f n).  After every polled generation the two served trees must be
*exactly* equal (serialized-dict equality — fills are dyadic rationals so
fold association cannot change the float bits).  Results land in
``benchmarks/out/BENCH_merge_tree.json``; the CI gate requires the tiered
root poll at 1024 engines to cost at most 0.25x the flat poll (>= 4x
speedup).
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.bench.tables import ComparisonTable
from repro.engine.engine import AnalysisEngine
from repro.aida.hist1d import Histogram1D
from repro.services.aida_manager import AIDAManagerService
from repro.sim import Environment

ENGINE_COUNTS = (4, 16, 64, 256, 1024)
FAN_IN = 8
MERGE_COST = 0.01  # simulated seconds per tree merge
ROUNDS = 2  # all-dirty polls after the warm-up poll
BINS = 30
OUT_JSON = Path(__file__).parent / "out" / "BENCH_merge_tree.json"


def build_engines(n_engines):
    engines = []
    for i in range(n_engines):
        engine = AnalysisEngine(f"e{i:04d}", keyframe_every=4)
        engine.tree.put(
            "/bench/h", Histogram1D("h", bins=BINS, lower=0.0, upper=1.0)
        )
        engines.append(engine)
    return engines


def dyadic_fill(engine, rng):
    # k/32 values with k/16 weights: every partial sum is an exact dyadic
    # rational, so flat and hierarchical fold orders agree bit for bit.
    engine.tree.get("/bench/h").fill_array(
        rng.integers(0, 33, 64) / 32.0, rng.integers(1, 17, 64) / 16.0
    )


def measure(n_engines, fan_in):
    """Drive one manager through warm-up + all-dirty polls.

    Returns per-generation served tree dicts, simulated poll latencies,
    and wall-clock poll times.
    """
    env = Environment()
    manager = AIDAManagerService(
        env, merge_cost_per_tree=MERGE_COST, fan_in=fan_in
    )
    engines = build_engines(n_engines)
    manager.configure_tier("s1", [engine.engine_id for engine in engines])
    rng = np.random.default_rng(7)

    trees, sim_latencies, wall_times = [], [], []

    def all_dirty_poll():
        for engine in engines:
            dyadic_fill(engine, rng)
            manager.submit_snapshot("s1", engine.take_snapshot())
        before = env.now
        started = time.perf_counter()
        tree_dict, _ = env.run(until=manager.merged("s1"))
        wall_times.append(time.perf_counter() - started)
        sim_latencies.append(env.now - before)
        trees.append(tree_dict)

    for _ in range(1 + ROUNDS):  # first round doubles as the warm-up
        all_dirty_poll()
    depth = manager.tier("s1").depth if manager.tier("s1") else 1
    return {
        "trees": trees,
        "sim_latencies": sim_latencies,
        "wall_times": wall_times,
        "depth": depth,
    }


def run_matrix():
    results = {}
    for n_engines in ENGINE_COUNTS:
        flat = measure(n_engines, fan_in=None)
        tiered = measure(n_engines, fan_in=FAN_IN)
        # Correctness first: the tier must serve the exact flat tree at
        # every polled generation (fold association changes nothing).
        for generation, (flat_tree, tiered_tree) in enumerate(
            zip(flat["trees"], tiered["trees"])
        ):
            assert tiered_tree == flat_tree, (
                f"tiered tree diverged from flat at {n_engines} engines, "
                f"generation {generation}"
            )
        flat_sim = min(flat["sim_latencies"][1:])
        tiered_sim = min(tiered["sim_latencies"][1:])
        results[n_engines] = {
            "flat": {
                "sim_poll_seconds": flat_sim,
                "wall_poll_seconds": min(flat["wall_times"][1:]),
            },
            "tiered": {
                "sim_poll_seconds": tiered_sim,
                "wall_poll_seconds": min(tiered["wall_times"][1:]),
                "depth": tiered["depth"],
            },
            "latency_ratio": flat_sim / tiered_sim,
            "identical_generations": len(flat["trees"]),
        }
    return results


def test_merge_tree(benchmark, report):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    table = ComparisonTable(
        f"All-dirty poll, flat vs combiner tier (fan-in {FAN_IN}, "
        f"{MERGE_COST} s per tree merge, min of {ROUNDS})",
        [
            "engines",
            "depth",
            "flat sim",
            "tiered sim",
            "speedup",
            "flat wall",
            "tiered wall",
        ],
    )
    for n_engines, row in results.items():
        table.add_row(
            n_engines,
            row["tiered"]["depth"],
            f"{row['flat']['sim_poll_seconds']:.2f} s",
            f"{row['tiered']['sim_poll_seconds']:.2f} s",
            f"{row['latency_ratio']:.1f}x",
            f"{row['flat']['wall_poll_seconds'] * 1000:.1f} ms",
            f"{row['tiered']['wall_poll_seconds'] * 1000:.1f} ms",
        )
    report("merge_tree", table.render())

    OUT_JSON.parent.mkdir(exist_ok=True)
    OUT_JSON.write_text(
        json.dumps(
            {
                "fan_in": FAN_IN,
                "merge_cost_per_tree": MERGE_COST,
                "rounds": ROUNDS,
                "bins": BINS,
                "engines": {str(k): v for k, v in results.items()},
            },
            indent=2,
        )
        + "\n"
    )

    # Sanity on the cost model itself: flat all-dirty is O(n).
    assert results[1024]["flat"]["sim_poll_seconds"] >= (
        1024 * MERGE_COST - 1e-6
    )
    # The tier never loses at any measured scale...
    for n_engines, row in results.items():
        if n_engines > FAN_IN:
            assert row["latency_ratio"] > 1.0, (
                f"tier slower than flat at {n_engines} engines"
            )
    # ...and the CI gate: at 1024 engines the root poll must cost at most
    # 0.25x the flat poll (the measured topology gives ~39x).
    gate = results[1024]
    assert (
        gate["tiered"]["sim_poll_seconds"]
        <= 0.25 * gate["flat"]["sim_poll_seconds"]
    ), (
        f"tiered poll at 1024 engines not <= 0.25x flat: "
        f"{gate['tiered']['sim_poll_seconds']:.2f} vs "
        f"{gate['flat']['sim_poll_seconds']:.2f}"
    )
    assert gate["latency_ratio"] >= 4.0, (
        f"expected >= 4x poll speedup at 1024 engines, got "
        f"{gate['latency_ratio']:.1f}x"
    )
