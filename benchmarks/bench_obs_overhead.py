"""Observability overhead — the whole telemetry plane must stay below 5%.

The instrumentation across the three tiers (service container, grid
fabric, engines) routes through null objects when disabled and through the
real tracer/registry/event-log/SLO-tracker/anomaly-monitor when enabled.
This benchmark runs the reference 16-node Higgs experiment both ways,
interleaved, writes the CI gate file ``benchmarks/out/BENCH_obs.json``,
and asserts:

* the *simulated* phase breakdown is bit-identical — recording telemetry
  must never perturb the model;
* the wall-clock cost of enabling it is < 5% (min-of-N to reject
  scheduler noise, plus a small absolute floor because the whole run takes
  only tens of milliseconds).
"""

import json
import time
from pathlib import Path

import pytest

from repro.bench.tables import ComparisonTable
from repro.core.experiment import run_grid_experiment

OUT_JSON = Path(__file__).parent / "out" / "BENCH_obs.json"

SIZE_MB = 471.0
NODES = 16
ROUNDS = 5
MAX_OVERHEAD = 0.05
#: Absolute slack (seconds) absorbing timer granularity on a ~50 ms run.
ABS_SLACK = 0.005

PHASES = (
    "session_setup",
    "move_whole",
    "split",
    "move_parts",
    "stage_code",
    "analysis",
)


def _one_run(observability: bool):
    started = time.perf_counter()
    breakdown = run_grid_experiment(
        SIZE_MB,
        NODES,
        events_per_mb=4,
        collect_tree=False,
        observability=observability,
    )
    return time.perf_counter() - started, breakdown


def measure():
    # Warm-up (imports, numpy first-touch) outside the measured rounds.
    _one_run(False)
    _one_run(True)
    disabled, enabled = [], []
    baseline = traced = None
    for _ in range(ROUNDS):
        seconds, baseline = _one_run(False)
        disabled.append(seconds)
        seconds, traced = _one_run(True)
        enabled.append(seconds)
    return min(disabled), min(enabled), baseline, traced


def test_obs_overhead(benchmark, report):
    off_s, on_s, baseline, traced = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    overhead = on_s / off_s - 1.0

    obs = traced.obs
    n_events = sum(obs.events.counts().values())
    slo_rows = obs.slo.status()
    table = ComparisonTable(
        "Observability overhead: 471 MB / 16 nodes (min of "
        f"{ROUNDS} interleaved runs)",
        ["configuration", "wall-clock", "spans", "metrics", "events", "slo"],
    )
    table.add_row("disabled", f"{off_s * 1000:.1f} ms", 0, 0, 0, 0)
    table.add_row(
        "enabled",
        f"{on_s * 1000:.1f} ms",
        len(obs.tracer.spans),
        len(obs.metrics.metrics),
        n_events,
        len(slo_rows),
    )
    report(
        "obs_overhead",
        table.render() + f"\noverhead: {overhead * 100:+.2f}% "
        f"(budget: {MAX_OVERHEAD * 100:.0f}%)",
    )

    # Determinism: telemetry must not move the simulated clock.
    phases_identical = True
    for phase in PHASES:
        assert getattr(traced, phase) == getattr(baseline, phase), phase

    OUT_JSON.parent.mkdir(exist_ok=True)
    OUT_JSON.write_text(
        json.dumps(
            {
                "size_mb": SIZE_MB,
                "nodes": NODES,
                "rounds": ROUNDS,
                "disabled_wall_s": off_s,
                "enabled_wall_s": on_s,
                "overhead_fraction": overhead,
                "max_overhead": MAX_OVERHEAD,
                "abs_slack_s": ABS_SLACK,
                "phases_bit_identical": phases_identical,
                "spans": len(obs.tracer.spans),
                "metrics": len(obs.metrics.metrics),
                "events": n_events,
                "slo_policies": len(slo_rows),
            },
            indent=2,
        )
        + "\n"
    )

    # The run actually produced telemetry across every subsystem...
    assert obs is not None and len(obs.tracer.spans) > 50
    assert n_events > 0, "event log saw no structured events"
    assert [row["name"] for row in slo_rows] == ["poll-latency"]
    assert slo_rows[0]["samples"] > 0, "SLO tracker saw no poll latencies"
    assert baseline.obs is None
    # ...for under 5% wall-clock.
    assert on_s <= off_s * (1 + MAX_OVERHEAD) + ABS_SLACK, (
        f"observability overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}%"
    )
