"""Table 2 — staging and analysis vs node count, X = 471 MB.

Paper values::

    nodes   move whole   split   move parts   analysis
        1         63 s   120 s        105 s      330 s
        2         63 s   120 s         77 s      287 s
        4         63 s   115 s         70 s      190 s
        8         63 s   117 s         65 s      148 s
       16         63 s   124 s         50 s       78 s

Shape targets: move-whole flat in N; split nearly flat; move-parts mildly
decreasing (nothing like 1/N — the serial SE disk pass dominates); analysis
strongly decreasing, ~4x from 1 to 16 nodes.
"""

import pytest

from repro.bench.tables import ComparisonTable
from repro.core.experiment import run_grid_experiment
from repro.obs.exporters import phase_totals

SIZE_MB = 471.0
NODE_COUNTS = (1, 2, 4, 8, 16)
PAPER = {
    1: (63, 120, 105, 330),
    2: (63, 120, 77, 287),
    4: (63, 115, 70, 190),
    8: (63, 117, 65, 148),
    16: (63, 124, 50, 78),
}


def sweep():
    return {
        n: run_grid_experiment(
            SIZE_MB, n, events_per_mb=4, collect_tree=False, observability=True
        )
        for n in NODE_COUNTS
    }


def test_table2(benchmark, report):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = ComparisonTable(
        "Table 2: staging/analysis vs nodes, 471 MB (paper -> measured, seconds)",
        ["nodes", "move whole", "split", "move parts", "analysis"],
    )
    for n in NODE_COUNTS:
        paper = PAPER[n]
        grid = results[n]
        # The measured column comes from *telemetry* (the run's trace),
        # which must reconcile with the driver's own clock readings.
        totals = phase_totals(grid.obs.tracer)
        for phase, measured in (
            ("move_whole", grid.move_whole),
            ("split", grid.split),
            ("move_parts", grid.move_parts),
            ("analysis", grid.analysis),
        ):
            assert totals[phase] == pytest.approx(measured, abs=1e-9), (
                f"{phase} telemetry diverges from breakdown at n={n}"
            )
        table.add_row(
            n,
            f"{paper[0]} -> {totals['move_whole']:.0f}",
            f"{paper[1]} -> {totals['split']:.0f}",
            f"{paper[2]} -> {totals['move_parts']:.0f}",
            f"{paper[3]} -> {totals['analysis']:.0f}",
        )
    report("table2", table.render())

    move_whole = [results[n].move_whole for n in NODE_COUNTS]
    split = [results[n].split for n in NODE_COUNTS]
    move_parts = [results[n].move_parts for n in NODE_COUNTS]
    analysis = [results[n].analysis for n in NODE_COUNTS]

    # Move-whole: flat, ~63 s.
    assert max(move_whole) - min(move_whole) < 1.0
    assert move_whole[0] == pytest.approx(63.0, rel=0.03)
    # Split: nearly flat (per-file overhead only), ~118 s.
    assert split[0] == pytest.approx(118, rel=0.05)
    assert split[-1] - split[0] < 10.0
    # Move-parts: decreasing but far from 1/N.
    assert all(a >= b for a, b in zip(move_parts, move_parts[1:]))
    assert move_parts[0] == pytest.approx(105, rel=0.1)
    assert move_parts[-1] == pytest.approx(50, rel=0.1)
    assert move_parts[0] / move_parts[-1] < 3.0
    # Analysis: strongly decreasing; endpoints match the paper.
    assert all(a > b for a, b in zip(analysis, analysis[1:]))
    assert analysis[0] == pytest.approx(330, rel=0.05)
    assert analysis[-1] == pytest.approx(78, rel=0.08)
    assert 3.0 < analysis[0] / analysis[-1] < 6.0  # paper: 4.2x
