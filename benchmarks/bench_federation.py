"""Federation — T_grid across site counts, cold vs warm cross-site staging.

Two questions, one sweep:

1. Does federating the fabric perturb single-session analysis time?
   ``T_grid(X, N)`` is measured for the Table 2 dataset (471 MB) with the
   session brokered to its data-local home site while 1/2/4 sites share
   the WAN — the broker must route local and the extra sites must stay
   out of the way.
2. What does cross-site data movement cost, and does the replica
   migration amortise it?  A session forced to the *non-home* site pays
   a cold SE→SE third-party transfer over the calibrated inter-site WAN
   (~2.5 MB/s) before staging warm off the local SE; the repeat session
   there reuses the migrated copy and skips the WAN entirely.

Writes ``benchmarks/out/BENCH_federation.json`` and asserts the CI gate:
warm cross-site staging >= 3x faster than cold at 2 sites x 16 nodes,
with merged trees bit-identical across home, cold-remote, and
warm-remote sessions.
"""

import json
from pathlib import Path

from repro.analysis import counting
from repro.bench.tables import ComparisonTable
from repro.core.site import SiteConfig
from repro.federation import FederatedClient, Federation

SIZE_MB = 471.0
EVENTS_PER_MB = 4
SITE_COUNTS = (1, 2, 4)
NODE_COUNTS = (4, 16)
OUT_JSON = Path(__file__).parent / "out" / "BENCH_federation.json"


def build(n_sites, n_nodes):
    fed = Federation(
        n_sites=n_sites, site_config=SiteConfig(n_workers=n_nodes)
    )
    fed.register_dataset(
        "ds",
        "/bench/ds",
        size_mb=SIZE_MB,
        n_events=int(SIZE_MB * EVENTS_PER_MB),
        content={"kind": "ilc", "seed": 3},
        home="site1",
    )
    return fed


def session(fed, subject, site=None):
    """One brokered end-to-end session; simulated-seconds breakdown."""
    client = FederatedClient(fed, fed.enroll_user(subject))
    out = {}

    def scenario():
        t0 = fed.env.now
        yield from client.connect(dataset_hint="ds", site=site)
        staged = yield from client.select_dataset("ds")
        out["staging_s"] = fed.env.now - t0
        out["fetch_skipped"] = staged.fetch_skipped
        out["site"] = client.site_name
        yield from client.upload_code(counting.SOURCE)
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=3.0)
        out["total_s"] = fed.env.now - t0
        out["tree"] = final.tree.to_dict()
        yield from client.close()

    fed.run(until=fed.env.process(scenario()))
    return out


def t_grid_sweep():
    """T_grid at the data-local site while 1/2/4 sites share the WAN."""
    rows = {}
    for n_sites in SITE_COUNTS:
        for n_nodes in NODE_COUNTS:
            fed = build(n_sites, n_nodes)
            run = session(fed, "/CN=bench-local")
            assert run["site"] == "site1", "broker must route data-local"
            rows[f"{n_sites}x{n_nodes}"] = {
                "sites": n_sites,
                "nodes": n_nodes,
                "staging_s": run["staging_s"],
                "t_grid_s": run["total_s"],
            }
    return rows


def cross_site(n_nodes=16):
    """Cold vs warm staging at the non-home site (2 sites x n_nodes)."""
    fed = build(2, n_nodes)
    cold = session(fed, "/CN=bench-cold", site="site2")
    warm = session(fed, "/CN=bench-warm", site="site2")
    assert fed.stats()["migrations"] == 1, "warm repeat must skip the WAN"
    home = session(build(2, n_nodes), "/CN=bench-home")
    return {
        "nodes": n_nodes,
        "cold_staging_s": cold["staging_s"],
        "warm_staging_s": warm["staging_s"],
        "staging_speedup": cold["staging_s"] / warm["staging_s"],
        "cold_total_s": cold["total_s"],
        "warm_total_s": warm["total_s"],
        "trees_identical": (
            cold["tree"] == warm["tree"] == home["tree"]
        ),
    }


def sweep():
    return {"t_grid": t_grid_sweep(), "cross_site": cross_site()}


def test_federation_speedup(benchmark, report):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = ComparisonTable(
        f"Federation: T_grid({SIZE_MB:.0f} MB) at the data-local site "
        "(simulated seconds)",
        ["sites x nodes", "staging", "T_grid"],
    )
    for key, row in results["t_grid"].items():
        table.add_row(
            key, f"{row['staging_s']:.1f} s", f"{row['t_grid_s']:.1f} s"
        )
    cross = results["cross_site"]
    table2 = ComparisonTable(
        f"Cross-site staging at 2 sites x {cross['nodes']} nodes",
        ["path", "staging", "total"],
    )
    table2.add_row(
        "cold (SE->SE migrate)",
        f"{cross['cold_staging_s']:.1f} s",
        f"{cross['cold_total_s']:.1f} s",
    )
    table2.add_row(
        "warm (migrated copy)",
        f"{cross['warm_staging_s']:.1f} s",
        f"{cross['warm_total_s']:.1f} s",
    )
    report("federation", table.render() + "\n" + table2.render())

    OUT_JSON.parent.mkdir(exist_ok=True)
    OUT_JSON.write_text(
        json.dumps(
            {
                "size_mb": SIZE_MB,
                "events_per_mb": EVENTS_PER_MB,
                "t_grid": results["t_grid"],
                "cross_site": cross,
            },
            indent=2,
        )
        + "\n"
    )

    # CI gates: the migrated replica must amortise the WAN cost, and
    # site count must never change what the analysis computes.
    assert cross["trees_identical"], (
        "cross-site session merged tree differs from the home-site run"
    )
    assert cross["staging_speedup"] >= 3.0, (
        f"expected >= 3x warm cross-site staging speedup, got "
        f"{cross['staging_speedup']:.1f}x"
    )
    # Extra idle sites on the shared WAN must not slow the local session.
    for n_nodes in NODE_COUNTS:
        base = results["t_grid"][f"1x{n_nodes}"]["t_grid_s"]
        for n_sites in SITE_COUNTS[1:]:
            multi = results["t_grid"][f"{n_sites}x{n_nodes}"]["t_grid_s"]
            assert multi <= base * 1.05, (
                f"{n_sites} sites slowed T_grid at {n_nodes} nodes: "
                f"{multi:.1f}s vs {base:.1f}s"
            )
