"""Merge every ``BENCH_*.json`` gate file into one trajectory document.

Each gated benchmark writes a machine-readable ``BENCH_<name>.json`` next
to its human-readable table (see ``benchmarks/out/``).  CI uploads those
per-job, then the ``bench-trajectory`` step runs this script over the
downloaded artifacts to produce a single ``bench_trajectory.json`` — one
artifact that tracks every performance gate across the build, so a
regression hunt never has to stitch job logs together.

Standard library only; usable locally too:

    python benchmarks/merge_trajectory.py \
        --in benchmarks/out --out bench_trajectory.json
"""

import argparse
import json
import sys
from pathlib import Path


def collect(in_dir):
    """Map bench name -> parsed JSON for every BENCH_*.json under in_dir."""
    benches = {}
    for path in sorted(in_dir.rglob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        try:
            benches[name] = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise SystemExit(f"unreadable bench gate {path}: {exc}")
    return benches


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--in", dest="in_dir", default="benchmarks/out",
        help="directory scanned recursively for BENCH_*.json files",
    )
    parser.add_argument(
        "--out", default="bench_trajectory.json",
        help="merged trajectory file to write",
    )
    args = parser.parse_args(argv)

    in_dir = Path(args.in_dir)
    if not in_dir.is_dir():
        raise SystemExit(f"not a directory: {in_dir}")
    benches = collect(in_dir)
    if not benches:
        raise SystemExit(f"no BENCH_*.json files under {in_dir}")

    out = Path(args.out)
    out.write_text(
        json.dumps({"benches": benches}, indent=2, sort_keys=True) + "\n"
    )
    print(f"merged {len(benches)} bench gates -> {out}:")
    for name in benches:
        print(f"  {name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
