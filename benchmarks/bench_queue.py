"""§2.3/§6 ablation — the dedicated timely scheduler queue.

"The key additional requirements to the standard Grid are a dedicated
timely scheduler queue and a mechanism for communication from workers to
the client" (§1); engines "should be started relatively quickly - within
the limits of human tolerance" (§2.3).

We measure time-to-session-ready on a contended site (every worker busy
with a short batch job and a deep backlog of pending batch work) when the
engines are submitted to:

* the **dedicated interactive queue** (high priority, 1 s dispatch) — they
  jump the backlog and start as soon as workers free up;
* the **shared batch queue** (low priority, 30 s dispatch) — they wait
  behind the entire backlog.
"""

import pytest

from repro.bench.tables import ComparisonTable, format_seconds
from repro.client.client import IPAClient
from repro.core.site import GridSite, SiteConfig

N_WORKERS = 8
BATCH_JOB_SECONDS = 120.0
BACKLOG_JOBS = 24  # pending batch work beyond the running jobs


def session_ready_time(queue_name: str) -> float:
    site = GridSite(SiteConfig(n_workers=N_WORKERS))
    # Point the site policy's engine queue at the queue under test.
    object.__setattr__(site.policy, "interactive_queue", queue_name)

    def batch_body(env, worker):
        yield env.timeout(BATCH_JOB_SECONDS)

    # Saturate the site: N running batch jobs + a deep pending backlog.
    for index in range(N_WORKERS + BACKLOG_JOBS):
        site.scheduler.submit(f"production-{index}", "batch", batch_body)

    client = IPAClient(site, site.enroll_user("/CN=user"))
    outcome = {}

    def scenario():
        started = site.env.now
        yield from client.obtain_proxy_and_connect(n_engines=N_WORKERS)
        outcome["ready"] = site.env.now - started
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    return outcome["ready"]


def run_both():
    return {
        "interactive": session_ready_time("interactive"),
        "batch": session_ready_time("batch"),
    }


def test_dedicated_queue(benchmark, report):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    table = ComparisonTable(
        "Session-ready time on a contended site "
        f"({N_WORKERS} workers busy + {BACKLOG_JOBS} pending batch jobs)",
        ["engine queue", "time until all engines ready"],
    )
    table.add_row("dedicated interactive", format_seconds(results["interactive"]))
    table.add_row("shared batch", format_seconds(results["batch"]))
    report(
        "queue",
        table.render()
        + "\nthe dedicated queue jumps the pending backlog; the shared "
        "queue waits behind it (paper §2.3: start 'within the limits of "
        "human tolerance')",
    )

    # Interactive engines start right after the first batch wave drains
    # (~2 minutes), well within "human tolerance" for a busy site.
    assert results["interactive"] < 2.5 * BATCH_JOB_SECONDS
    # The shared queue pays for the whole backlog: (8 running + 24
    # pending) / 8 workers = 4 waves of 2 minutes before engines start.
    assert results["batch"] > results["interactive"] * 2
    assert results["batch"] > 4 * BATCH_JOB_SECONDS
