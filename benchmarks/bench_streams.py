"""§3.4 ablation — GridFTP parallel streams on the part-scatter.

Real 2006-era WANs/LANs limited a single TCP stream well below link
capacity; GridFTP's parallel streams were the standard fix.  We give each
worker link a per-stream cap of 2 MB/s (link capacity 7.6 MB/s) and sweep
the stream count, measuring the 471 MB part scatter to 16 workers.  With
enough streams the flow saturates the link and the SE's serial disk pass
becomes the bottleneck again — the regime the calibrated Table 2 numbers
live in.
"""

import pytest

from repro.bench.tables import ComparisonTable
from repro.grid.network import Network
from repro.grid.nodes import NodeSpec, StorageElement, WorkerNode
from repro.grid.transfer import GridFTPService
from repro.sim import Environment

SIZE_MB = 471.0
N_WORKERS = 16
STREAM_RATE = 2.0  # MB/s per TCP stream
LINK_BW = 7.6
SE_DISK = 10.24
STREAM_COUNTS = (1, 2, 4, 8)


def scatter_time(streams: int) -> float:
    env = Environment()
    net = Network(env)
    net.add_host("se")
    se = StorageElement(
        env, "se", NodeSpec(disk_read_mbps=SE_DISK, disk_write_mbps=SE_DISK)
    )
    workers = []
    for index in range(N_WORKERS):
        name = f"w{index}"
        net.add_host(name)
        net.add_link(f"se-{name}", "se", name, bandwidth=LINK_BW)
        workers.append(
            WorkerNode(
                env, name, NodeSpec(disk_read_mbps=10_000, disk_write_mbps=10_000)
            )
        )
    ftp = GridFTPService(
        env, net, setup_overhead=0.0, stream_rate=STREAM_RATE, streams=streams
    )
    part = SIZE_MB / N_WORKERS
    report = env.run(
        until=ftp.scatter(
            se, workers, [(f"p{i}", part) for i in range(N_WORKERS)]
        )
    )
    return report.duration


def run_sweep():
    return {streams: scatter_time(streams) for streams in STREAM_COUNTS}


def test_parallel_streams(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = ComparisonTable(
        "Part scatter (471 MB -> 16 workers) vs GridFTP stream count "
        f"(per-stream cap {STREAM_RATE} MB/s, links {LINK_BW} MB/s)",
        ["streams", "flow ceiling [MB/s]", "move parts [s]"],
    )
    for streams in STREAM_COUNTS:
        ceiling = min(streams * STREAM_RATE, LINK_BW)
        table.add_row(streams, f"{ceiling:.1f}", f"{results[streams]:.1f}")
    report("streams", table.render())

    # More streams -> faster scatter, monotonically.
    times = [results[s] for s in STREAM_COUNTS]
    assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))
    # One stream: the 2 MB/s cap dominates the last part's transfer.
    part = SIZE_MB / N_WORKERS
    assert results[1] == pytest.approx(SIZE_MB / SE_DISK + part / STREAM_RATE, rel=0.05)
    # Enough streams to saturate the link: back to the Table 2 regime.
    assert results[8] == pytest.approx(SIZE_MB / SE_DISK + part / LINK_BW, rel=0.05)
    # The win from 1 -> 8 streams is bounded by the serial disk stage.
    assert 1.1 < results[1] / results[8] < 2.0
