"""§3.4 ablation — split strategies: equal-event vs equal-byte parts.

The splitter must produce "approximately equal parts".  With uniform
events the two strategies coincide; with skewed per-event sizes (realistic
for physics data, where event size tracks multiplicity) equal-event parts
produce unbalanced transfers and stragglers, while equal-byte parts level
them.  We measure part-size skew and the resulting end-to-end staging +
analysis time on a simulated site.
"""

import numpy as np
import pytest

from repro.bench.tables import ComparisonTable
from repro.core.site import GridSite, SiteConfig
from repro.grid.network import Network
from repro.grid.nodes import NodeSpec, StorageElement, WorkerNode
from repro.grid.transfer import GridFTPService
from repro.services.locator import DatasetLocation
from repro.services.splitter import SplitterService
from repro.sim import Environment

N_WORKERS = 8
N_EVENTS = 8000
SIZE_MB = 400.0


def make_skewed_weights(seed=3):
    """Per-event size profile: last quarter of the file is 5x heavier."""
    rng = np.random.default_rng(seed)
    weights = rng.uniform(0.8, 1.2, N_EVENTS)
    weights[3 * N_EVENTS // 4:] *= 5.0
    return weights


def stage_with(strategy, weights):
    env = Environment()
    net = Network(env)
    net.add_host("se")
    se = StorageElement(env, "se", NodeSpec(disk_read_mbps=10.24, disk_write_mbps=10.24))
    workers = []
    for i in range(N_WORKERS):
        name = f"w{i}"
        net.add_host(name)
        net.add_link(f"se-{name}", "se", name, bandwidth=7.6)
        workers.append(
            WorkerNode(env, name, NodeSpec(disk_read_mbps=10_000, disk_write_mbps=10_000))
        )
    ftp = GridFTPService(env, net, setup_overhead=0.0)
    splitter = SplitterService(env, se, ftp, split_rate=0.25)
    location = DatasetLocation(
        "ds", "gridftp", "se", "/ds", SIZE_MB, N_EVENTS, "se"
    )
    report = env.run(
        until=splitter.split_and_scatter(
            location, workers, strategy=strategy, event_weights=weights
        )
    )
    sizes = np.array([p.size_mb for p in report.parts])
    # Straggler model: each engine's analysis time is proportional to its
    # part size; the session waits for the slowest.
    analysis = float(sizes.max()) * 0.58
    return {
        "skew": float(sizes.max() / sizes.mean()),
        "move_parts": report.move_parts_seconds,
        "analysis": analysis,
        "total": report.move_parts_seconds + analysis,
        "sizes": sizes,
    }


def run_both():
    weights = make_skewed_weights()
    return {
        strategy: stage_with(strategy, weights)
        for strategy in ("by-events", "by-bytes")
    }


def test_splitter(benchmark, report):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    table = ComparisonTable(
        "Split strategies on a skewed dataset (400 MB, 8 workers)",
        ["strategy", "part skew (max/mean)", "move parts [s]", "analysis (slowest) [s]", "total [s]"],
    )
    for strategy, r in results.items():
        table.add_row(
            strategy,
            f"{r['skew']:.2f}",
            f"{r['move_parts']:.1f}",
            f"{r['analysis']:.1f}",
            f"{r['total']:.1f}",
        )
    report("splitter", table.render())

    by_events = results["by-events"]
    by_bytes = results["by-bytes"]
    # Equal-event parts are badly skewed on this profile (last quarter 5x).
    assert by_events["skew"] > 2.0
    # Equal-byte parts are balanced.
    assert by_bytes["skew"] < 1.1
    # Balanced parts finish sooner end-to-end (no straggler).
    assert by_bytes["total"] < by_events["total"]
    # Both strategies conserve the dataset.
    assert by_events["sizes"].sum() == pytest.approx(SIZE_MB, rel=1e-6)
    assert by_bytes["sizes"].sum() == pytest.approx(SIZE_MB, rel=1e-6)
