"""Figure 5 — analysis-time surfaces T(X, N): local (gold) vs grid (blue).

The paper's surface plot shows the grid dipping below the local baseline
for large datasets and node counts, with local winning only for small X.
We regenerate the same two surfaces twice:

* from the paper's analytic model (exact reproduction of the figure's
  inputs), and
* from full simulator runs on a coarser lattice,

and print the grid-wins/local-wins map plus the crossover contour.
"""

import numpy as np
import pytest

from repro.bench.model import PaperModel
from repro.bench.surface import compute_surfaces
from repro.bench.tables import ComparisonTable
from repro.core.experiment import run_grid_experiment, run_local_experiment

SIM_SIZES = (2.0, 5.0, 10.0, 50.0, 150.0, 471.0, 1000.0)
SIM_NODES = (1, 2, 4, 8, 16, 32)


def simulate_surfaces():
    local_cache = {}

    def local_fn(size):
        if size not in local_cache:
            local_cache[size] = run_local_experiment(size).total
        return local_cache[size]

    def grid_fn(size, nodes):
        return run_grid_experiment(
            size, nodes, events_per_mb=2, collect_tree=False
        ).total

    return compute_surfaces(SIM_SIZES, SIM_NODES, local_fn, grid_fn)


def test_figure5(benchmark, report):
    simulated = benchmark.pedantic(simulate_surfaces, rounds=1, iterations=1)
    analytic = compute_surfaces(
        np.linspace(1, 1000, 200), SIM_NODES, model=PaperModel()
    )

    table = ComparisonTable(
        "Figure 5: simulated T(X, N) in seconds (local | grid)",
        ["X [MB]"] + [f"N={n}" for n in SIM_NODES],
    )
    for i, size in enumerate(SIM_SIZES):
        table.add_row(
            f"{size:.0f}",
            *(
                f"{simulated.local[i, j]:.0f}|{simulated.grid[i, j]:.0f}"
                for j in range(len(SIM_NODES))
            ),
        )
    crossover = "\n".join(
        f"  N={int(n):2d}: analytic {a:7.1f} MB | simulated {s:7.1f} MB"
        for n, a, s in zip(
            SIM_NODES, analytic.crossover_mb, simulated.crossover_mb
        )
    )
    report(
        "figure5",
        table.render()
        + "\n\n"
        + simulated.render_ascii()
        + "\n\ncrossover contour (grid wins above):\n"
        + crossover,
    )
    # Plot-ready CSV alongside the text table.
    from pathlib import Path

    out_dir = Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "figure5.csv").write_text(simulated.to_csv() + "\n")

    wins = simulated.grid_wins()
    sizes = list(SIM_SIZES)
    # Local wins the bottom-left corner (tiny dataset, any N).
    assert not wins[0, 0]
    assert not wins[sizes.index(2.0), SIM_NODES.index(16)]
    # Grid wins decisively for the large datasets at many nodes.
    assert wins[sizes.index(471.0), SIM_NODES.index(16)]
    assert wins[sizes.index(1000.0), SIM_NODES.index(32)]
    # Even one grid node beats local for very large X (WAN vs LAN).
    assert wins[sizes.index(1000.0), SIM_NODES.index(1)]
    # Local is flat in N; grid decreases with N for big X.
    big = sizes.index(471.0)
    assert np.allclose(simulated.local[big, :], simulated.local[big, 0])
    assert simulated.grid[big, -1] < simulated.grid[big, 0]
    # Crossover sizes: small (order 10 MB), finite for every N.
    assert np.all(np.isfinite(simulated.crossover_mb))
    assert np.all(simulated.crossover_mb < 50.0)
