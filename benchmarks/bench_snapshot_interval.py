"""§2.5/§3.7 ablation — snapshot cadence vs feedback latency and merge load.

"Getting the intermediate results quickly and presenting them in the
format desired by the user is a very important requirement" (§2.5) — but
every snapshot costs a push to the manager and inflates each client poll's
merge work.  We sweep the engines' snapshot cadence (every N chunks) on
the 471 MB / 16-node workload and report:

* time to the first merged partial result (feedback latency),
* number of snapshots pushed per engine (manager ingest load),
* total analysis wall-clock (overhead of pushing).
"""

import pytest

from repro.analysis import counting
from repro.bench.tables import ComparisonTable
from repro.client.client import IPAClient
from repro.core.config import Calibration
from repro.core.site import GridSite, SiteConfig

SIZE_MB = 471.0
NODES = 16
N_EVENTS = 40_000
CADENCES = (1, 2, 5, 10)


def run_with_cadence(snapshot_every: int) -> dict:
    calibration = Calibration(
        chunk_events=250, snapshot_every_chunks=snapshot_every
    )
    site = GridSite(SiteConfig(n_workers=NODES), calibration)
    site.register_dataset(
        "ds", "/x/ds", size_mb=SIZE_MB, n_events=N_EVENTS,
        content={"kind": "ilc", "seed": 15},
    )
    client = IPAClient(site, site.enroll_user("/CN=u"))
    outcome = {}

    def scenario():
        env = site.env
        yield from client.obtain_proxy_and_connect()
        yield from client.select_dataset("ds")
        yield from client.upload_code(counting.SOURCE)
        run_started = env.now
        yield from client.run()
        first = None
        while True:
            yield env.timeout(1.0)
            result = yield from client.poll()
            if first is None and result.progress.events_processed > 0:
                first = env.now - run_started
            if result.progress.complete:
                break
        outcome["t_first"] = first
        outcome["analysis"] = env.now - run_started
        # Snapshot sequence numbers count pushes per engine.
        hosts = site.session_service._sessions[
            client.session.session_id
        ]["hosts"]
        outcome["snapshots_per_engine"] = max(
            host.engine._sequence for host in hosts.values()
        )
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    return outcome


def run_sweep():
    return {cadence: run_with_cadence(cadence) for cadence in CADENCES}


def test_snapshot_interval(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = ComparisonTable(
        "Snapshot cadence ablation (471 MB, 16 nodes, 250-event chunks)",
        [
            "snapshot every N chunks",
            "first result [s]",
            "snapshots/engine",
            "analysis total [s]",
        ],
    )
    for cadence in CADENCES:
        r = results[cadence]
        table.add_row(
            cadence,
            f"{r['t_first']:.1f}",
            r["snapshots_per_engine"],
            f"{r['analysis']:.1f}",
        )
    report("snapshot_interval", table.render())

    # Coarser cadence -> later first feedback, monotonically.
    firsts = [results[c]["t_first"] for c in CADENCES]
    assert all(a <= b + 1e-9 for a, b in zip(firsts, firsts[1:]))
    # Coarser cadence -> fewer pushes (manager load), monotonically.
    pushes = [results[c]["snapshots_per_engine"] for c in CADENCES]
    assert all(a >= b for a, b in zip(pushes, pushes[1:]))
    assert pushes[0] >= 5 * pushes[-1]
    # The push overhead on total analysis time stays small (< 5%) — the
    # paper's design can afford per-chunk snapshots.
    totals = [results[c]["analysis"] for c in CADENCES]
    assert (totals[0] - totals[-1]) / totals[-1] < 0.05
