"""Table 1 — local vs Grid (16 nodes) wall-clock breakdown, X = 471 MB.

Paper values (for the 471 MB Linear-Collider dataset, 15 kB of code):

    ============================  =========  ==============
    phase                         Local      Grid (16)
    ============================  =========  ==============
    Get dataset (over WAN)        32 min     -
    Stage dataset (LAN)           -          174 s
    Stage code                    -          7 s
    Analysis                      13 min     258 s
    Total                         45 min     4 m 19 s
    ============================  =========  ==============

(The paper's own grid column does not sum to its printed total; see
EXPERIMENTS.md.  The shape targets asserted here: the staging phases match
the Table 2 row for N = 16, the local total is ~45 min, and the grid is
many times faster end-to-end.)
"""

import pytest

from repro.bench.tables import ComparisonTable, format_seconds
from repro.core.experiment import run_grid_experiment, run_local_experiment
from repro.obs.exporters import phase_summary, phase_totals

SIZE_MB = 471.0
NODES = 16


def run_both():
    grid = run_grid_experiment(
        SIZE_MB, NODES, events_per_mb=5, collect_tree=False, observability=True
    )
    local = run_local_experiment(SIZE_MB)
    return local, grid


def test_table1(benchmark, report):
    local, grid = benchmark.pedantic(run_both, rounds=1, iterations=1)

    table = ComparisonTable(
        "Table 1: local vs Grid(16) for a 471 MB dataset (paper | measured)",
        ["phase", "paper local", "ours local", "paper grid", "ours grid"],
    )
    table.add_row(
        "get dataset (WAN)", "32 m 00 s", format_seconds(local.download), "-", "-"
    )
    table.add_row(
        "stage dataset (LAN)", "-", "-", "174 s",
        format_seconds(grid.stage_dataset),
    )
    table.add_row("stage code", "-", "-", "7 s", format_seconds(grid.stage_code))
    table.add_row(
        "analysis",
        "13 m 00 s",
        format_seconds(local.analysis),
        "258 s",
        format_seconds(grid.analysis),
    )
    table.add_row(
        "total",
        "45 m 00 s",
        format_seconds(local.total),
        "4 m 19 s",
        format_seconds(grid.total),
    )
    speedup = local.total / grid.total
    report(
        "table1",
        table.render()
        + f"\nend-to-end grid speedup: {speedup:.1f}x (paper: ~10x)"
        + "\n\n"
        + phase_summary(
            grid.obs.tracer, title="telemetry per-phase summary (grid run)"
        ),
    )

    # The trace-derived phase totals must reconcile exactly with the
    # breakdown the table was built from: the spans are opened and closed
    # at the very measuring points the driver reads the clock at.
    totals = phase_totals(grid.obs.tracer)
    assert totals["move_whole"] == pytest.approx(grid.move_whole, abs=1e-9)
    assert totals["split"] == pytest.approx(grid.split, abs=1e-9)
    assert totals["move_parts"] == pytest.approx(grid.move_parts, abs=1e-9)
    assert totals["stage_code"] == pytest.approx(grid.stage_code, abs=1e-9)
    assert totals["analysis"] == pytest.approx(grid.analysis, abs=1e-9)

    # Shape assertions: who wins and by roughly what factor.
    assert local.download == pytest.approx(32 * 60, rel=0.05)
    assert local.analysis == pytest.approx(13 * 60, rel=0.05)
    assert local.total == pytest.approx(45 * 60, rel=0.05)
    assert grid.stage_code == pytest.approx(7.0, abs=1.5)
    assert grid.total < local.total / 5  # grid wins decisively
    assert 5 < speedup < 15  # paper: ~10x
