"""Real-CPU check — does analysis actually scale with worker processes?

Everything else in the harness runs on the simulated clock; this benchmark
runs the Higgs search for real with ``multiprocessing`` over a real dataset
file and measures wall-clock speedup, verifying that the 1/N analysis
claim is not an artifact of the cost model.  (Absolute speedups depend on
the CI machine; the assertions only require parallel > serial and
result equality.)
"""

import os
import time

import numpy as np
import pytest

from repro.bench.tables import ComparisonTable
from repro.dataset.format import write_dataset
from repro.dataset.generator import ILCEventGenerator
from repro.engine.runner import run_parallel
from repro.engine.sandbox import CodeBundle

N_EVENTS = 20_000
WORKER_COUNTS = (1, 2, 4)

# A per-record (Python-loop) Higgs pairing, like the paper's Java analysis
# processed events one at a time — CPU-bound enough for process-level
# parallelism to pay off (the vectorized variant finishes in milliseconds
# and would only measure fork overhead).
PER_EVENT_SOURCE = """
class PerEventHiggs(Analysis):
    name = "per-event-higgs"

    def start(self, tree):
        tree.put("/higgs/dijet_mass", Histogram1D(
            "dijet_mass", "Higgs candidate mass", bins=60, lower=40, upper=200))

    def process_event(self, event, tree):
        if event.n_particles != 4:
            return
        e, px, py, pz = event.e, event.px, event.py, event.pz
        best = None
        for (a, b), (c, d) in (((0, 1), (2, 3)), ((0, 2), (1, 3)),
                               ((0, 3), (1, 2))):
            masses = []
            for i, j in ((a, b), (c, d)):
                se = e[i] + e[j]
                sx = px[i] + px[j]
                sy = py[i] + py[j]
                sz = pz[i] + pz[j]
                m2 = se * se - sx * sx - sy * sy - sz * sz
                masses.append(math.sqrt(m2) if m2 > 0 else 0.0)
            dz = [abs(m - 91.1876) for m in masses]
            z_slot = 0 if dz[0] < dz[1] else 1
            candidate = (dz[z_slot], masses[1 - z_slot])
            if best is None or candidate[0] < best[0]:
                best = candidate
        tree.get("/higgs/dijet_mass").fill(best[1])

import math
"""


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("realpar") / "events.ipad"
    generator = ILCEventGenerator(seed=77)
    write_dataset(
        path, list(generator.stream(N_EVENTS, batch_size=10_000)),
        meta={"name": "real-parallel"},
    )
    return path


def test_real_parallel(benchmark, dataset_path, report):
    bundle = CodeBundle(PER_EVENT_SOURCE, class_name="PerEventHiggs")
    timings = {}
    trees = {}

    def sweep():
        for workers in WORKER_COUNTS:
            started = time.perf_counter()
            trees[workers] = run_parallel(
                bundle, str(dataset_path), n_workers=workers
            )
            timings[workers] = time.perf_counter() - started
        return timings

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = ComparisonTable(
        f"Real multiprocessing speedup ({N_EVENTS} events, Higgs search)",
        ["workers", "wall-clock [s]", "speedup"],
    )
    base = timings[1]
    for workers in WORKER_COUNTS:
        table.add_row(
            workers, f"{timings[workers]:.2f}", f"{base / timings[workers]:.2f}x"
        )
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    report(
        "real_parallel",
        table.render() + f"\navailable CPU cores: {cores}",
    )

    # Results are identical regardless of parallelism.
    reference = trees[1].get("/higgs/dijet_mass")
    for workers in WORKER_COUNTS[1:]:
        other = trees[workers].get("/higgs/dijet_mass")
        assert other.entries == reference.entries
        assert np.allclose(other.heights(), reference.heights())
    # Speedup is only physically possible with >1 core; on single-core
    # machines we still require the overhead to stay bounded.
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    if cores and cores >= 2:
        assert timings[2] < timings[1] * 0.9
    else:
        assert timings[max(WORKER_COUNTS)] <= timings[1] * 1.5
