"""Shared fixtures for the reproduction benchmarks.

Every benchmark prints its paper-vs-measured table and also writes it to
``benchmarks/out/<name>.txt`` so the results survive pytest's output
capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture
def report():
    """Callable ``report(name, text)``: print and persist a result table."""
    OUT_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        print()
        print(text)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _report
