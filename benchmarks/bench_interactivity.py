"""§1 claim — interactivity: "partial results on time scales of less than
a minute".

Measures time-to-first-merged-snapshot (from pressing "run" to the first
poll returning non-empty partial results) as a function of node count and
snapshot cadence, on the paper's 471 MB workload.  The paper's definition
of interactive is < 60 s.
"""

import pytest

from repro.analysis import counting
from repro.bench.tables import ComparisonTable
from repro.client.client import IPAClient
from repro.core.config import Calibration
from repro.core.site import GridSite, SiteConfig

SIZE_MB = 471.0
NODES = (4, 16)
CHUNKS = (250, 500, 1000)


def time_to_first_result(n_nodes: int, chunk_events: int) -> float:
    calibration = Calibration(chunk_events=chunk_events)
    site = GridSite(SiteConfig(n_workers=n_nodes), calibration)
    site.register_dataset(
        "ds",
        "/exp/ds",
        size_mb=SIZE_MB,
        n_events=40_000,  # realistic density: ~85 events/MB
        content={"kind": "ilc", "seed": 9},
    )
    client = IPAClient(site, site.enroll_user("/CN=user"))
    outcome = {}

    def scenario():
        env = site.env
        yield from client.obtain_proxy_and_connect()
        yield from client.select_dataset("ds")
        yield from client.upload_code(counting.SOURCE)
        started = env.now
        yield from client.run()
        while True:
            yield env.timeout(1.0)
            result = yield from client.poll()
            if result.progress.events_processed > 0:
                outcome["t_first"] = env.now - started
                return

    site.env.run(until=site.env.process(scenario()))
    return outcome["t_first"]


def sweep():
    return {
        (n, chunk): time_to_first_result(n, chunk)
        for n in NODES
        for chunk in CHUNKS
    }


def test_interactivity(benchmark, report):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = ComparisonTable(
        "Time to first merged partial result, 471 MB (seconds)",
        ["nodes"] + [f"chunk={c} events" for c in CHUNKS],
    )
    for n in NODES:
        table.add_row(n, *(f"{results[(n, c)]:.1f}" for c in CHUNKS))
    report(
        "interactivity",
        table.render() + "\npaper's interactivity bar: < 60 s (§1)",
    )

    # The paper's headline claim holds for fine-grained chunks; the
    # per-pass serial overhead (fitted from Table 2) is the floor.
    assert results[(16, CHUNKS[0])] < 60.0
    assert results[(4, CHUNKS[0])] < 60.0
    # Even the coarsest setting stays within a factor ~1.5 of the bar.
    assert results[(16, CHUNKS[-1])] < 90.0
    # Smaller chunks give faster feedback (at fixed N).
    for n in NODES:
        assert results[(n, CHUNKS[0])] <= results[(n, CHUNKS[-1])] + 1e-9
    # First-result latency is roughly independent of N: the first chunk is
    # a fixed event count per engine, so only the (slightly larger) merge
    # cost varies with node count.
    assert abs(results[(16, 500)] - results[(4, 500)]) < 5.0
