"""Replica cache — warm vs cold staging, X = 471 MB.

A cold stage pays the full §3.4 pipeline (WAN fetch + serial split +
scatter, ``T_stage = 0.338*X + 53 + ...``).  A warm stage on the same
site finds every part already in the worker caches and pays only the
replica-catalog consult — the dominant ``(62 + 5.3*X)/N`` staging term is
amortised across repeat sessions, which is exactly the interactive
repeat-analysis loop of §4.

This benchmark stages the Table 2 dataset (471 MB) cold, warm (all parts
cached), and partially warm (one part purged) at 1/4/16 nodes, writes
``benchmarks/out/BENCH_replica.json``, and asserts the CI gate: >= 5x
warm speedup at 16 nodes and merged analysis results bit-identical
between the cold and warm sessions.
"""

import json
from pathlib import Path

from repro.analysis import counting
from repro.bench.tables import ComparisonTable
from repro.client.client import IPAClient
from repro.core.site import GridSite, SiteConfig

SIZE_MB = 471.0
EVENTS_PER_MB = 4
NODE_COUNTS = (1, 4, 16)
OUT_JSON = Path(__file__).parent / "out" / "BENCH_replica.json"


def stage_once(site, cred, dataset_hint=None, analyze=False):
    """One full session; returns (StagedDataset, merged tree dict or None)."""
    client = IPAClient(site, cred)
    out = {"tree": None}

    def scenario():
        yield from client.obtain_proxy_and_connect(dataset_hint=dataset_hint)
        out["staged"] = yield from client.select_dataset("ds")
        if analyze:
            yield from client.upload_code(counting.SOURCE)
            yield from client.run()
            final = yield from client.wait_for_completion(poll_interval=3.0)
            out["tree"] = final.tree.to_dict()
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    return out["staged"], out["tree"]


def measure(n_nodes, analyze=False):
    """Cold / warm / partial staging on one site; simulated seconds."""
    site = GridSite(SiteConfig(n_workers=n_nodes, enable_observability=True))
    site.register_dataset(
        "ds", "/t/ds", size_mb=SIZE_MB,
        n_events=int(SIZE_MB * EVENTS_PER_MB),
        content={"kind": "ilc", "seed": 3},
    )
    cred = site.enroll_user("/CN=bench")

    cold, cold_tree = stage_once(site, cred, analyze=analyze)
    warm, warm_tree = stage_once(
        site, cred, dataset_hint="ds", analyze=analyze
    )
    assert warm.local_hits == n_nodes and warm.cold_parts == 0

    # Partial warmth: one worker lost one cached part (scratch purge);
    # only that part moves again, from the SE part file.
    victim = next(w for w in site.replicas.caches.values() if len(w))
    victim.remove(victim.keys()[0], reason="scratch-purge")
    partial, _ = stage_once(site, cred, dataset_hint="ds")
    assert partial.local_hits == n_nodes - 1
    assert partial.se_hits + partial.peer_hits == 1

    return {
        "cold": _breakdown(cold),
        "warm": _breakdown(warm),
        "partial": _breakdown(partial),
        "warm_speedup": cold.stage_seconds / warm.stage_seconds,
        "partial_speedup": cold.stage_seconds / partial.stage_seconds,
        "saved_mb": warm.saved_mb,
        "trees_identical": None if not analyze else cold_tree == warm_tree,
    }


def _breakdown(staged):
    return {
        "stage_seconds": staged.stage_seconds,
        "fetch_seconds": staged.fetch_seconds,
        "split_seconds": staged.split_seconds,
        "move_parts_seconds": staged.move_parts_seconds,
    }


def sweep():
    return {
        n: measure(n, analyze=(n == NODE_COUNTS[-1])) for n in NODE_COUNTS
    }


def test_replica_cache_speedup(benchmark, report):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = ComparisonTable(
        f"Replica cache: staging {SIZE_MB:.0f} MB cold vs warm "
        "(simulated seconds)",
        ["nodes", "cold", "warm", "speedup", "partial", "saved"],
    )
    for n, row in results.items():
        table.add_row(
            n,
            f"{row['cold']['stage_seconds']:.1f} s",
            f"{row['warm']['stage_seconds']:.2f} s",
            f"{row['warm_speedup']:.0f}x",
            f"{row['partial']['stage_seconds']:.1f} s",
            f"{row['saved_mb']:.0f} MB",
        )
    report("replica_cache", table.render())

    OUT_JSON.parent.mkdir(exist_ok=True)
    OUT_JSON.write_text(
        json.dumps(
            {
                "size_mb": SIZE_MB,
                "events_per_mb": EVENTS_PER_MB,
                "nodes": {str(k): v for k, v in results.items()},
            },
            indent=2,
        )
        + "\n"
    )

    # CI gate: warm staging must dominate cold, and the cache must never
    # change what the analysis computes.
    gate = results[16]
    assert gate["trees_identical"], (
        "warm session merged tree differs from cold session"
    )
    assert gate["warm_speedup"] >= 5.0, (
        f"expected >= 5x warm staging speedup at 16 nodes, got "
        f"{gate['warm_speedup']:.1f}x"
    )
    # Partial warmth sits between: cheaper than cold, dearer than warm.
    for n, row in results.items():
        assert (
            row["warm"]["stage_seconds"]
            <= row["partial"]["stage_seconds"]
            < row["cold"]["stage_seconds"]
        ), f"partial stage out of order at n={n}"
        assert row["warm"]["fetch_seconds"] == 0.0
