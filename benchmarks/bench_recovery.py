"""Recovery cost — worker loss mid-run vs a failure-free session.

Measures, for several cluster sizes, what one worker crash in the middle
of a Higgs run costs end-to-end: heartbeat detection latency, partition
re-staging, and the survivor's (or spare's) re-processing of the orphaned
part.  The claim under test: recovery re-stages *only* the orphaned
partition, so the overhead is bounded by detection + one part's staging
and compute — not a restart of the whole session.
"""

import pytest

from repro.analysis import higgs
from repro.bench.tables import ComparisonTable, format_seconds
from repro.client.client import IPAClient
from repro.core.site import GridSite, SiteConfig

# Scale the dataset with the cluster so every partition spans two compute
# chunks (1000 events/part at chunk_events=500): partial snapshots exist
# when the kill fires, so the crash is genuinely mid-run at every size.
EVENTS_PER_WORKER = 1_000
MB_PER_WORKER = 30.0


def run_once(n_workers, kill=False):
    site = GridSite(SiteConfig(n_workers=n_workers))
    site.register_dataset(
        "ds",
        "/x/ds",
        size_mb=MB_PER_WORKER * n_workers,
        n_events=EVENTS_PER_WORKER * n_workers,
        content={"kind": "ilc", "seed": 9},
    )
    client = IPAClient(site, site.enroll_user("/CN=u"))
    out = {}

    def scenario():
        info = yield from client.obtain_proxy_and_connect(n_engines=n_workers)
        yield from client.select_dataset("ds")
        yield from client.upload_code(higgs.SOURCE)
        run_started = site.env.now
        yield from client.run()
        if kill:
            while site.aida.snapshot_count(info.session_id) < n_workers:
                yield site.env.timeout(1.0)
            victim = site.registry.engines(info.session_id)[0]
            out["killed_at"] = site.env.now
            site.injector.crash_worker(victim.worker)
        final = yield from client.wait_for_completion(
            poll_interval=2.0, timeout=50_000.0
        )
        session = site.session_service._sessions[info.session_id]
        if kill:
            out["detected_at"] = session["recoveries"][0]["detected_at"]
            out["redispatched_at"] = session["redispatches"][0]["at"]
        out["events"] = final.progress.events_processed
        out["run_time"] = site.env.now - run_started
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    return out


def sweep():
    rows = []
    for n_workers in (4, 8, 16):
        clean = run_once(n_workers, kill=False)
        chaos = run_once(n_workers, kill=True)
        assert chaos["events"] == EVENTS_PER_WORKER * n_workers
        rows.append(
            {
                "n": n_workers,
                "clean": clean["run_time"],
                "chaos": chaos["run_time"],
                "detect": chaos["detected_at"] - chaos["killed_at"],
                "redispatch": chaos["redispatched_at"] - chaos["detected_at"],
                "overhead": chaos["run_time"] - clean["run_time"],
            }
        )
    return rows


def test_recovery(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = ComparisonTable(
        "One mid-run worker crash during a Higgs analysis (heartbeat 5 s, "
        "timeout 20 s)",
        ["nodes", "clean run", "with crash", "detect", "re-dispatch", "overhead"],
    )
    for row in rows:
        table.add_row(
            str(row["n"]),
            format_seconds(row["clean"]),
            format_seconds(row["chaos"]),
            format_seconds(row["detect"]),
            format_seconds(row["redispatch"]),
            format_seconds(row["overhead"]),
        )
    report("recovery", table.render())

    for row in rows:
        # Detection is bounded by heartbeat timeout + sweep period (+ the
        # beat that was in flight when the worker died).
        assert row["detect"] <= 20.0 + 5.0 + 5.0
        # Overhead is bounded by detection + re-staging + one part's
        # re-compute from event 0 — roughly one clean run's compute, not a
        # restart of the whole session (which would redo every part and
        # the full dataset staging).
        assert row["chaos"] < 2.5 * row["clean"]
