"""§4 equations — refit the paper's functional forms to simulated data.

The paper fits ``T_local = 11.5 X`` and
``T_grid = b X + c + (d + e X)/N`` with (b, c, d, e) =
(0.338, 53, 62, 5.3).  We sweep the simulator over (X, N), refit the same
forms, and compare coefficients.  Exact coefficient equality is not
expected (the paper's printed equations disagree with its own tables; our
simulator is calibrated to the tables) — the targets are sign, order of
magnitude, and the two §4 conclusions:

1. the WAN term makes local transfers dominate for large X, so the grid
   wins beyond a small crossover size;
2. the grid analysis term scales like 1/N.

Known paper inconsistencies surfaced here (details in EXPERIMENTS.md):
the printed local slope 11.5 s/MB implies a 90-minute local total for
471 MB, double its own Table 1 (45 min -> 5.74 s/MB); and the printed
per-node fixed term "62 s" is really the X-dependent part-transfer time
evaluated at X = 471.
"""

import numpy as np
import pytest

from repro.bench.model import PaperModel, fit_grid_model, fit_local_model
from repro.bench.tables import ComparisonTable
from repro.core.experiment import run_grid_experiment, run_local_experiment

SIZES = (20.0, 50.0, 120.0, 250.0, 471.0)
NODES = (1, 2, 4, 8, 16)


def sweep():
    local = [(x, run_local_experiment(x).total) for x in SIZES]
    grid = []
    for x in SIZES:
        for n in NODES:
            breakdown = run_grid_experiment(
                x, n, events_per_mb=2, collect_tree=False
            )
            grid.append((x, n, breakdown.total))
    return local, grid


def test_equations(benchmark, report):
    local, grid = benchmark.pedantic(sweep, rounds=1, iterations=1)

    local_slope, local_residual = fit_local_model(
        [x for x, _ in local], [t for _, t in local]
    )
    fitted, grid_residual = fit_grid_model(
        [x for x, _, _ in grid],
        [n for _, n, _ in grid],
        [t for _, _, t in grid],
    )
    paper = PaperModel()

    table = ComparisonTable(
        "Fitted cost-model coefficients (paper vs refit of simulated data)",
        ["coefficient", "meaning", "paper", "ours"],
    )
    table.add_row("a [s/MB]", "local total per MB", "11.5", f"{local_slope:.2f}")
    table.add_row(
        "b [s/MB]", "grid per-MB (staging)", "0.338", f"{fitted.grid_per_mb:.3f}"
    )
    table.add_row("c [s]", "grid fixed", "53", f"{fitted.grid_fixed:.1f}")
    table.add_row(
        "d [s]", "grid per-node fixed", "62", f"{fitted.grid_per_node_fixed:.1f}"
    )
    table.add_row(
        "e [s/MB]",
        "grid per-node per-MB (analysis)",
        "5.3",
        f"{fitted.grid_per_node_per_mb:.2f}",
    )
    crossover_rows = "\n".join(
        f"  N={n:2d}: paper {paper.crossover_size(n):7.1f} MB | "
        f"ours {fitted.crossover_size(n):7.1f} MB"
        for n in NODES
    )
    report(
        "equations",
        table.render()
        + f"\nfit residuals: local {local_residual:.1f} s, grid {grid_residual:.1f} s"
        + "\ncrossover size (grid wins above):\n"
        + crossover_rows,
    )

    # Local slope: our simulator is calibrated to Table 1 (32 min WAN +
    # 13 min CPU for 471 MB => 5.74 s/MB).  The paper's printed 11.5 s/MB
    # contradicts its own Table 1 by 2x (11.5 * 471 = 90 min, not 45 min);
    # we reproduce the table-consistent value.
    assert local_slope == pytest.approx(5.74, rel=0.05)
    # Grid coefficients: right sign and magnitude.
    assert 0.2 < fitted.grid_per_mb < 0.6       # paper 0.338 (or 0.38 summed)
    assert 0 < fitted.grid_fixed < 120          # paper 53
    # The paper folded the X-dependent part-transfer time (X/7.6 at
    # X = 471 -> "62 s") into its per-node *fixed* term d; the refit over
    # many sizes correctly attributes it to the per-node per-MB term e, so
    # our d is ~0 and our e ~= 0.58 (analysis) + 0.13 (part transfer).
    assert abs(fitted.grid_per_node_fixed) < 140
    assert 0.2 < fitted.grid_per_node_per_mb < 2.0
    # Conclusion 1: grid wins beyond a small crossover.
    for n in (4, 16):
        assert fitted.crossover_size(n) < 40.0
    # Conclusion 2: the analysis term scales ~1/N (the functional form fits
    # with a small residual).
    assert grid_residual < 15.0
