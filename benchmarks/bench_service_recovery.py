"""Service-crash recovery cost — cold-start vs one interactive poll.

Crashes the manager-node services (SessionService + AIDA manager) during
a paused Higgs session and measures the cold-start recovery: journal
replay, checkpoint restore, engine re-binding, and full-keyframe
republication.  The claim under test: recovery costs about one SOAP
round-trip plus one merge pass over the live engine trees — the same
order as a single all-dirty result poll — NOT a re-staging or re-run of
the session.  The gate (at 16 engines): recovery takes less than 2x one
clean poll cycle.  The merged tree after recovery must equal the
pre-crash tree exactly (the session is paused, so zero progress is the
correct answer).

Writes ``benchmarks/out/BENCH_recovery_service.json``.
"""

import json
from pathlib import Path

from repro.analysis import higgs
from repro.bench.tables import ComparisonTable, format_seconds
from repro.client.client import IPAClient
from repro.core.site import GridSite, SiteConfig

ENGINE_COUNTS = (4, 16, 64)
EVENTS_PER_WORKER = 1_000
MB_PER_WORKER = 30.0
QUIESCE_S = 15.0  # pause -> engines drain their current chunk
DOWNTIME_S = 5.0
OUT_JSON = Path(__file__).parent / "out" / "BENCH_recovery_service.json"


def run_once(n_workers):
    site = GridSite(SiteConfig(n_workers=n_workers))
    site.register_dataset(
        "ds",
        "/x/ds",
        size_mb=MB_PER_WORKER * n_workers,
        n_events=EVENTS_PER_WORKER * n_workers,
        content={"kind": "ilc", "seed": 9},
    )
    client = IPAClient(site, site.enroll_user("/CN=u"))
    out = {}

    def scenario():
        info = yield from client.obtain_proxy_and_connect(n_engines=n_workers)
        yield from client.select_dataset("ds")
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()
        # Mid-run: every engine has published at least one snapshot.
        while site.aida.snapshot_count(info.session_id) < n_workers:
            yield site.env.timeout(1.0)
        # Pause and let every engine drain its in-flight chunk, so the
        # pre-crash and post-recovery merged trees must be identical.
        yield from client.pause()
        yield site.env.timeout(QUIESCE_S)
        # One clean poll with every engine dirty — the yardstick.
        started = site.env.now
        before = yield from client.poll()
        out["poll_s"] = site.env.now - started
        out["before"] = before.tree.to_dict()
        site.injector.crash_services()
        yield site.env.timeout(DOWNTIME_S)
        started = site.env.now
        yield site.injector.restart_services()
        out["recovery_s"] = site.env.now - started
        yield from client.reconnect()
        after = yield from client.poll()
        out["after"] = after.tree.to_dict()
        yield from client.run()  # resume; close() below drains the session
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    return out


def sweep():
    rows = []
    for n_workers in ENGINE_COUNTS:
        result = run_once(n_workers)
        # Bit-identical restore: journal replay + checkpoint + keyframe
        # republication reconstructed exactly the pre-crash merge.
        assert result["after"] == result["before"], n_workers
        rows.append(
            {
                "engines": n_workers,
                "poll_s": result["poll_s"],
                "recovery_s": result["recovery_s"],
                "ratio": result["recovery_s"] / result["poll_s"],
            }
        )
    return rows


def test_service_recovery(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = ComparisonTable(
        "Manager-service cold-start recovery vs one all-dirty result poll "
        "(paused Higgs session, merged tree bit-identical across the crash)",
        ["engines", "clean poll", "recovery", "recovery / poll"],
    )
    for row in rows:
        table.add_row(
            str(row["engines"]),
            format_seconds(row["poll_s"]),
            format_seconds(row["recovery_s"]),
            f"{row['ratio']:.2f}x",
        )
    report("service_recovery", table.render())

    OUT_JSON.parent.mkdir(exist_ok=True)
    OUT_JSON.write_text(
        json.dumps(
            {
                "events_per_worker": EVENTS_PER_WORKER,
                "mb_per_worker": MB_PER_WORKER,
                "downtime_s": DOWNTIME_S,
                "rows": rows,
            },
            indent=2,
        )
    )

    # CI gate: cold-start recovery at 16 engines costs less than two
    # clean poll cycles (it is one SOAP round-trip + one merge pass, not
    # a session re-run).
    at_16 = next(row for row in rows if row["engines"] == 16)
    assert at_16["recovery_s"] < 2.0 * at_16["poll_s"], at_16
