"""§3.6 / §5 claim — dynamic code reload beats re-staging.

"In IPA, only a small amount of code needs to be re-distributed as the
user customizes and rapidly develops the analysis code" (§5).  We measure
one fine-tuning iteration three ways on the 471 MB workload:

* **reload**: hot-reload the (kB-scale) code bundle, rewind, rerun;
* **restage**: tear down and re-stage the whole dataset, then rerun
  (what a naive batch workflow would do);
* **local**: re-download and rerun locally (the no-grid baseline).
"""

import pytest

from repro.analysis import cuts
from repro.bench.tables import ComparisonTable, format_seconds
from repro.client.client import IPAClient
from repro.core.experiment import run_local_experiment
from repro.core.site import GridSite, SiteConfig

SIZE_MB = 471.0
NODES = 16


def grid_iteration_times():
    site = GridSite(SiteConfig(n_workers=NODES))
    site.register_dataset(
        "ds", "/x/ds", size_mb=SIZE_MB, n_events=4000,
        content={"kind": "ilc", "seed": 6},
    )
    client = IPAClient(site, site.enroll_user("/CN=u"))
    times = {}

    def scenario():
        env = site.env
        yield from client.obtain_proxy_and_connect()
        yield from client.select_dataset("ds")
        yield from client.upload_code(cuts.SOURCE, parameters={"min_energy": 0.0})
        yield from client.run()
        yield from client.wait_for_completion(poll_interval=2.0)

        # Iteration via hot reload: new cut, rewind, rerun.
        started = env.now
        yield from client.reload_code(parameters={"min_energy": 480.0})
        yield from client.rewind()
        yield from client.run()
        yield from client.wait_for_completion(poll_interval=2.0)
        times["reload"] = env.now - started

        # Iteration via full re-staging: move + split + scatter again,
        # then stage code and rerun.
        started = env.now
        staged = yield from client.select_dataset("ds")
        yield from client.upload_code(cuts.SOURCE, parameters={"min_energy": 490.0})
        yield from client.rewind()
        yield from client.run()
        yield from client.wait_for_completion(poll_interval=2.0)
        times["restage"] = env.now - started
        times["restage_staging"] = staged.stage_seconds
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    return times


def run_all():
    times = grid_iteration_times()
    local = run_local_experiment(SIZE_MB)
    times["local"] = local.total
    return times


def test_reload(benchmark, report):
    times = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = ComparisonTable(
        "One fine-tuning iteration on 471 MB (16 nodes)",
        ["approach", "iteration time"],
    )
    table.add_row("hot reload + rewind (IPA)", format_seconds(times["reload"]))
    table.add_row("full re-stage + rerun", format_seconds(times["restage"]))
    table.add_row("local re-download + rerun", format_seconds(times["local"]))
    report(
        "reload",
        table.render()
        + f"\nre-staging alone costs {format_seconds(times['restage_staging'])}"
        " of the second approach",
    )

    # The IPA iteration avoids all dataset movement.
    assert times["reload"] < times["restage"] - 100
    # And is an order of magnitude faster than the local workflow.
    assert times["reload"] < times["local"] / 10
    # Staging dominates the difference.
    assert times["restage"] - times["reload"] == pytest.approx(
        times["restage_staging"], rel=0.35
    )
