"""Concurrent-session serving: poll p99 must survive 1k+ sessions.

The async service container turns envelope dispatch into a bounded
request loop (finite dispatch slots, cooperative handlers), and the AIDA
manager coalesces concurrent polls of one session into a single
incremental merge.  This benchmark drives the serving plane at three
scales — 16 sessions (the paper's deployment), 256, and 1024 — with one
staggered poller per session, and gates two properties in CI:

* **p99 poll latency at 1024 sessions stays within a fixed factor of
  the 16-session baseline** (no head-of-line collapse: a thousand
  sessions queue for dispatch slots, they do not serialize behind each
  other's merges);
* **coalesced merged trees are bit-identical to per-client merges**:
  64 clients hammering one session through the coalescing path receive
  exactly the dict a lone uncoalesced client would, while the manager
  runs ~rounds merges instead of ~clients x rounds.

Everything is measured on the *simulated* clock, so the numbers are
deterministic; wall-clock noise cannot flake the gate.

Writes ``benchmarks/out/BENCH_concurrency.json``.
"""

import json
from pathlib import Path

from repro.aida.hist1d import Histogram1D
from repro.bench.tables import ComparisonTable
from repro.engine.engine import AnalysisEngine
from repro.services.aida_manager import AIDAManagerService
from repro.services.container import AsyncServiceContainer, ServiceProfile
from repro.sim import Environment

OUT_JSON = Path(__file__).parent / "out" / "BENCH_concurrency.json"

#: Session-count sweep: baseline, mid, and the 1k+ gate case.
CASES = (16, 256, 1024)
BASELINE = CASES[0]
GATE = CASES[-1]
POLL_ROUNDS = 5
POLL_INTERVAL_S = 5.0
#: Container profile for the aida service: a finite dispatch pool with a
#: per-request un-marshalling cost — the resource 1k pollers contend for.
CONCURRENCY = 8
DISPATCH_OVERHEAD_S = 0.002
MERGE_COST_S = 0.05
#: CI gate: p99 at 1024 sessions within this factor of 16 sessions.
P99_FACTOR = 5.0
#: Absolute interactivity backstop (the site SLO default is 0.25 s).
P99_ABS_S = 0.5

#: Coalescing case: many clients, one session.
N_CLIENTS = 64
COALESCE_ROUNDS = 3
COALESCE_WINDOW_S = 0.05


def _snapshot_for(session_index):
    """One deterministic single-engine snapshot per session."""
    engine = AnalysisEngine(f"e-{session_index}")
    engine.tree.put(
        "/bench/h", Histogram1D("h", bins=32, lower=0.0, upper=1.0)
    )
    hist = engine.tree.get("/bench/h")
    for k in range(16):
        # Seeded, session-distinct fill pattern (no RNG needed).
        hist.fill(((session_index * 31 + k * 7) % 100) / 100.0)
    return engine.take_snapshot()


def _build_plane(n_sessions):
    """A serving plane with *n_sessions* one-engine sessions preloaded."""
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=MERGE_COST_S)
    container = AsyncServiceContainer(env, soap_latency=0.25, rmi_latency=0.05)
    container.register(
        "aida",
        {
            "merged": lambda session_id, client_id=None: manager.merged(
                session_id, client_id=client_id
            )
        },
    )
    container.configure_service(
        "aida",
        ServiceProfile(
            concurrency=CONCURRENCY, dispatch_overhead_s=DISPATCH_OVERHEAD_S
        ),
    )
    container.issue_token("bench")
    for index in range(n_sessions):
        manager.submit_snapshot(f"s{index:05d}", _snapshot_for(index))
    return env, manager, container


def _poll_case(n_sessions):
    """One poller per session, phase-staggered; returns poll latencies."""
    env, manager, container = _build_plane(n_sessions)
    latencies = []

    def poller(index):
        # Spread arrivals across the poll interval, as real clients are.
        yield env.timeout(POLL_INTERVAL_S * index / n_sessions)
        for _ in range(POLL_ROUNDS):
            started = env.now
            yield container.call(
                "aida",
                "merged",
                {"session_id": f"s{index:05d}", "client_id": f"c{index:05d}"},
                channel="rmi",
                token="bench",
            )
            latencies.append(env.now - started)
            yield env.timeout(POLL_INTERVAL_S)

    for index in range(n_sessions):
        env.process(poller(index))
    env.run()
    assert len(latencies) == n_sessions * POLL_ROUNDS
    return latencies


def _p99(latencies):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


def _coalescing_case():
    """64 clients on one session: shared merges, bit-identical replies."""
    results = {}
    merge_counts = {}
    for mode, coalesce in (("coalesced", True), ("per_client", False)):
        env = Environment()
        manager = AIDAManagerService(
            env,
            merge_cost_per_tree=MERGE_COST_S,
            coalesce=coalesce,
            coalesce_window_s=COALESCE_WINDOW_S if coalesce else 0.0,
        )
        manager.submit_snapshot("shared", _snapshot_for(0))
        replies = []

        def poll(client_id, _manager=manager, _replies=replies):
            tree_dict, progress = yield _manager.merged(
                "shared", client_id=client_id
            )
            _replies.append(tree_dict)

        if coalesce:
            # All clients poll concurrently each round — the leader's
            # in-flight merge serves every joiner.
            def round_driver():
                for _ in range(COALESCE_ROUNDS):
                    polls = [
                        env.process(poll(f"c{i}")) for i in range(N_CLIENTS)
                    ]
                    yield env.all_of(polls)
                    yield env.timeout(POLL_INTERVAL_S)

            env.run(until=env.process(round_driver()))
        else:
            # Reference: every client merges for itself, sequentially.
            def round_driver():
                for _ in range(COALESCE_ROUNDS):
                    for i in range(N_CLIENTS):
                        yield env.process(poll(f"c{i}"))
                    yield env.timeout(POLL_INTERVAL_S)

            env.run(until=env.process(round_driver()))
        assert len(replies) == N_CLIENTS * COALESCE_ROUNDS
        # Within one run every reply is identical (nothing new lands
        # between rounds), so keep one exemplar per mode.
        assert all(reply == replies[0] for reply in replies)
        results[mode] = replies[0]
        merge_counts[mode] = len(manager.merge_log)
    return results, merge_counts


def sweep():
    p99s = {n: _p99(_poll_case(n)) for n in CASES}
    coalesce_trees, merge_counts = _coalescing_case()
    return p99s, coalesce_trees, merge_counts


def test_concurrent_sessions(benchmark, report):
    p99s, trees, merges = benchmark.pedantic(sweep, rounds=1, iterations=1)
    factor = p99s[GATE] / p99s[BASELINE]

    table = ComparisonTable(
        "Concurrent-session serving: staggered pollers, "
        f"{POLL_ROUNDS} polls each (simulated seconds)",
        ["sessions", "polls", "p99 poll latency", "vs 16-session baseline"],
    )
    for n in CASES:
        table.add_row(
            str(n),
            str(n * POLL_ROUNDS),
            f"{p99s[n] * 1000:.1f} ms",
            f"x{p99s[n] / p99s[BASELINE]:.2f}",
        )
    coalesced_merges = merges["coalesced"]
    per_client_merges = merges["per_client"]
    report(
        "concurrent_sessions",
        table.render()
        + f"\ncoalescing: {N_CLIENTS} clients x {COALESCE_ROUNDS} rounds -> "
        f"{coalesced_merges} merges (per-client reference: "
        f"{per_client_merges}); trees bit-identical: "
        f"{trees['coalesced'] == trees['per_client']}",
    )

    OUT_JSON.parent.mkdir(exist_ok=True)
    OUT_JSON.write_text(
        json.dumps(
            {
                "cases": list(CASES),
                "poll_rounds": POLL_ROUNDS,
                "poll_interval_s": POLL_INTERVAL_S,
                "container_concurrency": CONCURRENCY,
                "dispatch_overhead_s": DISPATCH_OVERHEAD_S,
                "p99_s": {str(n): p99s[n] for n in CASES},
                "p99_factor_vs_baseline": factor,
                "p99_factor_budget": P99_FACTOR,
                "p99_abs_budget_s": P99_ABS_S,
                "coalesce_clients": N_CLIENTS,
                "coalesce_rounds": COALESCE_ROUNDS,
                "coalesced_merges": coalesced_merges,
                "per_client_merges": per_client_merges,
                "trees_bit_identical": (
                    trees["coalesced"] == trees["per_client"]
                ),
            },
            indent=2,
        )
        + "\n"
    )

    # -- CI gates -------------------------------------------------------
    # Serving 1024 sessions must not collapse interactivity.
    assert factor <= P99_FACTOR, (
        f"p99 at {GATE} sessions is x{factor:.2f} the {BASELINE}-session "
        f"baseline (budget x{P99_FACTOR})"
    )
    assert p99s[GATE] <= P99_ABS_S
    # Coalesced replies are exactly the per-client merge, for far fewer
    # merges than clients x rounds.
    assert trees["coalesced"] == trees["per_client"]
    assert coalesced_merges < N_CLIENTS * COALESCE_ROUNDS / 4
    assert per_client_merges == N_CLIENTS * COALESCE_ROUNDS
