"""Incremental merge pipeline — poll latency and payload vs the old path.

The old result path re-deserialized and re-merged every engine's full
snapshot on every poll, and shipped every array as a JSON list.  The
incremental pipeline keeps deserialized per-engine trees at the manager,
accepts delta snapshots (changed objects only, full keyframes every N),
re-folds only dirty paths per poll, and encodes arrays with the compact
base64 codec.

This benchmark measures, at 4/16/64/256 engines, the steady-state case the
paper's interactive loop lives in: one engine publishes an update between
polls while the rest are idle.  It reports wall-clock poll latency and
per-update payload bytes for both paths, writes
``benchmarks/out/BENCH_merge.json``, and asserts the headline numbers
(>= 5x faster and >= 3x smaller at 64 engines) — this is the CI gate for
the incremental path.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.aida.codec import codec_disabled, payload_nbytes
from repro.aida.hist1d import Histogram1D
from repro.bench.tables import ComparisonTable
from repro.engine.engine import AnalysisEngine
from repro.services.aida_manager import AIDAManagerService
from repro.sim import Environment

ENGINE_COUNTS = (4, 16, 64, 256)
HISTS_PER_TREE = 16
BINS = 200
ROUNDS = 3
OUT_JSON = Path(__file__).parent / "out" / "BENCH_merge.json"


def build_engines(n_engines, delta, seed=12):
    rng = np.random.default_rng(seed)
    engines = []
    for i in range(n_engines):
        engine = AnalysisEngine(
            f"e{i:03d}", delta_snapshots=delta, keyframe_every=8
        )
        for h in range(HISTS_PER_TREE):
            hist = Histogram1D(f"h{h}", bins=BINS, lower=0.0, upper=1.0)
            hist.fill_array(rng.random(200), rng.random(200))
            engine.tree.put(f"/bench/h{h}", hist)
        engines.append(engine)
    return engines


def measure(n_engines, incremental):
    """One configuration: returns (best poll seconds, payload bytes/update)."""
    env = Environment()
    manager = AIDAManagerService(
        env, merge_cost_per_tree=0.0, incremental=incremental
    )
    engines = build_engines(n_engines, delta=incremental)
    rng = np.random.default_rng(34)

    def publish(engine):
        snapshot = engine.take_snapshot()
        manager.submit_snapshot("s1", snapshot)
        return payload_nbytes(snapshot.tree)

    # Warm-up: every engine reports once (full snapshots), one poll to
    # build the caches on the incremental path.
    for engine in engines:
        publish(engine)
    env.run(until=manager.merged("s1"))

    # Steady state: one engine updates one histogram between polls.
    latencies, payloads = [], []
    for round_no in range(ROUNDS):
        engine = engines[round_no % n_engines]
        engine.tree.get("/bench/h0").fill_array(rng.random(50), rng.random(50))
        payloads.append(publish(engine))
        started = time.perf_counter()
        tree_dict, _ = env.run(until=manager.merged("s1"))
        latencies.append(time.perf_counter() - started)
    assert len(tree_dict["objects"]) == HISTS_PER_TREE
    return min(latencies), sum(payloads) / len(payloads)


def run_matrix():
    results = {}
    for n_engines in ENGINE_COUNTS:
        with codec_disabled():
            old_s, old_bytes = measure(n_engines, incremental=False)
        new_s, new_bytes = measure(n_engines, incremental=True)
        results[n_engines] = {
            "old": {"poll_seconds": old_s, "payload_bytes": old_bytes},
            "new": {"poll_seconds": new_s, "payload_bytes": new_bytes},
            "latency_ratio": old_s / new_s,
            "payload_ratio": old_bytes / new_bytes,
        }
    return results


def test_incremental_merge_speedup(benchmark, report):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    table = ComparisonTable(
        f"Steady-state poll (1 of N engines dirty, {HISTS_PER_TREE} "
        f"hists x {BINS} bins per tree, min of {ROUNDS})",
        [
            "engines",
            "old poll",
            "new poll",
            "speedup",
            "old payload",
            "new payload",
            "shrink",
        ],
    )
    for n_engines, row in results.items():
        table.add_row(
            n_engines,
            f"{row['old']['poll_seconds'] * 1000:.2f} ms",
            f"{row['new']['poll_seconds'] * 1000:.2f} ms",
            f"{row['latency_ratio']:.1f}x",
            f"{row['old']['payload_bytes'] / 1024:.1f} kB",
            f"{row['new']['payload_bytes'] / 1024:.1f} kB",
            f"{row['payload_ratio']:.1f}x",
        )
    report("incremental_merge", table.render())

    OUT_JSON.parent.mkdir(exist_ok=True)
    OUT_JSON.write_text(
        json.dumps(
            {
                "hists_per_tree": HISTS_PER_TREE,
                "bins": BINS,
                "rounds": ROUNDS,
                "engines": {str(k): v for k, v in results.items()},
            },
            indent=2,
        )
        + "\n"
    )

    # CI gate: the incremental path must never lose to from-scratch at
    # scale, and the headline claims must hold.
    gate = results[64]
    assert gate["latency_ratio"] > 1.0, (
        f"incremental poll slower than from-scratch at 64 engines: "
        f"{gate['latency_ratio']:.2f}x"
    )
    assert gate["latency_ratio"] >= 5.0, (
        f"expected >= 5x poll speedup at 64 engines, got "
        f"{gate['latency_ratio']:.1f}x"
    )
    assert gate["payload_ratio"] >= 3.0, (
        f"expected >= 3x payload shrink at 64 engines, got "
        f"{gate['payload_ratio']:.1f}x"
    )
