"""Unit tests for the timeline tracer."""

import pytest

from repro.core.timeline import Span, Timeline
from repro.sim import Environment


def test_begin_end_records_span():
    env = Environment()
    timeline = Timeline(env)

    def proc():
        timeline.begin("phase")
        yield env.timeout(5.0)
        span = timeline.end("phase")
        assert span.duration == pytest.approx(5.0)

    env.run(until=env.process(proc()))
    assert len(timeline) == 1
    assert timeline.spans[0].name == "phase"


def test_double_begin_rejected():
    timeline = Timeline(Environment())
    timeline.begin("x")
    with pytest.raises(ValueError, match="already open"):
        timeline.begin("x")


def test_end_without_begin_rejected():
    timeline = Timeline(Environment())
    with pytest.raises(ValueError, match="never opened"):
        timeline.end("ghost")


def test_lanes_disambiguate_same_name():
    env = Environment()
    timeline = Timeline(env)
    timeline.begin("work", lane="a")
    timeline.begin("work", lane="b")
    timeline.end("work", lane="a")
    timeline.end("work", lane="b")
    assert len(timeline) == 2


def test_context_manager():
    env = Environment()
    timeline = Timeline(env)
    with timeline.span("setup"):
        pass
    assert timeline.spans[0].duration == 0.0


def test_record_and_total():
    timeline = Timeline(Environment())
    timeline.record("io", 0.0, 3.0)
    timeline.record("io", 5.0, 7.0)
    timeline.record("cpu", 3.0, 5.0)
    assert timeline.total("io") == pytest.approx(5.0)
    assert timeline.total("cpu") == pytest.approx(2.0)
    assert timeline.total("ghost") == 0.0
    with pytest.raises(ValueError):
        timeline.record("bad", 5.0, 1.0)


def test_render_gantt():
    timeline = Timeline(Environment())
    timeline.record("fetch", 0.0, 60.0)
    timeline.record("split", 60.0, 180.0)
    timeline.record("analysis", 180.0, 260.0)
    text = timeline.render(width=40)
    lines = text.splitlines()
    assert "timeline:" in lines[0]
    assert len(lines) == 4
    # Bars appear in chronological order and are non-empty.
    for line in lines[1:]:
        assert "#" in line
    # The later phase's bar starts further right.
    assert lines[2].index("#") > lines[1].index("#")
    assert lines[3].index("#") > lines[2].index("#")


def test_render_empty():
    assert "(empty" in Timeline(Environment()).render()


def test_span_dataclass():
    span = Span("x", 1.0, 4.0)
    assert span.duration == 3.0
