"""Property: chaos never changes the physics, only the wall clock.

Seeded interleavings of site partitions, brokered failovers, heals, and
replica migrations are thrown at a federated session; whatever path the
session takes across sites, the merged AIDA tree must stay bit-identical
(exact dict equality) to the single-site reference run.
"""

import random

import pytest

from repro.analysis import higgs
from repro.client import IPAClient
from repro.core import GridSite, SiteConfig
from repro.federation import FederatedClient, Federation

DS = "ilc-chaos"
SIZE_MB = 40.0
N_EVENTS = 4_000
CONTENT = {"kind": "ilc", "seed": 11}

_reference_cache = {}


def small_config():
    return SiteConfig(n_workers=4)


def reference_tree():
    """Single-site merged tree (computed once per test run)."""
    if "tree" not in _reference_cache:
        site = GridSite(small_config())
        site.register_dataset(
            DS,
            "/chaos",
            size_mb=SIZE_MB,
            n_events=N_EVENTS,
            content=CONTENT,
            origin_host=None,
        )
        client = IPAClient(site, site.enroll_user("/O=ILC/CN=ref"))
        out = {}

        def scenario():
            yield from client.obtain_proxy_and_connect(dataset_hint=DS)
            yield from client.select_dataset(DS)
            yield from client.upload_code(higgs.SOURCE)
            yield from client.run()
            final = yield from client.wait_for_completion(poll_interval=5.0)
            out["tree"] = final.tree.to_dict()
            yield from client.close()

        site.env.run(until=site.env.process(scenario()))
        _reference_cache["tree"] = out["tree"]
    return _reference_cache["tree"]


@pytest.mark.parametrize("seed", range(6))
def test_chaos_interleaving_keeps_tree_bit_identical(seed):
    rng = random.Random(seed)
    n_sites = rng.choice([2, 3])
    fed = Federation(n_sites=n_sites, site_config=small_config())
    fed.register_dataset(
        DS,
        "/chaos",
        size_mb=SIZE_MB,
        n_events=N_EVENTS,
        content=CONTENT,
        home="site1",
    )
    client = FederatedClient(fed, fed.enroll_user("/O=ILC/CN=chaos"))
    partition_delay = rng.uniform(1.0, 30.0)
    heal_after = rng.uniform(15.0, 60.0)
    victim = rng.choice(fed.site_names)
    out = {}

    def chaos():
        yield fed.env.timeout(partition_delay)
        fed.partition_site(victim)
        yield fed.env.timeout(heal_after)
        fed.heal_site(victim)

    def scenario():
        # Replicate first so a failover target always has the data; the
        # chaos clock only starts once the second copy is in place.
        yield from fed.policy.ensure_pinned(DS, 2)
        fed.env.process(chaos())
        yield from client.connect(dataset_hint=DS)
        out["route"] = [client.site_name]
        yield from client.select_dataset(DS)
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=5.0)
        out["route"].append(client.site_name)
        out["tree"] = final.tree.to_dict()
        yield from client.close()

    fed.run(until=fed.env.process(scenario()))

    assert out["tree"] == reference_tree()
    stats = fed.stats()
    if victim == out["route"][0] and out["route"][0] != out["route"][1]:
        assert stats["failovers"] >= 1
    # the partition healed, so the fabric ends fully available
    assert not any(row["partitioned"] for row in stats["sites"])


@pytest.mark.parametrize("seed", [100, 101])
def test_chaos_migration_after_heal_stays_warm_and_identical(seed):
    """Post-heal sessions at a migrated site reuse the copy (no new WAN)."""
    rng = random.Random(seed)
    fed = Federation(n_sites=2, site_config=small_config())
    fed.register_dataset(
        DS,
        "/chaos",
        size_mb=SIZE_MB,
        n_events=N_EVENTS,
        content=CONTENT,
        home="site1",
    )
    out = {}

    def scenario():
        yield from fed.policy.ensure_resident(DS, "site2")
        fed.partition_site("site1")
        yield fed.env.timeout(rng.uniform(1.0, 10.0))
        fed.heal_site("site1")
        client = FederatedClient(fed, fed.enroll_user("/O=ILC/CN=late"))
        yield from client.connect(dataset_hint=DS, site="site2")
        staged = yield from client.select_dataset(DS)
        out["fetch_skipped"] = staged.fetch_skipped
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=5.0)
        out["tree"] = final.tree.to_dict()
        yield from client.close()

    fed.run(until=fed.env.process(scenario()))

    assert out["fetch_skipped"] is True
    assert out["tree"] == reference_tree()
    assert fed.stats()["migrations"] == 1
