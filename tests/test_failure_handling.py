"""Failure-injection and fault-propagation tests across the stack."""

import pytest

from repro.analysis import counting
from repro.client.client import ClientError, IPAClient
from repro.core.site import GridSite, SiteConfig
from repro.engine.sandbox import load_analysis
from repro.services.envelope import Fault


CRASHING_SOURCE = '''
class Crasher(Analysis):
    name = "crasher"

    def start(self, tree):
        tree.put("/h", Histogram1D("h", bins=2, lower=0, upper=1))

    def process_batch(self, batch, tree):
        raise RuntimeError("user code exploded")
'''

NUMPY_INTERNALS_SOURCE = '''
class UsesNumpyInternals(Analysis):
    """ndarray.sum() lazily imports numpy._core._methods from our frame."""

    name = "numpy-internals"

    def start(self, tree):
        tree.put("/h", Histogram1D("h", bins=2, lower=0, upper=2000))

    def process_batch(self, batch, tree):
        tree.get("/h").fill(float(batch.e.sum() * 0 + 1.0))
        tree.get("/h").fill(float(np.dot(batch.e, batch.e) * 0 + 1.0))
'''


def build(n_workers=2):
    site = GridSite(SiteConfig(n_workers=n_workers))
    site.register_dataset(
        "ds", "/t/ds", size_mb=20.0, n_events=1000,
        content={"kind": "ilc", "seed": 1},
    )
    client = IPAClient(site, site.enroll_user("/CN=alice"))
    return site, client


def drive(site, generator):
    return site.env.run(until=site.env.process(generator))


def test_sandbox_allows_numpy_lazy_internal_imports():
    """Regression: numpy's lazy self-imports must pass the sandbox.

    In a fresh process, ``ndarray.sum()`` triggers
    ``import numpy._core._methods`` with the *sandboxed* ``__import__``
    in scope; blocking it crashed every engine silently.
    """
    import subprocess
    import sys

    code = (
        "from repro.engine.sandbox import load_analysis\n"
        "from repro.aida.tree import ObjectTree\n"
        "from repro.dataset.generator import ILCEventGenerator\n"
        f"analysis = load_analysis({NUMPY_INTERNALS_SOURCE!r})\n"
        "tree = ObjectTree()\n"
        "analysis.start(tree)\n"
        "analysis.process_batch(ILCEventGenerator(seed=1).generate(10), tree)\n"
        "assert tree.get('/h').entries == 2\n"
        "print('ok')\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr
    assert "ok" in result.stdout


def test_sandbox_still_blocks_dangerous_roots():
    source = '''
class Sneaky(Analysis):
    def start(self, tree):
        import numpy.linalg  # fine: numpy subtree
        import os            # must be blocked
'''
    from repro.aida.tree import ObjectTree
    from repro.engine.sandbox import SandboxError

    analysis = load_analysis(source)
    with pytest.raises(SandboxError, match="'os' not allowed"):
        analysis.start(ObjectTree())


def test_crashing_analysis_fails_fast_at_client():
    """A dead engine must surface as an error, not an infinite poll loop."""
    site, client = build()

    def scenario():
        yield from client.obtain_proxy_and_connect()
        yield from client.select_dataset("ds")
        yield from client.upload_code(CRASHING_SOURCE)
        yield from client.run()
        with pytest.raises(ClientError, match="user code exploded"):
            yield from client.wait_for_completion(poll_interval=5.0)

    drive(site, scenario())


def test_status_reports_failed_jobs():
    site, client = build()

    def scenario():
        yield from client.obtain_proxy_and_connect()
        yield from client.select_dataset("ds")
        yield from client.upload_code(CRASHING_SOURCE)
        yield from client.run()
        yield site.env.timeout(200.0)
        summary = yield from client.status()
        assert summary["job_states"].count("failed") == 2
        assert "user code exploded" in summary["failures"][0]["error"]

    drive(site, scenario())


def test_healthy_run_reports_no_failures():
    site, client = build()

    def scenario():
        yield from client.obtain_proxy_and_connect()
        yield from client.select_dataset("ds")
        yield from client.upload_code(counting.SOURCE)
        yield from client.run()
        yield from client.wait_for_completion(poll_interval=5.0)
        summary = yield from client.status()
        assert summary["failures"] == []
        assert set(summary["job_states"]) == {"running"}
        yield from client.close()

    drive(site, scenario())


def test_injected_service_fault_reaches_client():
    site, client = build()
    site.container.inject_fault(
        "session", "add_dataset", Fault("splitter offline")
    )

    def scenario():
        yield from client.obtain_proxy_and_connect()
        with pytest.raises(Fault, match="splitter offline"):
            yield from client.select_dataset("ds")
        # Clearing the fault restores service.
        site.container.clear_fault("session", "add_dataset")
        staged = yield from client.select_dataset("ds")
        assert staged.dataset_id == "ds"
        yield from client.close()

    drive(site, scenario())


def test_unknown_dataset_fault():
    site, client = build()

    def scenario():
        yield from client.obtain_proxy_and_connect()
        with pytest.raises(Exception, match="unknown dataset"):
            yield from client.select_dataset("ghost-dataset")
        yield from client.close()

    drive(site, scenario())


def test_expired_proxy_rejected_at_connect():
    site, client = build()

    def scenario():
        client.obtain_proxy(lifetime=10.0)
        yield site.env.timeout(20.0)
        with pytest.raises(Exception, match="expired"):
            yield from client.connect()

    drive(site, scenario())


def test_session_close_after_failure_cleans_up():
    site, client = build()

    def scenario():
        yield from client.obtain_proxy_and_connect()
        yield from client.select_dataset("ds")
        yield from client.upload_code(CRASHING_SOURCE)
        yield from client.run()
        yield site.env.timeout(200.0)
        yield from client.close()

    drive(site, scenario())
    assert site.scheduler.idle_worker_count == 2


def test_run_before_staging_fails_fast():
    """Pressing run with nothing staged kills the engines visibly."""
    site, client = build()

    def scenario():
        yield from client.obtain_proxy_and_connect()
        yield from client.run()  # no dataset, no code
        yield site.env.timeout(30.0)
        summary = yield from client.status()
        assert summary["job_states"].count("failed") == 2
        assert "no dataset" in summary["failures"][0]["error"]

    drive(site, scenario())
