"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=42.5)
    assert env.now == 42.5


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(3.0)

    env.process(proc())
    env.run()
    assert env.now == 3.0


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeout_value_returned():
    env = Environment()
    results = []

    def proc():
        value = yield env.timeout(1, value="hello")
        results.append(value)

    env.process(proc())
    env.run()
    assert results == ["hello"]


def test_sequential_timeouts_accumulate():
    env = Environment()
    times = []

    def proc():
        yield env.timeout(1)
        times.append(env.now)
        yield env.timeout(2)
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [1, 3]


def test_run_until_time():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(1)

    env.process(proc())
    env.run(until=5)
    assert env.now == 5


def test_run_until_time_in_past_rejected():
    env = Environment(initial_time=10)
    with pytest.raises(ValueError):
        env.run(until=5)


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(2)
        return "done"

    result = env.run(until=env.process(proc()))
    assert result == "done"
    assert env.now == 2


def test_run_until_already_processed_event():
    env = Environment()

    def gen():
        yield env.timeout(1)

    proc = env.process(gen())
    env.run()
    assert env.run(until=proc) is None  # returns immediately


def test_run_until_untriggered_event_with_empty_schedule():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_process_waits_for_process():
    env = Environment()
    log = []

    def child():
        yield env.timeout(3)
        return 21

    def parent():
        value = yield env.process(child())
        log.append((env.now, value * 2))

    env.process(parent())
    env.run()
    assert log == [(3, 42)]


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    log = []

    def waiter():
        value = yield ev
        log.append(value)

    def firer():
        yield env.timeout(5)
        ev.succeed("fired")

    env.process(waiter())
    env.process(firer())
    env.run()
    assert log == ["fired"]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_failed_event_raises_in_waiting_process():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def firer():
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    env.process(waiter())
    env.process(firer())
    env.run()
    assert caught == ["boom"]


def test_unhandled_failed_event_crashes_simulation():
    env = Environment()

    def firer():
        yield env.timeout(1)
        env.event().fail(ValueError("unhandled"))

    env.process(firer())
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_defused_failure_does_not_crash():
    env = Environment()
    ev = env.event()
    ev.fail(ValueError("x"))
    ev.defused()
    env.run()  # no exception


def test_process_crash_propagates_to_parent():
    env = Environment()

    def child():
        yield env.timeout(1)
        raise RuntimeError("child failed")

    def parent():
        with pytest.raises(RuntimeError, match="child failed"):
            yield env.process(child())

    env.run(until=env.process(parent()))


def test_process_crash_without_waiter_crashes_run():
    env = Environment()

    def boom():
        yield env.timeout(1)
        raise RuntimeError("nobody catches this")

    env.process(boom())
    with pytest.raises(RuntimeError, match="nobody catches"):
        env.run()


def test_yield_non_event_fails_process():
    env = Environment()

    def bad():
        yield 42

    proc = env.process(bad())
    with pytest.raises(SimulationError):
        env.run()
    assert isinstance(proc.exception, SimulationError)


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(10)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def attacker(proc):
        yield env.timeout(3)
        proc.interrupt("stop now")

    victim_proc = env.process(victim())
    env.process(attacker(victim_proc))
    env.run()
    assert log == [(3, "stop now")]


def test_interrupt_terminated_process_rejected():
    env = Environment()

    def gen():
        yield env.timeout(1)

    proc = env.process(gen())
    env.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_self_interrupt_rejected():
    env = Environment()

    def proc():
        with pytest.raises(RuntimeError):
            env.active_process.interrupt()
        yield env.timeout(0)

    env.run(until=env.process(proc()))


def test_interrupted_process_can_continue():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(10)
        except Interrupt:
            pass
        yield env.timeout(1)
        log.append(env.now)

    def attacker(proc):
        yield env.timeout(2)
        proc.interrupt()

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert log == [3]


def test_is_alive_lifecycle():
    env = Environment()

    def gen():
        yield env.timeout(5)

    proc = env.process(gen())
    assert proc.is_alive
    env.run()
    assert not proc.is_alive
    assert proc.ok


def test_all_of_waits_for_all():
    env = Environment()
    log = []

    def proc():
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(5, value="b")
        result = yield AllOf(env, [t1, t2])
        log.append((env.now, result.values()))

    env.process(proc())
    env.run()
    assert log == [(5, ["a", "b"])]


def test_any_of_fires_on_first():
    env = Environment()
    log = []

    def proc():
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(5, value="slow")
        result = yield AnyOf(env, [t1, t2])
        log.append((env.now, result.values()))

    env.process(proc())
    env.run()
    assert log == [(1, ["fast"])]


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc():
        result = yield env.all_of([])
        return len(result)

    assert env.run(until=env.process(proc())) == 0


def test_condition_value_mapping_interface():
    env = Environment()

    def proc():
        t1 = env.timeout(1, value="x")
        result = yield env.all_of([t1])
        assert t1 in result
        assert result[t1] == "x"
        assert len(result) == 1
        assert list(result) == [t1]
        return True

    assert env.run(until=env.process(proc()))


def test_condition_fails_if_member_fails():
    env = Environment()
    ev = env.event()

    def proc():
        with pytest.raises(ValueError):
            yield env.all_of([ev, env.timeout(10)])

    def firer():
        yield env.timeout(1)
        ev.fail(ValueError("member failed"))

    env.process(firer())
    env.run(until=env.process(proc()))


def test_deterministic_fifo_ordering_at_same_time():
    env = Environment()
    order = []

    def proc(name):
        yield env.timeout(1)
        order.append(name)

    for name in "abcde":
        env.process(proc(name))
    env.run()
    assert order == list("abcde")


def test_peek_returns_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(7)
    assert env.peek() == 7


def test_event_value_unavailable_before_trigger():
    env = Environment()
    ev = env.event()
    with pytest.raises(AttributeError):
        _ = ev.value
    with pytest.raises(AttributeError):
        _ = ev.ok


def test_trigger_copies_state():
    env = Environment()
    src = env.event().succeed("payload")
    dst = env.event()
    dst.trigger(src)
    assert dst.ok and dst.value == "payload"


def test_exception_property():
    env = Environment()
    exc = ValueError("e")
    ev = env.event()
    ev.fail(exc)
    ev.defused()
    assert ev.exception is exc
    ok = env.event().succeed(1)
    assert ok.exception is None


def test_nested_processes_three_deep():
    env = Environment()

    def level3():
        yield env.timeout(1)
        return 3

    def level2():
        value = yield env.process(level3())
        yield env.timeout(1)
        return value + 2

    def level1():
        value = yield env.process(level2())
        return value + 1

    assert env.run(until=env.process(level1())) == 6
    assert env.now == 2


def test_process_non_generator_rejected():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_timeout_repr_and_event_repr():
    env = Environment()
    assert "Timeout(3" in repr(env.timeout(3))
    assert "Event" in repr(env.event())


def test_many_processes_complete():
    env = Environment()
    done = []

    def proc(i):
        yield env.timeout(i % 7)
        done.append(i)

    for i in range(200):
        env.process(proc(i))
    env.run()
    assert sorted(done) == list(range(200))
    assert env.now == 6


def test_any_of_with_prefailed_event():
    env = Environment()
    failed = env.event()
    failed.fail(ValueError("pre-failed"))
    failed.defused()
    env.run()  # process the failure

    def proc():
        with pytest.raises(ValueError, match="pre-failed"):
            yield AnyOf(env, [failed, env.timeout(5)])

    env.run(until=env.process(proc()))


def test_all_of_with_already_processed_success():
    env = Environment()
    done = env.event().succeed("early")
    env.run()

    def proc():
        result = yield AllOf(env, [done, env.timeout(1, value="late")])
        return result.values()

    values = env.run(until=env.process(proc()))
    assert values == ["early", "late"]


def test_trigger_copies_failure_state():
    env = Environment()
    src = env.event()
    src.fail(ValueError("original"))
    src.defused()
    dst = env.event()
    dst.trigger(src)
    dst.defused()
    env.run()
    assert dst.ok is False
    assert str(dst.exception) == "original"
