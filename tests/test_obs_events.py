"""Structured event log: bounds, subscriptions, JSONL export, null contract."""

import pytest

from repro.obs import NULL_OBS
from repro.obs.events import (
    EVENT_KINDS,
    NULL_EVENT_LOG,
    SEVERITIES,
    Event,
    EventLog,
    events_from_jsonl,
    render_events,
)


class Clock:
    """Minimal ``env`` stand-in: the log only reads ``.now``."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now


def test_emit_stamps_clock_and_sequences():
    clock = Clock()
    log = EventLog(clock)
    first = log.emit("session_created", message="s-1 up", session="s-1")
    clock.now = 2.5
    second = log.emit("slo_breach", severity="warning")
    assert (first.seq, first.time) == (1, 0.0)
    assert (second.seq, second.time) == (2, 2.5)
    assert first.attrs == {"session": "s-1"}
    assert [e.kind for e in log.events()] == ["session_created", "slo_breach"]
    assert len(log) == 2


def test_kind_is_positional_only_so_attrs_may_be_named_kind():
    # Checkpoint events carry a ``kind`` *attribute* (journal/snapshot);
    # it must land in attrs, not collide with the event kind parameter.
    log = EventLog(Clock())
    event = log.emit("checkpoint_committed", severity="debug", kind="journal")
    assert event.kind == "checkpoint_committed"
    assert event.attrs == {"kind": "journal"}


def test_capacity_bound_drops_oldest_but_counts_survive():
    log = EventLog(Clock(), capacity=3)
    for index in range(10):
        log.emit("fault_injected", index=index)
    assert len(log) == 3
    assert log.dropped == 7
    assert [e.attrs["index"] for e in log.events()] == [7, 8, 9]
    # All-time per-kind counts are not bounded by the retention window.
    assert log.counts() == {"fault_injected": 10}


def test_capacity_and_severity_validation():
    with pytest.raises(ValueError):
        EventLog(Clock(), capacity=0)
    log = EventLog(Clock())
    with pytest.raises(ValueError):
        log.emit("session_created", severity="fatal")


def test_query_filters_and_tail():
    clock = Clock()
    log = EventLog(clock)
    log.emit("session_created")
    clock.now = 5.0
    log.emit("fault_detected", severity="error")
    log.emit("slo_breach", severity="warning")
    assert [e.kind for e in log.events(kind="slo_breach")] == ["slo_breach"]
    assert [e.kind for e in log.events(severity="error")] == ["fault_detected"]
    assert [e.kind for e in log.events(since=5.0)] == [
        "fault_detected",
        "slo_breach",
    ]
    assert [e.kind for e in log.tail(2)] == ["fault_detected", "slo_breach"]
    assert log.tail(0) == []


def test_subscribe_kind_filter_and_unsubscribe():
    log = EventLog(Clock())
    seen, breaches = [], []
    unsubscribe_all = log.subscribe(seen.append)
    unsubscribe_breach = log.subscribe(breaches.append, kind="slo_breach")
    log.emit("session_created")
    log.emit("slo_breach", severity="warning")
    unsubscribe_breach()
    unsubscribe_breach()  # idempotent
    log.emit("slo_breach", severity="warning")
    assert [e.kind for e in seen] == [
        "session_created",
        "slo_breach",
        "slo_breach",
    ]
    assert len(breaches) == 1
    unsubscribe_all()
    log.emit("session_closed")
    assert len(seen) == 3


def test_subscribers_fire_before_eviction():
    log = EventLog(Clock(), capacity=1)
    seen = []
    log.subscribe(seen.append)
    log.emit("fault_injected", index=0)
    log.emit("fault_injected", index=1)
    assert [e.attrs["index"] for e in seen] == [0, 1]
    assert len(log) == 1


def test_jsonl_round_trip():
    clock = Clock(1.25)
    log = EventLog(clock)
    log.emit(
        "engine_quarantined",
        message="e3 gone silent",
        severity="warning",
        engine="e3",
        silence_s=12.5,
    )
    log.emit("checkpoint_committed", severity="debug", kind="snapshot")
    restored = events_from_jsonl(log.to_jsonl())
    assert restored == log.events()
    assert isinstance(restored[0], Event)
    assert restored[0].attrs == {"engine": "e3", "silence_s": 12.5}
    assert events_from_jsonl("") == []


def test_render_events():
    log = EventLog(Clock(3.0))
    log.emit(
        "straggler_detected", message="e5 slow", severity="warning", engine="e5"
    )
    text = render_events(log.events())
    assert "straggler_detected" in text
    assert "e5 slow" in text
    assert "engine=e5" in text
    assert render_events([]) == "(no events)"
    assert len(render_events(log.tail(10), limit=1).splitlines()) == 1


def test_event_vocabulary_is_pinned():
    # Additions to the instrumentation vocabulary are deliberate API
    # changes — update this pin alongside the emitting call site.
    assert EVENT_KINDS == (
        "session_created",
        "session_closed",
        "session_admitted",
        "admission_rejected",
        "fault_injected",
        "fault_detected",
        "engine_quarantined",
        "engine_redispatched",
        "replica_evicted",
        "replica_invalidated",
        "transfer_failed",
        "gram_unavailable",
        "checkpoint_committed",
        "service_crash",
        "service_recovered",
        "tier_configured",
        "combiner_crash",
        "combiner_retired",
        "slo_breach",
        "slo_recovered",
        "straggler_detected",
        "straggler_recovered",
        "federation_session_brokered",
        "federation_failover",
        "federation_replica_migrated",
        "federation_replica_evicted",
        "site_partitioned",
        "site_healed",
    )
    assert SEVERITIES == ("debug", "info", "warning", "error")


def test_null_event_log_is_inert():
    null = NULL_OBS.events
    assert null is NULL_EVENT_LOG
    assert null.enabled is False
    assert null.emit("slo_breach", message="x", severity="warning", a=1) is None
    assert null.subscribe(lambda e: None)() is None
    assert null.events() == []
    assert null.tail() == []
    assert null.counts() == {}
    assert null.to_jsonl() == ""
    assert len(null) == 0
