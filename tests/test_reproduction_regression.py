"""Regression guard: the headline paper numbers, inside the fast test suite.

The benchmarks regenerate the full tables; these tests pin the calibrated
endpoints so a refactor that silently shifts the timing model fails
``pytest tests/`` immediately.
"""

import pytest

from repro.core.experiment import run_grid_experiment, run_local_experiment


@pytest.fixture(scope="module")
def grid16():
    return run_grid_experiment(471.0, 16, events_per_mb=2, collect_tree=False)


@pytest.fixture(scope="module")
def grid1():
    return run_grid_experiment(471.0, 1, events_per_mb=2, collect_tree=False)


@pytest.fixture(scope="module")
def local():
    return run_local_experiment(471.0)


def test_local_total_45_minutes(local):
    assert local.total == pytest.approx(45 * 60, rel=0.02)


def test_local_download_32_minutes(local):
    assert local.download == pytest.approx(32 * 60, rel=0.02)


def test_local_analysis_13_minutes(local):
    assert local.analysis == pytest.approx(13 * 60, rel=0.02)


def test_grid16_staging_columns(grid16):
    assert grid16.move_whole == pytest.approx(63, rel=0.03)
    assert grid16.split == pytest.approx(120, rel=0.05)
    assert grid16.move_parts == pytest.approx(50, rel=0.05)
    assert grid16.stage_code == pytest.approx(7, abs=1.0)


def test_grid_analysis_endpoints(grid1, grid16):
    assert grid1.analysis == pytest.approx(330, rel=0.05)
    assert grid16.analysis == pytest.approx(78, rel=0.08)


def test_grid_beats_local_decisively(local, grid16):
    speedup = local.total / grid16.total
    assert 6.0 < speedup < 12.0  # paper: ~10x


def test_crossover_region(local, grid16):
    """Local wins tiny datasets; grid wins by ~20 MB at 16 nodes."""
    small_local = run_local_experiment(5.0)
    small_grid = run_grid_experiment(5.0, 16, events_per_mb=2, collect_tree=False)
    assert small_local.total < small_grid.total
    mid_local = run_local_experiment(25.0)
    mid_grid = run_grid_experiment(25.0, 16, events_per_mb=2, collect_tree=False)
    assert mid_grid.total < mid_local.total
