"""Unit tests for the AnalysisEngine and the real-CPU runners."""

import numpy as np
import pytest

from repro.analysis.counting import EventCounterAnalysis
from repro.analysis.higgs import HiggsSearchAnalysis
from repro.dataset.format import write_dataset
from repro.dataset.generator import ILCEventGenerator
from repro.engine.base import AnalysisError
from repro.engine.controls import ControlState
from repro.engine.engine import AnalysisEngine
from repro.engine.runner import run_local, run_parallel
from repro.engine.sandbox import CodeBundle
from repro.analysis import higgs as higgs_module


@pytest.fixture(scope="module")
def batch():
    return ILCEventGenerator(seed=101).generate(2000)


def make_engine(batch, chunk=300, snapshot_every=1):
    engine = AnalysisEngine(
        "engine-0", chunk_events=chunk, snapshot_every_chunks=snapshot_every
    )
    engine.load_data(batch)
    engine.load_analysis(EventCounterAnalysis())
    return engine


def test_engine_validation():
    with pytest.raises(ValueError):
        AnalysisEngine("e", chunk_events=0)
    with pytest.raises(ValueError):
        AnalysisEngine("e", snapshot_every_chunks=0)


def test_engine_requires_staging(batch):
    engine = AnalysisEngine("e")
    with pytest.raises(AnalysisError, match="no dataset"):
        engine.process_chunk()
    engine.load_data(batch)
    with pytest.raises(AnalysisError, match="no analysis"):
        engine.process_chunk()


def test_engine_idle_until_run(batch):
    engine = make_engine(batch)
    result = engine.process_chunk()
    assert result.events == 0
    assert result.state == ControlState.IDLE
    assert engine.cursor == 0


def test_engine_processes_chunks(batch):
    engine = make_engine(batch, chunk=300)
    engine.controller.run()
    result = engine.process_chunk()
    assert result.events == 300
    assert engine.cursor == 300
    assert not result.done
    assert result.snapshot is not None
    assert result.snapshot.events_processed == 300


def test_engine_completes_dataset(batch):
    engine = make_engine(batch, chunk=300)
    total = engine.run_to_completion()
    assert total == 2000
    assert engine.done
    assert engine.tree.get("/counts/process").entries == 2000


def test_engine_final_snapshot_marked(batch):
    engine = make_engine(batch, chunk=2000)
    snapshots = []
    engine.run_to_completion(publish=snapshots.append)
    assert snapshots[-1].final
    assert snapshots[-1].events_processed == 2000


def test_engine_snapshot_cadence(batch):
    engine = make_engine(batch, chunk=200, snapshot_every=3)
    snapshots = []
    engine.run_to_completion(publish=snapshots.append)
    # 10 chunks, snapshot every 3 chunks -> after chunks 3,6,9,10(final).
    assert len(snapshots) == 4
    assert [s.sequence for s in snapshots] == [1, 2, 3, 4]


def test_engine_pause_stops_processing(batch):
    engine = make_engine(batch, chunk=300)
    engine.controller.run()
    engine.process_chunk()
    engine.controller.pause()
    result = engine.process_chunk()
    assert result.events == 0
    assert result.state == ControlState.PAUSED
    assert engine.cursor == 300


def test_engine_step_runs_exact_count(batch):
    engine = make_engine(batch, chunk=300)
    engine.controller.step(450)
    first = engine.process_chunk()
    second = engine.process_chunk()
    third = engine.process_chunk()
    assert first.events == 300
    assert second.events == 150
    assert third.events == 0
    assert third.state == ControlState.PAUSED
    assert engine.cursor == 450


def test_engine_stop_terminal_until_rewind(batch):
    engine = make_engine(batch, chunk=300)
    engine.controller.run()
    engine.process_chunk()
    engine.controller.stop()
    result = engine.process_chunk()
    assert result.state == ControlState.STOPPED
    assert result.events == 0
    # run() after stop is ignored...
    engine.controller.run()
    assert engine.process_chunk().events == 0
    # ...until a rewind resets the run.
    engine.controller.rewind()
    engine.controller.run()
    result = engine.process_chunk()
    assert result.events == 300
    assert engine.run_id == 1


def test_engine_rewind_clears_results(batch):
    engine = make_engine(batch, chunk=500)
    engine.controller.run()
    engine.process_chunk()
    assert engine.tree.get("/counts/process").entries == 500
    engine.controller.rewind()
    engine.controller.run()
    result = engine.process_chunk()
    assert engine.cursor == 500
    assert engine.tree.get("/counts/process").entries == 500  # fresh run
    assert result.snapshot.run_id == 1


def test_engine_snapshot_carries_versions(batch):
    engine = make_engine(batch, chunk=500)
    engine.analysis.version = 3
    engine.controller.run()
    result = engine.process_chunk()
    assert result.snapshot.analysis_version == 3
    assert result.snapshot.engine_id == "engine-0"
    assert result.snapshot.total_events == 2000


def test_engine_hot_reload_keeps_cursor(batch):
    engine = make_engine(batch, chunk=500)
    engine.controller.run()
    engine.process_chunk()
    engine.load_analysis(EventCounterAnalysis())
    engine.controller.run()
    engine.process_chunk()
    assert engine.cursor == 1000


def test_engine_failing_analysis_raises(batch):
    class Bad(EventCounterAnalysis):
        def process_batch(self, chunk, tree):
            raise RuntimeError("kaboom")

    engine = AnalysisEngine("e", chunk_events=100)
    engine.load_data(batch)
    engine.load_analysis(Bad())
    engine.controller.run()
    with pytest.raises(AnalysisError, match="kaboom"):
        engine.process_chunk()


def test_engine_empty_dataset_completes():
    from repro.dataset.events import EventBatch

    engine = AnalysisEngine("e")
    engine.load_data(EventBatch.empty())
    engine.load_analysis(EventCounterAnalysis())
    total = engine.run_to_completion()
    assert total == 0
    assert engine.done


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------

def test_run_local_produces_tree(batch):
    bundle = CodeBundle(higgs_module.SOURCE)
    tree = run_local(bundle, batch)
    assert tree.get("/higgs/dijet_mass").entries > 0


def test_run_parallel_matches_local(tmp_path, batch):
    path = write_dataset(tmp_path / "d.ipad", [batch], meta={"name": "t"})
    bundle = CodeBundle(higgs_module.SOURCE)
    local_tree = run_local(bundle, batch)
    parallel_tree = run_parallel(bundle, str(path), n_workers=4)
    h_local = local_tree.get("/higgs/dijet_mass")
    h_par = parallel_tree.get("/higgs/dijet_mass")
    assert h_par.entries == h_local.entries
    assert np.allclose(h_par.heights(), h_local.heights())
    assert h_par.mean == pytest.approx(h_local.mean)


def test_run_parallel_validation(tmp_path, batch):
    path = write_dataset(tmp_path / "d.ipad", [batch])
    with pytest.raises(ValueError):
        run_parallel(CodeBundle(higgs_module.SOURCE), str(path), n_workers=0)
