"""Unit tests for the network topology and max-min fair flow model."""

import pytest

from repro.grid.network import Network, NetworkError, star_topology
from repro.sim import Environment


def make_pair(bandwidth=10.0, latency=0.0, per_flow_cap=None):
    env = Environment()
    net = Network(env)
    net.add_host("a")
    net.add_host("b")
    net.add_link("ab", "a", "b", bandwidth, latency, per_flow_cap)
    return env, net


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------

def test_duplicate_host_rejected():
    env = Environment()
    net = Network(env)
    net.add_host("a")
    with pytest.raises(NetworkError):
        net.add_host("a")


def test_duplicate_link_rejected():
    env, net = make_pair()
    with pytest.raises(NetworkError):
        net.add_link("ab", "a", "b", 1.0)


def test_link_to_unknown_host_rejected():
    env = Environment()
    net = Network(env)
    net.add_host("a")
    with pytest.raises(NetworkError):
        net.add_link("ax", "a", "x", 1.0)


def test_link_parameter_validation():
    env, net = make_pair()
    net.add_host("c")
    with pytest.raises(ValueError):
        net.add_link("bad", "a", "c", bandwidth=0)
    with pytest.raises(ValueError):
        net.add_link("bad", "a", "c", bandwidth=1, latency=-1)
    with pytest.raises(ValueError):
        net.add_link("bad", "a", "c", bandwidth=1, per_flow_cap=0)


def test_route_direct():
    env, net = make_pair()
    route = net.route("a", "b")
    assert [l.name for l in route.links] == ["ab"]
    assert route.bottleneck_bandwidth == 10.0


def test_route_same_host_is_empty():
    env, net = make_pair()
    route = net.route("a", "a")
    assert route.links == ()
    assert route.latency == 0


def test_route_multi_hop_shortest():
    env = Environment()
    net = Network(env)
    for name in "abcd":
        net.add_host(name)
    net.add_link("ab", "a", "b", 1.0, latency=0.1)
    net.add_link("bc", "b", "c", 1.0, latency=0.1)
    net.add_link("cd", "c", "d", 1.0, latency=0.1)
    net.add_link("ad", "a", "d", 1.0, latency=0.5)  # direct shortcut
    route = net.route("a", "d")
    assert [l.name for l in route.links] == ["ad"]  # fewest hops wins
    assert route.latency == 0.5


def test_route_unreachable_raises():
    env = Environment()
    net = Network(env)
    net.add_host("a")
    net.add_host("island")
    with pytest.raises(NetworkError):
        net.route("a", "island")


def test_route_unknown_host_raises():
    env, net = make_pair()
    with pytest.raises(NetworkError):
        net.route("a", "nope")


def test_route_cache_invalidated_by_new_link():
    env = Environment()
    net = Network(env)
    for name in "abc":
        net.add_host(name)
    net.add_link("ab", "a", "b", 1.0)
    net.add_link("bc", "b", "c", 1.0)
    assert len(net.route("a", "c").links) == 2
    net.add_link("ac", "a", "c", 1.0)
    assert len(net.route("a", "c").links) == 1


def test_star_topology_builder():
    env = Environment()
    net = star_topology(env, "hub", ["w1", "w2"], bandwidth=5.0)
    assert set(net.hosts) == {"hub", "w1", "w2"}
    assert len(net.route("w1", "w2").links) == 2


# ---------------------------------------------------------------------------
# Single transfers
# ---------------------------------------------------------------------------

def test_single_transfer_time_is_size_over_bandwidth():
    env, net = make_pair(bandwidth=10.0)
    proc = net.transfer("a", "b", 100.0)
    stats = env.run(until=proc)
    assert env.now == pytest.approx(10.0)
    assert stats.duration == pytest.approx(10.0)
    assert stats.mean_rate == pytest.approx(10.0)


def test_transfer_includes_latency_once():
    env, net = make_pair(bandwidth=10.0, latency=2.0)
    stats = env.run(until=net.transfer("a", "b", 100.0))
    assert stats.duration == pytest.approx(12.0)


def test_zero_byte_transfer_costs_latency_only():
    env, net = make_pair(bandwidth=10.0, latency=2.0)
    stats = env.run(until=net.transfer("a", "b", 0.0))
    assert stats.duration == pytest.approx(2.0)


def test_same_host_transfer_is_instant():
    env, net = make_pair()
    stats = env.run(until=net.transfer("a", "a", 50.0))
    assert stats.duration == 0.0


def test_negative_size_rejected():
    env, net = make_pair()
    with pytest.raises(ValueError):
        net.transfer("a", "b", -1.0)


def test_per_flow_cap_limits_single_transfer():
    env, net = make_pair(bandwidth=10.0, per_flow_cap=2.0)
    stats = env.run(until=net.transfer("a", "b", 20.0))
    assert stats.duration == pytest.approx(10.0)  # 20 MB at 2 MB/s


def test_stream_cap_argument_limits_transfer():
    env, net = make_pair(bandwidth=10.0)
    stats = env.run(until=net.transfer("a", "b", 20.0, stream_cap=4.0))
    assert stats.duration == pytest.approx(5.0)


# ---------------------------------------------------------------------------
# Sharing / max-min fairness
# ---------------------------------------------------------------------------

def test_two_flows_share_link_equally():
    env, net = make_pair(bandwidth=10.0)
    p1 = net.transfer("a", "b", 50.0)
    p2 = net.transfer("a", "b", 50.0)
    env.run()
    # Each gets 5 MB/s for the whole time.
    assert p1.value.duration == pytest.approx(10.0)
    assert p2.value.duration == pytest.approx(10.0)


def test_flow_speeds_up_when_sharer_finishes():
    env, net = make_pair(bandwidth=10.0)
    p_small = net.transfer("a", "b", 10.0)  # done at t=2 while sharing
    p_big = net.transfer("a", "b", 90.0)
    env.run()
    # Shared 5 MB/s until t=2 (10 MB done each); then big flow gets 10 MB/s
    # for its remaining 80 MB -> 2 + 8 = 10 s.
    assert p_small.value.duration == pytest.approx(2.0)
    assert p_big.value.duration == pytest.approx(10.0)


def test_staggered_flow_start_rebalances_existing():
    env, net = make_pair(bandwidth=10.0)
    results = {}

    def scenario():
        first = net.transfer("a", "b", 40.0)
        yield env.timeout(2.0)  # first has moved 20 MB at 10 MB/s
        second = net.transfer("a", "b", 10.0)
        results["first"] = yield first
        results["second"] = yield second

    env.run(until=env.process(scenario()))
    # After t=2: both at 5 MB/s. second finishes at t=4 (10MB/5).
    # first has 20 remaining at t=2, does 10 by t=4, then 10 at full rate: t=5.
    assert results["second"].duration == pytest.approx(2.0)
    assert results["first"].duration == pytest.approx(5.0)


def test_maxmin_bottleneck_redistribution():
    # Two leaves behind one hub uplink; one flow also crosses a slow leaf link.
    env = Environment()
    net = Network(env)
    for name in ("src", "hub", "fast", "slow"):
        net.add_host(name)
    net.add_link("up", "src", "hub", bandwidth=10.0)
    net.add_link("f", "hub", "fast", bandwidth=10.0)
    net.add_link("s", "hub", "slow", bandwidth=2.0)
    p_slow = net.transfer("src", "slow", 20.0)
    p_fast = net.transfer("src", "fast", 80.0)
    env.run()
    # slow flow is bottlenecked at 2 MB/s; fast flow gets the remaining
    # 8 MB/s of the uplink -> finishes at t=10; slow at t=10 as well.
    assert p_slow.value.duration == pytest.approx(10.0)
    assert p_fast.value.duration == pytest.approx(10.0)


def test_n_flows_share_proportionally():
    env, net = make_pair(bandwidth=12.0)
    procs = [net.transfer("a", "b", 12.0) for _ in range(4)]
    env.run()
    for proc in procs:
        assert proc.value.duration == pytest.approx(4.0)  # 3 MB/s each


def test_active_flow_count_tracks_lifecycle():
    env, net = make_pair(bandwidth=10.0)
    counts = []

    def scenario():
        t = net.transfer("a", "b", 10.0)
        yield env.timeout(0.5)
        counts.append(net.active_flow_count)
        yield t
        counts.append(net.active_flow_count)

    env.run(until=env.process(scenario()))
    assert counts == [1, 0]


def test_transfer_conservation_many_flows():
    """Total bytes delivered equals bytes requested across random flows."""
    env = Environment()
    net = star_topology(env, "hub", [f"w{i}" for i in range(8)], bandwidth=7.0)
    sizes = [1.0, 2.5, 10.0, 0.5, 33.0, 4.0, 8.0, 16.0]
    procs = [
        net.transfer("hub", f"w{i}", size) for i, size in enumerate(sizes)
    ]
    env.run()
    delivered = sum(p.value.size_mb for p in procs)
    assert delivered == pytest.approx(sum(sizes))
    for proc, size in zip(procs, sizes):
        assert proc.value.duration >= size / 7.0 - 1e-9


def test_wan_vs_lan_asymmetry():
    """The paper's headline: LAN staging beats WAN download for large files."""
    env = Environment()
    net = Network(env)
    net.add_host("desktop")
    net.add_host("se")
    net.add_host("manager")
    net.add_link("wan", "desktop", "se", bandwidth=0.245)
    net.add_link("lan", "se", "manager", bandwidth=7.5)
    wan = net.transfer("se", "desktop", 471.0)
    lan = net.transfer("se", "manager", 471.0)
    env.run()
    assert wan.value.duration > 25 * lan.value.duration


def test_multihop_flows_share_intermediate_link():
    """Flows crossing a common middle hop are jointly bottlenecked there."""
    env = Environment()
    net = Network(env)
    for name in ("a", "b", "m1", "m2"):
        net.add_host(name)
    net.add_link("a-m1", "a", "m1", bandwidth=100.0)
    net.add_link("b-m1", "b", "m1", bandwidth=100.0)
    net.add_link("m1-m2", "m1", "m2", bandwidth=10.0)  # shared bottleneck
    p1 = net.transfer("a", "m2", 50.0)
    p2 = net.transfer("b", "m2", 50.0)
    env.run()
    # Both share the 10 MB/s middle link: 5 MB/s each -> 10 s each.
    assert p1.value.duration == pytest.approx(10.0)
    assert p2.value.duration == pytest.approx(10.0)


def test_multihop_latency_sums_over_route():
    env = Environment()
    net = Network(env)
    for name in ("a", "m", "b"):
        net.add_host(name)
    net.add_link("am", "a", "m", bandwidth=10.0, latency=0.3)
    net.add_link("mb", "m", "b", bandwidth=10.0, latency=0.2)
    stats = env.run(until=net.transfer("a", "b", 10.0))
    assert stats.duration == pytest.approx(0.5 + 1.0)
