"""Property-based tests: query language algebra and dataset format fidelity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.events import EventBatch
from repro.dataset.format import DatasetReader, write_dataset
from repro.dataset.generator import ILCEventGenerator
from repro.dataset.split import plan_split
from repro.services.query import evaluate_query, parse_query

# ---------------------------------------------------------------------------
# Query language algebra
# ---------------------------------------------------------------------------

keys = st.sampled_from(["energy", "year", "size", "count"])
numbers = st.integers(min_value=-1000, max_value=1000)
documents = st.dictionaries(keys, numbers, min_size=0, max_size=4)
operators = st.sampled_from(["==", "!=", "<", "<=", ">", ">="])
comparisons = st.builds(
    lambda k, op, v: f"{k} {op} {v}", keys, operators, numbers
)


@given(comparisons, documents)
def test_negation_is_complement(comparison, doc):
    value = evaluate_query(comparison, doc)
    negated = evaluate_query(f"not {comparison}", doc)
    assert negated is not value


@given(comparisons, comparisons, documents)
def test_and_or_duality(a, b, doc):
    """De Morgan: not (a and b) == (not a) or (not b)."""
    left = evaluate_query(f"not ({a} and {b})", doc)
    right = evaluate_query(f"not {a} or not {b}", doc)
    assert left is right


@given(comparisons, comparisons, documents)
def test_and_or_commutative(a, b, doc):
    assert evaluate_query(f"{a} and {b}", doc) is evaluate_query(
        f"{b} and {a}", doc
    )
    assert evaluate_query(f"{a} or {b}", doc) is evaluate_query(
        f"{b} or {a}", doc
    )


@given(comparisons, documents)
def test_idempotence(a, doc):
    value = evaluate_query(a, doc)
    assert evaluate_query(f"{a} and {a}", doc) is value
    assert evaluate_query(f"{a} or {a}", doc) is value


@given(comparisons, documents)
def test_parenthesization_is_noop(a, doc):
    assert evaluate_query(f"(({a}))", doc) is evaluate_query(a, doc)


@given(keys, numbers, documents)
def test_eq_and_neq_partition(key, value, doc):
    eq = evaluate_query(f"{key} == {value}", doc)
    neq = evaluate_query(f"{key} != {value}", doc)
    if key in doc:
        assert eq is not neq
    else:
        # Missing keys: both comparisons are false by definition.
        assert eq is False and neq is False


@given(comparisons)
def test_parse_is_deterministic(comparison):
    assert repr(parse_query(comparison)) == repr(parse_query(comparison))


# ---------------------------------------------------------------------------
# Dataset format fidelity
# ---------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_format_roundtrip_any_batching(n_events, batch_size, seed):
    import tempfile
    from pathlib import Path

    generator = ILCEventGenerator(seed=seed)
    original = generator.generate(n_events)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "d.ipad"
        # Rebatch arbitrarily before writing.
        pieces = [
            original.slice(i, min(i + batch_size, n_events))
            for i in range(0, n_events, batch_size)
        ]
        write_dataset(path, pieces)
        with DatasetReader(path) as reader:
            restored = reader.read_all()
    assert len(restored) == n_events
    if n_events:
        assert np.array_equal(restored.e, original.e)
        assert np.array_equal(restored.offsets, original.offsets)
        assert np.array_equal(restored.process, original.process)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=300),
    st.integers(min_value=1, max_value=12),
    st.sampled_from(["by-events", "by-bytes"]),
)
def test_split_parts_partition_events(n_events, n_parts, strategy):
    """Any split plan covers every event exactly once, in order."""
    import tempfile
    from pathlib import Path

    generator = ILCEventGenerator(seed=7)
    batch = generator.generate(n_events)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "d.ipad"
        write_dataset(path, [batch])
        with DatasetReader(path) as reader:
            plan = plan_split(reader, n_parts, strategy)
    assert plan.total_events == n_events
    cursor = 0
    for part in plan.parts:
        assert part.start_event == cursor
        assert part.stop_event >= part.start_event
        cursor = part.stop_event
    assert cursor == n_events
    assert sum(p.est_size_mb for p in plan.parts) >= 0
