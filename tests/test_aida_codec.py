"""Tests for the compact array codec (repro.aida.codec)."""

import json

import numpy as np
import pytest

from repro.aida.axis import Axis
from repro.aida.cloud import Cloud1D
from repro.aida.codec import (
    MIN_CODEC_SIZE,
    codec_disabled,
    codec_enabled,
    decode_array,
    decode_list,
    encode_array,
    is_encoded,
    payload_nbytes,
    set_codec_enabled,
)
from repro.aida.hist1d import Histogram1D
from repro.aida.hist2d import Histogram2D
from repro.aida.ntuple import NTuple
from repro.aida.profile import Profile1D
from repro.aida.serial import from_dict, to_dict


# ---------------------------------------------------------------------------
# encode/decode primitives
# ---------------------------------------------------------------------------

def test_small_arrays_stay_plain_lists():
    arr = np.arange(MIN_CODEC_SIZE - 1, dtype=float)
    encoded = encode_array(arr)
    assert isinstance(encoded, list)
    assert encoded == arr.tolist()


def test_large_arrays_get_encoded():
    arr = np.arange(MIN_CODEC_SIZE, dtype=float)
    encoded = encode_array(arr)
    assert is_encoded(encoded)
    assert encoded["dtype"] == arr.dtype.str
    assert encoded["shape"] == [MIN_CODEC_SIZE]
    # The whole thing must survive JSON (the wire format).
    json.dumps(encoded)


@pytest.mark.parametrize(
    "dtype", [np.int64, np.float64, np.int32, np.float32]
)
def test_roundtrip_is_bit_exact(dtype):
    rng = np.random.default_rng(7)
    arr = (rng.random(100) * 1000).astype(dtype)
    decoded = decode_array(encode_array(arr))
    assert decoded.dtype == arr.dtype
    assert np.array_equal(decoded, arr)
    # Raw-byte exactness for floats, not approximate equality.
    assert decoded.tobytes() == arr.tobytes()


def test_roundtrip_2d_shape():
    arr = np.arange(48, dtype=float).reshape(6, 8)
    decoded = decode_array(encode_array(arr))
    assert decoded.shape == (6, 8)
    assert np.array_equal(decoded, arr)


def test_decoded_arrays_are_writable():
    arr = np.arange(64, dtype=float)
    decoded = decode_array(encode_array(arr))
    decoded[0] = -1.0  # must not raise (frombuffer alone is read-only)
    plain = decode_array(arr.tolist(), dtype=float)
    plain[0] = -1.0


def test_decode_accepts_plain_lists():
    out = decode_array([1, 2, 3], dtype=np.int64)
    assert out.dtype == np.int64
    assert out.tolist() == [1, 2, 3]


def test_decode_casts_to_requested_dtype():
    arr = np.arange(32, dtype=np.float64)
    out = decode_array(encode_array(arr), dtype=np.int64)
    assert out.dtype == np.int64


def test_decode_list_both_forms():
    values = [float(v) for v in range(40)]
    assert decode_list(values) == values
    assert decode_list(encode_array(np.asarray(values))) == values


def test_codec_disable_toggle():
    arr = np.arange(64, dtype=float)
    assert codec_enabled()
    with codec_disabled():
        assert not codec_enabled()
        assert isinstance(encode_array(arr), list)
    assert codec_enabled()
    set_codec_enabled(False)
    try:
        assert isinstance(encode_array(arr), list)
    finally:
        set_codec_enabled(True)


# ---------------------------------------------------------------------------
# payload size model
# ---------------------------------------------------------------------------

def test_payload_nbytes_tracks_json_size():
    payload = {
        "kind": "Histogram1D",
        "counts": list(range(100)),
        "swx": 1.5,
        "name": "h",
    }
    estimate = payload_nbytes(payload)
    actual = len(json.dumps(payload))
    assert 0.5 * actual < estimate < 2.0 * actual


def test_payload_nbytes_encoded_smaller_than_lists():
    # Full-precision doubles cost ~18 JSON chars each but only 10.7 base64
    # chars (8 raw bytes x 4/3) in the compact form.
    arr = np.random.default_rng(11).random(500)
    encoded = payload_nbytes(encode_array(arr))
    with codec_disabled():
        plain = payload_nbytes(encode_array(arr))
    assert encoded < 0.6 * plain


# ---------------------------------------------------------------------------
# adoption by the object classes
# ---------------------------------------------------------------------------

def _filled_hist1d(bins=200, n=1000):
    hist = Histogram1D("h", bins=bins, lower=0.0, upper=1.0)
    rng = np.random.default_rng(3)
    hist.fill_array(rng.random(n), rng.random(n))
    return hist


@pytest.mark.parametrize("factory", [
    lambda: _filled_hist1d(),
    lambda: _fill_hist2d(),
    lambda: _fill_profile(),
    lambda: _fill_cloud(),
    lambda: _fill_ntuple(),
])
def test_objects_roundtrip_bit_exact_through_codec(factory):
    obj = factory()
    data = json.loads(json.dumps(to_dict(obj)))  # force a real wire trip
    restored = from_dict(data)
    assert to_dict(restored) == to_dict(obj)


def _fill_hist2d():
    hist = Histogram2D(
        "h2", x_bins=30, x_lower=0, x_upper=1, y_bins=30, y_lower=0, y_upper=1
    )
    rng = np.random.default_rng(4)
    hist.fill_array(rng.random(500), rng.random(500), rng.random(500))
    return hist


def _fill_profile():
    prof = Profile1D("p", bins=100, lower=0, upper=1)
    rng = np.random.default_rng(5)
    prof.fill_array(rng.random(400), rng.random(400))
    return prof


def _fill_cloud():
    cloud = Cloud1D("c", max_points=10_000)
    rng = np.random.default_rng(6)
    for x, w in zip(rng.random(200), rng.random(200)):
        cloud.fill(float(x), float(w))
    return cloud


def _fill_ntuple():
    nt = NTuple("n", columns=("x", "y"))
    rng = np.random.default_rng(8)
    for x, y in zip(rng.random(60), rng.random(60)):
        nt.fill(x=float(x), y=float(y))
    return nt


def test_hist1d_wire_form_uses_codec_when_large():
    hist = _filled_hist1d(bins=200)
    data = hist.to_dict()
    assert is_encoded(data["counts"])
    assert is_encoded(data["sumw"])
    small = Histogram1D("s", bins=10, lower=0, upper=1).to_dict()
    assert isinstance(small["counts"], list)


def test_axis_variable_edges_roundtrip():
    edges = np.linspace(0.0, 1.0, 50) ** 2
    axis = Axis(edges=edges)
    restored = Axis.from_dict(axis.to_dict())
    assert restored == axis
    assert is_encoded(axis.to_dict()["edges"])


def test_pre_codec_payloads_still_deserialize():
    hist = _filled_hist1d(bins=200)
    with codec_disabled():
        legacy = hist.to_dict()
    assert isinstance(legacy["counts"], list)
    restored = Histogram1D.from_dict(legacy)
    assert restored == hist


# ---------------------------------------------------------------------------
# data_version counters (delta-snapshot dirty tracking)
# ---------------------------------------------------------------------------

def test_data_version_bumps_on_mutation():
    hist = Histogram1D("h", bins=10, lower=0, upper=1)
    v0 = hist.data_version
    hist.fill(0.5)
    assert hist.data_version > v0
    v1 = hist.data_version
    hist.fill_array([0.1, 0.2])
    assert hist.data_version > v1
    v2 = hist.data_version
    hist.reset()
    assert hist.data_version > v2
    other = Histogram1D("h", bins=10, lower=0, upper=1)
    v3 = hist.data_version
    hist += other
    assert hist.data_version > v3


def test_data_version_stable_without_mutation():
    hist = _filled_hist1d()
    before = hist.data_version
    hist.to_dict()
    _ = hist.mean, hist.rms, hist.entries
    assert hist.data_version == before


def test_tree_versions_fingerprints():
    from repro.aida.tree import ObjectTree

    tree = ObjectTree()
    hist = Histogram1D("h", bins=10, lower=0, upper=1)
    tree.put("/dir/h", hist)
    v1 = tree.versions()
    assert set(v1) == {"/dir/h"}
    hist.fill(0.5)
    v2 = tree.versions()
    assert v2["/dir/h"] != v1["/dir/h"]
    # Re-putting a fresh object changes the put generation.
    tree.remove("/dir/h")
    tree.put("/dir/h", Histogram1D("h", bins=10, lower=0, upper=1))
    v3 = tree.versions()
    assert v3["/dir/h"][0] != v2["/dir/h"][0]


def test_tree_to_dict_only_filter():
    from repro.aida.tree import ObjectTree

    tree = ObjectTree()
    tree.put("/a", Histogram1D("a", bins=5, lower=0, upper=1))
    tree.put("/b", Histogram1D("b", bins=5, lower=0, upper=1))
    full = tree.to_dict()
    partial = tree.to_dict(only={"/b"})
    assert set(full["objects"]) == {"/a", "/b"}
    assert set(partial["objects"]) == {"/b"}
