"""Unit tests for the event model and the synthetic ILC generator."""

import numpy as np
import pytest

from repro.dataset.events import PROCESS_CODES, Event, EventBatch
from repro.dataset.generator import GeneratorConfig, ILCEventGenerator
from repro.dataset.physics import MASS_Z, invariant_mass, pair_mass


def simple_batch():
    return EventBatch.from_events(
        [
            (0, PROCESS_CODES["zh"], 1.0, [(81, 100.0, 50.0, 0.0, 0.0), (81, 90.0, -50.0, 0.0, 0.0)]),
            (1, PROCESS_CODES["qq"], 0.5, [(81, 200.0, 0.0, 100.0, 0.0)]),
            (2, PROCESS_CODES["ww"], 1.0, []),
        ]
    )


# ---------------------------------------------------------------------------
# EventBatch
# ---------------------------------------------------------------------------

def test_batch_lengths():
    batch = simple_batch()
    assert len(batch) == 3
    assert batch.n_particles == 3
    assert batch.nbytes > 0


def test_batch_event_view():
    batch = simple_batch()
    event = batch.event(0)
    assert isinstance(event, Event)
    assert event.n_particles == 2
    assert event.process_name == "zh"
    assert event.total_energy() == pytest.approx(190.0)
    assert event.weight == 1.0


def test_batch_event_empty_particles():
    event = simple_batch().event(2)
    assert event.n_particles == 0
    assert event.total_energy() == 0.0


def test_batch_event_out_of_range():
    with pytest.raises(IndexError):
        simple_batch().event(3)


def test_event_jets_filter():
    batch = EventBatch.from_events(
        [(0, 0, 1.0, [(81, 10.0, 0, 0, 0), (13, 5.0, 0, 0, 0)])]
    )
    e, px, py, pz = batch.event(0).jets()
    assert len(e) == 1
    assert e[0] == 10.0


def test_batch_iteration():
    ids = [event.event_id for event in simple_batch()]
    assert ids == [0, 1, 2]


def test_batch_slice_rebases_offsets():
    batch = simple_batch()
    sub = batch.slice(1, 3)
    assert len(sub) == 2
    assert sub.offsets[0] == 0
    assert sub.event(0).n_particles == 1
    assert sub.event(0).event_id == 1


def test_batch_slice_validation():
    with pytest.raises(IndexError):
        simple_batch().slice(2, 1)
    with pytest.raises(IndexError):
        simple_batch().slice(0, 4)


def test_batch_concatenate_roundtrip():
    batch = simple_batch()
    rejoined = EventBatch.concatenate([batch.slice(0, 1), batch.slice(1, 3)])
    assert len(rejoined) == 3
    assert np.array_equal(rejoined.event_ids, batch.event_ids)
    assert np.array_equal(rejoined.e, batch.e)
    assert np.array_equal(rejoined.offsets, batch.offsets)


def test_batch_concatenate_empty():
    assert len(EventBatch.concatenate([])) == 0
    assert len(EventBatch.concatenate([EventBatch.empty()])) == 0


def test_batch_validation_errors():
    with pytest.raises(ValueError):
        EventBatch(
            np.zeros(2), np.zeros(1), np.zeros(2), np.zeros(3),
            np.zeros(0), np.zeros(0), np.zeros(0), np.zeros(0), np.zeros(0),
        )
    with pytest.raises(ValueError):
        EventBatch(
            np.zeros(1), np.zeros(1), np.zeros(1), np.array([0, 5]),
            np.zeros(3), np.zeros(3), np.zeros(3), np.zeros(3), np.zeros(3),
        )


# ---------------------------------------------------------------------------
# GeneratorConfig
# ---------------------------------------------------------------------------

def test_config_validation():
    with pytest.raises(ValueError):
        GeneratorConfig(sqrt_s=0)
    with pytest.raises(ValueError):
        GeneratorConfig(sqrt_s=200.0)  # ZH closed at 200 with mH=120
    with pytest.raises(ValueError):
        GeneratorConfig(fractions=(("zh", 0.5), ("zh", 0.5)))
    with pytest.raises(ValueError):
        GeneratorConfig(fractions=(("zh", 0.7), ("qq", 0.2)))
    with pytest.raises(ValueError):
        GeneratorConfig(fractions=(("mystery", 1.0),))
    with pytest.raises(ValueError):
        GeneratorConfig(fractions=(("zh", -0.5), ("qq", 1.5)))


# ---------------------------------------------------------------------------
# ILCEventGenerator
# ---------------------------------------------------------------------------

def test_generator_deterministic_with_seed():
    a = ILCEventGenerator(seed=123).generate(200)
    b = ILCEventGenerator(seed=123).generate(200)
    assert np.array_equal(a.e, b.e)
    assert np.array_equal(a.process, b.process)


def test_generator_different_seeds_differ():
    a = ILCEventGenerator(seed=1).generate(100)
    b = ILCEventGenerator(seed=2).generate(100)
    assert not np.array_equal(a.e, b.e)


def test_generator_event_ids_sequential_across_calls():
    gen = ILCEventGenerator(seed=5)
    first = gen.generate(10)
    second = gen.generate(10)
    assert list(first.event_ids) == list(range(10))
    assert list(second.event_ids) == list(range(10, 20))


def test_generator_zero_events():
    assert len(ILCEventGenerator().generate(0)) == 0
    with pytest.raises(ValueError):
        ILCEventGenerator().generate(-1)


def test_generator_process_mixture():
    batch = ILCEventGenerator(seed=7).generate(4000)
    fractions = {
        name: np.mean(batch.process == code)
        for name, code in PROCESS_CODES.items()
    }
    assert fractions["zh"] == pytest.approx(0.15, abs=0.03)
    assert fractions["ww"] == pytest.approx(0.35, abs=0.03)
    assert fractions["qq"] == pytest.approx(0.30, abs=0.03)


def test_generator_particle_counts_by_process():
    batch = ILCEventGenerator(seed=9).generate(500)
    for event in batch:
        if event.process_name == "qq":
            assert event.n_particles == 2
        else:
            assert event.n_particles == 4


def test_signal_events_contain_higgs_mass_peak():
    """Pairing the two H jets of ZH events reconstructs ~120 GeV."""
    config = GeneratorConfig(fractions=(("zh", 1.0),), smear_stochastic=0.0, smear_constant=0.0)
    batch = ILCEventGenerator(config, seed=11).generate(300)
    masses = []
    for event in batch:
        e, px, py, pz = event.jets()
        # Jets 0,1 are the Higgs decay by construction, 2,3 the Z decay.
        masses.append(
            pair_mass(e[0], px[0], py[0], pz[0], e[1], px[1], py[1], pz[1])
        )
        z_mass = pair_mass(e[2], px[2], py[2], pz[2], e[3], px[3], py[3], pz[3])
        assert z_mass == pytest.approx(MASS_Z, rel=1e-6)
    assert np.allclose(masses, 120.0, rtol=1e-6)


def test_smearing_broadens_peak():
    sharp_config = GeneratorConfig(
        fractions=(("zh", 1.0),), smear_stochastic=0.0, smear_constant=0.0
    )
    smeared_config = GeneratorConfig(fractions=(("zh", 1.0),))

    def mass_spread(config, seed):
        batch = ILCEventGenerator(config, seed=seed).generate(500)
        masses = []
        for event in batch:
            e, px, py, pz = event.jets()
            masses.append(
                float(pair_mass(e[0], px[0], py[0], pz[0], e[1], px[1], py[1], pz[1]))
            )
        return np.std(masses)

    assert mass_spread(smeared_config, 13) > 10 * mass_spread(sharp_config, 13)


def test_energy_conservation_before_smearing():
    config = GeneratorConfig(fractions=(("ww", 1.0),), smear_stochastic=0.0, smear_constant=0.0)
    batch = ILCEventGenerator(config, seed=17).generate(100)
    for event in batch:
        assert event.total_energy() == pytest.approx(500.0, rel=1e-9)
        assert abs(event.px.sum()) < 1e-6
        assert abs(event.py.sum()) < 1e-6
        assert abs(event.pz.sum()) < 1e-6


def test_stream_batches():
    gen = ILCEventGenerator(seed=19)
    batches = list(gen.stream(250, batch_size=100))
    assert [len(b) for b in batches] == [100, 100, 50]
    ids = np.concatenate([b.event_ids for b in batches])
    assert np.array_equal(ids, np.arange(250))
    with pytest.raises(ValueError):
        list(gen.stream(10, batch_size=0))
