"""Concurrent-session serving: poll coalescing, admission backpressure.

End-to-end and property coverage for the PR-8 concurrency plane: many
clients polling one session share a single incremental merge (with
replies bit-identical to per-client merges), and a site running per-VO
admission control pushes back with ``RetryAfter`` that the client honors
with backoff.
"""

import random

import pytest

from repro.aida.hist1d import Histogram1D
from repro.aida.tree import ObjectTree
from repro.analysis import counting
from repro.client.client import IPAClient
from repro.client.plugins import RemoteDataPlugin
from repro.core.site import GridSite, SiteConfig
from repro.engine.engine import AnalysisEngine
from repro.obs import Observability
from repro.resilience.retry import RetryPolicy
from repro.services.aida_manager import AIDAManagerService
from repro.services.envelope import RetryAfter
from repro.sim import Environment


def build_site(**kwargs):
    site = GridSite(SiteConfig(**kwargs))
    site.register_dataset(
        "ds-a", "/t/ds-a", size_mb=30.0, n_events=1500,
        content={"kind": "ilc", "seed": 100},
    )
    return site


# -- e2e: many viewers on one session -----------------------------------


def test_interleaved_polls_from_many_clients_share_one_merge():
    # The coalesce window keeps an idle merge joinable: without it only
    # polls overlapping a *dirty* (nonzero-latency) merge coalesce.
    site = build_site(n_workers=4, poll_coalesce_window_s=0.05)
    env = site.env
    alice = IPAClient(site, site.enroll_user("/CN=alice"))
    n_viewers, n_rounds = 4, 5
    polled = {}  # (round, viewer) -> (tree_dict, merge_generation)
    merges_during_rounds = {}

    def poll_once(plugin, round_no, index):
        tree, progress = yield from plugin.poll()
        polled[(round_no, index)] = (
            tree.to_dict(), progress.merge_generation
        )

    def scenario():
        info = yield from alice.obtain_proxy_and_connect(n_engines=4)
        yield from alice.select_dataset("ds-a")
        yield from alice.upload_code(counting.SOURCE)
        yield from alice.run()
        viewers = []
        for index in range(n_viewers):
            plugin = RemoteDataPlugin(
                site.container, client_id=f"viewer-{index}"
            )
            plugin.bind(info.session_id, info.token)
            viewers.append(plugin)
        before = len(site.aida.merge_log)
        for round_no in range(n_rounds):
            yield env.timeout(2.0)
            polls = [
                env.process(poll_once(plugin, round_no, index))
                for index, plugin in enumerate(viewers)
            ]
            yield env.all_of(polls)
        merges_during_rounds["n"] = len(site.aida.merge_log) - before
        # Every viewer ends on the same cursor as every other.
        cursors = {
            site.aida.poll_cursor(info.session_id, f"viewer-{index}")
            for index in range(n_viewers)
        }
        assert len(cursors) == 1
        yield from alice.wait_for_completion(poll_interval=2.0)
        yield from alice.close()

    env.run(until=env.process(scenario()))

    # Within each synchronized round all viewers saw the identical tree
    # and the identical merge generation (bit-for-bit, dict equality).
    for round_no in range(n_rounds):
        replies = [
            polled[(round_no, index)] for index in range(n_viewers)
        ]
        assert all(reply == replies[0] for reply in replies)
    # Coalescing: n_viewers polls per round cost one merge, not four.
    assert merges_during_rounds["n"] <= n_rounds


# -- e2e: admission refusal + client backoff ----------------------------


def test_admission_rejection_then_client_retry_succeeds():
    site = build_site(
        n_workers=8,
        max_concurrent_engines=4,
        admission_queue_depth=0,
        admission_retry_after_s=3.0,
    )
    env = site.env
    alice = IPAClient(site, site.enroll_user("/CN=alice"))
    bob = IPAClient(site, site.enroll_user("/CN=bob"))
    timeline = {}

    def alice_scenario():
        yield from alice.obtain_proxy_and_connect(n_engines=4)
        timeline["alice_up"] = env.now
        yield env.timeout(40.0)
        yield from alice.close()
        timeline["alice_closed"] = env.now

    def bob_scenario():
        yield env.timeout(5.0)
        bob.obtain_proxy()
        # Without a retry policy the refusal propagates immediately,
        # carrying the site's back-off hint.
        try:
            yield from bob.connect(n_engines=2)
        except RetryAfter as fault:
            timeline["bob_refused"] = env.now
            timeline["hint"] = fault.retry_after
        # With a policy the client keeps retrying, waiting at least the
        # server hint between attempts, until alice frees the slots.
        yield from bob.connect(
            n_engines=2,
            admission_retry=RetryPolicy(
                max_attempts=30, base_delay=1.0, multiplier=1.0,
                max_delay=30.0,
            ),
        )
        timeline["bob_up"] = env.now
        yield from bob.close()

    p1 = env.process(alice_scenario())
    p2 = env.process(bob_scenario())
    env.run(until=env.all_of([p1, p2]))

    assert "bob_refused" in timeline
    assert timeline["hint"] == pytest.approx(3.0)
    # Bob only got in after alice released her engine slots.
    assert timeline["bob_up"] >= timeline["alice_closed"]
    # The slots are back once both sessions closed.
    assert site.admission.active_total == 0


def test_admission_slots_released_when_session_setup_fails():
    # A refused GRAM submission must hand the admitted slots back —
    # otherwise a failing session permanently leaks site capacity.
    site = build_site(n_workers=4, max_concurrent_engines=4)
    env = site.env
    alice = IPAClient(site, site.enroll_user("/CN=alice"))
    site.gram.inject_failures(10)  # exhausts submit_with_retry

    def scenario():
        alice.obtain_proxy()
        with pytest.raises(Exception):
            yield from alice.connect(n_engines=4)

    env.run(until=env.process(scenario()))
    assert site.admission.active_total == 0
    assert site.admission.free == 4


# -- unit: cursors + redundant-poll accounting --------------------------


def _engine_with_data(engine_id, fills):
    engine = AnalysisEngine(engine_id)
    engine.tree.put("/h", Histogram1D("h", bins=10, lower=0.0, upper=1.0))
    for value in fills:
        engine.tree.get("/h").fill(value)
    return engine


def test_poll_cursor_tracks_generation_and_counts_redundant_polls():
    env = Environment()
    obs = Observability(env, enabled=True)
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0, obs=obs)
    engine = _engine_with_data("e0", [0.1, 0.5])
    manager.submit_snapshot("s1", engine.take_snapshot())

    assert manager.poll_cursor("s1", "c1") is None
    env.run(until=manager.merged("s1", client_id="c1"))
    assert manager.merge_generation("s1") == 1
    assert manager.poll_cursor("s1", "c1") == 1
    redundant = obs.metrics.counter(
        "aida_polls_redundant_total", ""
    )
    assert redundant.total() == 0
    # Nothing new: the same generation is re-served and counted.
    env.run(until=manager.merged("s1", client_id="c1"))
    assert manager.poll_cursor("s1", "c1") == 1
    assert redundant.total() == 1
    # Fresh data bumps the generation; the re-poll is not redundant.
    engine.tree.get("/h").fill(0.9)
    manager.submit_snapshot("s1", engine.take_snapshot())
    env.run(until=manager.merged("s1", client_id="c1"))
    assert manager.poll_cursor("s1", "c1") == 2
    assert redundant.total() == 1


def test_drop_session_clears_coalescing_state():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0)
    engine = _engine_with_data("e0", [0.3])
    manager.submit_snapshot("s1", engine.take_snapshot())
    env.run(until=manager.merged("s1", client_id="c1"))
    assert manager.session_cache_keys("s1") != []
    manager.drop_session("s1")
    assert manager.session_cache_keys("s1") == []
    assert manager.poll_cursor("s1", "c1") is None


# -- property: coalesced replies equal the reference flat merge ---------


def reference_merge(latest):
    merged = ObjectTree()
    for engine_id in sorted(latest):
        merged.merge_from(latest[engine_id])
    return merged.to_dict()


@pytest.mark.parametrize("seed", range(4))
def test_coalesced_polls_bit_identical_to_uncoalesced_reference(seed):
    rng = random.Random(seed)
    env = Environment()
    obs = Observability(env, enabled=True)
    manager = AIDAManagerService(
        env,
        merge_cost_per_tree=0.01,
        obs=obs,
        coalesce=True,
        coalesce_window_s=0.05,
    )
    engines = {
        f"e{i}": _engine_with_data(f"e{i}", [rng.random()]) for i in range(3)
    }
    #: engine -> deep copy of its tree at the latest accepted snapshot.
    latest = {}
    n_clients = 5

    def poll(client_id, results):
        tree_dict, progress = yield manager.merged(
            "s1", client_id=client_id
        )
        results.append((tree_dict, progress.merge_generation))

    for _ in range(8):
        # A random batch of new data lands...
        for engine_id in sorted(engines):
            if rng.random() < 0.7:
                engine = engines[engine_id]
                for _ in range(rng.randrange(1, 4)):
                    engine.tree.get("/h").fill(rng.random())
                status = manager.submit_snapshot(
                    "s1", engine.take_snapshot()
                )
                if status == "resync":
                    status = manager.submit_snapshot(
                        "s1", engine.take_snapshot(full=True)
                    )
                assert status == "accepted"
                latest[engine_id] = engine.tree.copy()
        # ...then every client polls at the same instant.
        merges_before = len(manager.merge_log)
        results = []
        polls = [
            env.process(poll(f"c{i}", results)) for i in range(n_clients)
        ]
        env.run(until=env.all_of(polls))
        # One shared merge served everyone...
        assert len(manager.merge_log) - merges_before == 1
        # ...and every reply is byte-for-byte the reference flat merge.
        ref = reference_merge(latest)
        generation = results[0][1]
        for tree_dict, reply_generation in results:
            assert tree_dict == ref
            assert reply_generation == generation
        for index in range(n_clients):
            assert manager.poll_cursor("s1", f"c{index}") == generation

    # The coalesced-poll counter saw every join (leader polls excluded).
    coalesced = obs.metrics.counter("aida_polls_coalesced_total", "")
    assert coalesced.total() > 0
