"""Property-based tests for the batch scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.nodes import ComputeElement, NodeSpec, WorkerNode
from repro.grid.scheduler import BatchScheduler, JobState, QueueSpec
from repro.sim import Environment

job_specs = st.lists(
    st.tuples(
        st.sampled_from(["interactive", "batch"]),
        st.floats(min_value=0.1, max_value=20.0, allow_nan=False),  # run time
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),  # submit delay
    ),
    min_size=1,
    max_size=20,
)


def build(n_workers):
    env = Environment()
    workers = [WorkerNode(env, f"w{i}", NodeSpec()) for i in range(n_workers)]
    scheduler = BatchScheduler(env, ComputeElement("ce", workers))
    scheduler.add_queue(QueueSpec("interactive", priority=1, dispatch_latency=0.0))
    scheduler.add_queue(QueueSpec("batch", priority=10, dispatch_latency=0.0))
    return env, scheduler


@given(st.integers(min_value=1, max_value=4), job_specs)
@settings(max_examples=50, deadline=None)
def test_no_job_is_lost(n_workers, specs):
    """Every submitted job eventually completes, whatever the mix."""
    env, scheduler = build(n_workers)
    jobs = []

    def submitter(queue, run_time, delay):
        yield env.timeout(delay)

        def body(env_, worker):
            yield env_.timeout(run_time)

        jobs.append(scheduler.submit("j", queue, body))

    for queue, run_time, delay in specs:
        env.process(submitter(queue, run_time, delay))
    env.run()
    assert len(jobs) == len(specs)
    assert all(job.state == JobState.COMPLETED for job in jobs)
    assert scheduler.idle_worker_count == n_workers
    assert scheduler.pending_count == 0


@given(st.integers(min_value=1, max_value=4), job_specs)
@settings(max_examples=50, deadline=None)
def test_concurrency_never_exceeds_workers(n_workers, specs):
    env, scheduler = build(n_workers)
    peak = [0]

    def submitter(queue, run_time, delay):
        yield env.timeout(delay)

        def body(env_, worker):
            peak[0] = max(peak[0], scheduler.running_count)
            yield env_.timeout(run_time)

        scheduler.submit("j", queue, body)

    for queue, run_time, delay in specs:
        env.process(submitter(queue, run_time, delay))
    env.run()
    assert peak[0] <= n_workers


@given(job_specs)
@settings(max_examples=50, deadline=None)
def test_interactive_jobs_never_start_after_colocated_batch(specs):
    """Among jobs *pending together*, interactive beats batch to dispatch.

    Submit everything at t=0 onto a single worker: the completion order
    must put every interactive job before every batch job (FIFO within
    class), regardless of run times.
    """
    env, scheduler = build(1)
    order = []

    def make_body(index):
        def body(env_, worker):
            order.append(index)
            yield env_.timeout(1.0)

        return body

    # Ignore the per-spec delays: all at t=0 so priority fully decides.
    kinds = [queue for queue, _, _ in specs]
    for index, queue in enumerate(kinds):
        scheduler.submit("j", queue, make_body(index))
    env.run()
    started_kinds = [kinds[i] for i in order]
    first_batch = next(
        (pos for pos, kind in enumerate(started_kinds) if kind == "batch"),
        len(started_kinds),
    )
    assert all(kind == "batch" for kind in started_kinds[first_batch:])
