"""Multi-site federation: brokering, migration, partition failover.

The acceptance bar for the federation subsystem is bit-identical
analysis: wherever the broker lands a session — home site, migrated
remote site, or a failover target mid-partition — the merged AIDA tree
must equal the single-site reference exactly (dict equality), and warm
repeats at a migrated site must skip the WAN fetch entirely.
"""

import pytest

from repro.analysis import higgs
from repro.client import IPAClient
from repro.core import GridSite, SiteConfig
from repro.federation import (
    FederatedClient,
    Federation,
    FederationError,
)
from repro.obs.dashboard import render_board, sites_section
from repro.resilience import FaultPlan, SiteFault

DATASET = dict(
    dataset_id="ilc-fed",
    path="/ilc/fed",
    size_mb=50.0,
    n_events=5_000,
    content={"kind": "ilc", "seed": 7},
)


def small_config(**overrides):
    return SiteConfig(n_workers=4, **overrides)


def single_site_reference(config=None):
    """Merged tree of the same analysis on a lone site (SE-resident)."""
    site = GridSite(config or small_config())
    site.register_dataset(
        DATASET["dataset_id"],
        DATASET["path"],
        size_mb=DATASET["size_mb"],
        n_events=DATASET["n_events"],
        content=DATASET["content"],
        origin_host=None,
    )
    credential = site.enroll_user("/O=ILC/CN=ref-user")
    client = IPAClient(site, credential)
    out = {}

    def scenario():
        yield from client.obtain_proxy_and_connect(
            dataset_hint=DATASET["dataset_id"]
        )
        yield from client.select_dataset(DATASET["dataset_id"])
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=5.0)
        out["tree"] = final.tree.to_dict()
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    return out["tree"]


def build_federation(n_sites=2, **fed_kwargs):
    config = fed_kwargs.pop("site_config", small_config())
    fed = Federation(n_sites=n_sites, site_config=config, **fed_kwargs)
    fed.register_dataset(
        DATASET["dataset_id"],
        DATASET["path"],
        size_mb=DATASET["size_mb"],
        n_events=DATASET["n_events"],
        content=DATASET["content"],
        home="site1",
    )
    return fed


def drive_session(fed, client, site=None, migrate=True, out=None):
    """Full workflow via the federated client; returns merged tree dict."""
    out = out if out is not None else {}

    def scenario():
        yield from client.connect(
            dataset_hint=DATASET["dataset_id"], site=site, migrate=migrate
        )
        staged = yield from client.select_dataset(DATASET["dataset_id"])
        out["fetch_skipped"] = staged.fetch_skipped
        out["site"] = client.site_name
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=5.0)
        out["tree"] = final.tree.to_dict()
        yield from client.close()

    fed.run(until=fed.env.process(scenario()))
    return out


# -- topology -------------------------------------------------------------

def test_sites_share_env_network_and_ca():
    fed = Federation(n_sites=3, site_config=small_config())
    assert fed.site_names == ["site1", "site2", "site3"]
    for site in fed.sites.values():
        assert site.env is fed.env
        assert site.network is fed.network
        assert site.ca is fed.ca
    # pairwise SE-to-SE WAN links exist
    for a, b in [("site1", "site2"), ("site1", "site3"), ("site2", "site3")]:
        name = f"wan-{a}-se-{b}-se"
        link = fed.network.links[name]
        assert link.bandwidth == fed.calibration.intersite_wan_mbps


def test_site_hosts_carry_site_labels():
    fed = Federation(n_sites=2, site_config=small_config())
    assert fed.network.hosts["site1-se"].site == "site1"
    assert fed.network.hosts["site2-w0"].site == "site2"
    assert fed.network.hosts["desktop"].site == "home"
    assert fed.network.hosts["repository"].site == "archive"


def test_duplicate_site_names_rejected():
    with pytest.raises(FederationError):
        Federation(site_names=["a", "a"], site_config=small_config())


def test_federation_requires_replica_cache():
    with pytest.raises(FederationError):
        Federation(
            n_sites=2,
            site_config=small_config(enable_replica_cache=False),
        )


def test_enroll_user_is_valid_at_every_site():
    fed = Federation(n_sites=2, site_config=small_config())
    credential = fed.enroll_user("/O=ILC/CN=roamer")
    for site in fed.sites.values():
        assert site.authz.vo_of(credential.subject) == "ilc"


# -- catalog ----------------------------------------------------------------

def test_register_home_resident_remote_origin():
    fed = build_federation()
    assert fed.catalog.home(DATASET["dataset_id"]) == "site1"
    assert fed.catalog.sites_with_copy(DATASET["dataset_id"]) == ["site1"]
    home_loc = fed.site("site1").locator.locate(DATASET["dataset_id"])
    remote_loc = fed.site("site2").locator.locate(DATASET["dataset_id"])
    assert home_loc.origin_host is None
    assert remote_loc.origin_host == "site1-se"


def test_duplicate_registration_rejected():
    fed = build_federation()
    with pytest.raises(FederationError):
        fed.register_dataset(
            DATASET["dataset_id"], "/elsewhere", size_mb=1.0, n_events=10
        )


def test_republish_invalidates_only_origin_site():
    """The locator-hook site id prevents cross-site over-invalidation."""
    fed = build_federation()
    ds = DATASET["dataset_id"]

    def migrate():
        yield from fed.policy.ensure_resident(ds, "site2")

    fed.run(until=fed.env.process(migrate()))
    assert fed.catalog.sites_with_copy(ds) == ["site1", "site2"]

    fed.catalog.republish(ds, "site1")
    # site1's update bumped only site1's generation...
    assert fed.catalog.generation(ds, "site1") == 1
    assert fed.catalog.generation(ds, "site2") == 0
    assert ("ilc-fed", "site1") in fed.catalog.invalidations
    # ...and site2's migrated whole copy keeps serving.
    assert "site2" in fed.catalog.sites_with_copy(ds)


# -- broker -----------------------------------------------------------------

def test_broker_prefers_data_local_site():
    fed = build_federation()
    ranked = fed.broker.rank(DATASET["dataset_id"], n_engines=4)
    assert ranked[0].site == "site1"
    assert ranked[0].resident_mb == DATASET["size_mb"]
    assert ranked[0].transfer_s == 0.0
    assert ranked[1].site == "site2"
    assert ranked[1].wan_mb == DATASET["size_mb"]
    assert ranked[1].transfer_s > 0.0


def test_broker_excludes_partitioned_site():
    fed = build_federation()
    fed.partition_site("site1")
    assert fed.broker.score("site1", DATASET["dataset_id"]) is None
    ranked = fed.broker.rank(DATASET["dataset_id"])
    assert [score.site for score in ranked] == ["site2"]
    fed.heal_site("site1")
    assert fed.broker.rank(DATASET["dataset_id"])[0].site == "site1"


def test_broker_charges_admission_and_queue_depth():
    fed = build_federation(
        site_config=small_config(max_concurrent_engines=4)
    )
    busy = FederatedClient(fed, fed.enroll_user("/O=ILC/CN=busy"))

    def occupy():
        yield from busy.connect(n_engines=4, site="site1", migrate=False)

    fed.run(until=fed.env.process(occupy()))
    score = fed.broker.score("site1", n_engines=4)
    assert score.queue_depth == 1
    assert score.admission_wait_s > 0.0
    # an idle site with no data penalty outranks the saturated one
    ranked = fed.broker.rank(n_engines=4)
    assert ranked[0].site == "site2"


# -- replication policy ------------------------------------------------------

def test_ensure_resident_migrates_once_then_noops():
    fed = build_federation()
    ds = DATASET["dataset_id"]
    results = []

    def migrate_twice():
        results.append((yield from fed.policy.ensure_resident(ds, "site2")))
        results.append((yield from fed.policy.ensure_resident(ds, "site2")))

    fed.run(until=fed.env.process(migrate_twice()))
    assert results == [True, False]
    assert fed.stats()["migrations"] == 1
    stats = {row["site"]: row for row in fed.stats()["sites"]}
    assert stats["site1"]["wan_out_mb"] == DATASET["size_mb"]
    assert stats["site2"]["wan_in_mb"] == DATASET["size_mb"]


def test_rank_sources_skips_partitioned_sites():
    fed = build_federation(n_sites=3)
    ds = DATASET["dataset_id"]

    def pin():
        yield from fed.policy.ensure_pinned(ds, 2)

    fed.run(until=fed.env.process(pin()))
    have = fed.catalog.sites_with_copy(ds)
    assert len(have) == 2
    target = next(n for n in fed.site_names if n not in have)
    assert len(fed.policy.rank_sources(ds, target)) == 2
    fed.partition_site("site1")
    sources = fed.policy.rank_sources(ds, target)
    assert [name for name, _est in sources] == [
        n for n in have if n != "site1"
    ]


def test_byte_pressure_evicts_oldest_migrated_copy_over_pin():
    # ceiling fits home + one migrated copy, not two
    fed = build_federation(n_sites=3, max_replica_mb=120.0)
    ds = DATASET["dataset_id"]

    def migrate_both():
        yield from fed.policy.ensure_resident(ds, "site2")
        yield from fed.policy.ensure_resident(ds, "site3")

    fed.run(until=fed.env.process(migrate_both()))
    # the site2 copy (oldest migration) was evicted, home never is
    assert fed.catalog.sites_with_copy(ds) == ["site1", "site3"]
    assert fed.stats()["evictions"] == 1


def test_pinned_copies_survive_byte_pressure():
    fed = build_federation(n_sites=3, max_replica_mb=120.0)
    ds = DATASET["dataset_id"]
    fed.policy.pin(ds, 3)

    def migrate_both():
        yield from fed.policy.ensure_resident(ds, "site2")
        yield from fed.policy.ensure_resident(ds, "site3")

    fed.run(until=fed.env.process(migrate_both()))
    # over the ceiling, but every copy is pinned: nothing to evict
    assert len(fed.catalog.sites_with_copy(ds)) == 3
    assert fed.stats()["evictions"] == 0


# -- end-to-end acceptance ---------------------------------------------------

def test_remote_site_session_bit_identical_and_warm_repeat():
    """Acceptance: brokered non-home session == single-site reference.

    First session forced to the non-home site migrates the dataset via
    SE-to-SE third-party transfer and stages warm off the local SE; the
    repeat session there skips the WAN entirely (no second migration).
    """
    reference = single_site_reference()
    fed = build_federation(
        site_config=small_config(enable_observability=True)
    )
    ftp_counter = fed.obs.metrics.counter("ftp_third_party_transfers_total")

    first = drive_session(
        fed, FederatedClient(fed, fed.enroll_user("/O=ILC/CN=a")), site="site2"
    )
    assert first["site"] == "site2"
    assert first["tree"] == reference
    assert first["fetch_skipped"] is True  # staged warm off migrated copy
    assert ftp_counter.total() == 1.0
    assert fed.stats()["migrations"] == 1
    loc = fed.site("site2").locator.locate(DATASET["dataset_id"])
    assert fed.site("site2").replicas.has_whole(loc)

    second = drive_session(
        fed, FederatedClient(fed, fed.enroll_user("/O=ILC/CN=b")), site="site2"
    )
    assert second["tree"] == reference
    assert second["fetch_skipped"] is True
    assert ftp_counter.total() == 1.0  # no second WAN transfer
    assert fed.stats()["migrations"] == 1


def test_home_site_session_matches_reference_without_wan():
    reference = single_site_reference()
    fed = build_federation()
    result = drive_session(
        fed, FederatedClient(fed, fed.enroll_user("/O=ILC/CN=c"))
    )
    assert result["site"] == "site1"  # broker picked the data-local site
    assert result["tree"] == reference
    assert fed.stats()["migrations"] == 0


def test_ranked_fallback_on_admission_refusal():
    """A saturated first choice falls through to the next-ranked site."""
    reference = single_site_reference()
    fed = build_federation(
        site_config=small_config(max_concurrent_engines=4)
    )
    busy = FederatedClient(fed, fed.enroll_user("/O=ILC/CN=hog"))

    def occupy():
        yield from busy.connect(n_engines=4, site="site1", migrate=False)

    fed.run(until=fed.env.process(occupy()))
    result = drive_session(
        fed, FederatedClient(fed, fed.enroll_user("/O=ILC/CN=d"))
    )
    assert result["site"] == "site2"
    assert result["tree"] == reference
    assert fed.stats()["fallbacks"] >= 1


def test_partition_mid_run_fails_over_with_identical_tree():
    reference = single_site_reference()
    fed = build_federation()
    client = FederatedClient(fed, fed.enroll_user("/O=ILC/CN=e"))
    ds = DATASET["dataset_id"]
    out = {}

    def scenario():
        yield from fed.policy.ensure_pinned(ds, 2)
        yield from client.connect(dataset_hint=ds)
        first_site = client.site_name
        yield from client.select_dataset(ds)
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()
        yield fed.env.timeout(3.0)
        fed.partition_site(first_site)
        final = yield from client.wait_for_completion(poll_interval=5.0)
        out["first"], out["second"] = first_site, client.site_name
        out["tree"] = final.tree.to_dict()
        yield from client.close()

    fed.run(until=fed.env.process(scenario()))
    assert out["second"] != out["first"]
    assert out["tree"] == reference
    assert fed.stats()["failovers"] == 1
    # the marooned session is orphaned at the partitioned site
    assert (
        fed.site(out["first"]).session_service.active_sessions == 1
    )


def test_scheduled_site_fault_plan_partitions_boundary():
    fed = build_federation()
    plan = FaultPlan().add_site(SiteFault(site="site1", at=5.0))
    fed.site("site1").injector.apply(plan)
    fed.run(until=10.0)
    # boundary links are down; intra-site LAN is untouched
    assert not fed.network.links["wan-site1-se-site2-se"].up
    assert fed.network.links["lan-site1-manager-site1-se"].up


# -- stats + dashboard -------------------------------------------------------

def test_stats_panel_rows_and_dashboard_render():
    fed = build_federation(
        site_config=small_config(enable_observability=True)
    )
    drive_session(
        fed, FederatedClient(fed, fed.enroll_user("/O=ILC/CN=f")), site="site2"
    )
    fed.partition_site("site1")
    stats = fed.stats()
    rows = {row["site"]: row for row in stats["sites"]}
    assert rows["site1"]["partitioned"] is True
    assert rows["site2"]["sessions"] == 1
    assert rows["site2"]["wan_in_mb"] == DATASET["size_mb"]
    assert stats["brokered"] == 1

    board = render_board(fed.obs, federation=fed)
    assert "sites (1 brokered" in board
    assert "<< PARTITIONED" in board
    assert "site2" in board

    lines = sites_section(stats["sites"])
    assert len(lines) == 2
    assert "PARTITIONED" in lines[0]


def test_control_service_stats_carry_site_panel():
    fed = build_federation()
    panel = fed.site("site2").control.stats()["site"]
    assert panel["name"] == "site2"
    assert panel["sessions"] == 0
    assert panel["resident_replica_mb"] == 0.0
