"""Property-based tests for the simulation kernel and the network model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.network import Network, star_topology
from repro.sim import Environment, Resource, Store


# ---------------------------------------------------------------------------
# Kernel properties
# ---------------------------------------------------------------------------

delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=30,
)


@given(delays)
def test_events_processed_in_time_order(delay_list):
    """The clock never goes backwards, whatever the schedule order."""
    env = Environment()
    observed = []

    def proc(delay):
        yield env.timeout(delay)
        observed.append(env.now)

    for delay in delay_list:
        env.process(proc(delay))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delay_list)
    assert env.now == pytest.approx(max(delay_list))


@given(delays)
def test_simulation_deterministic(delay_list):
    """Two identical runs produce identical traces."""

    def trace():
        env = Environment()
        log = []

        def proc(index, delay):
            yield env.timeout(delay)
            log.append((index, env.now))

        for index, delay in enumerate(delay_list):
            env.process(proc(index, delay))
        env.run()
        return log

    assert trace() == trace()


@given(delays)
def test_same_time_events_fifo(delay_list):
    """Processes scheduled at the same instant run in creation order."""
    env = Environment()
    order = []

    def proc(index):
        yield env.timeout(1.0)
        order.append(index)

    for index in range(len(delay_list)):
        env.process(proc(index))
    env.run()
    assert order == list(range(len(delay_list)))


@given(
    st.integers(min_value=1, max_value=5),
    st.lists(
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
)
def test_resource_never_exceeds_capacity(capacity, hold_times):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    max_in_use = [0]

    def user(hold):
        with resource.request() as req:
            yield req
            max_in_use[0] = max(max_in_use[0], resource.count)
            yield env.timeout(hold)

    for hold in hold_times:
        env.process(user(hold))
    env.run()
    assert max_in_use[0] <= capacity
    assert resource.count == 0


@given(st.lists(st.integers(), max_size=30))
def test_store_preserves_fifo_order(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for item in items:
            yield store.put(item)
            yield env.timeout(0.1)

    def consumer():
        for _ in items:
            value = yield store.get()
            received.append(value)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == items


# ---------------------------------------------------------------------------
# Network properties
# ---------------------------------------------------------------------------

transfer_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),           # destination leaf
        st.floats(min_value=0.1, max_value=50.0, allow_nan=False),  # MB
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False),   # start delay
    ),
    min_size=1,
    max_size=15,
)


@given(transfer_specs)
@settings(max_examples=50, deadline=None)
def test_all_transfers_complete_and_conserve_bytes(specs):
    env = Environment()
    net = star_topology(env, "hub", [f"w{i}" for i in range(8)], bandwidth=10.0)
    stats = []

    def launcher(dest, size, delay):
        yield env.timeout(delay)
        result = yield net.transfer("hub", f"w{dest}", size)
        stats.append(result)

    for dest, size, delay in specs:
        env.process(launcher(dest, size, delay))
    env.run()
    assert len(stats) == len(specs)
    assert sum(s.size_mb for s in stats) == pytest.approx(
        sum(size for _, size, _ in specs)
    )
    assert net.active_flow_count == 0


@given(transfer_specs)
@settings(max_examples=50, deadline=None)
def test_transfer_duration_bounded_below_by_ideal(specs):
    """No flow finishes faster than size / bottleneck-bandwidth."""
    env = Environment()
    net = star_topology(env, "hub", [f"w{i}" for i in range(8)], bandwidth=10.0)
    procs = []

    def launcher(dest, size, delay):
        yield env.timeout(delay)
        result = yield net.transfer("hub", f"w{dest}", size)
        return result

    for dest, size, delay in specs:
        procs.append(env.process(launcher(dest, size, delay)))
    env.run()
    for proc, (_, size, _) in zip(procs, specs):
        assert proc.value.duration >= size / 10.0 - 1e-9


@given(transfer_specs)
@settings(max_examples=30, deadline=None)
def test_total_time_bounded_by_serialized_transfer(specs):
    """Max-min sharing can never be slower than full serialization."""
    env = Environment()
    net = star_topology(env, "hub", [f"w{i}" for i in range(8)], bandwidth=10.0)
    finished = []

    for dest, size, delay in specs:

        def launcher(dest=dest, size=size, delay=delay):
            yield env.timeout(delay)
            stats = yield net.transfer("hub", f"w{dest}", size)
            finished.append(stats.finished_at)

        env.process(launcher())
    env.run()
    # Note: env.now itself may drain past the last completion because
    # interrupted flows leave orphaned (harmless) timeouts on the heap;
    # the bound applies to actual completion times.
    serialized = max(d for _, _, d in specs) + sum(
        size for _, size, _ in specs
    ) / 10.0
    assert max(finished) <= serialized + 1e-6


@given(
    st.floats(min_value=0.5, max_value=100.0, allow_nan=False),
    st.integers(min_value=1, max_value=6),
)
def test_equal_flows_finish_simultaneously(size, n_flows):
    """Identical flows sharing one link all finish at the same instant."""
    env = Environment()
    net = Network(env)
    net.add_host("a")
    net.add_host("b")
    net.add_link("ab", "a", "b", bandwidth=10.0)
    procs = [net.transfer("a", "b", size) for _ in range(n_flows)]
    env.run()
    durations = [p.value.duration for p in procs]
    assert max(durations) == pytest.approx(min(durations))
    assert durations[0] == pytest.approx(size * n_flows / 10.0)
