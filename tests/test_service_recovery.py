"""Durable session checkpointing and service-crash recovery.

Covers the durable layer bottom-up: the crash-surviving store, the
write-ahead journal (torn tails included), journal replay, keyframe/delta
checkpoints, AIDA merge-state capture/restore, and the full
crash → restart → reconnect workflow, whose recovered results must be
bit-identical to an uninterrupted run.
"""

import numpy as np
import pytest

from repro.analysis import higgs
from repro.client.client import IPAClient
from repro.core.site import GridSite, SiteConfig
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.faults import ServiceUnavailable
from repro.resilience.journal import (
    DurableStore,
    SessionJournal,
    decode_record,
    replay_journal,
)
from repro.services.envelope import Fault
from repro.services.session import SessionError
from repro.engine.engine import Snapshot


# ---------------------------------------------------------------------------
# DurableStore
# ---------------------------------------------------------------------------

def test_durable_store_crash_drops_unsynced_tail():
    store = DurableStore()
    store.append("journal/s1", "a", sync=True)
    store.append("journal/s1", "b", sync=False)
    store.append("journal/s1", "c", sync=False)
    store.crash()
    assert store.read("journal/s1") == ["a"]
    # A sync makes the tail durable.
    store.append("journal/s1", "d", sync=False)
    store.sync("journal/s1")
    store.crash()
    assert store.read("journal/s1") == ["a", "d"]


def test_durable_store_names_and_delete():
    store = DurableStore()
    store.append("journal/s2", "x")
    store.append("checkpoint/s2", "y")
    assert store.names("journal/") == ["journal/s2"]
    store.delete("journal/s2")
    assert store.names("journal/") == []
    assert store.read("journal/s2") == []


# ---------------------------------------------------------------------------
# SessionJournal
# ---------------------------------------------------------------------------

def test_journal_round_trip_and_seq_resume():
    store = DurableStore()
    journal = SessionJournal(store, "s1")
    journal.append("create", session_id="s1", owner="/CN=a")
    journal.append("control", verb="run")
    # A fresh reader (post-restart) sees both records and resumes seq.
    reader = SessionJournal(store, "s1")
    records = reader.records()
    assert [r["type"] for r in records] == ["create", "control"]
    assert records[0]["data"]["owner"] == "/CN=a"
    third = reader.append("closing")
    assert third["seq"] == 3


def test_journal_torn_tail_tolerated():
    store = DurableStore()
    journal = SessionJournal(store, "s1")
    journal.append("create", session_id="s1")
    journal.append("control", verb="run")
    store.tear(journal.name)  # crash mid-append halves the last line
    reader = SessionJournal(store, "s1")
    records = reader.records()
    assert [r["type"] for r in records] == ["create"]
    assert reader.torn_records == 1


def test_record_checksum_rejects_corruption():
    store = DurableStore()
    journal = SessionJournal(store, "s1")
    journal.append("create", session_id="s1")
    line = store.read(journal.name)[0]
    assert decode_record(line) is not None
    assert decode_record(line[:-3] + "xyz") is None
    assert decode_record("garbage") is None


def test_replay_journal_folds_lifecycle():
    store = DurableStore()
    journal = SessionJournal(store, "s1")
    journal.append(
        "create",
        session_id="s1",
        owner="/CN=a",
        token="tok",
        n_engines=2,
        engines={"s1-engine-0": "w0", "s1-engine-1": "w1"},
    )
    journal.append(
        "stage",
        dataset_id="ds",
        strategy="by-events",
        size_mb=10.0,
        n_events=100,
        content={"kind": "ilc", "seed": 1},
        parts=[
            {"part_index": 0, "start_event": 0, "stop_event": 50,
             "size_mb": 5.0, "worker": "w0"},
            {"part_index": 1, "start_event": 50, "stop_event": 100,
             "size_mb": 5.0, "worker": "w1"},
        ],
        assignments={"s1-engine-0": [0], "s1-engine-1": [1]},
        staged={},
    )
    journal.append("control", verb="run")
    journal.append("quarantine", engine_id="s1-engine-1")
    model = replay_journal(journal.records())
    assert model.running
    assert model.banned == {"s1-engine-1"}
    assert sorted(model.engines) == ["s1-engine-0"]
    assert model.orphaned == [1]  # the dead engine's part
    journal.append("dispatch", engine_id="s1-engine-0", part_index=1)
    model = replay_journal(journal.records())
    assert model.orphaned == []
    assert model.assignments["s1-engine-0"] == [0, 1]
    assert not model.closed
    journal.append("closing")
    journal.append("closed")
    model = replay_journal(journal.records())
    assert model.closing and model.closed


def test_replay_journal_without_create_returns_none():
    assert replay_journal([]) is None
    assert replay_journal([{"type": "control", "data": {"verb": "run"}}]) is None


# ---------------------------------------------------------------------------
# CheckpointStore
# ---------------------------------------------------------------------------

def _merge_state(run_id=0, **engines):
    return {
        "run_id": run_id,
        "expected": len(engines),
        "banned": [],
        "engines": dict(engines),
    }


def _engine(sequence, value):
    return {
        "sequence": sequence,
        "events_processed": value,
        "total_events": 100,
        "analysis_version": 1,
        "run_id": 0,
        "final": False,
        "tree": {"/h": value},
    }


def test_checkpoint_keyframe_delta_round_trip():
    store = DurableStore()    # every 2nd write is a keyframe
    ckpt = CheckpointStore(store, "s1", keyframe_every=2)
    k1 = ckpt.write({"rewinds": 0}, _merge_state(e0=_engine(1, 10)))
    assert k1 == "keyframe"
    # Only e1 advanced: the next write ships just that engine.
    k2 = ckpt.write(
        {"rewinds": 0},
        _merge_state(e0=_engine(1, 10), e1=_engine(1, 20)),
    )
    assert k2 == "delta"
    session_state, merge_state = CheckpointStore(store, "s1").load()
    assert session_state == {"rewinds": 0}
    assert sorted(merge_state["engines"]) == ["e0", "e1"]
    assert merge_state["engines"]["e1"]["tree"] == {"/h": 20}


def test_checkpoint_torn_record_falls_back_to_last_committed():
    store = DurableStore()
    ckpt = CheckpointStore(store, "s1", keyframe_every=2)
    ckpt.write({"rewinds": 0}, _merge_state(e0=_engine(1, 10)))
    ckpt.write({"rewinds": 0}, _merge_state(e0=_engine(2, 30)), torn=True)
    session_state, merge_state = CheckpointStore(store, "s1").load()
    # The torn delta is unreadable; the keyframe state survives.
    assert merge_state["engines"]["e0"]["events_processed"] == 10


def test_checkpoint_run_id_change_forces_keyframe():
    store = DurableStore()
    ckpt = CheckpointStore(store, "s1", keyframe_every=100)
    assert ckpt.write({"rewinds": 0}, _merge_state(e0=_engine(1, 10))) == "keyframe"
    assert (
        ckpt.write(
            {"rewinds": 0},
            _merge_state(e0=_engine(1, 10), e1=_engine(1, 5)),
        )
        == "delta"
    )
    state = _merge_state(e0=_engine(1, 1))
    state["run_id"] = 1  # rewind: deltas against the old run are meaningless
    assert ckpt.write({"rewinds": 1}, state) == "keyframe"


def test_checkpoint_delta_records_removed_engines():
    store = DurableStore()
    ckpt = CheckpointStore(store, "s1", keyframe_every=10)
    ckpt.write(
        {"rewinds": 0}, _merge_state(e0=_engine(1, 10), e1=_engine(1, 20))
    )
    ckpt.write({"rewinds": 0}, _merge_state(e0=_engine(2, 15)))
    _, merge_state = CheckpointStore(store, "s1").load()
    assert sorted(merge_state["engines"]) == ["e0"]


# ---------------------------------------------------------------------------
# End-to-end service crash -> restart -> reconnect
# ---------------------------------------------------------------------------

N_WORKERS = 4
N_EVENTS = 4000
SIZE_MB = 40.0


def _build():
    site = GridSite(SiteConfig(n_workers=N_WORKERS, checkpoint_every_s=10.0))
    site.register_dataset(
        "ds", "/t/ds", size_mb=SIZE_MB, n_events=N_EVENTS,
        content={"kind": "ilc", "seed": 7},
    )
    return site, IPAClient(site, site.enroll_user("/CN=alice"))


def _run(crash=False, torn=False, kill_worker_during_downtime=False,
         downtime=30.0):
    site, client = _build()
    out = {}

    def scenario():
        info = yield from client.obtain_proxy_and_connect(n_engines=N_WORKERS)
        yield from client.select_dataset("ds")
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()
        if crash:
            # Mid-run: at least one snapshot per engine has been merged.
            while site.aida.snapshot_count(info.session_id) < N_WORKERS:
                yield site.env.timeout(1.0)
            site.injector.crash_services(torn_checkpoint=torn)
            out["crashed_at"] = site.env.now
            # Polling during the outage fails (token revoked / service
            # down) instead of hanging.
            with pytest.raises((ServiceUnavailable, Fault)):
                yield from client.poll()
            if kill_worker_during_downtime:
                victim = site.registry.engines(info.session_id)[0]
                site.injector.crash_worker(victim.worker)
                out["victim"] = victim.engine_id
            yield site.env.timeout(downtime)
            yield site.injector.restart_services()
            yield from client.reconnect()
        final = yield from client.wait_for_completion(
            poll_interval=2.0, timeout=20_000.0, reconnect=True
        )
        out["progress"] = final.progress
        out["hist"] = final.tree.get("/higgs/dijet_mass")
        out["status"] = yield from client.status()
        out["session_id"] = info.session_id
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    out["site"] = site
    out["client"] = client
    return out


def test_service_crash_recovery_bit_identical():
    baseline = _run()
    recovered = _run(crash=True)
    assert recovered["progress"].complete
    assert recovered["progress"].events_processed == N_EVENTS
    base_hist, rec_hist = baseline["hist"], recovered["hist"]
    assert rec_hist.entries == base_hist.entries
    assert np.array_equal(rec_hist.heights(), base_hist.heights())
    assert rec_hist.to_dict() == base_hist.to_dict()
    assert not recovered["status"]["failures"]


def test_service_crash_with_torn_checkpoint_recovers():
    baseline = _run()
    recovered = _run(crash=True, torn=True)
    assert recovered["progress"].complete
    assert recovered["hist"].to_dict() == baseline["hist"].to_dict()


def test_worker_death_during_downtime_is_recovered():
    baseline = _run()
    recovered = _run(crash=True, kill_worker_during_downtime=True)
    assert recovered["progress"].complete
    assert recovered["hist"].to_dict() == baseline["hist"].to_dict()
    status = recovered["status"]
    # The engine that died while the service was down was quarantined on
    # recovery and its partition re-dispatched.
    assert [r["engine_id"] for r in status["recoveries"]] == [
        recovered["victim"]
    ]
    assert len(status["redispatches"]) >= 1
    assert status["orphaned_parts"] == 0


def test_reconnect_identity_and_lifecycle_errors():
    site, client = _build()
    intruder = IPAClient(site, site.enroll_user("/CN=mallory"))
    out = {}

    def scenario():
        info = yield from client.obtain_proxy_and_connect(n_engines=2)
        intruder.obtain_proxy()
        with pytest.raises(SessionError, match="identity"):
            yield from intruder.reconnect(info.session_id)
        with pytest.raises(SessionError, match="no active session"):
            yield from client.reconnect("session-does-not-exist")
        yield from client.close()
        out["done"] = True

    site.env.run(until=site.env.process(scenario()))
    assert out["done"]


def test_reconnect_retries_while_service_down():
    site, client = _build()
    out = {}

    def scenario():
        info = yield from client.obtain_proxy_and_connect(n_engines=2)
        site.injector.crash_services()
        # Restart the services while the client is mid-backoff: the
        # reconnect loop should land on a later attempt.
        def restart_later():
            yield site.env.timeout(3.0)
            yield site.injector.restart_services()
        site.env.process(restart_later())
        refreshed = yield from client.reconnect(info.session_id)
        assert refreshed.session_id == info.session_id
        assert refreshed.token == info.token
        out["reconnected_at"] = site.env.now
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    assert out["reconnected_at"] >= 3.0


# ---------------------------------------------------------------------------
# close() idempotency across the recovery boundary (satellite)
# ---------------------------------------------------------------------------

def test_close_idempotent_across_recovery_boundary():
    site, client = _build()
    out = {}
    unpin_calls = []
    original_unpin = site.replicas.unpin_session
    site.replicas.unpin_session = lambda sid: (
        unpin_calls.append(sid), original_unpin(sid))[1]

    def scenario():
        info = yield from client.obtain_proxy_and_connect(n_engines=2)
        yield from client.select_dataset("ds")
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()
        yield from client.wait_for_completion(poll_interval=2.0,
                                              timeout=20_000.0)
        yield from client.close()
        assert unpin_calls == [info.session_id]
        # Crash after the close completed; recovery must see only the
        # journal tombstone and must NOT resurrect the session.
        site.injector.crash_services()
        yield site.env.timeout(5.0)
        yield site.injector.restart_services()
        assert site.session_service.closed_before_crash(info.session_id)
        assert info.session_id not in site.session_service._sessions
        # Closing again (e.g. a client retrying a close whose response
        # was lost in the crash) is the idempotent no-op: no second
        # unpin, no error.
        result = yield site.container.call(
            "control", "close_session", {"session_id": info.session_id}
        )
        assert result is True
        assert unpin_calls == [info.session_id]
        # A zombie engine submitting into the closed session is dropped.
        zombie = Snapshot(
            engine_id="ghost", sequence=1, events_processed=1,
            total_events=1, analysis_version=1, run_id=0, tree={},
        )
        assert site.aida.submit_snapshot(info.session_id, zombie) == "dropped"
        out["done"] = True

    site.env.run(until=site.env.process(scenario()))
    assert out["done"]


# ---------------------------------------------------------------------------
# AIDA cache hygiene (satellite): no leaked per-session state
# ---------------------------------------------------------------------------

def test_drop_session_clears_every_aida_cache():
    out = _run()
    site, sid = out["site"], out["session_id"]
    assert site.aida.session_cache_keys(sid) == []
    assert site.aida.snapshot_count(sid) == 0


def test_drop_session_without_any_snapshot_leaves_no_state():
    site, client = _build()

    def scenario():
        info = yield from client.obtain_proxy_and_connect(n_engines=2)
        # No dataset, no snapshot ever submitted; close immediately.
        yield from client.close()
        assert site.aida.session_cache_keys(info.session_id) == []

    site.env.run(until=site.env.process(scenario()))


def test_discard_engine_after_drop_is_noop():
    out = _run()
    site, sid = out["site"], out["session_id"]
    site.aida.discard_engine(sid, "ghost-engine")
    assert site.aida.session_cache_keys(sid) == []


def test_recovered_session_leaves_no_cache_after_close():
    out = _run(crash=True)
    site, sid = out["site"], out["session_id"]
    assert site.aida.session_cache_keys(sid) == []
