"""Unit tests for the batch scheduler and its dedicated interactive queue."""

import pytest

from repro.grid.nodes import ComputeElement, NodeSpec, WorkerNode
from repro.grid.scheduler import (
    BatchScheduler,
    JobState,
    QueueSpec,
    SchedulerError,
)
from repro.sim import Environment, Interrupt


def build(n_workers=4):
    env = Environment()
    workers = [WorkerNode(env, f"w{i}", NodeSpec(cpu_mhz=866)) for i in range(n_workers)]
    ce = ComputeElement("ce", workers)
    sched = BatchScheduler(env, ce)
    sched.add_queue(QueueSpec("interactive", priority=1, dispatch_latency=1.0))
    sched.add_queue(QueueSpec("batch", priority=10, dispatch_latency=30.0))
    return env, sched


def sleeper(duration):
    def body(env, worker):
        yield env.timeout(duration)
        return f"slept-{duration}"

    return body


def test_queue_spec_validation():
    with pytest.raises(ValueError):
        QueueSpec("q", dispatch_latency=-1)
    with pytest.raises(ValueError):
        QueueSpec("q", max_wall_time=0)


def test_duplicate_queue_rejected():
    env, sched = build()
    with pytest.raises(SchedulerError):
        sched.add_queue(QueueSpec("batch"))


def test_submit_to_unknown_queue_rejected():
    env, sched = build()
    with pytest.raises(SchedulerError):
        sched.submit("j", "nope", sleeper(1))


def test_job_runs_and_completes():
    env, sched = build()
    job = sched.submit("j", "interactive", sleeper(5.0))
    env.run(until=job.done)
    assert job.state == JobState.COMPLETED
    assert job.result == "slept-5.0"
    assert job.start_time == pytest.approx(1.0)  # dispatch latency
    assert job.end_time == pytest.approx(6.0)
    assert job.wait_time == pytest.approx(1.0)


def test_job_lookup():
    env, sched = build()
    job = sched.submit("j", "interactive", sleeper(1))
    assert sched.job(job.id) is job
    with pytest.raises(SchedulerError):
        sched.job(999)


def test_interactive_dispatch_beats_batch():
    env, sched = build(n_workers=1)

    # Fill the single worker, then race an interactive and batch job.
    blocker = sched.submit("blocker", "interactive", sleeper(10.0))
    batch_job = sched.submit("batch", "batch", sleeper(1.0))
    inter_job = sched.submit("inter", "interactive", sleeper(1.0))
    env.run()
    # The interactive job (lower priority value) got the freed worker first.
    assert inter_job.start_time < batch_job.start_time


def test_jobs_fill_all_workers():
    env, sched = build(n_workers=4)
    jobs = [sched.submit(f"j{i}", "interactive", sleeper(10.0)) for i in range(4)]
    env.run(until=env.timeout(5.0))
    assert sched.running_count == 4
    assert sched.idle_worker_count == 0
    env.run()
    assert all(j.state == JobState.COMPLETED for j in jobs)
    assert sched.idle_worker_count == 4


def test_excess_jobs_wait_for_free_worker():
    env, sched = build(n_workers=2)
    jobs = [sched.submit(f"j{i}", "interactive", sleeper(10.0)) for i in range(3)]
    env.run()
    # Third job started only after a worker freed at t=11 (1 dispatch + 10).
    assert jobs[2].start_time == pytest.approx(12.0)


def test_each_running_job_gets_distinct_worker():
    env, sched = build(n_workers=3)
    jobs = [sched.submit(f"j{i}", "interactive", sleeper(5.0)) for i in range(3)]
    env.run()
    workers = {job.worker.name for job in jobs}
    assert len(workers) == 3


def test_cancel_pending_job():
    env, sched = build(n_workers=1)
    sched.submit("run", "interactive", sleeper(10.0))
    waiting = sched.submit("wait", "interactive", sleeper(10.0))
    env.run(until=env.timeout(2.0))
    sched.cancel(waiting.id)
    env.run()
    assert waiting.state == JobState.CANCELLED
    assert waiting.start_time is None


def test_cancel_running_job_interrupts_body():
    env, sched = build()
    job = sched.submit("j", "interactive", sleeper(100.0))

    def canceller():
        yield env.timeout(5.0)
        sched.cancel(job.id, "session-end")

    env.process(canceller())
    env.run()
    assert job.state == JobState.CANCELLED
    assert job.end_time == pytest.approx(5.0)


def test_cancel_terminal_job_is_noop():
    env, sched = build()
    job = sched.submit("j", "interactive", sleeper(1.0))
    env.run()
    sched.cancel(job.id)
    assert job.state == JobState.COMPLETED


def test_body_exception_fails_job():
    env, sched = build()

    def bad_body(env_, worker):
        yield env_.timeout(1.0)
        raise RuntimeError("analysis crashed")

    job = sched.submit("bad", "interactive", bad_body)
    env.run()
    assert job.state == JobState.FAILED
    assert isinstance(job.error, RuntimeError)


def test_wall_time_limit_kills_job():
    env, sched = build()
    sched.add_queue(
        QueueSpec("short", priority=1, dispatch_latency=0.0, max_wall_time=5.0)
    )
    job = sched.submit("long", "short", sleeper(100.0))
    env.run()
    assert job.state == JobState.KILLED
    assert job.end_time == pytest.approx(5.0)


def test_wall_time_limit_spares_fast_job():
    env, sched = build()
    sched.add_queue(
        QueueSpec("short", priority=1, dispatch_latency=0.0, max_wall_time=5.0)
    )
    job = sched.submit("quick", "short", sleeper(2.0))
    env.run()
    assert job.state == JobState.COMPLETED


def test_graceful_body_catches_interrupt():
    env, sched = build()

    def graceful(env_, worker):
        try:
            yield env_.timeout(100.0)
        except Interrupt:
            pass
        return "stopped-cleanly"

    job = sched.submit("g", "interactive", graceful)

    def canceller():
        yield env.timeout(3.0)
        sched.cancel(job.id)

    env.process(canceller())
    env.run()
    # The body swallowed the interrupt and returned normally.
    assert job.state == JobState.COMPLETED
    assert job.result == "stopped-cleanly"


def test_worker_engine_id_set_during_run():
    env, sched = build(n_workers=1)
    observed = []

    def body(env_, worker):
        observed.append(worker.engine_id)
        yield env_.timeout(1.0)

    sched.submit("j", "interactive", body)
    env.run()
    assert observed == ["job-1"]
    assert sched.element.workers[0].engine_id is None


def test_pending_count():
    env, sched = build(n_workers=1)
    sched.submit("a", "interactive", sleeper(10))
    sched.submit("b", "interactive", sleeper(10))
    sched.submit("c", "interactive", sleeper(10))
    env.run(until=env.timeout(2.0))
    assert sched.pending_count == 2
