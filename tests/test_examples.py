"""Smoke tests: every shipped example must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_examples_present():
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]


def test_quickstart_output_contains_higgs_histogram():
    result = run_example("quickstart.py")
    assert "engines ready" in result.stdout
    assert "dijet_mass" in result.stdout
    assert "Higgs candidates:" in result.stdout


def test_higgs_session_finds_the_higgs():
    result = run_example("grid_higgs_session.py")
    assert "fitted Higgs mass:" in result.stdout
    # Extract the fitted mass and check it is near the 120 GeV truth.
    line = next(
        l for l in result.stdout.splitlines() if "fitted Higgs mass" in l
    )
    mass = float(line.split(":")[1].split("+/-")[0])
    assert 115.0 < mass < 125.0


def test_interactive_rerun_shows_decreasing_efficiency():
    result = run_example("interactive_rerun.py")
    rows = [
        line
        for line in result.stdout.splitlines()
        if line.strip().startswith(("1 ", "2 ", "3 "))
    ]
    efficiencies = [float(row.split()[2]) for row in rows]
    assert len(efficiencies) == 3
    assert efficiencies[0] > efficiencies[1] > efficiencies[2]


def test_scaling_study_prints_all_three_artifacts():
    result = run_example("scaling_study.py")
    assert "Table 1" in result.stdout
    assert "Table 2" in result.stdout
    assert "crossover" in result.stdout
    assert "grid speedup" in result.stdout


def test_trading_example_cross_domain():
    result = run_example("trading_records.py")
    assert "trading days" in result.stdout
    assert "mean daily volume" in result.stdout
