"""Unit tests for the GRAM-like gatekeeper."""

import pytest

from repro.grid.gram import GramError, GramGatekeeper, JobDescription
from repro.grid.nodes import ComputeElement, NodeSpec, WorkerNode
from repro.grid.scheduler import BatchScheduler, JobState, QueueSpec
from repro.grid.security import (
    AuthorizationService,
    CertificateAuthority,
    SecurityError,
    SitePolicy,
    VirtualOrganization,
    build_chain,
)
from repro.sim import Environment


@pytest.fixture
def site():
    env = Environment()
    workers = [WorkerNode(env, f"w{i}", NodeSpec(cpu_mhz=866)) for i in range(4)]
    ce = ComputeElement("ce", workers)
    sched = BatchScheduler(env, ce)
    sched.add_queue(QueueSpec("interactive", priority=1, dispatch_latency=1.0))
    sched.add_queue(QueueSpec("batch", priority=5, dispatch_latency=30.0))
    ca = CertificateAuthority("ca")
    vo = VirtualOrganization("ilc")
    vo.add_member("/CN=alice")
    policy = SitePolicy(
        max_engines_per_session=4,
        interactive_queue="interactive",
        allowed_vos=("ilc",),
    )
    authz = AuthorizationService([vo], policy)
    gram = GramGatekeeper(env, sched, ca, authz, auth_overhead=0.5)
    alice = ca.issue_identity("/CN=alice", now=0.0)
    proxy = alice.issue_proxy(now=0.0, lifetime=3600.0)
    chain = build_chain(proxy, alice)
    return env, gram, chain, ca


def engine_factory(run_time=2.0):
    def factory(index):
        def body(env, worker):
            yield env.timeout(run_time)
            return f"engine-{index}@{worker.name}"

        return body

    return factory


def test_description_validation():
    with pytest.raises(ValueError):
        JobDescription(executable="x", count=0)
    with pytest.raises(ValueError):
        JobDescription(executable="")


def test_gatekeeper_overhead_validation(site):
    env, gram, chain, ca = site
    with pytest.raises(ValueError):
        GramGatekeeper(env, gram.scheduler, gram.ca, gram.authz, auth_overhead=-1)


def test_submit_starts_requested_count(site):
    env, gram, chain, ca = site
    sub = gram.submit(
        JobDescription("analysis-engine", count=4), chain, engine_factory()
    )
    env.run(until=sub.all_done)
    assert sub.states == [JobState.COMPLETED] * 4
    results = sorted(job.result for job in sub.jobs)
    assert results[0].startswith("engine-0@")
    assert len({job.worker.name for job in sub.jobs}) == 4


def test_submit_defaults_to_interactive_queue(site):
    env, gram, chain, ca = site
    sub = gram.submit(JobDescription("e", count=1), chain, engine_factory())
    assert sub.jobs[0].queue == "interactive"


def test_submit_honours_explicit_queue(site):
    env, gram, chain, ca = site
    sub = gram.submit(
        JobDescription("e", count=1, queue="batch"), chain, engine_factory()
    )
    assert sub.jobs[0].queue == "batch"


def test_submit_unknown_queue_rejected(site):
    env, gram, chain, ca = site
    with pytest.raises(GramError, match="queue"):
        gram.submit(
            JobDescription("e", count=1, queue="nope"), chain, engine_factory()
        )


def test_submit_over_policy_limit_rejected(site):
    env, gram, chain, ca = site
    with pytest.raises(GramError, match="site policy"):
        gram.submit(JobDescription("e", count=5), chain, engine_factory())


def test_submit_bad_credentials_rejected(site):
    env, gram, chain, ca = site
    mallory = ca.issue_identity("/CN=mallory", now=0.0)
    proxy = mallory.issue_proxy(now=0.0)
    with pytest.raises(SecurityError):
        gram.submit(
            JobDescription("e", count=1),
            build_chain(proxy, mallory),
            engine_factory(),
        )


def test_auth_overhead_delays_engine_start(site):
    env, gram, chain, ca = site
    sub = gram.submit(JobDescription("e", count=1), chain, engine_factory(2.0))
    env.run(until=sub.all_done)
    # 1.0 dispatch + 0.5 auth + 2.0 run
    assert env.now == pytest.approx(3.5)


def test_cancel_submission(site):
    env, gram, chain, ca = site
    sub = gram.submit(JobDescription("e", count=4), chain, engine_factory(100.0))

    def canceller():
        yield env.timeout(5.0)
        gram.cancel(sub)

    env.process(canceller())
    env.run()
    assert all(state == JobState.CANCELLED for state in sub.states)
    # Engines died at cancellation time, not after their 100 s run time.
    assert all(job.end_time == pytest.approx(5.0) for job in sub.jobs)


def test_status_counts(site):
    env, gram, chain, ca = site
    sub = gram.submit(JobDescription("e", count=4), chain, engine_factory(10.0))
    env.run(until=env.timeout(5.0))
    assert gram.status(sub) == {JobState.RUNNING: 4}
    env.run()
    assert gram.status(sub) == {JobState.COMPLETED: 4}


def test_request_ids_increment(site):
    env, gram, chain, ca = site
    s1 = gram.submit(JobDescription("e", count=1), chain, engine_factory())
    s2 = gram.submit(JobDescription("e", count=1), chain, engine_factory())
    assert s2.request_id == s1.request_id + 1


def test_workers_property_before_dispatch(site):
    env, gram, chain, ca = site
    sub = gram.submit(JobDescription("e", count=2), chain, engine_factory())
    assert sub.workers == [None, None]
    env.run(until=sub.all_done)
    assert all(w is not None for w in sub.workers)
