"""End-to-end telemetry: one session -> one coherent trace + sane metrics."""

import pytest

from repro.core.experiment import run_grid_experiment
from repro.obs.exporters import (
    metrics_to_prometheus,
    phase_summary,
    phase_totals,
    render_tree,
    to_timeline,
)

SIZE_MB = 471.0
NODES = 16
PHASES = ("session_setup", "move_whole", "split", "move_parts", "stage_code", "analysis")

#: Table 2, N = 16 row (seconds) — what the telemetry should reproduce.
TABLE2_N16 = {"move_whole": 63.0, "split": 124.0, "move_parts": 50.0, "analysis": 78.0}


@pytest.fixture(scope="module")
def traced_run():
    return run_grid_experiment(
        SIZE_MB, NODES, events_per_mb=4, collect_tree=False, observability=True
    )


def test_one_session_is_one_trace_tree(traced_run):
    tracer = traced_run.obs.tracer
    roots = tracer.roots()
    assert [root.name for root in roots] == ["session"]
    names = set(tracer.descendant_names(roots[0]))
    # Client tier -> service tier -> grid/engine tier, all in one tree.
    for expected in (
        "call:control.create_session",
        "session.create",
        "gram.submit",
        "stage.fetch",
        "stage.split",
        "stage.move_parts",
        "stage.code",
        "engine.run",
        "ftp.scatter",
        "ftp.transfer",
        "aida.merge",
    ):
        assert expected in names, f"missing {expected} under the session root"
    assert len(tracer.find("engine.run")) == NODES
    open_spans = [span for span in tracer.spans if not span.finished]
    assert open_spans == []


def test_phase_totals_reconcile_with_breakdown(traced_run):
    totals = phase_totals(traced_run.obs.tracer)
    for phase in PHASES:
        assert totals[phase] == pytest.approx(getattr(traced_run, phase), abs=1e-9)
    summary = phase_summary(traced_run.obs.tracer)
    for phase in PHASES:
        assert phase in summary


def test_engine_and_transfer_metrics(traced_run):
    metrics = traced_run.obs.metrics
    n_events = int(SIZE_MB * 4)
    assert metrics.get("engine_events_total").total() == n_events
    per_engine = metrics.get("engine_chunk_seconds")
    assert len(per_engine.labels_seen()) == NODES  # one series per engine
    assert sum(per_engine.count(**dict(key)) for key in per_engine.labels_seen()) >= NODES
    assert metrics.get("service_calls_total").total() > 0
    assert metrics.get("heartbeat_gap_seconds").count() > 0
    assert metrics.get("aida_snapshots_total").total() > 0
    assert metrics.get("aida_merge_seconds").count() > 0


def test_prometheus_dump_and_tree_render(traced_run):
    text = metrics_to_prometheus(traced_run.obs.metrics)
    assert "# TYPE engine_events_total counter" in text
    assert "# TYPE service_call_seconds histogram" in text
    assert 'le="+Inf"' in text
    rendered = render_tree(traced_run.obs.tracer, max_depth=2)
    assert rendered.startswith("session")
    assert "engine.run" in render_tree(traced_run.obs.tracer)


def test_timeline_export_matches_phases(traced_run):
    timeline = to_timeline(traced_run.obs.tracer)
    for phase in PHASES:
        assert timeline.total(phase) == pytest.approx(
            getattr(traced_run, phase), abs=1e-9
        )


def test_disabled_run_is_identical_and_untelemetered(traced_run):
    baseline = run_grid_experiment(
        SIZE_MB, NODES, events_per_mb=4, collect_tree=False, observability=False
    )
    assert baseline.obs is None
    for phase in PHASES:
        assert getattr(baseline, phase) == getattr(traced_run, phase)


@pytest.mark.slow
def test_telemetry_reproduces_table2_row(traced_run):
    """Regression: trace-derived phase totals still match the paper table."""
    totals = phase_totals(traced_run.obs.tracer)
    for phase, paper_seconds in TABLE2_N16.items():
        assert totals[phase] == pytest.approx(paper_seconds, rel=0.12), phase
