"""End-to-end telemetry: one session -> one coherent trace + sane metrics."""

import pytest

from repro.core.experiment import run_grid_experiment
from repro.obs.exporters import (
    metrics_to_prometheus,
    phase_summary,
    phase_totals,
    render_tree,
    to_timeline,
)

SIZE_MB = 471.0
NODES = 16
PHASES = ("session_setup", "move_whole", "split", "move_parts", "stage_code", "analysis")

#: Table 2, N = 16 row (seconds) — what the telemetry should reproduce.
TABLE2_N16 = {"move_whole": 63.0, "split": 124.0, "move_parts": 50.0, "analysis": 78.0}


@pytest.fixture(scope="module")
def traced_run():
    return run_grid_experiment(
        SIZE_MB, NODES, events_per_mb=4, collect_tree=False, observability=True
    )


def test_one_session_is_one_trace_tree(traced_run):
    tracer = traced_run.obs.tracer
    roots = tracer.roots()
    assert [root.name for root in roots] == ["session"]
    names = set(tracer.descendant_names(roots[0]))
    # Client tier -> service tier -> grid/engine tier, all in one tree.
    for expected in (
        "call:control.create_session",
        "session.create",
        "gram.submit",
        "stage.fetch",
        "stage.split",
        "stage.move_parts",
        "stage.code",
        "engine.run",
        "ftp.scatter",
        "ftp.transfer",
        "aida.merge",
    ):
        assert expected in names, f"missing {expected} under the session root"
    assert len(tracer.find("engine.run")) == NODES
    open_spans = [span for span in tracer.spans if not span.finished]
    assert open_spans == []


def test_phase_totals_reconcile_with_breakdown(traced_run):
    totals = phase_totals(traced_run.obs.tracer)
    for phase in PHASES:
        assert totals[phase] == pytest.approx(getattr(traced_run, phase), abs=1e-9)
    summary = phase_summary(traced_run.obs.tracer)
    for phase in PHASES:
        assert phase in summary


def test_engine_and_transfer_metrics(traced_run):
    metrics = traced_run.obs.metrics
    n_events = int(SIZE_MB * 4)
    assert metrics.get("engine_events_total").total() == n_events
    per_engine = metrics.get("engine_chunk_seconds")
    assert len(per_engine.labels_seen()) == NODES  # one series per engine
    assert sum(per_engine.count(**dict(key)) for key in per_engine.labels_seen()) >= NODES
    assert metrics.get("service_calls_total").total() > 0
    assert metrics.get("heartbeat_gap_seconds").count() > 0
    assert metrics.get("aida_snapshots_total").total() > 0
    assert metrics.get("aida_merge_seconds").count() > 0


def test_prometheus_dump_and_tree_render(traced_run):
    text = metrics_to_prometheus(traced_run.obs.metrics)
    assert "# TYPE engine_events_total counter" in text
    assert "# TYPE service_call_seconds histogram" in text
    assert 'le="+Inf"' in text
    rendered = render_tree(traced_run.obs.tracer, max_depth=2)
    assert rendered.startswith("session")
    assert "engine.run" in render_tree(traced_run.obs.tracer)


def test_timeline_export_matches_phases(traced_run):
    timeline = to_timeline(traced_run.obs.tracer)
    for phase in PHASES:
        assert timeline.total(phase) == pytest.approx(
            getattr(traced_run, phase), abs=1e-9
        )


def test_disabled_run_is_identical_and_untelemetered(traced_run):
    baseline = run_grid_experiment(
        SIZE_MB, NODES, events_per_mb=4, collect_tree=False, observability=False
    )
    assert baseline.obs is None
    for phase in PHASES:
        assert getattr(baseline, phase) == getattr(traced_run, phase)


@pytest.mark.slow
def test_telemetry_reproduces_table2_row(traced_run):
    """Regression: trace-derived phase totals still match the paper table."""
    totals = phase_totals(traced_run.obs.tracer)
    for phase, paper_seconds in TABLE2_N16.items():
        assert totals[phase] == pytest.approx(paper_seconds, rel=0.12), phase


# -- telemetry through faults and recovery ---------------------------------

def _chaos_site(n_workers=8, n_events=8_000, size_mb=96.0):
    from repro.client.client import IPAClient
    from repro.core.site import GridSite, SiteConfig

    site = GridSite(
        SiteConfig(n_workers=n_workers, enable_observability=True)
    )
    site.register_dataset(
        "ds-obs",
        "/test/ds-obs",
        size_mb=size_mb,
        n_events=n_events,
        metadata={"experiment": "ilc"},
        content={"kind": "ilc", "seed": 7},
    )
    return site, IPAClient(site, site.enroll_user("/O=ILC/CN=obs"))


def test_trace_and_events_span_the_recovery_boundary():
    """One tracer carries spans from before the crash and after recovery."""
    from repro.analysis import higgs

    site, client = _chaos_site()
    n = 8

    def scenario():
        info = yield from client.obtain_proxy_and_connect(n_engines=n)
        yield from client.select_dataset("ds-obs")
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()
        while site.aida.snapshot_count(info.session_id) < n:
            yield site.env.timeout(1.0)
        site.injector.crash_services()
        yield site.env.timeout(10.0)
        yield site.injector.restart_services()
        yield from client.wait_for_completion(
            poll_interval=5.0, timeout=100_000.0
        )
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))

    counts = site.obs.events.counts()
    assert counts["service_crash"] == 1
    assert counts["service_recovered"] == 1
    assert counts["session_created"] == 1
    assert counts["session_closed"] == 1
    crash = site.obs.events.events(kind="service_crash")[0]
    recovered = site.obs.events.events(kind="service_recovered")[0]
    assert crash.severity == "error"
    assert recovered.time > crash.time
    assert recovered.attrs["sessions"] == 1

    tracer = site.obs.tracer
    names = {span.name for span in tracer.spans}
    assert "service.recover" in names
    # Spans from both sides of the boundary live in the same trace, and
    # the post-recovery merge work is still being recorded.
    assert any(
        span.start < crash.time for span in tracer.find("engine.run")
    )
    assert any(
        span.start > recovered.time for span in tracer.find("aida.merge")
    )
    assert [span for span in tracer.spans if not span.finished] == []


def test_quarantine_and_replica_invalidation_telemetry():
    """A crashed worker leaves a full event/metric audit trail."""
    from repro.analysis import higgs

    site, client = _chaos_site()
    n = 8
    victim = "w2"

    def scenario():
        info = yield from client.obtain_proxy_and_connect(n_engines=n)
        yield from client.select_dataset("ds-obs")
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()
        while site.aida.snapshot_count(info.session_id) < n:
            yield site.env.timeout(1.0)
        site.injector.crash_worker(victim)
        yield from client.wait_for_completion(
            poll_interval=5.0, timeout=100_000.0
        )
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))

    counts = site.obs.events.counts()
    assert counts["fault_injected"] == 1
    assert counts["fault_detected"] == 1
    assert counts["engine_quarantined"] == 1
    assert counts["engine_redispatched"] >= 1
    assert counts.get("replica_invalidated", 0) >= 1

    injected = site.obs.events.events(kind="fault_injected")[0]
    assert injected.attrs == {"kind": "crash", "target": victim}
    quarantined = site.obs.events.events(kind="engine_quarantined")[0]
    assert quarantined.attrs["worker"] == victim
    detected = site.obs.events.events(kind="fault_detected")[0]
    assert detected.severity == "error"
    assert detected.attrs["engine"] == quarantined.attrs["engine"]
    for event in site.obs.events.events(kind="replica_invalidated"):
        assert event.attrs["host"] == victim

    metrics = site.obs.metrics
    assert metrics.get("session_quarantines_total").total() == 1
    assert metrics.get("session_redispatches_total").total() >= 1


def test_status_board_renders_mid_run_and_when_disabled():
    from repro.analysis import higgs
    from repro.client.display import status_board

    site, client = _chaos_site()
    boards = []

    def scenario():
        info = yield from client.obtain_proxy_and_connect(n_engines=8)
        yield from client.select_dataset("ds-obs")
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()
        yield site.env.timeout(30.0)  # mid-run, nothing finished yet
        boards.append(
            status_board(
                site.obs,
                session_service=site.session_service,
                session_id=info.session_id,
            )
        )
        yield from client.wait_for_completion(
            poll_interval=5.0, timeout=100_000.0
        )
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    (board,) = boards
    assert "ipa status board" in board
    assert "nodes:" in board
    assert "slo:" in board
    assert "poll-latency" in board
    assert "events (last 8):" in board

    from repro.obs import NULL_OBS

    disabled = status_board(NULL_OBS)
    assert "(observability disabled)" in disabled


def test_null_obs_whole_surface_is_noop():
    """Every telemetry-plane API added this round is free when disabled."""
    from repro.obs import NULL_OBS
    from repro.obs.slo import SLOPolicy

    assert NULL_OBS.enabled is False
    # Event log
    assert NULL_OBS.events.emit("slo_breach", severity="warning") is None
    assert NULL_OBS.events.counts() == {}
    # SLO tracker
    policy = SLOPolicy(name="p", signal="s", objective=1.0)
    NULL_OBS.slo.add_policy(policy)
    NULL_OBS.slo.record("s", 10.0)
    assert NULL_OBS.slo.status() == []
    # Anomaly monitor
    NULL_OBS.anomaly.record_snapshot("s", "e", 10)
    NULL_OBS.anomaly.record_heartbeat("s", "e", 1.0)
    assert NULL_OBS.anomaly.detect("s") == []
    assert NULL_OBS.anomaly.stragglers("s") == []
    # And nothing above left state behind on the shared singleton.
    assert NULL_OBS.events.events() == []
    assert NULL_OBS.slo.policies == []
