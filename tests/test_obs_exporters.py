"""Prometheus exposition escaping and round-trip parsing."""

import pytest

from repro.obs.exporters import (
    escape_label_value,
    metrics_to_prometheus,
    parse_prometheus,
    unescape_label_value,
)
from repro.obs.metrics import Histogram, MetricsRegistry


@pytest.mark.parametrize(
    "raw,escaped",
    [
        ("plain", "plain"),
        ('say "hi"', 'say \\"hi\\"'),
        ("back\\slash", "back\\\\slash"),
        ("multi\nline", "multi\\nline"),
        ("\\n", "\\\\n"),  # literal backslash-n must not become a newline
        ('"\\\n', '\\"\\\\\\n'),
    ],
)
def test_escape_label_value_round_trips(raw, escaped):
    assert escape_label_value(raw) == escaped
    assert unescape_label_value(escaped) == raw


def test_escape_order_keeps_transform_reversible():
    # Escaping the backslash first is what keeps '\\' + 'n' distinct from
    # a newline; the composed transform must stay injective.
    tricky = ["a\\nb", "a\nb", 'a"b', "a\\\"b", "\\", "\n", '"']
    escaped = [escape_label_value(value) for value in tricky]
    assert len(set(escaped)) == len(tricky)
    assert [unescape_label_value(e) for e in escaped] == tricky


def test_exposition_escapes_label_values_and_help():
    registry = MetricsRegistry()
    registry.counter("jobs_total", 'submitted "jobs"\nper queue').inc(
        3, queue='short\n"batch"\\x'
    )
    text = metrics_to_prometheus(registry)
    assert '# HELP jobs_total submitted "jobs"\\nper queue' in text
    assert 'queue="short\\n\\"batch\\"\\\\x"' in text
    parsed = parse_prometheus(text)
    ((labels, value),) = parsed["jobs_total"]
    assert labels == {"queue": 'short\n"batch"\\x'}
    assert value == 3.0


def test_histogram_round_trips_with_inf_bucket():
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "latency_seconds", "call latency", buckets=(0.1, 1.0)
    )
    histogram.observe(0.05, service="control")
    histogram.observe(0.5, service="control")
    histogram.observe(10.0, service="control")
    text = metrics_to_prometheus(registry)
    assert 'le="+Inf"' in text
    parsed = parse_prometheus(text)
    buckets = {
        labels["le"]: value
        for labels, value in parsed["latency_seconds_bucket"]
    }
    assert buckets == {"0.1": 1.0, "1": 2.0, "+Inf": 3.0}
    ((count_labels, count),) = parsed["latency_seconds_count"]
    assert count_labels == {"service": "control"}
    assert count == 3.0
    ((_, total),) = parsed["latency_seconds_sum"]
    assert total == pytest.approx(10.55)


def test_parse_prometheus_unlabeled_and_comments():
    text = "# HELP up 1 when scraped\n# TYPE up gauge\nup 1\n\nfree_bytes 2.5\n"
    parsed = parse_prometheus(text)
    assert parsed["up"] == [({}, 1.0)]
    assert parsed["free_bytes"] == [({}, 2.5)]


def test_registry_dump_parses_back_value_for_value():
    registry = MetricsRegistry()
    registry.counter("a_total", "a").inc(7, node="w\\1")
    registry.gauge("b_ratio", "b").set(0.25, mode='x"y')
    assert isinstance(
        registry.histogram("c_seconds", "c", buckets=(1.0,)), Histogram
    )
    registry.get("c_seconds").observe(2.0)
    parsed = parse_prometheus(metrics_to_prometheus(registry))
    assert parsed["a_total"] == [({"node": "w\\1"}, 7.0)]
    assert parsed["b_ratio"] == [({"mode": 'x"y'}, 0.25)]
    assert parsed["c_seconds_bucket"] == [
        ({"le": "1"}, 0.0),
        ({"le": "+Inf"}, 1.0),
    ]
