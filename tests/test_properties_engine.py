"""Property-based tests: the engine survives arbitrary control sequences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.counting import EventCounterAnalysis
from repro.dataset.generator import ILCEventGenerator
from repro.engine.controls import ControlState
from repro.engine.engine import AnalysisEngine

N_EVENTS = 600

commands = st.lists(
    st.one_of(
        st.just(("run",)),
        st.just(("pause",)),
        st.just(("stop",)),
        st.just(("rewind",)),
        st.tuples(st.just("step"), st.integers(min_value=1, max_value=300)),
        st.just(("chunk",)),  # drive one process_chunk
    ),
    min_size=1,
    max_size=40,
)


def apply(engine, command):
    verb = command[0]
    if verb == "chunk":
        return engine.process_chunk()
    controller = engine.controller
    if verb == "step":
        controller.step(command[1])
    else:
        getattr(controller, verb)()
    return None


@given(commands)
@settings(max_examples=60, deadline=None)
def test_engine_invariants_under_arbitrary_controls(batch_cmds):
    batch = ILCEventGenerator(seed=5).generate(N_EVENTS)
    engine = AnalysisEngine("prop", chunk_events=100)
    engine.load_data(batch)
    engine.load_analysis(EventCounterAnalysis())
    previous_cursor = 0
    previous_run = 0
    for command in batch_cmds:
        result = apply(engine, command)
        # Invariants after every step:
        assert 0 <= engine.cursor <= N_EVENTS
        assert engine.run_id >= previous_run
        if engine.run_id == previous_run:
            # Within one run, the cursor never goes backwards.
            assert engine.cursor >= previous_cursor or result is None
        previous_cursor = engine.cursor
        previous_run = engine.run_id
        if result is not None:
            assert result.state in ControlState.ALL
            assert result.events >= 0
    # Whatever happened, the tree's entry count equals the cursor (the
    # counter analysis fills exactly one entry per event).
    if engine.cursor > 0 and engine.tree.exists("/counts/process"):
        assert engine.tree.get("/counts/process").entries == engine.cursor


@given(commands)
@settings(max_examples=30, deadline=None)
def test_engine_can_always_finish_after_any_history(batch_cmds):
    """From any control history, rewind + run drives to completion."""
    batch = ILCEventGenerator(seed=5).generate(N_EVENTS)
    engine = AnalysisEngine("prop", chunk_events=100)
    engine.load_data(batch)
    engine.load_analysis(EventCounterAnalysis())
    for command in batch_cmds:
        apply(engine, command)
    engine.controller.rewind()
    total = engine.run_to_completion()
    assert total == N_EVENTS
    assert engine.done
    assert engine.tree.get("/counts/process").entries == N_EVENTS


@given(
    st.lists(st.integers(min_value=1, max_value=250), min_size=1, max_size=10)
)
@settings(max_examples=40, deadline=None)
def test_step_sequences_are_exact(steps):
    """Consecutive step(n) commands advance by exactly min(n, remaining)."""
    batch = ILCEventGenerator(seed=5).generate(N_EVENTS)
    engine = AnalysisEngine("prop", chunk_events=100)
    engine.load_data(batch)
    engine.load_analysis(EventCounterAnalysis())
    expected = 0
    for n in steps:
        engine.controller.step(n)
        while True:
            result = engine.process_chunk()
            if result.events == 0:
                break
        expected = min(expected + n, N_EVENTS)
        assert engine.cursor == expected
