"""Unit tests for Histogram2D."""

import numpy as np
import pytest

from repro.aida.axis import OVERFLOW, UNDERFLOW
from repro.aida.hist2d import Histogram2D


def make():
    return Histogram2D(
        "h2",
        "test 2d",
        x_bins=10,
        x_lower=0.0,
        x_upper=10.0,
        y_bins=5,
        y_lower=-1.0,
        y_upper=1.0,
    )


def test_name_required():
    with pytest.raises(ValueError):
        Histogram2D("", x_bins=2, x_lower=0, x_upper=1, y_bins=2, y_lower=0, y_upper=1)


def test_fill_and_accessors():
    hist = make()
    hist.fill(2.5, 0.1)
    hist.fill(2.6, 0.15, weight=2.0)
    assert hist.bin_entries(2, 2) == 2
    assert hist.bin_height(2, 2) == pytest.approx(3.0)
    assert hist.bin_error(2, 2) == pytest.approx(np.sqrt(5.0))
    assert hist.entries == 2


def test_out_of_range_slots():
    hist = make()
    hist.fill(-1.0, 0.0)   # x underflow
    hist.fill(5.0, 10.0)   # y overflow
    hist.fill(100.0, -5.0) # both out
    assert hist.entries == 0
    assert hist.all_entries == 3
    assert hist.bin_entries(UNDERFLOW, 2) == 1
    assert hist.bin_entries(5, OVERFLOW) == 1
    assert hist.bin_entries(OVERFLOW, UNDERFLOW) == 1


def test_means_and_rms():
    hist = make()
    hist.fill(2.0, 0.5)
    hist.fill(4.0, -0.5)
    assert hist.mean_x == pytest.approx(3.0)
    assert hist.mean_y == pytest.approx(0.0)
    assert hist.rms_x == pytest.approx(1.0)
    assert hist.rms_y == pytest.approx(0.5)


def test_empty_stats_nan():
    hist = make()
    assert np.isnan(hist.mean_x)
    assert np.isnan(hist.rms_y)


def test_fill_array_equivalent_to_scalar():
    rng = np.random.default_rng(3)
    xs = rng.uniform(-2, 12, 500)
    ys = rng.uniform(-2, 2, 500)
    ws = rng.uniform(0.1, 3.0, 500)
    vec = make()
    scalar = make()
    vec.fill_array(xs, ys, ws)
    for x, y, w in zip(xs, ys, ws):
        scalar.fill(x, y, w)
    assert np.array_equal(vec._counts, scalar._counts)
    assert np.allclose(vec._sumw, scalar._sumw)
    assert vec.mean_x == pytest.approx(scalar.mean_x)
    assert vec.rms_y == pytest.approx(scalar.rms_y)


def test_fill_array_validation():
    hist = make()
    with pytest.raises(ValueError):
        hist.fill_array([1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        hist.fill_array([1.0, 2.0], [1.0, 2.0], weights=[1.0])


def test_projection_x_preserves_totals():
    hist = make()
    rng = np.random.default_rng(5)
    hist.fill_array(rng.uniform(0, 10, 300), rng.uniform(-1, 1, 300))
    proj = hist.projection_x()
    assert proj.entries == hist.entries
    assert proj.sum_bin_heights == pytest.approx(hist.sum_bin_heights)
    assert proj.axis == hist.x_axis
    assert proj.mean == pytest.approx(hist.mean_x)


def test_projection_y_preserves_totals():
    hist = make()
    rng = np.random.default_rng(6)
    hist.fill_array(rng.uniform(0, 10, 300), rng.uniform(-1, 1, 300))
    proj = hist.projection_y()
    assert proj.entries == hist.entries
    assert proj.mean == pytest.approx(hist.mean_y)


def test_merge_equals_combined_fill():
    rng = np.random.default_rng(9)
    a = make()
    b = make()
    combined = make()
    xa, ya = rng.uniform(0, 10, 200), rng.uniform(-1, 1, 200)
    xb, yb = rng.uniform(0, 10, 100), rng.uniform(-1, 1, 100)
    a.fill_array(xa, ya)
    b.fill_array(xb, yb)
    combined.fill_array(np.concatenate([xa, xb]), np.concatenate([ya, yb]))
    merged = a + b
    assert np.array_equal(merged._counts, combined._counts)
    assert merged.mean_x == pytest.approx(combined.mean_x)
    assert merged.rms_y == pytest.approx(combined.rms_y)


def test_merge_incompatible_rejected():
    a = make()
    b = Histogram2D(
        "other", x_bins=3, x_lower=0, x_upper=1, y_bins=3, y_lower=0, y_upper=1
    )
    with pytest.raises(ValueError):
        a + b
    with pytest.raises(TypeError):
        a += "x"


def test_copy_and_reset():
    hist = make()
    hist.fill(5, 0)
    clone = hist.copy()
    hist.reset()
    assert hist.entries == 0
    assert clone.entries == 1


def test_heights_shape():
    hist = make()
    assert hist.heights().shape == (10, 5)


def test_serialization_roundtrip():
    hist = make()
    rng = np.random.default_rng(11)
    hist.fill_array(rng.uniform(-1, 11, 100), rng.uniform(-2, 2, 100))
    restored = Histogram2D.from_dict(hist.to_dict())
    assert np.array_equal(restored._counts, hist._counts)
    assert np.allclose(restored._sumw, hist._sumw)
    assert restored.mean_x == pytest.approx(hist.mean_x)
    assert restored.name == hist.name


def test_repr():
    assert "10x5" in repr(make())
