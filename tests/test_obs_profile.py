"""Continuous profiler: exact folds, live sampling, JSONL, reconciliation."""

import math

import pytest

from repro.core.experiment import run_grid_experiment
from repro.obs import NULL_OBS, Observability
from repro.obs.exporters import phase_totals
from repro.obs.profile import (
    SamplingProfiler,
    fold_records,
    fold_tracer,
    folded_lines,
    phase_weights,
    profile_from_jsonl,
    profile_to_jsonl,
    render_profile,
)
from repro.sim import Environment

PHASES = (
    "session_setup",
    "move_whole",
    "split",
    "move_parts",
    "stage_code",
    "analysis",
)


def record(span_id, parent_id, name, start, end, **attrs):
    return {
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "start": start,
        "end": end,
        "attrs": attrs,
    }


# -- exact fold over synthetic records -------------------------------------

def test_fold_records_attributes_slices_to_deepest_active_span():
    records = [
        record("r", None, "run", 0.0, 10.0, phase="analysis"),
        record("a", "r", "chunk", 1.0, 4.0),
        record("b", "a", "merge", 2.0, 3.0),
        record("c", "r", "io", 8.0, 12.0),  # clipped to the root's end
    ]
    weights = fold_records(records)
    assert weights == {
        "analysis": 5.0,  # self time: [0,1) + [4,8)
        "analysis;chunk": 2.0,  # [1,2) + [3,4)
        "analysis;chunk;merge": 1.0,  # [2,3): deepest active wins
        "analysis;io": 2.0,  # [8,10): clipped
    }
    assert phase_weights(weights) == {"analysis": 10.0}


def test_fold_records_ignores_unphased_roots_and_open_spans():
    records = [
        record("r", None, "run", 0.0, 10.0),  # no phase attr -> not a root
        record("open", None, "pending", 0.0, None, phase="split"),
        record("p", None, "move", 3.0, 5.0, phase="move_whole"),
    ]
    weights = fold_records(records)
    assert weights == {"move_whole": 2.0}
    assert fold_records([]) == {}


def test_fold_records_anchors_each_phase_sum_bit_equal():
    # Many tiny descendant slices whose float sum would drift: the anchor
    # nudges self time until fsum equals the root duration exactly.
    children = [
        record(f"c{i}", "r", "step", 0.1 * i, 0.1 * i + 0.1)
        for i in range(100)
    ]
    records = [record("r", None, "run", 0.0, 10.0, phase="analysis")] + children
    weights = fold_records(records)
    total = math.fsum(
        w
        for stack, w in weights.items()
        if stack == "analysis" or stack.startswith("analysis;")
    )
    assert total == 10.0  # bit-equal, not approx


def test_fold_records_multiple_roots_same_phase_accumulate():
    records = [
        record("r1", None, "part", 0.0, 2.0, phase="move_parts"),
        record("r2", None, "part", 5.0, 8.0, phase="move_parts"),
    ]
    assert phase_weights(fold_records(records)) == {"move_parts": 5.0}


# -- reconciliation with the grid experiment -------------------------------

@pytest.fixture(scope="module")
def traced_run():
    return run_grid_experiment(
        96.0, 8, events_per_mb=4, collect_tree=False, observability=True
    )


def test_folded_profile_reconciles_exactly_with_breakdown(traced_run):
    """The tentpole acceptance: profile and GridBreakdown cannot disagree."""
    weights = fold_tracer(traced_run.obs.tracer)
    folded = phase_weights(weights)
    totals = phase_totals(traced_run.obs.tracer)
    for phase in PHASES:
        # Sum-equal (bit-equal, no tolerance) against both the trace's
        # per-phase totals and the experiment's reported breakdown.
        assert folded[phase] == totals[phase], phase
        assert folded[phase] == getattr(traced_run, phase), phase


def test_folded_profile_has_stack_depth(traced_run):
    weights = fold_tracer(traced_run.obs.tracer)
    # Staging phases decompose into transfer sub-stacks.
    assert any(
        stack.startswith("move_whole;") and "ftp.transfer" in stack
        for stack in weights
    )
    assert any(
        stack.startswith("move_parts;") and "ftp.part" in stack
        for stack in weights
    )
    # Three frames deep: code staging -> broadcast -> transfer.
    assert any(stack.count(";") >= 2 for stack in weights)


# -- live sampling profiler ------------------------------------------------

def test_sampling_profiler_samples_open_stacks():
    env = Environment()
    obs = Observability(env)
    profiler = SamplingProfiler(obs, period=1.0)
    assert profiler.install(env) is not None

    def workload():
        root = obs.tracer.start("run", phase="analysis")
        child = root.child("inner")
        yield env.timeout(5.0)
        child.finish()
        root.finish()

    env.run(until=env.process(workload()))
    profiler.stop()
    profiler.stop()  # idempotent
    assert profiler.samples >= 4
    assert math.fsum(profiler.weights.values()) == pytest.approx(
        profiler.samples * 1.0
    )
    (stack,) = profiler.weights
    assert stack == "analysis;run;inner"


def test_sampling_profiler_disabled_is_noop():
    env = Environment()
    profiler = SamplingProfiler(NULL_OBS, period=1.0)
    assert profiler.install(env) is None
    assert profiler.sample() == 0
    assert profiler.weights == {}
    with pytest.raises(ValueError):
        SamplingProfiler(NULL_OBS, period=0.0)


# -- export / rendering ----------------------------------------------------

def test_profile_jsonl_round_trip():
    weights = {"analysis;run": 12.5, "split": 3.0}
    assert profile_from_jsonl(profile_to_jsonl(weights)) == weights
    assert profile_from_jsonl("") == {}


def test_folded_lines_format():
    text = folded_lines({"b;x": 2.0, "a": 1.5})
    assert text.splitlines() == ["a 1.5", "b;x 2"]


def test_render_profile_orders_by_weight():
    text = render_profile({"a": 1.0, "b;deep": 9.0}, limit=1)
    lines = text.splitlines()
    assert lines[0].startswith("stack")
    assert len(lines) == 2  # header + 1 limited row
    assert lines[1].startswith("b;deep")
    assert "#" in lines[1]
    assert render_profile({}) == "(no profile samples)"
