"""Unit tests for the control state machine and the code sandbox."""

import pytest

from repro.engine.base import Analysis
from repro.engine.controls import (
    Command,
    ControlMessage,
    ControlState,
    Controller,
)
from repro.engine.sandbox import CodeBundle, SandboxError, load_analysis


# ---------------------------------------------------------------------------
# Controls
# ---------------------------------------------------------------------------

def test_control_message_validation():
    with pytest.raises(ValueError):
        ControlMessage("fly")
    with pytest.raises(ValueError):
        ControlMessage(Command.STEP)
    with pytest.raises(ValueError):
        ControlMessage(Command.STEP, 0)
    ControlMessage(Command.STEP, 5)  # ok


def test_controller_starts_idle():
    controller = Controller()
    assert controller.state == ControlState.IDLE
    assert controller.pending == 0


def test_run_transitions_to_running():
    controller = Controller()
    controller.run()
    controller.drain()
    assert controller.state == ControlState.RUNNING


def test_pause_only_pauses_running():
    controller = Controller()
    controller.pause()
    controller.drain()
    assert controller.state == ControlState.IDLE
    controller.run()
    controller.pause()
    controller.drain()
    assert controller.state == ControlState.PAUSED


def test_stop_is_terminal_for_run():
    controller = Controller()
    controller.run()
    controller.stop()
    controller.run()  # ignored after stop
    controller.drain()
    assert controller.state == ControlState.STOPPED


def test_rewind_reenables_after_stop():
    controller = Controller()
    controller.run()
    controller.stop()
    controller.rewind()
    controller.run()
    controller.drain()
    assert controller.rewind_requested
    assert controller.state == ControlState.RUNNING
    controller.acknowledge_rewind()
    assert not controller.rewind_requested


def test_step_budget_flow():
    controller = Controller()
    controller.step(100)
    controller.drain()
    assert controller.state == ControlState.RUNNING
    assert controller.chunk_allowance(500) == 100
    controller.consume_step_budget(100)
    assert controller.state == ControlState.PAUSED
    assert controller.step_budget is None
    assert controller.chunk_allowance(500) == 500


def test_step_budget_partial_consumption():
    controller = Controller()
    controller.step(100)
    controller.drain()
    controller.consume_step_budget(40)
    assert controller.step_budget == 60
    assert controller.state == ControlState.RUNNING
    assert controller.chunk_allowance(500) == 60


def test_run_clears_step_budget():
    controller = Controller()
    controller.step(100)
    controller.run()
    controller.drain()
    assert controller.step_budget is None


def test_commands_applied_in_order():
    controller = Controller()
    controller.run()
    controller.pause()
    controller.run()
    controller.drain()
    assert controller.state == ControlState.RUNNING


# ---------------------------------------------------------------------------
# Sandbox
# ---------------------------------------------------------------------------

GOOD_SOURCE = '''
class MyAnalysis(Analysis):
    name = "mine"

    def __init__(self, threshold=1.0):
        self.threshold = threshold

    def start(self, tree):
        tree.put("/h", Histogram1D("h", bins=10, lower=0, upper=10))

    def process_batch(self, batch, tree):
        pass
'''


def test_load_analysis_success():
    analysis = load_analysis(GOOD_SOURCE)
    assert isinstance(analysis, Analysis)
    assert analysis.name == "mine"
    assert analysis.threshold == 1.0


def test_load_analysis_with_parameters():
    analysis = load_analysis(GOOD_SOURCE, parameters={"threshold": 2.5})
    assert analysis.threshold == 2.5


def test_load_analysis_syntax_error():
    with pytest.raises(SandboxError, match="syntax"):
        load_analysis("def broken(:\n  pass")


def test_load_analysis_no_subclass():
    with pytest.raises(SandboxError, match="no Analysis subclass"):
        load_analysis("x = 1")


def test_load_analysis_ambiguous_requires_class_name():
    source = GOOD_SOURCE + "\nclass Another(Analysis):\n    pass\n"
    with pytest.raises(SandboxError, match="multiple"):
        load_analysis(source)
    analysis = load_analysis(source, class_name="Another")
    assert type(analysis).__name__ == "Another"


def test_load_analysis_unknown_class_name():
    with pytest.raises(SandboxError, match="not found"):
        load_analysis(GOOD_SOURCE, class_name="Ghost")


def test_load_analysis_construction_failure():
    source = '''
class Fragile(Analysis):
    def __init__(self):
        raise RuntimeError("nope")
'''
    with pytest.raises(SandboxError, match="construction failed"):
        load_analysis(source)


def test_sandbox_blocks_forbidden_imports():
    source = '''
import os

class Sneaky(Analysis):
    pass
'''
    with pytest.raises(SandboxError, match="not allowed"):
        load_analysis(source)


def test_sandbox_allows_numpy_and_math():
    source = '''
import numpy
import math

class Fine(Analysis):
    value = math.pi

    def process_batch(self, batch, tree):
        return numpy.zeros(1)
'''
    analysis = load_analysis(source)
    assert analysis.value == pytest.approx(3.14159, abs=1e-4)


def test_sandbox_provides_aida_names():
    source = '''
class UsesAida(Analysis):
    def start(self, tree):
        tree.put("/h1", Histogram1D("h1", bins=2, lower=0, upper=1))
        tree.put("/h2", Histogram2D("h2", x_bins=2, x_lower=0, x_upper=1,
                                    y_bins=2, y_lower=0, y_upper=1))
        tree.put("/p", Profile1D("p", bins=2, lower=0, upper=1))
        tree.put("/c", Cloud1D("c"))
        tree.put("/n", NTuple("n", ["a"]))
'''
    from repro.aida.tree import ObjectTree

    analysis = load_analysis(source)
    tree = ObjectTree()
    analysis.start(tree)
    assert len(tree) == 5


def test_sandbox_import_crash_reported():
    source = '''
raise ValueError("boom at import")

class Never(Analysis):
    pass
'''
    with pytest.raises(SandboxError, match="failed at import"):
        load_analysis(source)


# ---------------------------------------------------------------------------
# CodeBundle
# ---------------------------------------------------------------------------

def test_bundle_instantiate_stamps_version():
    bundle = CodeBundle(GOOD_SOURCE, version=7)
    analysis = bundle.instantiate()
    assert analysis.version == 7


def test_bundle_size_kb():
    bundle = CodeBundle("x" * 1500)
    assert bundle.size_kb == pytest.approx(1.5)


def test_bundle_updated_bumps_version():
    bundle = CodeBundle(GOOD_SOURCE, parameters={"threshold": 1.0})
    updated = bundle.updated(parameters={"threshold": 9.0})
    assert updated.version == 2
    assert updated.source == bundle.source
    assert updated.parameters == {"threshold": 9.0}
    assert bundle.parameters == {"threshold": 1.0}  # original untouched
    replaced = updated.updated(source="class X(Analysis):\n    pass")
    assert replaced.version == 3
    assert "class X" in replaced.source


def test_base_analysis_process_event_required():
    from repro.aida.tree import ObjectTree
    from repro.dataset.events import EventBatch

    class Lazy(Analysis):
        pass

    batch = EventBatch.from_events([(0, 0, 1.0, [(81, 1.0, 0, 0, 0)])])
    with pytest.raises(NotImplementedError):
        Lazy().process_batch(batch, ObjectTree())
