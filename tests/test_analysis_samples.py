"""Unit tests for the sample analyses (Higgs, counter, cuts, trading)."""

import numpy as np
import pytest

from repro.aida.fit import fit_histogram
from repro.aida.tree import ObjectTree
from repro.analysis import counting, cuts, higgs, trading
from repro.analysis.counting import EventCounterAnalysis
from repro.analysis.cuts import SelectionCutAnalysis
from repro.analysis.higgs import HiggsSearchAnalysis
from repro.analysis.trading import TradingRecordsAnalysis, generate_trading_days
from repro.dataset.events import PROCESS_CODES, EventBatch
from repro.dataset.generator import GeneratorConfig, ILCEventGenerator
from repro.engine.sandbox import load_analysis


def run_analysis(analysis, batch):
    tree = ObjectTree()
    analysis.start(tree)
    analysis.process_batch(batch, tree)
    analysis.end(tree)
    return tree


# ---------------------------------------------------------------------------
# HiggsSearchAnalysis
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def mixed_batch():
    return ILCEventGenerator(seed=202).generate(6000)


def test_higgs_creates_outputs(mixed_batch):
    tree = run_analysis(HiggsSearchAnalysis(), mixed_batch)
    for path in (
        "/higgs/dijet_mass",
        "/higgs/z_mass",
        "/higgs/n_jets",
        "/higgs/visible_energy",
        "/higgs/mass_correlation",
    ):
        assert tree.exists(path)


def test_higgs_finds_peak_in_pure_signal():
    config = GeneratorConfig(fractions=(("zh", 1.0),))
    batch = ILCEventGenerator(config, seed=7).generate(4000)
    tree = run_analysis(HiggsSearchAnalysis(), batch)
    mass = tree.get("/higgs/dijet_mass")
    fit = fit_histogram(mass, "gaussian", fit_range=(95, 145))
    assert fit.parameters["mean"] == pytest.approx(120.0, abs=3.0)
    z_mass = tree.get("/higgs/z_mass")
    z_fit = fit_histogram(z_mass, "gaussian", fit_range=(70, 110))
    assert z_fit.parameters["mean"] == pytest.approx(91.2, abs=3.0)


def test_higgs_peak_visible_over_background(mixed_batch):
    tree = run_analysis(HiggsSearchAnalysis(), mixed_batch)
    mass = tree.get("/higgs/dijet_mass")
    axis = mass.axis
    peak_bin = axis.coord_to_index(120.0)
    sideband_bin = axis.coord_to_index(170.0)
    assert mass.bin_height(peak_bin) > 2 * mass.bin_height(sideband_bin)


def test_higgs_only_processes_four_jet_events(mixed_batch):
    tree = run_analysis(HiggsSearchAnalysis(), mixed_batch)
    counts = np.diff(mixed_batch.offsets)
    four_jet = int(np.sum(counts == 4))
    assert tree.get("/higgs/dijet_mass").all_entries == four_jet


def test_higgs_energy_cut_reduces_candidates(mixed_batch):
    loose = run_analysis(HiggsSearchAnalysis(min_visible_energy=0.0), mixed_batch)
    tight = run_analysis(HiggsSearchAnalysis(min_visible_energy=500.0), mixed_batch)
    assert (
        tight.get("/higgs/dijet_mass").all_entries
        < loose.get("/higgs/dijet_mass").all_entries
    )


def test_higgs_empty_batch():
    tree = run_analysis(HiggsSearchAnalysis(), EventBatch.empty())
    assert tree.get("/higgs/dijet_mass").all_entries == 0


def test_higgs_staged_source_matches_native(mixed_batch):
    native = run_analysis(HiggsSearchAnalysis(), mixed_batch)
    staged = run_analysis(load_analysis(higgs.SOURCE), mixed_batch)
    a = native.get("/higgs/dijet_mass")
    b = staged.get("/higgs/dijet_mass")
    assert np.allclose(a.heights(), b.heights())


# ---------------------------------------------------------------------------
# EventCounterAnalysis
# ---------------------------------------------------------------------------

def test_counter_totals(mixed_batch):
    tree = run_analysis(EventCounterAnalysis(), mixed_batch)
    assert tree.get("/counts/process").entries == len(mixed_batch)
    assert tree.get("/counts/multiplicity").entries == len(mixed_batch)


def test_counter_process_fractions(mixed_batch):
    tree = run_analysis(EventCounterAnalysis(), mixed_batch)
    process_hist = tree.get("/counts/process")
    zh = process_hist.bin_height(PROCESS_CODES["zh"])
    assert zh / process_hist.entries == pytest.approx(0.15, abs=0.02)


def test_counter_staged_source(mixed_batch):
    staged = run_analysis(load_analysis(counting.SOURCE), mixed_batch)
    assert staged.get("/counts/process").entries == len(mixed_batch)


# ---------------------------------------------------------------------------
# SelectionCutAnalysis
# ---------------------------------------------------------------------------

def test_cuts_validation():
    with pytest.raises(ValueError):
        SelectionCutAnalysis(min_energy=10, max_energy=5)


def test_cuts_pass_fail_partition(mixed_batch):
    analysis = SelectionCutAnalysis(min_energy=400.0)
    tree = run_analysis(analysis, mixed_batch)
    decision = tree.get("/cuts/decision")
    assert decision.entries == len(mixed_batch)
    passed = decision.bin_height(1)
    failed = decision.bin_height(0)
    assert passed + failed == len(mixed_batch)
    assert tree.get("/cuts/energy_pass").entries == passed
    assert tree.get("/cuts/energy_fail").entries == failed


def test_cuts_efficiency_monotone_in_threshold(mixed_batch):
    efficiencies = []
    for threshold in (0.0, 300.0, 450.0, 550.0):
        analysis = SelectionCutAnalysis(min_energy=threshold)
        tree = run_analysis(analysis, mixed_batch)
        efficiencies.append(analysis.efficiency(tree))
    assert efficiencies[0] == pytest.approx(1.0)
    assert all(a >= b for a, b in zip(efficiencies, efficiencies[1:]))


def test_cuts_efficiency_nan_when_empty():
    analysis = SelectionCutAnalysis()
    tree = run_analysis(analysis, EventBatch.empty())
    assert np.isnan(analysis.efficiency(tree))


def test_cuts_staged_source(mixed_batch):
    staged = run_analysis(
        load_analysis(cuts.SOURCE, parameters={"min_energy": 400.0}), mixed_batch
    )
    assert staged.get("/cuts/decision").entries == len(mixed_batch)


# ---------------------------------------------------------------------------
# Trading
# ---------------------------------------------------------------------------

def test_trading_generator_shapes():
    batch = generate_trading_days(100, trades_per_day=20, seed=1)
    assert len(batch) == 100
    assert batch.n_particles == 2000
    assert np.all(batch.e > 0)  # prices positive
    assert set(np.unique(batch.pdg)) <= {-1, 1}


def test_trading_generator_validation():
    with pytest.raises(ValueError):
        generate_trading_days(-1)
    with pytest.raises(ValueError):
        generate_trading_days(5, trades_per_day=0)


def test_trading_generator_deterministic():
    a = generate_trading_days(50, seed=3)
    b = generate_trading_days(50, seed=3)
    assert np.array_equal(a.e, b.e)


def test_trading_analysis_outputs():
    batch = generate_trading_days(200, seed=5)
    tree = run_analysis(TradingRecordsAnalysis(), batch)
    assert tree.get("/trading/daily_volume").entries == 200
    assert tree.get("/trading/daily_return").entries == 199  # first day has no return
    vwap = tree.get("/trading/vwap_by_day")
    assert vwap.entries == 200
    # VWAP close to the generated price scale.
    assert 50 < vwap.bin_height(0) < 200


def test_trading_imbalance_bounded():
    batch = generate_trading_days(100, seed=9)
    tree = run_analysis(TradingRecordsAnalysis(), batch)
    imbalance = tree.get("/trading/imbalance")
    assert imbalance.all_entries == 100
    assert imbalance.entries == imbalance.all_entries  # all within [-1, 1]


def test_trading_staged_source():
    batch = generate_trading_days(50, seed=11)
    tree = run_analysis(load_analysis(trading.SOURCE), batch)
    assert tree.get("/trading/daily_volume").entries == 50
