"""Property test: the tiered (hierarchical) merge serves trees that are
bit-identical to a from-scratch flat merge under random interleavings of
submissions, held/out-of-order deliveries, combiner crashes, combiner
retirements, discards, rewinds, and polls.

Fills use exact dyadic rationals (k/32 values, k/16 weights) so that every
fold association — flat left fold or hierarchical combiner fold — produces
the same float bits; the equality check is exact serialized-dict equality,
no tolerances.

After a *leaf* combiner crash its engines' cached contributions are gone;
the model immediately republishes full keyframes for the affected engines
(what ``SessionService.resync_engines`` does in the live system) so the
served tree heals before the next poll.  Internal-combiner crashes rebuild
from their children and need no engine traffic.
"""

import random

import pytest

from repro.aida.hist1d import Histogram1D
from repro.aida.profile import Profile1D
from repro.aida.tree import ObjectTree
from repro.engine.engine import AnalysisEngine
from repro.services.aida_manager import AIDAManagerService
from repro.sim import Environment

N_ENGINES = 9
N_OPS = 80


def populate(engine):
    engine.tree.put("/h/a", Histogram1D("a", bins=30, lower=0.0, upper=1.5))
    engine.tree.put("/h/b", Histogram1D("b", bins=30, lower=0.0, upper=1.5))
    engine.tree.put("/p", Profile1D("p", bins=30, lower=0.0, upper=1.5))


def fresh_engine(engine_id):
    engine = AnalysisEngine(engine_id, keyframe_every=3)
    populate(engine)
    return engine


def dyadic(rng):
    # Exactly representable: any association of sums is bit-identical.
    return rng.randrange(33) / 32.0


def fill_random(engine, rng):
    weight = rng.randrange(1, 17) / 16.0
    engine.tree.get("/h/a").fill(dyadic(rng), weight=weight)
    if rng.random() < 0.6:
        engine.tree.get("/h/b").fill(dyadic(rng))
    if rng.random() < 0.4:
        engine.tree.get("/p").fill(dyadic(rng), dyadic(rng))


def reference_merge(latest):
    merged = ObjectTree()
    for engine_id in sorted(latest):
        merged.merge_from(latest[engine_id])
    return merged.to_dict()


def check(env, manager, latest):
    tree_dict, _ = env.run(until=manager.merged("s1"))
    assert tree_dict == reference_merge(latest)


@pytest.mark.parametrize("fan_in", [2, 3])
@pytest.mark.parametrize("seed", range(4))
def test_tiered_merge_matches_flat_merge(seed, fan_in):
    rng = random.Random(seed)
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0, fan_in=fan_in)
    engines = {f"e{i}": fresh_engine(f"e{i}") for i in range(N_ENGINES)}
    manager.configure_tier("s1", sorted(engines))
    assert manager.tier("s1") is not None
    banned = set()
    #: engine -> deep copy of its tree at the latest *accepted* snapshot.
    latest = {}
    #: (engine_id, snapshot, tree copy) taken but not yet submitted.
    held = []

    def submit(engine_id, snapshot, state):
        status = manager.submit_snapshot("s1", snapshot)
        if status == "resync":
            engine = engines[engine_id]
            full = engine.take_snapshot(full=True)
            status = manager.submit_snapshot("s1", full)
            state = engine.tree.copy()
        if status == "accepted":
            assert engine_id not in banned
            latest[engine_id] = state
        else:
            assert status in ("dropped", "resync")

    def heal(affected):
        # The live system's resync path: every engine whose leaf lost its
        # cache republishes a full keyframe.
        for engine_id in affected:
            assert engine_id in latest
            engine = engines[engine_id]
            full = engine.take_snapshot(full=True)
            assert manager.submit_snapshot("s1", full) == "accepted"
            latest[engine_id] = engine.tree.copy()

    for _ in range(N_OPS):
        op = rng.random()
        engine_id = rng.choice(sorted(engines))
        engine = engines[engine_id]
        tier = manager.tier("s1")
        if op < 0.35:
            fill_random(engine, rng)
        elif op < 0.60:
            submit(engine_id, engine.take_snapshot(), engine.tree.copy())
        elif op < 0.68:
            # Take now, deliver later (possibly out of order).
            held.append((engine_id, engine.take_snapshot(), engine.tree.copy()))
        elif op < 0.74 and held:
            submit(*held.pop(rng.randrange(len(held))))
        elif op < 0.80:
            check(env, manager, latest)
        elif op < 0.85:
            # Leaf combiner crash: its partial and engine caches are lost.
            leaf = rng.choice(tier.levels[0])
            heal(manager.crash_combiner("s1", leaf.combiner_id))
        elif op < 0.88 and tier.depth > 1:
            # Internal combiner crash: rebuilt from surviving children.
            internal = rng.choice(
                [node for level in tier.levels[1:] for node in level]
            )
            assert manager.crash_combiner("s1", internal.combiner_id) == []
        elif op < 0.91 and len(tier.levels[0]) > 1:
            victim = rng.choice(tier.levels[0])
            manager.retire_combiner("s1", victim.combiner_id)
        elif op < 0.95 and len(latest) > 1:
            manager.discard_engine("s1", engine_id)
            banned.add(engine_id)
            latest.pop(engine_id, None)
            held = [entry for entry in held if entry[0] != engine_id]
        else:
            # Rewind: new run; the tier keeps its topology but resets state.
            run_id = max(e.run_id for e in engines.values()) + 1
            manager.begin_run("s1", run_id)
            for other in engines.values():
                while other.run_id < run_id:
                    other.rewind()
                populate(other)
            latest.clear()
            held.clear()

    for entry in held:
        submit(*entry)
    for engine_id, engine in sorted(engines.items()):
        if engine_id not in banned:
            fill_random(engine, rng)
            submit(engine_id, engine.take_snapshot(), engine.tree.copy())
    check(env, manager, latest)


@pytest.mark.parametrize("seed", range(3))
def test_fan_in_none_keeps_flat_path_bit_identical(seed):
    """With ``fan_in=None`` the tier machinery must stay entirely out of
    the way: ``configure_tier`` is a no-op and the served tree matches the
    flat reference fold even with non-dyadic (arbitrary float) fills."""
    rng = random.Random(seed)
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0)
    engines = {f"e{i}": fresh_engine(f"e{i}") for i in range(4)}
    assert manager.configure_tier("s1", sorted(engines)) is None
    assert manager.tier("s1") is None
    latest = {}
    for _ in range(40):
        engine_id = rng.choice(sorted(engines))
        engine = engines[engine_id]
        engine.tree.get("/h/a").fill(rng.random(), weight=rng.random())
        engine.tree.get("/p").fill(rng.random(), rng.random())
        if rng.random() < 0.5:
            status = manager.submit_snapshot("s1", engine.take_snapshot())
            assert status == "accepted"
            latest[engine_id] = engine.tree.copy()
        if rng.random() < 0.3:
            check(env, manager, latest)
    assert manager.tier("s1") is None
    check(env, manager, latest)
