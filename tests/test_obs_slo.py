"""Rolling SLOs: window estimators, objectives, breach events, budgets."""

import math
import random

import pytest

from repro.obs import NULL_OBS
from repro.obs.events import EventLog
from repro.obs.metrics import (
    Histogram,
    MetricError,
    MetricsRegistry,
    quantile_from_cumulative,
)
from repro.obs.slo import (
    NULL_SLO_TRACKER,
    SLOError,
    SLOPolicy,
    SLOTracker,
    SlidingReservoir,
    WindowedHistogram,
)


class Clock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now


# -- sliding reservoir -----------------------------------------------------

def test_reservoir_exact_quantiles():
    reservoir = SlidingReservoir(window_s=60.0)
    for value in (1.0, 2.0, 3.0, 4.0):
        reservoir.observe(0.0, value)
    assert reservoir.quantile(0.0, now=0.0) == 1.0
    assert reservoir.quantile(1.0, now=0.0) == 4.0
    assert reservoir.quantile(0.5, now=0.0) == 2.5  # interpolated median
    assert reservoir.count(0.0) == 4


def test_reservoir_window_pruning():
    reservoir = SlidingReservoir(window_s=10.0)
    reservoir.observe(0.0, 100.0)
    reservoir.observe(5.0, 1.0)
    assert reservoir.count(9.9) == 2
    # t=0 sits exactly on the horizon edge and is pruned (half-open window).
    assert reservoir.values(10.0) == [1.0]
    assert reservoir.quantile(0.99, now=14.9) == 1.0  # single sample
    assert math.isnan(reservoir.quantile(0.5, now=100.0))


def test_reservoir_cap_sets_saturated():
    reservoir = SlidingReservoir(window_s=60.0, cap=3)
    for index in range(4):
        reservoir.observe(float(index), float(index))
    assert reservoir.saturated
    assert reservoir.values(3.0) == [1.0, 2.0, 3.0]
    with pytest.raises(SLOError):
        reservoir.quantile(1.5, now=3.0)
    with pytest.raises(SLOError):
        SlidingReservoir(window_s=0.0)


# -- windowed histogram ----------------------------------------------------

def test_windowed_histogram_expires_old_slots():
    window = WindowedHistogram(window_s=12.0, slots=12, buckets=(1.0, 10.0))
    window.observe(0.5, 100.0)  # slow outlier in an early slot
    window.observe(1.5, 0.5)
    assert window.count(2.0) == 2
    assert window.quantile(1.0, now=2.0) == 10.0  # +Inf degrades to top bound
    # Advancing almost a full window drops the outlier's slot while the
    # newer observation's slot stays live.
    assert window.count(12.5) == 1
    assert window.quantile(1.0, now=12.5) <= 1.0
    # And eventually everything expires.
    assert window.count(100.0) == 0
    assert math.isnan(window.quantile(0.5, now=100.0))


def test_windowed_histogram_matches_registry_histogram_while_fresh():
    buckets = (0.1, 0.5, 1.0, 5.0)
    window = WindowedHistogram(window_s=1000.0, slots=4, buckets=buckets)
    cumulative = Histogram("h_seconds", buckets=buckets)
    rng = random.Random(7)
    for _ in range(200):
        value = rng.uniform(0.0, 6.0)
        window.observe(1.0, value)
        cumulative.observe(value)
    for q in (0.1, 0.5, 0.9, 0.99):
        assert window.quantile(q, now=1.0) == cumulative.quantile(q)


# -- policy validation -----------------------------------------------------

@pytest.mark.parametrize(
    "kwargs",
    [
        {"name": ""},
        {"signal": ""},
        {"objective": 0.0},
        {"quantile": 0.0},
        {"quantile": 1.0},
        {"window_s": 0.0},
        {"min_samples": 0},
    ],
)
def test_policy_validation(kwargs):
    base = {"name": "p", "signal": "s", "objective": 1.0}
    with pytest.raises(SLOError):
        SLOPolicy(**{**base, **kwargs})


# -- tracker ---------------------------------------------------------------

def make_tracker(clock=None, objective=0.25, min_samples=3, window_s=60.0):
    clock = clock or Clock()
    events = EventLog(clock)
    metrics = MetricsRegistry()
    tracker = SLOTracker(clock, events=events, metrics=metrics)
    tracker.add_policy(
        SLOPolicy(
            name="poll-p99",
            signal="aida.merged",
            objective=objective,
            quantile=0.99,
            window_s=window_s,
            min_samples=min_samples,
        )
    )
    return tracker, events, metrics


def test_tracker_breach_and_recovery_transitions():
    clock = Clock()
    tracker, events, metrics = make_tracker(clock)
    # Below min_samples nothing can breach, however slow.
    tracker.record("aida.merged", 5.0)
    tracker.record("aida.merged", 5.0)
    assert events.counts() == {}
    tracker.record("aida.merged", 5.0)
    assert events.counts() == {"slo_breach": 1}
    breach = events.events(kind="slo_breach")[0]
    assert breach.severity == "warning"
    assert breach.attrs["policy"] == "poll-p99"
    assert breach.attrs["estimate"] > 0.25
    # Still breached: no duplicate transition events.
    tracker.record("aida.merged", 5.0)
    assert events.counts() == {"slo_breach": 1}
    assert metrics.get("slo_breaches_total").value(policy="poll-p99") == 1.0
    # Let the slow window expire, then feed fast samples -> recovery.
    clock.now = 120.0
    for _ in range(5):
        tracker.record("aida.merged", 0.01)
    assert events.counts() == {"slo_breach": 1, "slo_recovered": 1}
    (row,) = tracker.status("poll-p99")
    assert row["breached"] is False
    assert row["breaches"] == 1


def test_tracker_status_budget_and_burn():
    tracker, _, _ = make_tracker(min_samples=1)
    for _ in range(9):
        tracker.record("aida.merged", 0.01)
    tracker.record("aida.merged", 5.0)
    (row,) = tracker.status()
    assert row["name"] == "poll-p99"
    assert row["samples"] == 10
    assert row["exact"] is True
    # 1 bad of 10 against a 1% budget -> burning 10x.
    assert row["burn_rate"] == pytest.approx(10.0)
    assert row["budget_remaining"] == 0.0
    assert row["total_burn"] == pytest.approx(10.0)
    with pytest.raises(SLOError):
        tracker.status("no-such-policy")


def test_tracker_ignores_unmatched_signals_and_rejects_duplicates():
    tracker, events, _ = make_tracker(min_samples=1)
    tracker.record("ftp.transfer", 100.0)  # no policy watches this signal
    assert events.counts() == {}
    with pytest.raises(SLOError):
        tracker.add_policy(
            SLOPolicy(name="poll-p99", signal="other", objective=1.0)
        )
    assert [p.name for p in tracker.policies] == ["poll-p99"]


def test_tracker_falls_back_to_bucketed_estimator_when_saturated():
    clock = Clock()
    tracker = SLOTracker(clock, reservoir_cap=8)
    tracker.add_policy(
        SLOPolicy(name="p", signal="s", objective=1000.0, min_samples=1)
    )
    for index in range(50):
        tracker.record("s", float(index % 10))
    (row,) = tracker.status("p")
    assert row["exact"] is False
    assert row["samples"] == 50  # the windowed histogram still sees all
    assert row["estimate"] == row["estimate"]  # not NaN


# -- Histogram.quantile vs exact reservoir (property) ----------------------

def test_histogram_quantile_property_vs_reservoir():
    """Bucketed estimates land in the same bucket as the exact quantile."""
    from bisect import bisect_left

    buckets = tuple(0.005 * 2.0 ** i for i in range(16))
    rng = random.Random(20060815)
    for trial in range(20):
        histogram = Histogram("probe_seconds", buckets=buckets)
        reservoir = SlidingReservoir(window_s=1e9, cap=5000)
        for _ in range(rng.randrange(5, 400)):
            value = rng.choice(
                [rng.uniform(0.001, 0.1), rng.expovariate(1.0 / 2.0)]
            )
            histogram.observe(value)
            reservoir.observe(0.0, value)
        for q in (0.25, 0.5, 0.9, 0.99, 1.0):
            exact = reservoir.quantile(q, now=0.0)
            estimate = histogram.quantile(q)
            # The estimate's error is bounded by the bucket width: both
            # land in the same bucket up to rank-convention differences
            # at the bucket edge.
            assert abs(
                bisect_left(buckets, estimate) - bisect_left(buckets, exact)
            ) <= 1, (trial, q, exact, estimate)
            # And the estimate never exceeds the largest finite bound.
            assert estimate <= buckets[-1]


def test_quantile_from_cumulative_edges():
    assert math.isnan(quantile_from_cumulative([], 0.5))
    assert math.isnan(
        quantile_from_cumulative([(1.0, 0), (float("inf"), 0)], 0.5)
    )
    with pytest.raises(MetricError):
        quantile_from_cumulative([(1.0, 1)], 1.5)
    # All mass in +Inf: degrade to the highest finite bound.
    pairs = [(1.0, 0), (2.0, 0), (float("inf"), 4)]
    assert quantile_from_cumulative(pairs, 0.9) == 2.0
    # Interpolation from zero inside the first finite bucket.
    pairs = [(2.0, 4), (float("inf"), 4)]
    assert quantile_from_cumulative(pairs, 0.5) == pytest.approx(1.0)


# -- null contract ---------------------------------------------------------

def test_null_slo_tracker_is_inert():
    null = NULL_OBS.slo
    assert null is NULL_SLO_TRACKER
    assert null.enabled is False
    policy = SLOPolicy(name="p", signal="s", objective=1.0)
    assert null.add_policy(policy) is policy
    assert null.record("s", 1.0) is None
    assert null.status() == []
    assert null.policies == []
