"""Unit tests for the binary dataset format and split strategies."""

import numpy as np
import pytest

from repro.dataset.events import EventBatch
from repro.dataset.format import (
    DatasetReader,
    DatasetWriter,
    FormatError,
    write_dataset,
)
from repro.dataset.generator import ILCEventGenerator
from repro.dataset.split import plan_split, write_split_parts


@pytest.fixture
def dataset_path(tmp_path):
    gen = ILCEventGenerator(seed=42)
    path = tmp_path / "events.ipad"
    with DatasetWriter(path, meta={"name": "test-ds", "generator_seed": 42}) as writer:
        for batch in gen.stream(1000, batch_size=250):
            writer.write_batch(batch)
    return path


def test_writer_reader_roundtrip(dataset_path):
    with DatasetReader(dataset_path) as reader:
        assert reader.meta["name"] == "test-ds"
        assert reader.n_events == 1000
        assert reader.n_batches == 4
        all_events = reader.read_all()
        assert len(all_events) == 1000
        assert np.array_equal(all_events.event_ids, np.arange(1000))


def test_reader_matches_generated_content(dataset_path):
    regenerated = EventBatch.concatenate(
        list(ILCEventGenerator(seed=42).stream(1000, batch_size=250))
    )
    with DatasetReader(dataset_path) as reader:
        stored = reader.read_all()
    assert np.allclose(stored.e, regenerated.e)
    assert np.array_equal(stored.process, regenerated.process)
    assert np.array_equal(stored.offsets, regenerated.offsets)


def test_writer_skips_empty_batches(tmp_path):
    path = tmp_path / "empty.ipad"
    with DatasetWriter(path) as writer:
        writer.write_batch(EventBatch.empty())
    with DatasetReader(path) as reader:
        assert reader.n_events == 0
        assert reader.n_batches == 0
        assert len(reader.read_all()) == 0


def test_writer_close_idempotent(tmp_path):
    path = tmp_path / "x.ipad"
    writer = DatasetWriter(path)
    writer.close()
    writer.close()
    with pytest.raises(FormatError):
        writer.write_batch(EventBatch.empty())


def test_writer_events_written(dataset_path, tmp_path):
    path = tmp_path / "y.ipad"
    with DatasetWriter(path) as writer:
        writer.write_batch(ILCEventGenerator(seed=1).generate(10))
        assert writer.events_written == 10


def test_reader_bad_magic(tmp_path):
    path = tmp_path / "bad.ipad"
    path.write_bytes(b"NOPE" + b"\x00" * 100)
    with pytest.raises(FormatError, match="magic"):
        DatasetReader(path)


def test_reader_truncated_file(tmp_path, dataset_path):
    blob = dataset_path.read_bytes()
    truncated = tmp_path / "trunc.ipad"
    truncated.write_bytes(blob[:-10])
    with pytest.raises(FormatError):
        DatasetReader(truncated)


def test_read_batch_by_index(dataset_path):
    with DatasetReader(dataset_path) as reader:
        batch = reader.read_batch(1)
        assert len(batch) == 250
        assert batch.event_ids[0] == 250
        with pytest.raises(IndexError):
            reader.read_batch(4)


def test_read_range_within_one_block(dataset_path):
    with DatasetReader(dataset_path) as reader:
        batch = reader.read_range(10, 20)
        assert len(batch) == 10
        assert list(batch.event_ids) == list(range(10, 20))


def test_read_range_across_blocks(dataset_path):
    with DatasetReader(dataset_path) as reader:
        batch = reader.read_range(200, 600)
        assert len(batch) == 400
        assert list(batch.event_ids) == list(range(200, 600))


def test_read_range_validation(dataset_path):
    with DatasetReader(dataset_path) as reader:
        with pytest.raises(IndexError):
            reader.read_range(-1, 10)
        with pytest.raises(IndexError):
            reader.read_range(10, 2000)
        assert len(reader.read_range(5, 5)) == 0


def test_batch_ranges(dataset_path):
    with DatasetReader(dataset_path) as reader:
        assert reader.batch_ranges() == [
            (0, 250), (250, 500), (500, 750), (750, 1000)
        ]


def test_size_properties(dataset_path):
    with DatasetReader(dataset_path) as reader:
        assert reader.size_bytes == dataset_path.stat().st_size
        assert reader.size_mb == pytest.approx(reader.size_bytes / 1e6)
        assert "events=1000" in repr(reader)


def test_write_dataset_convenience(tmp_path):
    batches = list(ILCEventGenerator(seed=3).stream(100, batch_size=50))
    path = write_dataset(tmp_path / "conv.ipad", batches, meta={"name": "c"})
    with DatasetReader(path) as reader:
        assert reader.n_events == 100


# ---------------------------------------------------------------------------
# Split plans
# ---------------------------------------------------------------------------

def test_plan_split_by_events(dataset_path):
    with DatasetReader(dataset_path) as reader:
        plan = plan_split(reader, 4, "by-events")
    assert plan.n_parts == 4
    assert plan.total_events == 1000
    assert [p.n_events for p in plan.parts] == [250, 250, 250, 250]
    assert plan.skew() == pytest.approx(1.0, abs=0.01)


def test_plan_split_uneven_counts(dataset_path):
    with DatasetReader(dataset_path) as reader:
        plan = plan_split(reader, 3, "by-events")
    assert plan.total_events == 1000
    assert max(p.n_events for p in plan.parts) - min(
        p.n_events for p in plan.parts
    ) <= 1


def test_plan_split_by_bytes(dataset_path):
    with DatasetReader(dataset_path) as reader:
        plan = plan_split(reader, 4, "by-bytes")
    assert plan.total_events == 1000
    assert plan.skew() < 1.2  # roughly balanced
    # Parts are contiguous and ordered.
    for left, right in zip(plan.parts, plan.parts[1:]):
        assert left.stop_event == right.start_event


def test_plan_split_more_parts_than_events(tmp_path):
    path = write_dataset(
        tmp_path / "tiny.ipad", [ILCEventGenerator(seed=8).generate(2)]
    )
    with DatasetReader(path) as reader:
        plan = plan_split(reader, 5, "by-events")
    assert plan.n_parts == 5
    assert plan.total_events == 2


def test_plan_split_validation(dataset_path):
    with DatasetReader(dataset_path) as reader:
        with pytest.raises(ValueError):
            plan_split(reader, 0)
        with pytest.raises(ValueError):
            plan_split(reader, 2, "by-magic")


def test_write_split_parts_roundtrip(dataset_path, tmp_path):
    with DatasetReader(dataset_path) as reader:
        plan = plan_split(reader, 4, "by-events")
        paths = write_split_parts(reader, plan, tmp_path / "parts")
        original = reader.read_all()
    assert len(paths) == 4
    pieces = []
    for index, path in enumerate(paths):
        with DatasetReader(path) as part_reader:
            assert part_reader.meta["part_index"] == index
            assert part_reader.meta["part_of"] == 4
            assert part_reader.meta["name"] == "test-ds"
            pieces.append(part_reader.read_all())
    rejoined = EventBatch.concatenate(pieces)
    assert np.array_equal(rejoined.event_ids, original.event_ids)
    assert np.allclose(rejoined.e, original.e)


def test_split_parts_sizes_sum_to_total(dataset_path):
    with DatasetReader(dataset_path) as reader:
        plan = plan_split(reader, 7, "by-events")
        assert sum(p.est_size_mb for p in plan.parts) == pytest.approx(
            reader.size_mb, rel=0.01
        )
