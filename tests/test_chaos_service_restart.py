"""Chaos integration test: manager-service crash mid-run at paper scale.

The acceptance bar for the durable session layer: with the SessionService
and AIDA manager crashing mid-analysis (volatile merge state wiped, RMI
token revoked, background loops dead) and restarting after a minute of
downtime, the session recovers from journal + checkpoints, the client
reconnects with backoff, and the final merged histogram is
**bit-identical, bin for bin**, to a crash-free run.  Correctness comes
from WAL ordering (the journal is synced before every checkpoint) plus
full-keyframe republication by every surviving engine on recovery —
whatever the last checkpoint missed, the engines still hold.
"""

import numpy as np
import pytest

from repro.analysis import higgs
from repro.client.client import IPAClient
from repro.core.site import GridSite, SiteConfig
from repro.resilience.faults import ServiceUnavailable
from repro.services.envelope import Fault

# Minutes-scale end-to-end runs; CI runs these in a dedicated chaos job
# (see .github/workflows/ci.yml) rather than the fast tier-1 matrix.
pytestmark = [pytest.mark.slow, pytest.mark.chaos]

N_WORKERS = 16
N_EVENTS = 16_000  # 1000 events/part -> 2 chunks/part: partial snapshots exist
SIZE_MB = 480.0
DOWNTIME_S = 60.0


def build_site():
    site = GridSite(
        SiteConfig(n_workers=N_WORKERS, checkpoint_every_s=15.0)
    )
    site.register_dataset(
        "ds-chaos",
        "/test/ds-chaos",
        size_mb=SIZE_MB,
        n_events=N_EVENTS,
        metadata={"experiment": "ilc", "energy": 500},
        content={"kind": "ilc", "seed": 99},
    )
    return site, IPAClient(site, site.enroll_user("/O=ILC/CN=chaos"))


def run_higgs(crash_services=False):
    """One full 16-engine Higgs run; optionally crash the manager mid-run."""
    site, client = build_site()
    out = {}

    def scenario():
        info = yield from client.obtain_proxy_and_connect(n_engines=N_WORKERS)
        yield from client.select_dataset("ds-chaos")
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()
        if crash_services:
            # Wait until every engine has published at least one (partial)
            # snapshot — the merge state is genuinely mid-flight — then
            # kill the manager-node service processes.
            while site.aida.snapshot_count(info.session_id) < N_WORKERS:
                yield site.env.timeout(1.0)
            site.injector.crash_services()
            out["crashed_at"] = site.env.now
            # The cheap polling channel rejects the revoked token; the
            # client sees the outage instead of silently stale data.
            with pytest.raises((ServiceUnavailable, Fault)):
                yield from client.poll()
            yield site.env.timeout(DOWNTIME_S)
            yield site.injector.restart_services()
            out["recovered_at"] = site.env.now
            yield from client.reconnect()
        final = yield from client.wait_for_completion(
            poll_interval=2.0, timeout=20_000.0, reconnect=True
        )
        out["progress"] = final.progress
        out["hist"] = final.tree.get("/higgs/dijet_mass")
        out["status"] = yield from client.status()
        out["completed_at"] = site.env.now
        yield from client.close()
        out["session_id"] = info.session_id

    site.env.run(until=site.env.process(scenario()))
    out["site"] = site
    return out


def test_service_crash_restart_reconnect_bit_identical():
    baseline = run_higgs()
    chaos = run_higgs(crash_services=True)

    assert chaos["crashed_at"] < chaos["recovered_at"]
    assert chaos["progress"].complete
    assert chaos["progress"].events_processed == N_EVENTS
    assert chaos["progress"].expected_engines == N_WORKERS
    assert not chaos["status"]["failures"]
    assert chaos["status"]["orphaned_parts"] == 0

    base_hist, chaos_hist = baseline["hist"], chaos["hist"]
    # Bit-identical, bin for bin — exact dict equality, not approx.
    assert chaos_hist.entries == base_hist.entries
    assert np.array_equal(chaos_hist.heights(), base_hist.heights())
    assert chaos_hist.to_dict() == base_hist.to_dict()

    # The outage costs roughly the downtime plus a recovery sweep, not a
    # from-scratch rerun of the analysis.
    assert (
        chaos["completed_at"]
        < baseline["completed_at"] + DOWNTIME_S + 120.0
    )

    # No per-session merge state leaks after the post-recovery close.
    site, sid = chaos["site"], chaos["session_id"]
    assert site.aida.session_cache_keys(sid) == []
    # The durable journal ends on the close tombstone.
    journal = site.session_service._journal(sid)
    assert journal.records()[-1]["type"] == "closed"
