"""Unit tests for histogram fitting and ASCII rendering."""

import numpy as np
import pytest

from repro.aida.fit import (
    FitError,
    fit_histogram,
    gaussian,
    gaussian_plus_linear,
)
from repro.aida.hist1d import Histogram1D
from repro.aida.hist2d import Histogram2D
from repro.aida.profile import Profile1D
from repro.aida.render import (
    render_hist1d,
    render_hist2d,
    render_object,
    render_profile,
)
from repro.aida.serial import from_dict, merge, to_dict


# ---------------------------------------------------------------------------
# Fitting
# ---------------------------------------------------------------------------

def gaussian_hist(mean=120.0, sigma=5.0, n=20000, seed=0):
    rng = np.random.default_rng(seed)
    hist = Histogram1D("m", bins=100, lower=mean - 10 * sigma, upper=mean + 10 * sigma)
    hist.fill_array(rng.normal(mean, sigma, n))
    return hist


def test_gaussian_fit_recovers_parameters():
    hist = gaussian_hist()
    result = fit_histogram(hist, "gaussian")
    assert result.parameters["mean"] == pytest.approx(120.0, abs=0.2)
    assert abs(result.parameters["sigma"]) == pytest.approx(5.0, abs=0.2)
    assert result.ndf == 100 - 3
    assert result.chi2_per_ndf < 3.0
    assert result.errors["mean"] > 0


def test_gaussian_plus_linear_fit():
    rng = np.random.default_rng(1)
    hist = Histogram1D("m", bins=60, lower=60, upper=180)
    hist.fill_array(rng.normal(120, 5, 5000))        # signal
    hist.fill_array(rng.uniform(60, 180, 20000))     # flat background
    result = fit_histogram(hist, "gaussian+linear")
    assert result.parameters["mean"] == pytest.approx(120.0, abs=1.0)


def test_fit_range_restricts_bins():
    hist = gaussian_hist()
    result = fit_histogram(hist, "gaussian", fit_range=(100, 140))
    assert result.ndf < 97
    assert result.parameters["mean"] == pytest.approx(120.0, abs=0.5)


def test_fit_with_explicit_seed():
    hist = gaussian_hist()
    result = fit_histogram(hist, "gaussian", seed=(100.0, 119.0, 4.0))
    assert result.parameters["mean"] == pytest.approx(120.0, abs=0.3)


def test_fit_unknown_shape_rejected():
    with pytest.raises(FitError):
        fit_histogram(gaussian_hist(), "lorentzian")


def test_fit_too_few_bins_rejected():
    hist = Histogram1D("h", bins=2, lower=0, upper=1)
    with pytest.raises(FitError, match="constrain"):
        fit_histogram(hist, "gaussian")


def test_linear_fit():
    hist = Histogram1D("h", bins=20, lower=0, upper=10)
    for i in range(20):
        center = hist.axis.bin_center(i)
        hist.fill(center, weight=2.0 + 3.0 * center)
    result = fit_histogram(hist, "linear")
    assert result.parameters["intercept"] == pytest.approx(2.0, abs=0.2)
    assert result.parameters["gradient"] == pytest.approx(3.0, abs=0.1)


def test_exponential_fit():
    hist = Histogram1D("h", bins=30, lower=0, upper=3)
    for i in range(30):
        center = hist.axis.bin_center(i)
        hist.fill(center, weight=100 * np.exp(-1.5 * center))
    result = fit_histogram(hist, "exponential")
    assert result.parameters["slope"] == pytest.approx(-1.5, abs=0.05)


def test_quadratic_fit():
    hist = Histogram1D("h", bins=30, lower=-3, upper=3)
    for i in range(30):
        c = hist.axis.bin_center(i)
        hist.fill(c, weight=1 + 2 * c + 0.5 * c * c + 10)
    result = fit_histogram(hist, "quadratic")
    assert result.parameters["c2"] == pytest.approx(0.5, abs=0.05)


def test_fit_result_callable():
    hist = gaussian_hist()
    result = fit_histogram(hist, "gaussian")
    peak_value = result(result.parameters["mean"])
    off_peak = result(result.parameters["mean"] + 20)
    assert peak_value > off_peak


def test_fit_shapes_evaluate():
    assert gaussian(0.0, 1.0, 0.0, 1.0) == pytest.approx(1.0)
    assert gaussian_plus_linear(0.0, 1.0, 0.0, 1.0, 2.0, 0.0) == pytest.approx(3.0)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def test_render_hist1d_shape():
    hist = gaussian_hist(n=5000)
    text = render_hist1d(hist, width=40, height=8)
    lines = text.splitlines()
    assert lines[0] == hist.title
    assert len(lines) == 1 + 8 + 2 + 1  # title + rows + axis + label + stats
    assert "entries=5000" in lines[-1]
    # Peak column should be filled at the top row somewhere.
    assert "█" in lines[1]


def test_render_hist1d_validation():
    hist = gaussian_hist(n=10)
    with pytest.raises(ValueError):
        render_hist1d(hist, width=2)
    with pytest.raises(ValueError):
        render_hist1d(hist, height=1)


def test_render_hist1d_empty():
    hist = Histogram1D("h", bins=10, lower=0, upper=1)
    text = render_hist1d(hist)
    assert "entries=0" in text


def test_render_hist1d_without_stats():
    hist = gaussian_hist(n=100)
    text = render_hist1d(hist, show_stats=False)
    assert "entries" not in text


def test_render_hist2d():
    hist = Histogram2D(
        "h2", x_bins=20, x_lower=0, x_upper=1, y_bins=20, y_lower=0, y_upper=1
    )
    rng = np.random.default_rng(2)
    hist.fill_array(rng.uniform(0, 1, 500), rng.uniform(0, 1, 500))
    text = render_hist2d(hist)
    assert "entries=500" in text
    assert text.startswith("h2")


def test_render_profile():
    prof = Profile1D("p", bins=10, lower=0, upper=10)
    for x in np.linspace(0.5, 9.5, 10):
        prof.fill(x, x * 2)
    text = render_profile(prof)
    assert "entries=10" in text


def test_render_profile_empty():
    prof = Profile1D("p", bins=5, lower=0, upper=1)
    assert "empty" in render_profile(prof)


def test_render_object_dispatch():
    hist = gaussian_hist(n=10)
    assert render_object(hist).startswith(hist.title)
    prof = Profile1D("p", bins=5, lower=0, upper=1)
    assert "p" in render_object(prof)
    from repro.aida.cloud import Cloud1D

    cloud = Cloud1D("c")
    cloud.fill(0.5)
    assert "c" in render_object(cloud)
    plain = object()
    assert render_object(plain) == repr(plain)  # fallback path


# ---------------------------------------------------------------------------
# serial helpers
# ---------------------------------------------------------------------------

def test_serial_roundtrip_dispatch():
    hist = gaussian_hist(n=50)
    restored = from_dict(to_dict(hist))
    assert restored == hist


def test_serial_unknown_kind():
    with pytest.raises(TypeError):
        from_dict({"kind": "Mystery"})
    with pytest.raises(TypeError):
        to_dict(object())


def test_serial_merge_dispatch():
    a = gaussian_hist(n=10, seed=1)
    b = gaussian_hist(n=20, seed=2)
    merged = merge(a, b)
    assert merged.entries == a.entries + b.entries


def test_serial_merge_kind_mismatch():
    from repro.aida.ntuple import NTuple

    with pytest.raises(TypeError):
        merge(gaussian_hist(n=1), NTuple("n", ["a"]))
