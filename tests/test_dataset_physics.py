"""Unit tests for vectorized kinematics."""

import numpy as np
import pytest

from repro.dataset import physics


def test_invariant_mass_at_rest():
    assert physics.invariant_mass(
        np.array([10.0]), np.zeros(1), np.zeros(1), np.zeros(1)
    )[0] == pytest.approx(10.0)


def test_invariant_mass_massless():
    e = np.array([50.0])
    assert physics.invariant_mass(e, e, np.zeros(1), np.zeros(1))[0] == pytest.approx(0.0)


def test_invariant_mass_clips_negative():
    # Slightly spacelike due to rounding: must return 0, not NaN.
    m = physics.invariant_mass(
        np.array([1.0]), np.array([1.0 + 1e-9]), np.zeros(1), np.zeros(1)
    )
    assert m[0] == 0.0


def test_pair_mass_back_to_back():
    e = np.array([60.0])
    p = np.array([45.0])
    zero = np.zeros(1)
    mass = physics.pair_mass(e, p, zero, zero, e, -p, zero, zero)
    # M^2 = (2E)^2 - 0 = 4E^2 - each leg has m^2 = 60^2-45^2
    assert mass[0] == pytest.approx(120.0)


def test_momentum_and_pt():
    px, py, pz = np.array([3.0]), np.array([4.0]), np.array([12.0])
    assert physics.momentum(px, py, pz)[0] == pytest.approx(13.0)
    assert physics.transverse_momentum(px, py)[0] == pytest.approx(5.0)


def test_pseudorapidity_symmetry():
    px, py = np.array([1.0, 1.0]), np.array([0.0, 0.0])
    pz = np.array([2.0, -2.0])
    eta = physics.pseudorapidity(px, py, pz)
    assert eta[0] == pytest.approx(-eta[1])
    assert physics.pseudorapidity(np.array([1.0]), np.zeros(1), np.zeros(1))[0] == pytest.approx(0.0)


def test_azimuth_quadrants():
    assert physics.azimuth(np.array([1.0]), np.array([0.0]))[0] == pytest.approx(0.0)
    assert physics.azimuth(np.array([0.0]), np.array([1.0]))[0] == pytest.approx(np.pi / 2)


def test_two_body_momentum_symmetric():
    p = physics.two_body_momentum(100.0, 10.0, 10.0)
    # p = sqrt(M^2/4 - m^2)
    assert p == pytest.approx(np.sqrt(2500 - 100))


def test_two_body_momentum_massless():
    assert physics.two_body_momentum(500.0, 0.0, 0.0) == pytest.approx(250.0)


def test_two_body_momentum_validation():
    with pytest.raises(ValueError):
        physics.two_body_momentum(0.0, 1.0, 1.0)
    with pytest.raises(ValueError):
        physics.two_body_momentum(10.0, 6.0, 6.0)


def test_isotropic_directions_unit_norm():
    rng = np.random.default_rng(0)
    ux, uy, uz = physics.isotropic_directions(1000, rng)
    norms = ux**2 + uy**2 + uz**2
    assert np.allclose(norms, 1.0)
    # Roughly isotropic: mean close to 0 in each component.
    assert abs(ux.mean()) < 0.1
    assert abs(uz.mean()) < 0.1


def test_boost_preserves_mass():
    rng = np.random.default_rng(1)
    e = np.array([10.0, 20.0])
    px = np.array([3.0, -5.0])
    py = np.array([1.0, 2.0])
    pz = np.array([0.0, 4.0])
    mass_before = physics.invariant_mass(e, px, py, pz)
    b = np.array([0.5, -0.3])
    zeros = np.zeros(2)
    be, bpx, bpy, bpz = physics.boost(e, px, py, pz, b, zeros, zeros)
    mass_after = physics.invariant_mass(be, bpx, bpy, bpz)
    assert np.allclose(mass_before, mass_after)


def test_boost_at_rest_gives_velocity():
    e = np.array([1.0])
    zeros = np.zeros(1)
    be, bpx, _, _ = physics.boost(e, zeros, zeros, zeros, np.array([0.6]), zeros, zeros)
    gamma = 1 / np.sqrt(1 - 0.36)
    assert be[0] == pytest.approx(gamma)
    assert bpx[0] / be[0] == pytest.approx(0.6)


def test_boost_zero_velocity_identity():
    e = np.array([5.0])
    px = np.array([2.0])
    zeros = np.zeros(1)
    be, bpx, bpy, bpz = physics.boost(e, px, zeros, zeros, zeros, zeros, zeros)
    assert be[0] == pytest.approx(5.0)
    assert bpx[0] == pytest.approx(2.0)


def test_boost_superluminal_rejected():
    one = np.ones(1)
    with pytest.raises(ValueError):
        physics.boost(one, one, one, one, np.array([1.0]), np.zeros(1), np.zeros(1))


def test_two_body_decay_conserves_four_momentum():
    rng = np.random.default_rng(2)
    n = 100
    pe = np.full(n, 250.0)
    ppx = np.full(n, 100.0)
    ppy = np.zeros(n)
    ppz = np.full(n, 50.0)
    (e1, px1, py1, pz1), (e2, px2, py2, pz2) = physics.two_body_decay(
        pe, ppx, ppy, ppz, 10.0, 5.0, rng
    )
    assert np.allclose(e1 + e2, pe)
    assert np.allclose(px1 + px2, ppx)
    assert np.allclose(py1 + py2, ppy, atol=1e-9)
    assert np.allclose(pz1 + pz2, ppz)
    # Daughters have the requested masses.
    assert np.allclose(physics.invariant_mass(e1, px1, py1, pz1), 10.0)
    assert np.allclose(physics.invariant_mass(e2, px2, py2, pz2), 5.0)


def test_two_body_decay_below_threshold_rejected():
    rng = np.random.default_rng(3)
    e = np.array([10.0])
    zeros = np.zeros(1)
    with pytest.raises(ValueError):
        physics.two_body_decay(e, zeros, zeros, zeros, 8.0, 8.0, rng)


def test_smear_energies_positive_and_unbiased():
    rng = np.random.default_rng(4)
    e = np.full(20000, 100.0)
    smeared = physics.smear_energies(e, rng)
    assert np.all(smeared > 0)
    sigma = 100 * np.sqrt(0.36 / 100 + 0.02**2)
    assert smeared.mean() == pytest.approx(100.0, abs=3 * sigma / np.sqrt(20000))
    assert smeared.std() == pytest.approx(sigma, rel=0.05)
