"""Integration tests: replica-aware staging through the full session stack.

Covers the §4 repeat-analysis scenario the replica subsystem exists for:
a second session on the same dataset must not re-download the whole file
across the WAN (the SE copy was registered after the first fetch), must
reuse worker-cached parts (warm stage), and must still produce merged
AIDA results bit-identical to a cold run.
"""

import pytest

from repro.analysis import counting
from repro.client.client import IPAClient
from repro.core.site import GridSite, SiteConfig
from repro.services.locator import DatasetLocation


def build_site(n_workers=4, **kwargs):
    site = GridSite(
        SiteConfig(n_workers=n_workers, enable_observability=True, **kwargs)
    )
    site.register_dataset(
        "ds", "/t/ds", size_mb=40.0, n_events=2000,
        content={"kind": "ilc", "seed": 42},
    )
    return site


def run_session(
    site,
    cred,
    dataset="ds",
    n_engines=None,
    dataset_hint=None,
    analyze=False,
):
    """One complete session; returns staging + (optionally) result info."""
    client = IPAClient(site, cred)
    out = {}

    def scenario():
        yield from client.obtain_proxy_and_connect(
            n_engines=n_engines, dataset_hint=dataset_hint
        )
        out["workers"] = [
            ref.worker
            for ref in site.registry.engines(client.session.session_id)
        ]
        out["staged"] = yield from client.select_dataset(dataset)
        if analyze:
            yield from client.upload_code(counting.SOURCE)
            yield from client.run()
            final = yield from client.wait_for_completion(poll_interval=3.0)
            out["tree"] = final.tree.to_dict()
            out["progress"] = final.progress
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    return out


# ---------------------------------------------------------------------------
# The satellite bugfix: the SE copy is registered after the WAN fetch, so
# a second session never re-downloads the whole file.
# ---------------------------------------------------------------------------

def test_second_session_skips_wan_fetch():
    site = build_site()
    cred = site.enroll_user("/CN=alice")
    first = run_session(site, cred)["staged"]
    fetch_spans_after_first = len(site.obs.tracer.find("stage.fetch"))
    second = run_session(site, cred)["staged"]

    assert first.fetch_seconds > 0
    assert not first.fetch_skipped
    assert second.fetch_seconds == 0.0
    assert second.fetch_skipped
    # No new stage.fetch span: the WAN transfer simply never happened.
    assert len(site.obs.tracer.find("stage.fetch")) == fetch_spans_after_first
    # And the warm stage is dramatically cheaper across every phase.
    assert second.split_seconds < first.split_seconds
    assert second.move_parts_seconds <= first.move_parts_seconds
    assert second.stage_seconds < first.stage_seconds / 5


def test_fully_warm_second_stage_is_all_local_hits():
    site = build_site()
    cred = site.enroll_user("/CN=alice")
    run_session(site, cred)
    second = run_session(site, cred, dataset_hint="ds")["staged"]
    assert second.local_hits == 4
    assert second.peer_hits == 0
    assert second.se_hits == 0
    assert second.cold_parts == 0
    # Bytes saved: every part plus the skipped whole-file fetch.
    assert second.saved_mb == pytest.approx(80.0)
    metrics = site.obs.metrics
    assert metrics.counter("replica_stage_hits_total").value(level="local") == 4
    assert metrics.counter("replica_stage_hits_total").value(level="whole") == 1
    assert metrics.counter("replica_bytes_saved_mb_total").total() == pytest.approx(80.0)


def test_cold_stage_timings_identical_with_and_without_cache():
    """A fully cold stage must cost exactly what the original pipeline did."""
    timings = {}
    for enabled in (False, True):
        site = build_site(enable_replica_cache=enabled)
        cred = site.enroll_user("/CN=alice")
        staged = run_session(site, cred)["staged"]
        timings[enabled] = (
            staged.fetch_seconds,
            staged.split_seconds,
            staged.move_parts_seconds,
        )
    assert timings[False] == timings[True]


def test_disabled_cache_restages_every_time():
    site = build_site(enable_replica_cache=False)
    assert site.replicas is None
    cred = site.enroll_user("/CN=alice")
    first = run_session(site, cred)["staged"]
    second = run_session(site, cred)["staged"]
    assert second.fetch_seconds == pytest.approx(first.fetch_seconds)
    assert second.stage_seconds == pytest.approx(first.stage_seconds)
    assert not second.fetch_skipped


# ---------------------------------------------------------------------------
# Partial hits, peers, affinity
# ---------------------------------------------------------------------------

def test_partial_hit_moves_only_missing_parts():
    site = build_site()
    cred = site.enroll_user("/CN=alice")
    first = run_session(site, cred)
    # One holder loses its cached part (e.g. scratch cleanup): that part
    # comes back from the SE part file; the split pass is not re-run
    # because the SE still holds every part of this geometry.
    victim = first["workers"][0]
    evicted_key = site.replicas.caches[victim].keys()[0]
    site.replicas.caches[victim].remove(evicted_key, reason="scratch-purge")
    second = run_session(site, cred, dataset_hint="ds")["staged"]
    assert second.local_hits == 3
    assert second.se_hits + second.peer_hits == 1
    assert second.cold_parts == 0
    assert second.split_seconds < 1.0  # no split pass, just the consult
    assert second.move_parts_seconds < first["staged"].move_parts_seconds


def test_peer_fetch_serves_part_from_other_worker_cache():
    site = build_site(n_workers=6)
    cred = site.enroll_user("/CN=alice")
    first = run_session(site, cred, n_engines=4)
    rm = site.replicas
    # Consolidate two parts onto one worker (as a re-dispatch after a
    # failure would): holder_a's part now lives only on holder_b, which
    # already caches its own part — alignment cannot give holder_b both.
    holder_a, holder_b = first["workers"][0], first["workers"][1]
    moved_key = rm.caches[holder_a].keys()[0]
    size = rm.caches[holder_a].entry(moved_key).size_mb
    rm.caches[holder_a].remove(moved_key, reason="scratch-purge")
    # Drop the SE part files too, so the peer cache is the only source
    # short of a full re-split.
    for key in list(rm.caches[holder_b].keys()) + [moved_key]:
        rm.catalog.unregister(key, "se", reason="scratch-purge")
    rm.record_worker_part("ds", moved_key, holder_b, size)

    second = run_session(
        site, cred, n_engines=4, dataset_hint="ds", analyze=True
    )
    staged = second["staged"]
    assert staged.peer_hits == 1
    assert staged.cold_parts == 0
    assert second["progress"].events_processed == 2000
    assert site.obs.tracer.find("stage.peer_fetch")


def test_dataset_hint_places_engines_on_caching_workers():
    site = build_site(n_workers=8)
    cred = site.enroll_user("/CN=alice")
    first = run_session(site, cred, n_engines=4)
    second = run_session(site, cred, n_engines=4, dataset_hint="ds")
    assert set(second["workers"]) == set(first["workers"])
    assert second["staged"].local_hits == 4


# ---------------------------------------------------------------------------
# Correctness: warm results == cold results, invalidation works
# ---------------------------------------------------------------------------

def test_warm_session_results_bit_identical_to_cold():
    site = build_site()
    cred = site.enroll_user("/CN=alice")
    cold = run_session(site, cred, analyze=True)
    warm = run_session(site, cred, dataset_hint="ds", analyze=True)
    assert warm["staged"].local_hits == 4
    assert warm["tree"] == cold["tree"]  # exact dict (float-bit) equality


def test_dataset_reregistration_invalidates_replicas():
    site = build_site()
    cred = site.enroll_user("/CN=alice")
    run_session(site, cred)
    assert any(len(c) for c in site.replicas.caches.values())
    # Content replaced under the same id: the locator update hook bumps
    # the replica generation, killing every cached copy.
    site.locator.replace_location(
        DatasetLocation(
            dataset_id="ds",
            kind="gridftp",
            host="se",
            path="/t/ds-v2",
            size_mb=40.0,
            n_events=2000,
            splitter_host="se",
            origin_host="repository",
        )
    )
    assert all(len(c) == 0 for c in site.replicas.caches.values())
    second = run_session(site, cred)["staged"]
    assert second.cold_parts == 4
    assert not second.fetch_skipped
    assert second.fetch_seconds > 0


def test_node_failure_invalidates_its_replicas():
    site = build_site()
    cred = site.enroll_user("/CN=alice")
    first = run_session(site, cred)
    victim = first["workers"][0]
    site.injector.crash_worker(victim)
    assert len(site.replicas.caches[victim]) == 0
    assert site.replicas.catalog.hosts_with_dataset("ds").get(victim) is None
    site.injector.restore_worker(victim)
    # Restaging still works and the dead worker's part comes from the SE.
    second = run_session(site, cred, dataset_hint="ds")["staged"]
    assert second.local_hits == 3
    assert second.se_hits + second.peer_hits == 1


def test_worker_cache_capacity_limits_reuse():
    # Caches too small for a part: every stage stays cold, but correctness
    # and the whole-file fetch skip are unaffected.
    site = build_site(worker_cache_mb=5.0)  # parts are 10 MB each
    cred = site.enroll_user("/CN=alice")
    run_session(site, cred)
    assert all(len(c) == 0 for c in site.replicas.caches.values())
    second = run_session(site, cred)["staged"]
    assert second.local_hits == 0
    assert second.fetch_skipped  # SE whole-file + part files still help
    assert second.cold_parts == 0  # SE part files survive: scatter only
