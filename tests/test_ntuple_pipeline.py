"""NTuples through the full pipeline: write-now, histogram-later workflow."""

import numpy as np
import pytest

from repro.client.client import IPAClient
from repro.core.site import GridSite, SiteConfig

NTUPLE_SOURCE = '''
class NTupleWriter(Analysis):
    """Writes one row per event; the client projects afterwards."""

    name = "ntuple-writer"

    def start(self, tree):
        tree.put("/nt/events", NTuple("events", ["visible", "njets"]))

    def process_batch(self, batch, tree):
        nt = tree.get("/nt/events")
        counts = np.diff(batch.offsets)
        for i in range(len(batch)):
            lo, hi = batch.offsets[i], batch.offsets[i + 1]
            nt.fill(visible=float(batch.e[lo:hi].sum()),
                    njets=float(counts[i]))
'''


def test_ntuple_merges_across_engines_and_projects_at_client():
    site = GridSite(SiteConfig(n_workers=4))
    site.register_dataset(
        "ds", "/t/ds", size_mb=20.0, n_events=2000,
        content={"kind": "ilc", "seed": 55},
    )
    client = IPAClient(site, site.enroll_user("/CN=alice"))
    results = {}

    def scenario():
        yield from client.obtain_proxy_and_connect()
        yield from client.select_dataset("ds")
        yield from client.upload_code(NTUPLE_SOURCE)
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=3.0)
        results["tree"] = final.tree
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))

    nt = results["tree"].get("/nt/events")
    # Every event of every engine's part landed exactly once.
    assert nt.rows == 2000
    # Client-side projection with a cut — the "histogram later" workflow.
    visible = nt.project1d("visible", bins=60, lower=0, upper=600)
    assert visible.all_entries == 2000
    four_jet = nt.project1d(
        "visible", bins=60, lower=0, upper=600,
        cut=lambda c: c["njets"] == 4,
    )
    counts = nt.column("njets")
    assert four_jet.all_entries == int(np.sum(counts == 4))
    # 2-D projection works on the merged ntuple too.
    corr = nt.project2d("njets", "visible", 10, 0, 10, 30, 0, 600)
    assert corr.all_entries == 2000
