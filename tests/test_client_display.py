"""Unit tests for the client plug-ins and the ASCII dashboard."""

import pytest

from repro.aida.hist1d import Histogram1D
from repro.aida.tree import ObjectTree
from repro.client.display import dashboard, progress_bar
from repro.client.plugins import GridProxyPlugin, RemoteDataPlugin
from repro.core.site import GridSite, SiteConfig
from repro.services.aida_manager import MergeProgress
from repro.sim import Environment


# ---------------------------------------------------------------------------
# progress_bar / dashboard
# ---------------------------------------------------------------------------

def test_progress_bar_bounds():
    assert progress_bar(0.0, width=10) == "[..........]   0.0%"
    assert progress_bar(1.0, width=10) == "[##########] 100.0%"
    assert progress_bar(0.5, width=10).count("#") == 5
    # Clipped outside [0, 1].
    assert progress_bar(-1.0, width=10).count("#") == 0
    assert progress_bar(2.0, width=10).count("#") == 10


def make_progress(**overrides):
    defaults = dict(
        session_id="session-1",
        engines_reporting=4,
        events_processed=500,
        total_events=1000,
        final_engines=0,
        run_id=0,
        analysis_versions=[1],
        merged_at=12.0,
    )
    defaults.update(overrides)
    return MergeProgress(**defaults)


def tree_with(n_hists):
    tree = ObjectTree()
    for index in range(n_hists):
        hist = Histogram1D(f"h{index}", bins=5, lower=0, upper=5)
        hist.fill(2.5)
        tree.put(f"/dir/h{index}", hist)
    return tree


def test_dashboard_shows_progress_and_objects():
    text = dashboard(tree_with(2), make_progress())
    assert "session session-1" in text
    assert "events=500/1000" in text
    assert "50.0%" in text
    assert "/dir/h0" in text
    assert "/dir/h1" in text


def test_dashboard_truncates_objects():
    text = dashboard(tree_with(6), make_progress(), max_objects=2)
    assert "/dir/h1" in text
    assert "/dir/h5" not in text
    assert "and 4 more objects" in text


def test_dashboard_without_progress():
    text = dashboard(tree_with(1))
    assert "session" not in text
    assert "/dir/h0" in text


def test_dashboard_empty_tree():
    text = dashboard(ObjectTree(), make_progress(events_processed=0))
    assert "0.0%" in text


def test_merge_progress_properties():
    progress = make_progress(final_engines=4)
    assert progress.fraction_done == pytest.approx(0.5)
    assert progress.complete
    empty = make_progress(engines_reporting=0, total_events=0, final_engines=0)
    assert empty.fraction_done == 0.0
    assert not empty.complete


# ---------------------------------------------------------------------------
# Plug-ins
# ---------------------------------------------------------------------------

def test_proxy_plugin_requires_obtain_first():
    site = GridSite(SiteConfig(n_workers=1))
    credential = site.enroll_user("/CN=x")
    plugin = GridProxyPlugin(site.env, credential)
    with pytest.raises(RuntimeError, match="no proxy"):
        _ = plugin.chain
    plugin.obtain_proxy()
    assert len(plugin.chain) == 2
    assert plugin.chain[0].proxy_depth == 1


def test_proxy_plugin_replaces_proxy():
    site = GridSite(SiteConfig(n_workers=1))
    plugin = GridProxyPlugin(site.env, site.enroll_user("/CN=x"))
    first = plugin.obtain_proxy(lifetime=10.0)
    second = plugin.obtain_proxy(lifetime=100.0)
    assert plugin.proxy is second
    assert second.certificate.not_after > first.certificate.not_after


def test_remote_data_plugin_requires_binding():
    site = GridSite(SiteConfig(n_workers=1))
    plugin = RemoteDataPlugin(site.container)
    with pytest.raises(RuntimeError, match="not bound"):
        next(plugin.poll())


# ---------------------------------------------------------------------------
# render_catalog (the Fig. 3 chooser)
# ---------------------------------------------------------------------------

def test_render_catalog_directories_and_datasets():
    from repro.client.display import render_catalog

    listing = {"directories": ["ilc", "lhc"], "datasets": ["readme-ds"]}
    text = render_catalog(listing, path="/experiments")
    assert "/experiments" in text
    assert "[+] ilc/" in text
    assert "[=] readme-ds" in text


def test_render_catalog_with_entries():
    from repro.client.display import render_catalog
    from repro.services.catalog import DatasetEntry

    entry = DatasetEntry("d1", "/x/zh-500", {}, size_mb=471.0, n_events=40000)
    listing = {"directories": [], "datasets": ["zh-500"]}
    text = render_catalog(listing, path="/x", entries=[entry])
    assert "471 MB" in text
    assert "40000 events" in text


def test_render_catalog_empty():
    from repro.client.display import render_catalog

    assert "(empty)" in render_catalog({"directories": [], "datasets": []})
