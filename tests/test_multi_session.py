"""Concurrency tests: multiple simultaneous sessions on one site."""

import numpy as np
import pytest

from repro.analysis import counting, higgs
from repro.client.client import IPAClient
from repro.core.site import GridSite, SiteConfig
from repro.services.wsrf import WsrfError


def build_site(n_workers=8, max_engines=4, **kwargs):
    site = GridSite(
        SiteConfig(
            n_workers=n_workers, max_engines_per_session=max_engines, **kwargs
        )
    )
    site.register_dataset(
        "ds-a", "/t/ds-a", size_mb=30.0, n_events=1500,
        content={"kind": "ilc", "seed": 100},
    )
    site.register_dataset(
        "ds-b", "/t/ds-b", size_mb=30.0, n_events=1500,
        content={"kind": "ilc", "seed": 200},
    )
    return site


def test_two_concurrent_sessions_run_independently():
    site = build_site()
    alice = IPAClient(site, site.enroll_user("/CN=alice"))
    bob = IPAClient(site, site.enroll_user("/CN=bob"))
    results = {}

    def user_scenario(client, dataset, source, key):
        yield from client.obtain_proxy_and_connect(n_engines=4)
        yield from client.select_dataset(dataset)
        yield from client.upload_code(source)
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=3.0)
        results[key] = final
        yield from client.close()

    p1 = site.env.process(
        user_scenario(alice, "ds-a", higgs.SOURCE, "alice")
    )
    p2 = site.env.process(
        user_scenario(bob, "ds-b", counting.SOURCE, "bob")
    )
    site.env.run(until=site.env.all_of([p1, p2]))

    # Both sessions completed with their own analyses over their own data.
    assert results["alice"].progress.events_processed == 1500
    assert results["bob"].progress.events_processed == 1500
    assert results["alice"].tree.exists("/higgs/dijet_mass")
    assert not results["alice"].tree.exists("/counts/process")
    assert results["bob"].tree.exists("/counts/process")
    assert not results["bob"].tree.exists("/higgs/dijet_mass")
    # All workers freed afterwards.
    assert site.scheduler.idle_worker_count == 8


def test_concurrent_sessions_get_disjoint_workers():
    site = build_site()
    alice = IPAClient(site, site.enroll_user("/CN=alice"))
    bob = IPAClient(site, site.enroll_user("/CN=bob"))
    workers = {}

    def scenario(client, key):
        info = yield from client.obtain_proxy_and_connect(n_engines=4)
        summary = yield from client.status()
        workers[key] = {
            ref.worker
            for ref in site.registry.engines(info.session_id)
        }

    p1 = site.env.process(scenario(alice, "alice"))
    p2 = site.env.process(scenario(bob, "bob"))
    site.env.run(until=site.env.all_of([p1, p2]))
    assert len(workers["alice"]) == 4
    assert len(workers["bob"]) == 4
    assert workers["alice"].isdisjoint(workers["bob"])


def test_oversubscribed_site_second_session_waits():
    """With all workers taken, a second session waits for the first to close."""
    site = build_site(n_workers=4, max_engines=4)
    alice = IPAClient(site, site.enroll_user("/CN=alice"))
    bob = IPAClient(site, site.enroll_user("/CN=bob"))
    timeline = {}

    def alice_scenario():
        yield from alice.obtain_proxy_and_connect(n_engines=4)
        timeline["alice_ready"] = site.env.now
        yield site.env.timeout(100.0)
        yield from alice.close()
        timeline["alice_closed"] = site.env.now

    def bob_scenario():
        yield site.env.timeout(10.0)  # arrives while alice holds everything
        yield from bob.obtain_proxy_and_connect(n_engines=4)
        timeline["bob_ready"] = site.env.now
        yield from bob.close()

    p1 = site.env.process(alice_scenario())
    p2 = site.env.process(bob_scenario())
    site.env.run(until=site.env.all_of([p1, p2]))
    assert timeline["bob_ready"] > timeline["alice_closed"] - 1.0


def test_aida_manager_keeps_sessions_separate():
    site = build_site()
    alice = IPAClient(site, site.enroll_user("/CN=alice"))
    bob = IPAClient(site, site.enroll_user("/CN=bob"))
    results = {}

    def scenario(client, dataset, key):
        yield from client.obtain_proxy_and_connect(n_engines=2)
        yield from client.select_dataset(dataset)
        yield from client.upload_code(counting.SOURCE)
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=3.0)
        results[key] = final.tree.get("/counts/process").heights()
        yield from client.close()

    p1 = site.env.process(scenario(alice, "ds-a", "alice"))
    p2 = site.env.process(scenario(bob, "ds-b", "bob"))
    site.env.run(until=site.env.all_of([p1, p2]))
    # Different seeds -> different process mixes; no cross-contamination.
    assert not np.array_equal(results["alice"], results["bob"])
    assert results["alice"].sum() == 1500
    assert results["bob"].sum() == 1500


def test_session_resource_lifetime_expiry():
    site = GridSite(SiteConfig(n_workers=2, session_lifetime=100.0))
    site.register_dataset(
        "ds", "/t/ds", size_mb=10.0, n_events=500,
        content={"kind": "ilc", "seed": 5},
    )
    client = IPAClient(site, site.enroll_user("/CN=alice"))

    def scenario():
        info = yield from client.obtain_proxy_and_connect()
        home = site.session_service.resources
        assert home.exists(info.resource)
        yield site.env.timeout(150.0)
        assert not home.exists(info.resource)
        with pytest.raises(WsrfError, match="expired"):
            home.properties(info.resource)

    site.env.run(until=site.env.process(scenario()))


def test_tokens_are_per_session():
    site = build_site()
    alice = IPAClient(site, site.enroll_user("/CN=alice"))
    bob = IPAClient(site, site.enroll_user("/CN=bob"))

    def scenario():
        info_a = yield from alice.obtain_proxy_and_connect(n_engines=2)
        info_b = yield from bob.obtain_proxy_and_connect(n_engines=2)
        assert info_a.token != info_b.token
        # Bob's token works against Alice's session id on the RMI channel
        # (the paper's RMI gating is session-creation-based, not per-call
        # authorization) — but closing Bob revokes only Bob's token.
        yield from bob.close()
        result = yield from alice.poll()
        assert result.progress.session_id == info_a.session_id
        yield from alice.close()

    site.env.run(until=site.env.process(scenario()))


def test_more_engines_than_workers_rejected():
    """Requesting more engines than workers would deadlock: refused."""
    site = build_site(n_workers=2, max_engines=8)
    client = IPAClient(site, site.enroll_user("/CN=alice"))

    def scenario():
        client.obtain_proxy()
        with pytest.raises(Exception, match="only 2 workers"):
            yield from client.connect(n_engines=4)
        info = yield from client.connect(n_engines=2)
        assert info.n_engines == 2
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))


def test_switch_dataset_mid_session():
    """§1: 'change the dataset during the analysis session'."""
    site = build_site()
    client = IPAClient(site, site.enroll_user("/CN=alice"))
    results = {}

    def scenario():
        yield from client.obtain_proxy_and_connect(n_engines=2)
        yield from client.select_dataset("ds-a")
        yield from client.upload_code(counting.SOURCE)
        yield from client.run()
        first = yield from client.wait_for_completion(poll_interval=3.0)
        results["first"] = first.tree.get("/counts/process").heights()

        # Switch datasets in the same session; rewind clears old results.
        yield from client.select_dataset("ds-b")
        yield from client.rewind()
        yield from client.run()
        second = yield from client.wait_for_completion(poll_interval=3.0)
        results["second"] = second.tree.get("/counts/process").heights()
        results["progress"] = second.progress
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    assert results["progress"].events_processed == 1500
    assert results["first"].sum() == 1500
    assert results["second"].sum() == 1500
    # Different seeds: the mixtures differ, and no events leaked across.
    assert not np.array_equal(results["first"], results["second"])
