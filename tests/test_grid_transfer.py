"""Unit tests for the GridFTP-like transfer service."""

import pytest

from repro.grid.network import Network
from repro.grid.nodes import NodeSpec, StorageElement, WorkerNode
from repro.grid.transfer import GridFTPService, TransferError
from repro.sim import Environment

FAST_DISK = NodeSpec(disk_read_mbps=10_000, disk_write_mbps=10_000)


def build_site(n_workers=4, lan_bw=7.6, se_disk=10.24):
    env = Environment()
    net = Network(env)
    net.add_host("se")
    se = StorageElement(
        env, "se", NodeSpec(disk_read_mbps=se_disk, disk_write_mbps=se_disk)
    )
    workers = []
    for i in range(n_workers):
        name = f"w{i}"
        net.add_host(name)
        net.add_link(f"se-{name}", "se", name, bandwidth=lan_bw)
        workers.append(WorkerNode(env, name, FAST_DISK))
    return env, net, se, workers


def test_parameter_validation():
    env, net, se, workers = build_site()
    with pytest.raises(ValueError):
        GridFTPService(env, net, setup_overhead=-1)
    with pytest.raises(ValueError):
        GridFTPService(env, net, streams=0)
    with pytest.raises(ValueError):
        GridFTPService(env, net, stream_rate=0)


def test_transfer_file_moves_and_registers():
    env, net, se, workers = build_site()
    ftp = GridFTPService(env, net, setup_overhead=0.0)
    se_node = se
    stats = env.run(
        until=ftp.transfer_file(se_node, workers[0], "data", 76.0)
    )
    assert workers[0].has_file("data")
    assert stats.size_mb == 76.0
    # 76 MB: disk read at 10.24 + network at 7.6 + fast write at 10000
    assert env.now == pytest.approx(76 / 10.24 + 76 / 7.6 + 76 / 10_000)


def test_transfer_file_setup_overhead_charged():
    env, net, se, workers = build_site()
    ftp = GridFTPService(env, net, setup_overhead=2.0)
    env.run(
        until=ftp.transfer_file(
            se, workers[0], "f", 7.6, read_disk=False, write_disk=False
        )
    )
    assert env.now == pytest.approx(2.0 + 1.0)


def test_transfer_negative_size_rejected():
    env, net, se, workers = build_site()
    ftp = GridFTPService(env, net)
    with pytest.raises(ValueError):
        ftp.transfer_file(se, workers[0], "f", -5)


def test_transfer_log_records_completions():
    env, net, se, workers = build_site()
    ftp = GridFTPService(env, net, setup_overhead=0.0)
    env.run(until=ftp.transfer_file(se, workers[0], "a", 1.0, read_disk=False))
    env.run(until=ftp.transfer_file(se, workers[1], "b", 1.0, read_disk=False))
    assert len(ftp.log) == 2


def test_stream_cap_via_stream_rate_and_streams():
    env, net, se, workers = build_site(lan_bw=100.0)
    ftp = GridFTPService(env, net, setup_overhead=0.0, stream_rate=2.0, streams=1)
    env.run(
        until=ftp.transfer_file(
            se, workers[0], "f", 20.0, read_disk=False, write_disk=False
        )
    )
    t_one_stream = env.now
    assert t_one_stream == pytest.approx(10.0)  # 2 MB/s cap

    env2, net2, se2, workers2 = build_site(lan_bw=100.0)
    ftp2 = GridFTPService(env2, net2, setup_overhead=0.0, stream_rate=2.0, streams=4)
    env2.run(
        until=ftp2.transfer_file(
            se2, workers2[0], "f", 20.0, read_disk=False, write_disk=False
        )
    )
    assert env2.now == pytest.approx(2.5)  # 8 MB/s with 4 streams


def test_streams_override_per_transfer():
    env, net, se, workers = build_site(lan_bw=100.0)
    ftp = GridFTPService(env, net, setup_overhead=0.0, stream_rate=2.0, streams=1)
    env.run(
        until=ftp.transfer_file(
            se, workers[0], "f", 20.0, streams=10, read_disk=False,
            write_disk=False,
        )
    )
    assert env.now == pytest.approx(1.0)
    with pytest.raises(ValueError):
        ftp.transfer_file(se, workers[0], "g", 1.0, streams=0)


def test_scatter_requires_matching_lengths():
    env, net, se, workers = build_site(n_workers=2)
    ftp = GridFTPService(env, net)
    with pytest.raises(TransferError):
        ftp.scatter(se, workers, [("p0", 1.0)])


def test_scatter_delivers_every_part():
    env, net, se, workers = build_site(n_workers=4)
    ftp = GridFTPService(env, net, setup_overhead=0.0)
    parts = [(f"part-{i}", 10.0) for i in range(4)]
    report = env.run(until=ftp.scatter(se, workers, parts))
    assert report.total_mb == pytest.approx(40.0)
    for worker, (name, _) in zip(workers, parts):
        assert worker.has_file(name)


def test_scatter_pipeline_shape():
    """Scatter time ~ serial disk read + one part's network transfer.

    This is the mechanism behind Table 2's 46 + 62/N "move parts" column.
    """
    X = 471.0
    for n in (1, 2, 4, 8, 16):
        env, net, se, workers = build_site(n_workers=n)
        ftp = GridFTPService(env, net, setup_overhead=0.0)
        part = X / n
        report = env.run(
            until=ftp.scatter(se, workers, [(f"p{i}", part) for i in range(n)])
        )
        # Serial disk read of all parts + last part's transfer and write.
        expected = X / 10.24 + part / 7.6 + part / 10_000
        assert report.duration == pytest.approx(expected, rel=1e-6), n


def test_scatter_time_decreases_with_node_count():
    durations = []
    for n in (1, 4, 16):
        env, net, se, workers = build_site(n_workers=n)
        ftp = GridFTPService(env, net, setup_overhead=0.0)
        report = env.run(
            until=ftp.scatter(
                se, workers, [(f"p{i}", 471.0 / n) for i in range(n)]
            )
        )
        durations.append(report.duration)
    assert durations[0] > durations[1] > durations[2]
    # ...but nowhere near 1/N: the serial disk stage dominates.
    assert durations[0] / durations[2] < 3.0


def test_broadcast_sends_to_all_in_parallel():
    env, net, se, workers = build_site(n_workers=8, lan_bw=100.0)
    ftp = GridFTPService(env, net, setup_overhead=1.0)
    stats = env.run(
        until=ftp.broadcast(se, workers, "code.jar", 0.015)
    )
    assert len(stats) == 8
    for worker in workers:
        assert worker.has_file("code.jar")
    # Parallel: total ~= setup + tiny transfer, far below 8x serial.
    assert env.now < 2.0


# ---------------------------------------------------------------------------
# Retries / transient failures
# ---------------------------------------------------------------------------

def test_inject_failures_validation():
    env, net, se, workers = build_site()
    ftp = GridFTPService(env, net)
    with pytest.raises(ValueError):
        ftp.inject_failures(-1)


def test_transfer_retries_after_transient_failure():
    env, net, se, workers = build_site()
    ftp = GridFTPService(env, net, setup_overhead=0.0)
    ftp.inject_failures(1)
    stats = env.run(
        until=ftp.transfer_file(
            se, workers[0], "f", 76.0, read_disk=False, write_disk=False
        )
    )
    assert workers[0].has_file("f")
    # Time: failed half-transfer (38 MB) + backoff + full transfer.
    expected = 38 / 7.6 + 1.0 + 76 / 7.6
    assert env.now == pytest.approx(expected)
    assert stats.size_mb == 76.0


def test_transfer_exhausts_retries():
    from repro.grid.transfer import TransferError

    env, net, se, workers = build_site()
    ftp = GridFTPService(env, net, setup_overhead=0.0)
    ftp.inject_failures(3)

    def scenario():
        with pytest.raises(TransferError, match="aborted"):
            yield ftp.transfer_file(
                se, workers[0], "f", 10.0, read_disk=False, retries=2
            )

    env.run(until=env.process(scenario()))
    assert not workers[0].has_file("f")


def test_transfer_zero_retries():
    from repro.grid.transfer import TransferError

    env, net, se, workers = build_site()
    ftp = GridFTPService(env, net, setup_overhead=0.0)
    ftp.inject_failures(1)

    def scenario():
        with pytest.raises(TransferError):
            yield ftp.transfer_file(
                se, workers[0], "f", 10.0, read_disk=False, retries=0
            )

    env.run(until=env.process(scenario()))
    with pytest.raises(ValueError):
        ftp.transfer_file(se, workers[0], "g", 1.0, retries=-1)


def test_failures_consumed_in_order():
    env, net, se, workers = build_site()
    ftp = GridFTPService(env, net, setup_overhead=0.0)
    ftp.inject_failures(1)
    env.run(
        until=ftp.transfer_file(
            se, workers[0], "a", 7.6, read_disk=False, write_disk=False
        )
    )
    start = env.now
    env.run(
        until=ftp.transfer_file(
            se, workers[1], "b", 7.6, read_disk=False, write_disk=False
        )
    )
    # Second transfer saw no failure: exactly one clean send.
    assert env.now - start == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Scatter / broadcast retry paths (per-part restart without spindle re-read)
# ---------------------------------------------------------------------------

def obs_ftp(n_workers=4, **kwargs):
    from repro.obs import Observability

    env, net, se, workers = build_site(n_workers=n_workers)
    obs = Observability(env, enabled=True)
    ftp = GridFTPService(env, net, setup_overhead=0.0, obs=obs, **kwargs)
    return env, se, workers, ftp, obs


def test_scatter_retries_failed_part_and_completes():
    env, se, workers, ftp, obs = obs_ftp()
    ftp.inject_failures(1)
    parts = [(f"p{i}", 10.0) for i in range(4)]
    report = env.run(until=ftp.scatter(se, workers, parts))
    # Report integrity: every part delivered and accounted exactly once.
    assert len(report.per_part) == 4
    assert report.total_mb == pytest.approx(40.0)
    assert report.finished_at > report.started_at
    for worker, (name, _) in zip(workers, parts):
        assert worker.has_file(name)
    assert obs.metrics.counter("ftp_retries_total").total() == 1
    assert obs.metrics.counter("ftp_failures_total").total() == 0
    # Payload metric counts only the successful deliveries.
    assert obs.metrics.counter("ftp_bytes_mb_total").total() == pytest.approx(40.0)


def test_scatter_retry_skips_spindle_reread():
    """A part restart re-sends over the LAN but never re-reads the SE disk.

    One worker makes the arithmetic exact: the failed attempt costs the
    lost half-transfer plus the 1 s backoff, and the restart charges a
    full re-send but *no* second spindle pass (which would add another
    10/10.24 s).
    """
    env, se, workers, ftp, obs = obs_ftp(n_workers=1)
    clean = env.run(until=ftp.scatter(se, workers, [("p0", 10.0)])).duration

    env2, se2, workers2, ftp2, obs2 = obs_ftp(n_workers=1)
    ftp2.inject_failures(1)
    failed = env2.run(until=ftp2.scatter(se2, workers2, [("p0", 10.0)])).duration
    assert failed == pytest.approx(clean + 5 / 7.6 + 1.0)
    assert obs2.metrics.counter("ftp_retries_total").total() == 1


def test_scatter_early_part_retry_absorbed_by_pipeline():
    """A retry on an early part hides behind the serial spindle stage.

    Part 0's restart chain finishes while later parts are still queued on
    the SE disk arm, so the scatter's total duration is unchanged -- the
    pipelined design absorbs transient failures for free.
    """
    parts = [(f"p{i}", 10.0) for i in range(4)]
    env, se, workers, ftp, obs = obs_ftp()
    clean = env.run(until=ftp.scatter(se, workers, parts)).duration

    env2, se2, workers2, ftp2, obs2 = obs_ftp()
    ftp2.inject_failures(1)
    failed = env2.run(until=ftp2.scatter(se2, workers2, parts)).duration
    assert failed == pytest.approx(clean)
    assert obs2.metrics.counter("ftp_retries_total").total() == 1


def test_scatter_exhausted_retries_raises():
    env, se, workers, ftp, obs = obs_ftp(n_workers=1)
    ftp.inject_failures(3)  # policy default: 3 attempts for the one part

    def scenario():
        with pytest.raises(TransferError, match="aborted"):
            yield ftp.scatter(se, workers, [("p0", 10.0)])

    env.run(until=env.process(scenario()))
    assert not workers[0].has_file("p0")
    assert obs.metrics.counter("ftp_retries_total").total() == 3
    assert obs.metrics.counter("ftp_failures_total").total() == 1


def test_scatter_multiple_failures_across_parts():
    env, se, workers, ftp, obs = obs_ftp()
    ftp.inject_failures(2)  # first attempts of the first two parts
    parts = [(f"p{i}", 10.0) for i in range(4)]
    report = env.run(until=ftp.scatter(se, workers, parts))
    assert len(report.per_part) == 4
    for worker, (name, _) in zip(workers, parts):
        assert worker.has_file(name)
    assert obs.metrics.counter("ftp_retries_total").total() == 2
    assert obs.metrics.counter("ftp_failures_total").total() == 0


def test_broadcast_retries_transient_failure():
    env, se, workers, ftp, obs = obs_ftp()
    ftp.inject_failures(1)
    stats = env.run(until=ftp.broadcast(se, workers, "code.jar", 0.015))
    assert len(stats) == 4
    for worker in workers:
        assert worker.has_file("code.jar")
    assert obs.metrics.counter("ftp_retries_total").total() == 1
    assert obs.metrics.counter("ftp_failures_total").total() == 0


def test_broadcast_exhausted_retries_raises():
    env, se, workers, ftp, obs = obs_ftp(n_workers=1)
    ftp.inject_failures(3)  # transfer_file default: retries=2 -> 3 attempts

    def scenario():
        with pytest.raises(TransferError):
            yield ftp.broadcast(se, workers, "code.jar", 0.015)

    env.run(until=env.process(scenario()))
    assert not workers[0].has_file("code.jar")
    assert obs.metrics.counter("ftp_failures_total").total() == 1
