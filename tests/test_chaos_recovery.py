"""Chaos integration test: random worker kills during a 16-node Higgs run.

The acceptance bar for the recovery subsystem: with two randomly chosen
(seeded) workers killed mid-run, the session still completes and the merged
final histogram is **bit-identical, bin for bin**, to a failure-free run.
Correctness comes from the AIDA manager discarding the dead engines' epochs
(ban set) plus the survivors re-processing the orphaned partitions from
event 0 — histogram bin counts are sums of unit weights, so the union is
exact regardless of which engine processed which part.
"""

import os
import random

import numpy as np
import pytest

from repro.analysis import higgs
from repro.client.client import IPAClient
from repro.core.site import GridSite, SiteConfig

# Minutes-scale end-to-end runs; CI runs these in a dedicated job
# (see .github/workflows/ci.yml) rather than the fast tier-1 matrix.
pytestmark = [pytest.mark.slow, pytest.mark.chaos]

N_WORKERS = 16
N_EVENTS = 16_000  # 1000 events/part -> 2 chunks/part: partial snapshots exist
SIZE_MB = 480.0
#: Which workers die is seeded; the nightly chaos matrix sweeps the seed
#: via the environment while local runs stay reproducible at 1234.
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "1234"))


def build_site():
    site = GridSite(SiteConfig(n_workers=N_WORKERS))
    site.register_dataset(
        "ds-chaos",
        "/test/ds-chaos",
        size_mb=SIZE_MB,
        n_events=N_EVENTS,
        metadata={"experiment": "ilc", "energy": 500},
        content={"kind": "ilc", "seed": 99},
    )
    return site, IPAClient(site, site.enroll_user("/O=ILC/CN=chaos"))


def run_higgs(kill_workers=0):
    """One full 16-engine Higgs run; optionally kill workers mid-run."""
    site, client = build_site()
    out = {}

    def scenario():
        info = yield from client.obtain_proxy_and_connect(n_engines=N_WORKERS)
        yield from client.select_dataset("ds-chaos")
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()
        if kill_workers:
            # Wait until every engine has published at least one (partial)
            # snapshot — the run is genuinely mid-flight — then kill a
            # seeded random choice of workers.
            while site.aida.snapshot_count(info.session_id) < N_WORKERS:
                yield site.env.timeout(1.0)
            rng = random.Random(CHAOS_SEED)
            refs = site.registry.engines(info.session_id)
            victims = rng.sample(sorted(ref.worker for ref in refs), kill_workers)
            for worker in victims:
                site.injector.crash_worker(worker)
            out["victims"] = victims
        final = yield from client.wait_for_completion(
            poll_interval=2.0, timeout=20_000.0
        )
        out["progress"] = final.progress
        out["hist"] = final.tree.get("/higgs/dijet_mass")
        out["status"] = yield from client.status()
        out["completed_at"] = site.env.now
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    return out


def test_two_random_kills_leave_merged_histogram_bit_identical():
    baseline = run_higgs(kill_workers=0)
    chaos = run_higgs(kill_workers=2)

    assert len(chaos["victims"]) == 2
    assert chaos["progress"].complete
    assert chaos["progress"].events_processed == N_EVENTS
    assert chaos["progress"].expected_engines == N_WORKERS - 2
    assert len(chaos["status"]["recoveries"]) == 2
    assert len(chaos["status"]["redispatches"]) == 2
    assert chaos["status"]["orphaned_parts"] == 0
    assert not chaos["status"]["failures"]

    base_hist, chaos_hist = baseline["hist"], chaos["hist"]
    # Bit-identical, bin for bin.
    assert chaos_hist.entries == base_hist.entries
    assert np.array_equal(chaos_hist.heights(), base_hist.heights())
    # Statistics agree to float round-off (accumulation order differs).
    assert chaos_hist.mean == pytest.approx(base_hist.mean, rel=1e-9)

    # Recovery overhead is bounded: detection + one re-staged part each,
    # not a full restart of the session.
    assert chaos["completed_at"] < 3.0 * baseline["completed_at"]
