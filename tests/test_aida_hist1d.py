"""Unit tests for Histogram1D."""

import numpy as np
import pytest

from repro.aida.axis import OVERFLOW, UNDERFLOW, Axis
from repro.aida.hist1d import Histogram1D


def make(bins=10, lower=0.0, upper=10.0):
    return Histogram1D("h", "test hist", bins=bins, lower=lower, upper=upper)


def test_name_required():
    with pytest.raises(ValueError):
        Histogram1D("", bins=2, lower=0, upper=1)


def test_title_defaults_to_name():
    hist = Histogram1D("mass", bins=2, lower=0, upper=1)
    assert hist.title == "mass"


def test_fill_and_bin_accessors():
    hist = make()
    hist.fill(2.5)
    hist.fill(2.7, weight=2.0)
    assert hist.bin_entries(2) == 2
    assert hist.bin_height(2) == pytest.approx(3.0)
    assert hist.bin_error(2) == pytest.approx(np.sqrt(1 + 4))
    assert hist.entries == 2


def test_underflow_overflow():
    hist = make()
    hist.fill(-1.0)
    hist.fill(100.0, weight=3.0)
    assert hist.bin_entries(UNDERFLOW) == 1
    assert hist.bin_entries(OVERFLOW) == 1
    assert hist.underflow_height() == pytest.approx(1.0)
    assert hist.overflow_height() == pytest.approx(3.0)
    assert hist.entries == 0
    assert hist.all_entries == 2
    assert hist.extra_entries == 2


def test_upper_edge_goes_to_overflow():
    hist = make()
    hist.fill(10.0)
    assert hist.bin_entries(OVERFLOW) == 1


def test_mean_and_rms():
    hist = make(bins=100, lower=-10, upper=10)
    values = [1.0, 2.0, 3.0, 4.0]
    for v in values:
        hist.fill(v)
    assert hist.mean == pytest.approx(np.mean(values))
    assert hist.rms == pytest.approx(np.std(values))


def test_mean_weighted():
    hist = make(bins=100, lower=0, upper=10)
    hist.fill(2.0, weight=1.0)
    hist.fill(4.0, weight=3.0)
    assert hist.mean == pytest.approx((2 + 12) / 4)


def test_empty_histogram_stats_nan():
    hist = make()
    assert np.isnan(hist.mean)
    assert np.isnan(hist.rms)
    assert hist.max_bin_height == 0.0


def test_out_of_range_excluded_from_moments():
    hist = make()
    hist.fill(5.0)
    hist.fill(1e6)  # overflow must not disturb the mean
    assert hist.mean == pytest.approx(5.0)


def test_fill_array_equivalent_to_scalar_fills():
    rng = np.random.default_rng(42)
    xs = rng.normal(5, 3, size=1000)
    ws = rng.uniform(0.5, 2.0, size=1000)
    vectorized = make()
    scalar = make()
    vectorized.fill_array(xs, ws)
    for x, w in zip(xs, ws):
        scalar.fill(x, w)
    assert np.array_equal(vectorized._counts, scalar._counts)
    assert np.allclose(vectorized._sumw, scalar._sumw)
    assert np.allclose(vectorized._sumw2, scalar._sumw2)
    assert vectorized.mean == pytest.approx(scalar.mean)
    assert vectorized.rms == pytest.approx(scalar.rms)


def test_fill_array_validation():
    hist = make()
    with pytest.raises(ValueError):
        hist.fill_array(np.zeros((2, 2)))
    with pytest.raises(ValueError):
        hist.fill_array([1.0, 2.0], weights=[1.0])


def test_fill_array_with_nan_goes_to_underflow():
    hist = make()
    hist.fill_array([float("nan"), 5.0])
    assert hist.bin_entries(UNDERFLOW) == 1
    assert hist.entries == 1


def test_heights_and_errors_arrays():
    hist = make(bins=4, lower=0, upper=4)
    hist.fill(0.5, weight=2.0)
    hist.fill(2.5)
    assert np.allclose(hist.heights(), [2, 0, 1, 0])
    assert np.allclose(hist.errors(), [2, 0, 1, 0])


def test_sum_bin_heights():
    hist = make()
    hist.fill(5, weight=2.5)
    hist.fill(-1, weight=7.0)
    assert hist.sum_bin_heights == pytest.approx(2.5)
    assert hist.sum_all_bin_heights == pytest.approx(9.5)


def test_reset():
    hist = make()
    hist.fill(5.0)
    hist.reset()
    assert hist.all_entries == 0
    assert np.isnan(hist.mean)


def test_merge_equals_combined_fill():
    rng = np.random.default_rng(7)
    a_data = rng.normal(5, 2, 500)
    b_data = rng.normal(3, 1, 300)
    a = make()
    b = make()
    combined = make()
    a.fill_array(a_data)
    b.fill_array(b_data)
    combined.fill_array(np.concatenate([a_data, b_data]))
    merged = a + b
    assert np.array_equal(merged._counts, combined._counts)
    assert np.allclose(merged._sumw, combined._sumw)
    assert merged.mean == pytest.approx(combined.mean)
    assert merged.rms == pytest.approx(combined.rms)


def test_merge_does_not_modify_operands():
    a = make()
    b = make()
    a.fill(1.0)
    b.fill(2.0)
    _ = a + b
    assert a.entries == 1
    assert b.entries == 1


def test_iadd_modifies_in_place():
    a = make()
    b = make()
    a.fill(1.0)
    b.fill(2.0)
    a += b
    assert a.entries == 2


def test_merge_incompatible_axes_rejected():
    a = make(bins=10)
    b = make(bins=20)
    with pytest.raises(ValueError):
        a + b


def test_merge_wrong_type_rejected():
    a = make()
    with pytest.raises(TypeError):
        a += 42


def test_scale():
    hist = make()
    hist.fill(5.0, weight=2.0)
    hist.scale(3.0)
    assert hist.bin_height(5) == pytest.approx(6.0)
    assert hist.bin_error(5) == pytest.approx(6.0)  # sqrt(4*9)
    assert hist.mean == pytest.approx(5.0)  # scaling preserves the mean
    assert hist.bin_entries(5) == 1  # counts untouched


def test_copy_independent():
    hist = make()
    hist.fill(5.0)
    clone = hist.copy("h2")
    clone.fill(5.0)
    assert hist.entries == 1
    assert clone.entries == 2
    assert clone.name == "h2"


def test_equality():
    a = make()
    b = make()
    a.fill(3.3)
    b.fill(3.3)
    assert a == b
    b.fill(4.4)
    assert a != b
    assert a != "x"


def test_serialization_roundtrip():
    hist = make()
    hist.fill_array(np.random.default_rng(1).normal(5, 2, 100))
    hist.fill(-5)  # populate underflow
    restored = Histogram1D.from_dict(hist.to_dict())
    assert restored == hist
    assert restored.mean == pytest.approx(hist.mean)


def test_serialization_is_json_compatible():
    import json

    hist = make()
    hist.fill(1.0)
    text = json.dumps(hist.to_dict())
    restored = Histogram1D.from_dict(json.loads(text))
    assert restored == hist


def test_variable_bins_histogram():
    hist = Histogram1D("h", edges=[0.0, 1.0, 10.0, 100.0])
    hist.fill(0.5)
    hist.fill(5.0)
    hist.fill(50.0)
    assert [hist.bin_entries(i) for i in range(3)] == [1, 1, 1]


def test_max_bin_height():
    hist = make(bins=4, lower=0, upper=4)
    hist.fill(0.5, weight=1.0)
    hist.fill(1.5, weight=5.0)
    assert hist.max_bin_height == pytest.approx(5.0)


def test_repr():
    hist = make()
    hist.fill(1)
    assert "entries=1" in repr(hist)
