"""Tests: pluggable content readers (§2.3) and database locations (§3.4)."""

import numpy as np
import pytest

from repro.analysis import counting
from repro.client.client import IPAClient
from repro.core.site import GridSite, SiteConfig
from repro.dataset.events import EventBatch
from repro.services.content import BLOCK_EVENTS, ContentError, ContentStore


# ---------------------------------------------------------------------------
# Pluggable readers
# ---------------------------------------------------------------------------

def constant_reader(content, block_seed, n_events):
    """A trivial custom format: every event has one particle of energy E."""
    energy = float(content.get("energy", 1.0))
    return EventBatch(
        event_ids=np.arange(n_events),
        process=np.zeros(n_events, dtype=np.int16),
        weights=np.ones(n_events),
        offsets=np.arange(n_events + 1, dtype=np.int64),
        pdg=np.full(n_events, 81, dtype=np.int32),
        e=np.full(n_events, energy),
        px=np.zeros(n_events),
        py=np.zeros(n_events),
        pz=np.zeros(n_events),
    )


def test_register_kind_and_materialize():
    store = ContentStore()
    store.register_kind("constant", constant_reader)
    assert "constant" in store.kinds
    batch = store.events_for({"kind": "constant", "energy": 7.0, "seed": 1}, 10, 20)
    assert len(batch) == 10
    assert np.all(batch.e == 7.0)
    assert list(batch.event_ids) == list(range(10, 20))


def test_register_kind_validation():
    store = ContentStore()
    with pytest.raises(ContentError, match="non-empty"):
        store.register_kind("", constant_reader)
    with pytest.raises(ContentError, match="already registered"):
        store.register_kind("ilc", constant_reader)
    with pytest.raises(ContentError, match="callable"):
        store.register_kind("x", 42)


def test_builtin_kinds_present():
    assert ContentStore().kinds == ["ilc", "trading"]


def test_misbehaving_reader_detected():
    store = ContentStore()
    store.register_kind(
        "short", lambda content, seed, n: constant_reader(content, seed, n // 2)
    )
    with pytest.raises(ContentError, match="produced"):
        store.events_for({"kind": "short", "seed": 0}, 0, 10)


def test_custom_reader_through_full_pipeline():
    """§2.3: a format registered at runtime is picked up by the engines."""
    site = GridSite(SiteConfig(n_workers=2))
    site.content_store.register_kind("constant", constant_reader)
    site.register_dataset(
        "flat", "/custom/flat", size_mb=10.0, n_events=1000,
        content={"kind": "constant", "energy": 5.0, "seed": 0},
    )
    client = IPAClient(site, site.enroll_user("/CN=alice"))
    results = {}

    def scenario():
        yield from client.obtain_proxy_and_connect()
        yield from client.select_dataset("flat")
        yield from client.upload_code(counting.SOURCE)
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=3.0)
        results["tree"] = final.tree
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    multiplicity = results["tree"].get("/counts/multiplicity")
    assert multiplicity.entries == 1000
    assert multiplicity.bin_height(1) == 1000  # every event has 1 particle


# ---------------------------------------------------------------------------
# Database locations
# ---------------------------------------------------------------------------

def build_pair():
    """Identical datasets, one file-located and one database-located."""
    site = GridSite(SiteConfig(n_workers=4))
    common = dict(
        size_mb=200.0, n_events=2000, content={"kind": "ilc", "seed": 88}
    )
    site.register_dataset("as-file", "/d/as-file", **common)
    site.register_dataset("as-db", "/d/as-db", kind="database", **common)
    client = IPAClient(site, site.enroll_user("/CN=alice"))
    return site, client


def stage(site, client, dataset_id):
    staged = {}

    def scenario():
        yield from client.obtain_proxy_and_connect()
        staged["result"] = yield from client.select_dataset(dataset_id)
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    return staged["result"]


def test_database_location_skips_fetch_and_split():
    site, client = build_pair()
    db_staged = stage(site, client, "as-db")
    assert db_staged.fetch_seconds == 0.0
    # Query planning only: far below the 0.25 s/MB split pass (50 s).
    assert db_staged.split_seconds < 5.0
    assert db_staged.move_parts_seconds > 0
    assert len(db_staged.parts) == 4


def test_database_vs_file_staging_delta():
    site_a, client_a = build_pair()
    file_staged = stage(site_a, client_a, "as-file")
    site_b, client_b = build_pair()
    db_staged = stage(site_b, client_b, "as-db")
    # The DB path saves the fetch (~27 s) and the split (~50 s) at 200 MB.
    assert db_staged.stage_seconds < file_staged.stage_seconds - 60
    # Scatter itself is similar for both.
    assert db_staged.move_parts_seconds == pytest.approx(
        file_staged.move_parts_seconds, rel=0.1
    )


def test_database_dataset_produces_same_results():
    """Location kind must not change the analyzed events."""
    from repro.services.content import ContentStore as CS

    site, client = build_pair()
    results = {}

    def scenario():
        yield from client.obtain_proxy_and_connect()
        yield from client.select_dataset("as-db")
        yield from client.upload_code(counting.SOURCE)
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=3.0)
        results["heights"] = final.tree.get("/counts/process").heights()
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    # Reference: direct materialization of the same content.
    reference = CS().events_for({"kind": "ilc", "seed": 88}, 0, 2000)
    expected = np.bincount(reference.process, minlength=4).astype(float)
    assert np.allclose(results["heights"], expected)
