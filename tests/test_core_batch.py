"""Tests for production batch mode."""

import numpy as np
import pytest

from repro.analysis import counting, higgs
from repro.core.batch import run_batch
from repro.core.site import GridSite, SiteConfig
from repro.engine.runner import run_local
from repro.engine.sandbox import CodeBundle
from repro.services.content import ContentStore


def build_site(n_workers=4):
    site = GridSite(SiteConfig(n_workers=n_workers))
    site.register_dataset(
        "prod", "/prod/ds", size_mb=40.0, n_events=2000,
        content={"kind": "ilc", "seed": 77},
    )
    return site


def test_batch_run_produces_final_tree():
    site = build_site()
    user = site.enroll_user("/CN=operator")
    result = run_batch(site, user, "prod", higgs.SOURCE)
    assert result.events_processed == 2000
    assert result.n_engines == 4
    assert result.wall_seconds > 0
    # Identical physics to a local run over the same content.
    reference = run_local(
        CodeBundle(higgs.SOURCE),
        ContentStore().events_for({"kind": "ilc", "seed": 77}, 0, 2000),
    )
    a = result.tree.get("/higgs/dijet_mass")
    b = reference.get("/higgs/dijet_mass")
    assert np.allclose(a.heights(), b.heights())


def test_batch_runs_on_batch_queue():
    site = build_site()
    user = site.enroll_user("/CN=operator")
    run_batch(site, user, "prod", counting.SOURCE)
    queues = {job.queue for job in site.scheduler._jobs.values()}
    assert queues == {"batch"}
    # The policy's interactive queue is restored afterwards.
    assert site.policy.interactive_queue == "interactive"


def test_batch_policy_restored_on_failure():
    site = build_site()
    user = site.enroll_user("/CN=operator")
    with pytest.raises(Exception):
        run_batch(site, user, "no-such-dataset", counting.SOURCE)
    assert site.policy.interactive_queue == "interactive"


def test_batch_with_parameters_and_engine_count():
    from repro.analysis import cuts

    site = build_site(n_workers=4)
    user = site.enroll_user("/CN=operator")
    result = run_batch(
        site,
        user,
        "prod",
        cuts.SOURCE,
        parameters={"min_energy": 480.0},
        n_engines=2,
    )
    assert result.n_engines == 2
    decision = result.tree.get("/cuts/decision")
    assert decision.entries == 2000
    assert decision.bin_height(1) < 2000  # the cut removed something
