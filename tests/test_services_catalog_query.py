"""Unit tests for the catalog query language and the dataset catalog."""

import pytest

from repro.services.catalog import CatalogError, DatasetCatalogService, DatasetEntry
from repro.services.query import QueryError, evaluate_query, parse_query


# ---------------------------------------------------------------------------
# Query language
# ---------------------------------------------------------------------------

DOC = {
    "experiment": "ilc",
    "energy": 500,
    "name": "higgs-zh-500",
    "year": 2006,
    "tag": "good",
}


@pytest.mark.parametrize(
    "query,expected",
    [
        ('experiment == "ilc"', True),
        ('experiment == "lhc"', False),
        ('experiment != "lhc"', True),
        ("energy > 400", True),
        ("energy > 500", False),
        ("energy >= 500", True),
        ("energy < 1000", True),
        ("energy <= 499", False),
        ('name like "higgs*"', True),
        ('name like "*500"', True),
        ('name like "*LHC*"', False),
        ('name like "HIGGS*"', True),  # case-insensitive
        ('experiment == "ilc" and energy > 400', True),
        ('experiment == "lhc" or energy > 400', True),
        ('experiment == "lhc" or energy > 600', False),
        ('not experiment == "lhc"', True),
        ("not energy > 400", False),
        ('(experiment == "lhc" or year == 2006) and tag == "good"', True),
        ("missing_key == 1", False),
        ("not missing_key == 1", True),
        ("energy == 500", True),
        ("year == 2006 and energy == 500 and tag != \"bad\"", True),
    ],
)
def test_query_evaluation(query, expected):
    assert evaluate_query(query, DOC) is expected


def test_query_bare_word_literal():
    assert evaluate_query("experiment == ilc", DOC)


def test_query_numeric_comparison_with_string_value():
    # Value not convertible to float -> comparison false.
    assert not evaluate_query("experiment > 5", DOC)


def test_query_precedence_and_over_or():
    # a or b and c == a or (b and c)
    doc = {"a": 1, "b": 1, "c": 0}
    assert evaluate_query("a == 1 or b == 1 and c == 1", doc)
    assert not evaluate_query("(a == 1 or b == 1) and c == 1", doc)


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "   ",
        "energy >",
        "energy 500",
        "== 500",
        "(energy > 5",
        "energy > 5)",
        "energy > 5 extra",
        "name like 5",
        "energy ~ 5",
        "and energy > 5",
    ],
)
def test_query_malformed(bad):
    with pytest.raises(QueryError):
        parse_query(bad)


def test_query_nested_parens():
    doc = {"x": 3}
    assert evaluate_query("((x == 3))", doc)
    assert evaluate_query("not (not x == 3)", doc)


def test_query_scientific_notation():
    assert evaluate_query("size < 1.5e3", {"size": 1000})


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------

def entry(dataset_id, path, **metadata):
    return DatasetEntry(
        dataset_id=dataset_id,
        path=path,
        metadata=metadata,
        size_mb=metadata.pop("_size", 100.0) if "_size" in metadata else 100.0,
        n_events=10_000,
        content={"kind": "ilc", "seed": 1},
    )


@pytest.fixture
def catalog():
    cat = DatasetCatalogService()
    cat.register(entry("zh500", "/ilc/simulation/zh-500", experiment="ilc", energy=500))
    cat.register(entry("ww500", "/ilc/simulation/ww-500", experiment="ilc", energy=500))
    cat.register(entry("zh800", "/ilc/simulation/zh-800", experiment="ilc", energy=800))
    cat.register(entry("lhcraw", "/lhc/raw/run1", experiment="lhc", energy=14000))
    return cat


def test_register_duplicates_rejected(catalog):
    with pytest.raises(CatalogError, match="duplicate dataset id"):
        catalog.register(entry("zh500", "/other/path"))
    with pytest.raises(CatalogError, match="duplicate catalog path"):
        catalog.register(entry("fresh", "/ilc/simulation/zh-500"))


def test_register_validation():
    cat = DatasetCatalogService()
    with pytest.raises(CatalogError, match="absolute"):
        cat.register(entry("x", "relative/path"))
    with pytest.raises(CatalogError, match=">= 0"):
        cat.register(
            DatasetEntry("x", "/x", {}, size_mb=-1, n_events=0)
        )


def test_browse_root(catalog):
    listing = catalog.browse("/")
    assert listing["directories"] == ["ilc", "lhc"]
    assert listing["datasets"] == []


def test_browse_intermediate(catalog):
    listing = catalog.browse("/ilc")
    assert listing["directories"] == ["simulation"]
    listing = catalog.browse("/ilc/simulation")
    assert listing["datasets"] == ["ww-500", "zh-500", "zh-800"]


def test_browse_missing_path(catalog):
    with pytest.raises(CatalogError):
        catalog.browse("/nowhere")


def test_entry_lookup(catalog):
    assert catalog.entry("zh500").path == "/ilc/simulation/zh-500"
    assert catalog.entry_at("/ilc/simulation/zh-800").dataset_id == "zh800"
    with pytest.raises(CatalogError):
        catalog.entry("ghost")
    with pytest.raises(CatalogError):
        catalog.entry_at("/ghost")
    assert len(catalog) == 4


def test_search_by_metadata(catalog):
    hits = catalog.search('experiment == "ilc" and energy == 500')
    assert [e.dataset_id for e in hits] == ["ww500", "zh500"]


def test_search_intrinsic_fields(catalog):
    hits = catalog.search('dataset_id like "zh*"')
    assert {e.dataset_id for e in hits} == {"zh500", "zh800"}
    hits = catalog.search("n_events >= 10000")
    assert len(hits) == 4


def test_search_no_hits(catalog):
    assert catalog.search("energy > 99999") == []


def test_search_bad_query(catalog):
    with pytest.raises(CatalogError, match="bad query"):
        catalog.search("energy >")


def test_search_document_does_not_mutate_entry(catalog):
    before = dict(catalog.entry("zh500").metadata)
    catalog.search("size_mb > 1")
    assert catalog.entry("zh500").metadata == before
