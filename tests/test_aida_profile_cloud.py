"""Unit tests for Profile1D and Cloud1D/Cloud2D."""

import numpy as np
import pytest

from repro.aida.cloud import Cloud1D, Cloud2D
from repro.aida.profile import Profile1D


# ---------------------------------------------------------------------------
# Profile1D
# ---------------------------------------------------------------------------

def make_profile():
    return Profile1D("p", "profile", bins=10, lower=0.0, upper=10.0)


def test_profile_name_required():
    with pytest.raises(ValueError):
        Profile1D("", bins=2, lower=0, upper=1)


def test_profile_bin_mean_and_spread():
    prof = make_profile()
    prof.fill(2.5, 1.0)
    prof.fill(2.6, 3.0)
    assert prof.bin_entries(2) == 2
    assert prof.bin_height(2) == pytest.approx(2.0)
    assert prof.bin_spread(2) == pytest.approx(1.0)
    assert prof.bin_error(2) == pytest.approx(1.0 / np.sqrt(2))


def test_profile_empty_bin_nan():
    prof = make_profile()
    assert np.isnan(prof.bin_height(0))
    assert np.isnan(prof.bin_spread(0))
    assert np.isnan(prof.bin_error(0))


def test_profile_weighted_mean():
    prof = make_profile()
    prof.fill(5.0, 1.0, weight=1.0)
    prof.fill(5.0, 4.0, weight=3.0)
    assert prof.bin_height(5) == pytest.approx((1 + 12) / 4)


def test_profile_fill_array_equivalent():
    rng = np.random.default_rng(13)
    xs = rng.uniform(-1, 11, 400)
    ys = rng.normal(0, 1, 400)
    ws = rng.uniform(0.5, 2, 400)
    vec = make_profile()
    scalar = make_profile()
    vec.fill_array(xs, ys, ws)
    for x, y, w in zip(xs, ys, ws):
        scalar.fill(x, y, w)
    assert np.array_equal(vec._counts, scalar._counts)
    assert np.allclose(vec._sumwy, scalar._sumwy)


def test_profile_fill_array_validation():
    prof = make_profile()
    with pytest.raises(ValueError):
        prof.fill_array([1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        prof.fill_array([1.0], [1.0], weights=[1.0, 2.0])


def test_profile_merge_matches_combined():
    a = make_profile()
    b = make_profile()
    combined = make_profile()
    for x, y in [(1.0, 2.0), (1.2, 4.0)]:
        a.fill(x, y)
        combined.fill(x, y)
    for x, y in [(1.1, 6.0), (8.0, 1.0)]:
        b.fill(x, y)
        combined.fill(x, y)
    merged = a + b
    assert merged.bin_height(1) == pytest.approx(combined.bin_height(1))
    assert merged.bin_spread(1) == pytest.approx(combined.bin_spread(1))
    assert merged.entries == combined.entries


def test_profile_merge_incompatible():
    a = make_profile()
    b = Profile1D("p", bins=3, lower=0, upper=1)
    with pytest.raises(ValueError):
        a + b
    with pytest.raises(TypeError):
        a += 1


def test_profile_heights_nan_for_empty():
    prof = make_profile()
    prof.fill(0.5, 2.0)
    heights = prof.heights()
    assert heights[0] == pytest.approx(2.0)
    assert np.isnan(heights[1])


def test_profile_reset_copy_serialization():
    prof = make_profile()
    prof.fill(3.0, 7.0)
    clone = prof.copy()
    restored = Profile1D.from_dict(prof.to_dict())
    prof.reset()
    assert prof.entries == 0
    assert clone.bin_height(3) == pytest.approx(7.0)
    assert restored.bin_height(3) == pytest.approx(7.0)


# ---------------------------------------------------------------------------
# Cloud1D
# ---------------------------------------------------------------------------

def test_cloud_validation():
    with pytest.raises(ValueError):
        Cloud1D("", max_points=10)
    with pytest.raises(ValueError):
        Cloud1D("c", max_points=0)


def test_cloud_stores_points():
    cloud = Cloud1D("c")
    cloud.fill(1.0)
    cloud.fill(2.0, weight=2.0)
    assert not cloud.converted
    assert cloud.entries == 2
    assert np.allclose(cloud.values(), [1.0, 2.0])
    assert np.allclose(cloud.weights(), [1.0, 2.0])


def test_cloud_mean_rms_unbinned():
    cloud = Cloud1D("c")
    for v in [1.0, 2.0, 3.0]:
        cloud.fill(v)
    assert cloud.mean == pytest.approx(2.0)
    assert cloud.rms == pytest.approx(np.std([1, 2, 3]))


def test_cloud_empty_stats_nan():
    cloud = Cloud1D("c")
    assert np.isnan(cloud.mean)
    assert np.isnan(cloud.rms)


def test_cloud_auto_converts_at_limit():
    cloud = Cloud1D("c", max_points=10)
    for i in range(11):
        cloud.fill(float(i))
    assert cloud.converted
    assert cloud.entries == 11
    with pytest.raises(RuntimeError):
        cloud.values()


def test_cloud_conversion_preserves_moments():
    rng = np.random.default_rng(17)
    data = rng.normal(50, 10, 1000)
    cloud = Cloud1D("c")
    for v in data:
        cloud.fill(v)
    mean_before, rms_before = cloud.mean, cloud.rms
    cloud.convert(bins=200)
    # Binned moments agree closely with unbinned for fine binning.
    assert cloud.mean == pytest.approx(mean_before, rel=1e-3)
    assert cloud.rms == pytest.approx(rms_before, rel=1e-2)
    assert cloud.histogram().entries == 1000  # max included via padding


def test_cloud_convert_idempotent():
    cloud = Cloud1D("c")
    cloud.fill(1.0)
    h1 = cloud.convert()
    h2 = cloud.convert()
    assert h1 is h2


def test_cloud_merge_unconverted():
    a = Cloud1D("a")
    b = Cloud1D("b")
    a.fill(1.0)
    b.fill(2.0)
    merged = a + b
    assert merged.entries == 2
    assert not merged.converted
    assert a.entries == 1  # operands untouched


def test_cloud_merge_converted_plus_unconverted():
    a = Cloud1D("a", max_points=2)
    for v in [1.0, 2.0, 3.0]:
        a.fill(v)
    assert a.converted
    b = Cloud1D("b")
    b.fill(2.5)
    merged = a + b
    assert merged.converted
    assert merged.entries == 4


def test_cloud_merge_triggers_conversion_at_limit():
    a = Cloud1D("a", max_points=3)
    b = Cloud1D("b")
    for v in [1.0, 2.0]:
        a.fill(v)
    for v in [3.0, 4.0]:
        b.fill(v)
    a += b
    assert a.converted
    assert a.entries == 4


def test_cloud_merge_type_error():
    with pytest.raises(TypeError):
        Cloud1D("a") + 5


def test_cloud_reset():
    cloud = Cloud1D("c", max_points=1)
    cloud.fill(1.0)
    cloud.fill(2.0)
    cloud.reset()
    assert cloud.entries == 0
    assert not cloud.converted


def test_cloud_serialization_roundtrip_points():
    cloud = Cloud1D("c")
    cloud.fill(3.0, weight=2.0)
    restored = Cloud1D.from_dict(cloud.to_dict())
    assert restored.entries == 1
    assert np.allclose(restored.values(), [3.0])


def test_cloud_serialization_roundtrip_converted():
    cloud = Cloud1D("c", max_points=1)
    cloud.fill(1.0)
    cloud.fill(2.0)
    restored = Cloud1D.from_dict(cloud.to_dict())
    assert restored.converted
    assert restored.entries == 2


# ---------------------------------------------------------------------------
# Cloud2D
# ---------------------------------------------------------------------------

def test_cloud2d_fill_and_convert():
    cloud = Cloud2D("c2")
    rng = np.random.default_rng(19)
    for _ in range(100):
        cloud.fill(rng.uniform(0, 10), rng.uniform(-1, 1))
    assert cloud.entries == 100
    hist = cloud.convert(bins=10)
    assert hist.all_entries == 100
    assert hist.entries == 100  # padding keeps maxima in range


def test_cloud2d_auto_convert():
    cloud = Cloud2D("c2", max_points=5)
    for i in range(6):
        cloud.fill(float(i), float(-i))
    assert cloud.converted


def test_cloud2d_merge_unconverted():
    a = Cloud2D("a")
    b = Cloud2D("b")
    a.fill(1.0, 1.0)
    b.fill(2.0, 2.0)
    merged = a + b
    assert merged.entries == 2


def test_cloud2d_merge_mixed_state():
    a = Cloud2D("a", max_points=1)
    a.fill(1.0, 1.0)
    a.fill(2.0, 2.0)  # converts
    b = Cloud2D("b")
    b.fill(1.5, 1.5)
    merged = a + b
    assert merged.converted
    assert merged.entries == 3


def test_cloud2d_serialization_roundtrip():
    cloud = Cloud2D("c2")
    cloud.fill(1.0, 2.0, weight=0.5)
    restored = Cloud2D.from_dict(cloud.to_dict())
    assert restored.entries == 1
    assert not restored.converted


def test_cloud2d_reset_and_copy():
    cloud = Cloud2D("c2")
    cloud.fill(1.0, 2.0)
    clone = cloud.copy()
    cloud.reset()
    assert cloud.entries == 0
    assert clone.entries == 1
