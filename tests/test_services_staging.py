"""Unit tests for locator, splitter, content store, registry, code loader,
and the AIDA manager."""

import numpy as np
import pytest

from repro.aida.tree import ObjectTree
from repro.analysis.counting import EventCounterAnalysis
from repro.dataset.events import EventBatch
from repro.engine.engine import AnalysisEngine, Snapshot
from repro.engine.sandbox import CodeBundle
from repro.grid.network import Network
from repro.grid.nodes import ManagerNode, NodeSpec, StorageElement, WorkerNode
from repro.grid.transfer import GridFTPService
from repro.services.aida_manager import AIDAManagerService
from repro.services.codeloader import CodeLoaderError, ManagingClassLoaderService
from repro.services.content import BLOCK_EVENTS, ContentError, ContentStore
from repro.services.locator import DatasetLocation, LocatorError, LocatorService
from repro.services.registry import (
    EngineReference,
    RegistryError,
    WorkerRegistryService,
)
from repro.services.splitter import SplitterError, SplitterService
from repro.sim import Environment, Store


FAST_DISK = NodeSpec(disk_read_mbps=10_000, disk_write_mbps=10_000)


def build_site(n_workers=4):
    env = Environment()
    net = Network(env)
    net.add_host("se")
    net.add_host("mgr")
    net.add_link("se-mgr", "se", "mgr", bandwidth=7.5)
    se = StorageElement(env, "se", NodeSpec(disk_read_mbps=10.24, disk_write_mbps=10.24))
    mgr = ManagerNode(env, "mgr", FAST_DISK)
    workers = []
    for i in range(n_workers):
        name = f"w{i}"
        net.add_host(name)
        net.add_link(f"se-{name}", "se", name, bandwidth=7.6)
        net.add_link(f"mgr-{name}", "mgr", name, bandwidth=7.6)
        workers.append(WorkerNode(env, name, FAST_DISK))
    ftp = GridFTPService(env, net, setup_overhead=0.0)
    return env, net, se, mgr, workers, ftp


def location(size_mb=471.0, n_events=10_000):
    return DatasetLocation(
        dataset_id="zh500",
        kind="gridftp",
        host="se",
        path="/store/zh500.ipad",
        size_mb=size_mb,
        n_events=n_events,
        splitter_host="se",
    )


# ---------------------------------------------------------------------------
# Locator
# ---------------------------------------------------------------------------

def test_locator_roundtrip():
    service = LocatorService()
    loc = location()
    service.add_location(loc)
    assert service.locate("zh500") is loc
    assert len(service) == 1


def test_locator_unknown_id():
    with pytest.raises(LocatorError):
        LocatorService().locate("ghost")


def test_locator_duplicate_and_bad_kind():
    service = LocatorService()
    service.add_location(location())
    with pytest.raises(LocatorError, match="already"):
        service.add_location(location())
    with pytest.raises(LocatorError, match="kind"):
        service.add_location(
            DatasetLocation("x", "carrier-pigeon", "se", "/x", 1, 1, "se")
        )


# ---------------------------------------------------------------------------
# Splitter
# ---------------------------------------------------------------------------

def test_splitter_plan_by_events():
    env, net, se, mgr, workers, ftp = build_site(4)
    splitter = SplitterService(env, se, ftp)
    parts = splitter.plan_parts(location(), [w.name for w in workers])
    assert [p.n_events for p in parts] == [2500] * 4
    assert sum(p.size_mb for p in parts) == pytest.approx(471.0)
    assert [p.worker for p in parts] == ["w0", "w1", "w2", "w3"]


def test_splitter_plan_by_bytes_with_weights():
    env, net, se, mgr, workers, ftp = build_site(2)
    weights = np.concatenate([np.ones(5000), 3 * np.ones(5000)])
    splitter = SplitterService(env, se, ftp)
    parts = splitter.plan_parts(
        location(), ["w0", "w1"], strategy="by-bytes", event_weights=weights
    )
    # Half the bytes: boundary should fall inside the heavy half.
    assert parts[0].n_events > parts[1].n_events
    assert parts[0].size_mb == pytest.approx(parts[1].size_mb, rel=0.01)


def test_splitter_plan_validation():
    env, net, se, mgr, workers, ftp = build_site(1)
    splitter = SplitterService(env, se, ftp)
    with pytest.raises(SplitterError):
        splitter.plan_parts(location(), [])
    with pytest.raises(SplitterError):
        splitter.plan_parts(location(), ["w0"], strategy="magic")
    with pytest.raises(SplitterError):
        splitter.plan_parts(
            location(), ["w0"], strategy="by-bytes", event_weights=np.ones(5)
        )


def test_splitter_split_time_matches_model():
    env, net, se, mgr, workers, ftp = build_site(4)
    splitter = SplitterService(env, se, ftp, split_rate=0.25, per_file_overhead=0.2)
    report = env.run(until=splitter.split_and_scatter(location(), workers))
    assert report.split_seconds == pytest.approx(471 * 0.25 + 4 * 0.2)
    assert len(report.parts) == 4
    # Workers received their part files.
    for index, worker in enumerate(workers):
        assert worker.has_file(f"zh500.part{index}")


def test_splitter_move_parts_shape():
    durations = {}
    for n in (1, 16):
        env, net, se, mgr, workers, ftp = build_site(n)
        splitter = SplitterService(env, se, ftp, split_rate=0.25, per_file_overhead=0.0)
        report = env.run(until=splitter.split_and_scatter(location(), workers))
        durations[n] = report.move_parts_seconds
    # Table 2 shape: ~46 + 62/N.
    assert durations[1] == pytest.approx(46 + 62, rel=0.05)
    assert durations[16] == pytest.approx(46 + 62 / 16, rel=0.08)


# ---------------------------------------------------------------------------
# ContentStore
# ---------------------------------------------------------------------------

def test_content_deterministic():
    store = ContentStore()
    content = {"kind": "ilc", "seed": 5}
    a = store.events_for(content, 100, 200)
    b = ContentStore().events_for(content, 100, 200)
    assert np.array_equal(a.e, b.e)
    assert len(a) == 100


def test_content_range_consistency_across_blocks():
    store = ContentStore()
    content = {"kind": "ilc", "seed": 5}
    span = store.events_for(content, BLOCK_EVENTS - 50, BLOCK_EVENTS + 50)
    left = store.events_for(content, BLOCK_EVENTS - 50, BLOCK_EVENTS)
    right = store.events_for(content, BLOCK_EVENTS, BLOCK_EVENTS + 50)
    rejoined = EventBatch.concatenate([left, right])
    assert np.array_equal(span.e, rejoined.e)
    assert np.array_equal(span.event_ids, rejoined.event_ids)


def test_content_event_ids_match_range():
    store = ContentStore()
    batch = store.events_for({"kind": "ilc", "seed": 1}, 500, 600)
    assert list(batch.event_ids) == list(range(500, 600))


def test_content_disjoint_parts_cover_whole():
    store = ContentStore()
    content = {"kind": "ilc", "seed": 9}
    whole = store.events_for(content, 0, 1000)
    parts = [store.events_for(content, i * 250, (i + 1) * 250) for i in range(4)]
    rejoined = EventBatch.concatenate(parts)
    assert np.array_equal(whole.e, rejoined.e)


def test_content_signal_fraction():
    store = ContentStore()
    pure = store.events_for({"kind": "ilc", "seed": 2, "signal_fraction": 1.0}, 0, 500)
    assert np.all(pure.process == 0)
    none = store.events_for({"kind": "ilc", "seed": 2, "signal_fraction": 0.0}, 0, 500)
    assert np.all(none.process != 0)
    with pytest.raises(ContentError):
        store.events_for({"kind": "ilc", "seed": 2, "signal_fraction": 2.0}, 0, 10)


def test_content_trading_kind():
    store = ContentStore()
    batch = store.events_for({"kind": "trading", "seed": 3, "trades_per_day": 10}, 0, 50)
    assert len(batch) == 50
    assert batch.n_particles == 500


def test_content_validation():
    store = ContentStore()
    with pytest.raises(ContentError):
        store.events_for({"kind": "unknown"}, 0, 10)
    with pytest.raises(ContentError):
        store.events_for({"kind": "ilc"}, 10, 5)
    assert len(store.events_for({"kind": "ilc", "seed": 0}, 5, 5)) == 0


# ---------------------------------------------------------------------------
# WorkerRegistry
# ---------------------------------------------------------------------------

def test_registry_register_and_wait():
    env = Environment()
    registry = WorkerRegistryService(env)
    arrived = []

    def engines_come_up():
        for i in range(3):
            yield env.timeout(1.0)
            registry.register(
                EngineReference(f"e{i}", "s1", f"w{i}", Store(env))
            )

    def waiter():
        refs = yield registry.wait_for("s1", 3)
        arrived.append((env.now, [r.engine_id for r in refs]))

    env.process(engines_come_up())
    env.process(waiter())
    env.run()
    assert arrived == [(3.0, ["e0", "e1", "e2"])]
    assert registry.count("s1") == 3


def test_registry_wait_already_met():
    env = Environment()
    registry = WorkerRegistryService(env)
    registry.register(EngineReference("e0", "s1", "w0", Store(env)))
    event = registry.wait_for("s1", 1)
    assert event.triggered


def test_registry_duplicate_rejected():
    env = Environment()
    registry = WorkerRegistryService(env)
    registry.register(EngineReference("e0", "s1", "w0", Store(env)))
    with pytest.raises(RegistryError):
        registry.register(EngineReference("e0", "s1", "w0", Store(env)))


def test_registry_sessions_isolated():
    env = Environment()
    registry = WorkerRegistryService(env)
    registry.register(EngineReference("e0", "s1", "w0", Store(env)))
    registry.register(EngineReference("e0", "s2", "w0", Store(env)))
    assert registry.count("s1") == 1
    assert registry.count("s2") == 1
    registry.drop_session("s1")
    assert registry.count("s1") == 0
    assert registry.count("s2") == 1


def test_registry_deregister_idempotent():
    env = Environment()
    registry = WorkerRegistryService(env)
    registry.register(EngineReference("e0", "s1", "w0", Store(env)))
    registry.deregister("s1", "e0")
    registry.deregister("s1", "e0")
    assert registry.count("s1") == 0


def test_registry_wait_validation():
    env = Environment()
    registry = WorkerRegistryService(env)
    with pytest.raises(RegistryError):
        registry.wait_for("s1", -1)
    assert registry.wait_for("s1", 0).triggered


# ---------------------------------------------------------------------------
# Code loader
# ---------------------------------------------------------------------------

SOURCE = "class A(Analysis):\n    def process_batch(self, batch, tree):\n        pass\n"


def test_codeloader_stage_and_current():
    env, net, se, mgr, workers, ftp = build_site(4)
    loader = ManagingClassLoaderService(env, mgr, ftp, stage_overhead=6.5)
    bundle = CodeBundle(SOURCE)
    duration = env.run(until=loader.stage("s1", bundle, workers))
    assert duration == pytest.approx(7.0, abs=0.6)  # ~7 s as in Table 1
    assert loader.current("s1") is bundle
    assert loader.current_version("s1") == 1
    for worker in workers:
        assert worker.has_file("s1-code-v1")


def test_codeloader_reload_bumps_version():
    env, net, se, mgr, workers, ftp = build_site(2)
    loader = ManagingClassLoaderService(env, mgr, ftp, stage_overhead=1.0)
    env.run(until=loader.stage("s1", CodeBundle(SOURCE), workers))
    env.run(until=loader.reload("s1", workers, parameters={"x": 1}))
    assert loader.current_version("s1") == 2
    assert loader.current("s1").parameters == {"x": 1}


def test_codeloader_unknown_session():
    env, net, se, mgr, workers, ftp = build_site(1)
    loader = ManagingClassLoaderService(env, mgr, ftp)
    with pytest.raises(CodeLoaderError):
        loader.current("ghost")
    assert loader.current_version("ghost") == 0


def test_codeloader_drop_session():
    env, net, se, mgr, workers, ftp = build_site(1)
    loader = ManagingClassLoaderService(env, mgr, ftp, stage_overhead=0.0)
    env.run(until=loader.stage("s1", CodeBundle(SOURCE), workers))
    loader.drop_session("s1")
    with pytest.raises(CodeLoaderError):
        loader.current("s1")


# ---------------------------------------------------------------------------
# AIDA manager
# ---------------------------------------------------------------------------

def make_snapshot(engine_id, entries, sequence=1, run_id=0, final=False, version=1):
    from repro.aida.hist1d import Histogram1D

    tree = ObjectTree()
    hist = Histogram1D("h", bins=10, lower=0, upper=10)
    for _ in range(entries):
        hist.fill(5.0)
    tree.put("/h", hist)
    return Snapshot(
        engine_id=engine_id,
        sequence=sequence,
        events_processed=entries,
        total_events=100,
        analysis_version=version,
        run_id=run_id,
        tree=tree.to_dict(),
        final=final,
    )


def test_manager_merges_engines_exactly():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0)
    manager.submit_snapshot("s1", make_snapshot("e0", 10))
    manager.submit_snapshot("s1", make_snapshot("e1", 20))
    tree_dict, progress = env.run(until=manager.merged("s1"))
    tree = ObjectTree.from_dict(tree_dict)
    assert tree.get("/h").entries == 30
    assert progress.engines_reporting == 2
    assert progress.events_processed == 30
    assert progress.total_events == 200
    assert not progress.complete


def test_manager_latest_snapshot_wins():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0)
    manager.submit_snapshot("s1", make_snapshot("e0", 10, sequence=1))
    manager.submit_snapshot("s1", make_snapshot("e0", 25, sequence=2))
    manager.submit_snapshot("s1", make_snapshot("e0", 15, sequence=1))  # stale
    tree_dict, progress = env.run(until=manager.merged("s1"))
    assert ObjectTree.from_dict(tree_dict).get("/h").entries == 25


def test_manager_rewind_drops_old_run():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0)
    manager.submit_snapshot("s1", make_snapshot("e0", 50, run_id=0))
    manager.submit_snapshot("s1", make_snapshot("e1", 5, sequence=1, run_id=1))
    manager.submit_snapshot("s1", make_snapshot("e0", 99, sequence=9, run_id=0))
    tree_dict, progress = env.run(until=manager.merged("s1"))
    assert ObjectTree.from_dict(tree_dict).get("/h").entries == 5
    assert progress.run_id == 1


def test_manager_complete_flag():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0)
    manager.submit_snapshot("s1", make_snapshot("e0", 100, final=True))
    manager.submit_snapshot("s1", make_snapshot("e1", 100, final=True))
    _, progress = env.run(until=manager.merged("s1"))
    assert progress.complete
    assert progress.fraction_done == pytest.approx(1.0)


def test_manager_merge_latency_flat_vs_tree():
    env = Environment()
    flat = AIDAManagerService(env, merge_cost_per_tree=0.1, fan_in=None)
    tree = AIDAManagerService(env, merge_cost_per_tree=0.1, fan_in=4)
    assert flat.merge_latency(64) == pytest.approx(6.4)
    assert tree.merge_latency(64) == pytest.approx(0.1 * 4 * 3)  # log4(64)=3
    assert tree.merge_latency(1) == pytest.approx(0.1)
    assert flat.merge_latency(0) == 0.0


def test_manager_merge_charges_time():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.5)
    manager.submit_snapshot("s1", make_snapshot("e0", 1))
    manager.submit_snapshot("s1", make_snapshot("e1", 1))
    env.run(until=manager.merged("s1"))
    assert env.now == pytest.approx(1.0)
    assert manager.merge_log == [("s1", 2, 1.0)]


def test_manager_empty_session():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.1)
    tree_dict, progress = env.run(until=manager.merged("nothing"))
    assert ObjectTree.from_dict(tree_dict).paths() == []
    assert progress.engines_reporting == 0
    assert progress.fraction_done == 0.0


def test_manager_drop_session():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0)
    manager.submit_snapshot("s1", make_snapshot("e0", 1))
    manager.drop_session("s1")
    assert manager.snapshot_count("s1") == 0


def test_manager_validation():
    env = Environment()
    with pytest.raises(ValueError):
        AIDAManagerService(env, merge_cost_per_tree=-1)
    with pytest.raises(ValueError):
        AIDAManagerService(env, fan_in=1)
