"""Unit tests for the binned Axis."""

import numpy as np
import pytest

from repro.aida.axis import OVERFLOW, UNDERFLOW, Axis


def test_fixed_axis_properties():
    axis = Axis(bins=10, lower=0.0, upper=100.0)
    assert axis.bins == 10
    assert axis.lower_edge == 0.0
    assert axis.upper_edge == 100.0
    assert axis.fixed_binning
    assert axis.bin_width(0) == pytest.approx(10.0)
    assert axis.bin_center(0) == pytest.approx(5.0)
    assert axis.bin_lower_edge(3) == pytest.approx(30.0)
    assert axis.bin_upper_edge(3) == pytest.approx(40.0)


def test_variable_axis_properties():
    axis = Axis(edges=[0.0, 1.0, 10.0, 100.0])
    assert axis.bins == 3
    assert not axis.fixed_binning
    assert axis.bin_width(1) == pytest.approx(9.0)
    assert axis.bin_center(2) == pytest.approx(55.0)


def test_validation():
    with pytest.raises(ValueError):
        Axis(bins=0, lower=0, upper=1)
    with pytest.raises(ValueError):
        Axis(bins=5, lower=1, upper=1)
    with pytest.raises(ValueError):
        Axis(bins=5, lower=2, upper=1)
    with pytest.raises(ValueError):
        Axis(edges=[0.0])
    with pytest.raises(ValueError):
        Axis(edges=[0.0, 1.0, 1.0])  # not strictly increasing
    with pytest.raises(ValueError):
        Axis()


def test_bin_index_bounds_checked():
    axis = Axis(bins=5, lower=0, upper=5)
    with pytest.raises(IndexError):
        axis.bin_center(5)
    with pytest.raises(IndexError):
        axis.bin_center(-1)


def test_coord_to_index_in_range():
    axis = Axis(bins=10, lower=0.0, upper=10.0)
    assert axis.coord_to_index(0.0) == 0
    assert axis.coord_to_index(0.5) == 0
    assert axis.coord_to_index(5.0) == 5
    assert axis.coord_to_index(9.999) == 9


def test_coord_to_index_out_of_range():
    axis = Axis(bins=10, lower=0.0, upper=10.0)
    assert axis.coord_to_index(-0.001) == UNDERFLOW
    assert axis.coord_to_index(10.0) == OVERFLOW  # upper edge -> overflow
    assert axis.coord_to_index(1e9) == OVERFLOW
    assert axis.coord_to_index(float("nan")) == UNDERFLOW


def test_scalar_and_vector_lookup_agree():
    axis = Axis(bins=37, lower=-3.2, upper=11.7)
    xs = np.concatenate([
        np.linspace(-5, 15, 401),
        axis.edges,  # exactly on every edge
        [float("nan")],
    ])
    vec = axis.coords_to_storage(xs)
    for x, storage in zip(xs, vec):
        assert axis.index_to_storage(axis.coord_to_index(x)) == storage


def test_storage_roundtrip():
    axis = Axis(bins=4, lower=0, upper=4)
    for index in [UNDERFLOW, 0, 1, 2, 3, OVERFLOW]:
        assert axis.storage_to_index(axis.index_to_storage(index)) == index


def test_index_to_storage_checks_range():
    axis = Axis(bins=4, lower=0, upper=4)
    with pytest.raises(IndexError):
        axis.index_to_storage(4)


def test_bin_centers_vector():
    axis = Axis(bins=4, lower=0, upper=8)
    assert np.allclose(axis.bin_centers(), [1, 3, 5, 7])


def test_edges_view_readonly():
    axis = Axis(bins=2, lower=0, upper=2)
    with pytest.raises(ValueError):
        axis.edges[0] = -1


def test_equality():
    a = Axis(bins=10, lower=0, upper=1)
    b = Axis(bins=10, lower=0, upper=1)
    c = Axis(bins=10, lower=0, upper=2)
    d = Axis(edges=np.linspace(0, 1, 11))
    assert a == b
    assert a != c
    assert a == d  # same edges regardless of construction
    assert a != "not an axis"


def test_serialization_roundtrip_fixed():
    axis = Axis(bins=7, lower=-1.5, upper=2.5)
    assert Axis.from_dict(axis.to_dict()) == axis


def test_serialization_roundtrip_variable():
    axis = Axis(edges=[0.0, 0.5, 2.0, 10.0])
    restored = Axis.from_dict(axis.to_dict())
    assert restored == axis
    assert not restored.fixed_binning


def test_repr():
    assert "bins=3" in repr(Axis(bins=3, lower=0, upper=1))
    assert "edges" in repr(Axis(edges=[0, 1, 2]))
