"""Unit tests for histogram arithmetic (subtract/divide/efficiency/rebin)."""

import numpy as np
import pytest

from repro.aida.hist1d import Histogram1D
from repro.aida.ops import (
    HistogramOpsError,
    divide,
    efficiency,
    normalize,
    rebin,
    subtract,
)


def make(heights, errors=None, name="h"):
    hist = Histogram1D(name, bins=len(heights), lower=0.0, upper=float(len(heights)))
    for index, height in enumerate(heights):
        if height:
            hist.fill(index + 0.5, weight=height)
    if errors is not None:
        hist._sumw2[1:-1] = np.asarray(errors, dtype=float) ** 2
    return hist


def test_subtract_heights_and_errors():
    a = make([10.0, 5.0], errors=[3.0, 4.0])
    b = make([4.0, 1.0], errors=[4.0, 3.0])
    diff = subtract(a, b)
    assert np.allclose(diff.heights(), [6.0, 4.0])
    assert diff.bin_error(0) == pytest.approx(5.0)  # sqrt(9+16)
    assert diff.bin_error(1) == pytest.approx(5.0)


def test_subtract_incompatible():
    a = make([1.0])
    b = Histogram1D("b", bins=2, lower=0, upper=2)
    with pytest.raises(HistogramOpsError):
        subtract(a, b)


def test_divide_basic():
    a = make([8.0, 0.0, 3.0])
    b = make([4.0, 2.0, 0.0])
    ratio = divide(a, b)
    assert np.allclose(ratio.heights(), [2.0, 0.0, 0.0])


def test_divide_error_propagation():
    a = make([100.0], errors=[10.0])   # 10% relative
    b = make([50.0], errors=[5.0])     # 10% relative
    ratio = divide(a, b)
    assert ratio.bin_height(0) == pytest.approx(2.0)
    assert ratio.bin_error(0) == pytest.approx(2.0 * np.sqrt(0.02))


def test_efficiency_basic():
    total = Histogram1D("t", bins=2, lower=0, upper=2)
    passed = Histogram1D("p", bins=2, lower=0, upper=2)
    for _ in range(100):
        total.fill(0.5)
    for _ in range(25):
        passed.fill(0.5)
    eff = efficiency(passed, total)
    assert eff.bin_height(0) == pytest.approx(0.25)
    assert eff.bin_error(0) == pytest.approx(np.sqrt(0.25 * 0.75 / 100))
    assert eff.bin_height(1) == 0.0
    assert eff.bin_error(1) == 0.0


def test_efficiency_requires_subset():
    total = make([5.0])
    passed = make([6.0])
    with pytest.raises(HistogramOpsError, match="subset"):
        efficiency(passed, total)


def test_rebin_conserves_totals():
    hist = Histogram1D("h", bins=12, lower=0, upper=12)
    rng = np.random.default_rng(0)
    hist.fill_array(rng.uniform(-1, 13, 500))
    merged = rebin(hist, 3)
    assert merged.axis.bins == 4
    assert merged.all_entries == hist.all_entries
    assert merged.sum_all_bin_heights == pytest.approx(hist.sum_all_bin_heights)
    assert merged.mean == pytest.approx(hist.mean)
    assert merged.bin_height(0) == pytest.approx(
        sum(hist.bin_height(i) for i in range(3))
    )
    # Under/overflow carried across.
    assert merged.underflow_height() == pytest.approx(hist.underflow_height())
    assert merged.overflow_height() == pytest.approx(hist.overflow_height())


def test_rebin_validation():
    hist = Histogram1D("h", bins=10, lower=0, upper=1)
    with pytest.raises(HistogramOpsError):
        rebin(hist, 3)  # 10 % 3 != 0
    with pytest.raises(HistogramOpsError):
        rebin(hist, 0)
    clone = rebin(hist, 1)
    assert clone.axis.bins == 10


def test_rebin_factor_equals_bins():
    hist = make([1.0, 2.0, 3.0, 4.0])
    merged = rebin(hist, 4)
    assert merged.axis.bins == 1
    assert merged.bin_height(0) == pytest.approx(10.0)


def test_normalize():
    hist = make([2.0, 6.0])
    unit = normalize(hist)
    assert unit.sum_bin_heights == pytest.approx(1.0)
    assert unit.bin_height(1) == pytest.approx(0.75)
    scaled = normalize(hist, to=100.0)
    assert scaled.sum_bin_heights == pytest.approx(100.0)


def test_normalize_empty_noop():
    hist = Histogram1D("h", bins=2, lower=0, upper=1)
    out = normalize(hist)
    assert out.sum_bin_heights == 0.0


def test_ops_results_are_regular_histograms():
    """Outputs merge and serialize like any other histogram."""
    a = make([4.0, 9.0])
    b = make([2.0, 3.0])
    ratio = divide(a, b)
    restored = Histogram1D.from_dict(ratio.to_dict())
    assert np.allclose(restored.heights(), ratio.heights())
    doubled = ratio + ratio
    assert np.allclose(doubled.heights(), 2 * np.asarray(ratio.heights()))
