"""Fault-injection & recovery subsystem tests.

Covers the retry policy, the fault plan / injector, heartbeat detection
latency, partition re-dispatch under 1-of-N and (N-1)-of-N worker loss,
spare-worker replacement, unrecoverable sessions, idempotent shutdown, and
per-operation fault injection across every registered service.
"""

import numpy as np
import pytest

from repro.analysis import higgs
from repro.client.client import ClientError, IPAClient
from repro.core.site import GridSite, SiteConfig
from repro.engine.runner import run_local
from repro.engine.sandbox import CodeBundle
from repro.grid.gram import GramUnavailable
from repro.grid.scheduler import JobState
from repro.resilience import (
    FAULT_KINDS,
    FailureInjector,
    FaultPlan,
    HeartbeatMonitor,
    RecoveryConfig,
    RetryPolicy,
    WorkerFault,
)
from repro.services.content import ContentStore
from repro.services.envelope import Fault
from repro.services.registry import WorkerRegistryService
from repro.sim import Environment, NodeCrash, NodeFailure, NodeHang


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def build(n_workers=4, **site_kwargs):
    site = GridSite(SiteConfig(n_workers=n_workers, **site_kwargs))
    site.register_dataset(
        "ds-small",
        "/test/ds-small",
        size_mb=20.0,
        n_events=2_000,
        metadata={"experiment": "ilc", "energy": 500},
        content={"kind": "ilc", "seed": 42},
    )
    user = site.enroll_user("/O=ILC/CN=alice")
    client = IPAClient(site, user)
    return site, client


def drive(site, generator):
    return site.env.run(until=site.env.process(generator))


def local_reference_tree(n_events=2_000, seed=42):
    content = ContentStore()
    batch = content.events_for({"kind": "ilc", "seed": seed}, 0, n_events)
    return run_local(CodeBundle(higgs.SOURCE), batch)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_exponential_delays_with_cap(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=1.0, multiplier=2.0, max_delay=5.0
        )
        assert policy.delays() == [1.0, 2.0, 4.0, 5.0]
        assert policy.max_retries == 4

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(base_delay=3.0, multiplier=2.0)
        assert policy.delay(0) == 3.0
        assert policy.delay(1) == 6.0

    def test_jitter_is_deterministic_and_bounded(self):
        a = RetryPolicy(base_delay=10.0, jitter=0.25, seed=7, max_attempts=4)
        b = RetryPolicy(base_delay=10.0, jitter=0.25, seed=7, max_attempts=4)
        assert a.delays(salt="x") == b.delays(salt="x")
        # Different salt / seed decorrelates the stream.
        assert a.delays(salt="x") != a.delays(salt="y")
        c = RetryPolicy(base_delay=10.0, jitter=0.25, seed=8, max_attempts=4)
        assert a.delays(salt="x") != c.delays(salt="x")
        for attempt in range(3):
            base = 10.0 * 2.0**attempt
            d = a.delay(attempt, salt="x")
            assert base * 0.75 <= d <= base * 1.25

    def test_deadline_stops_retrying(self):
        policy = RetryPolicy(max_attempts=10, base_delay=4.0, deadline=10.0)
        assert policy.should_retry(0, elapsed=0.0)
        assert not policy.should_retry(1, elapsed=8.0)
        assert len(policy.delays()) < policy.max_retries

    def test_with_attempts_copies(self):
        policy = RetryPolicy(max_attempts=3, base_delay=2.0)
        bumped = policy.with_attempts(6)
        assert bumped.max_attempts == 6
        assert bumped.base_delay == 2.0
        assert policy.max_attempts == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)


# ---------------------------------------------------------------------------
# FaultPlan / FailureInjector
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_fault_validation(self):
        with pytest.raises(ValueError):
            WorkerFault("w0", kind="meteor", at=1.0)
        with pytest.raises(ValueError):
            WorkerFault("w0")  # neither at= nor probability
        with pytest.raises(ValueError):
            WorkerFault("w0", at=1.0, slow_factor=0.5)
        assert WorkerFault("w0", at=0.0).kind in FAULT_KINDS

    def test_plan_partitions_scheduled_and_probabilistic(self):
        plan = FaultPlan(seed=3)
        plan.add(WorkerFault("w1", kind="crash", at=20.0))
        plan.add(WorkerFault("w0", kind="hang", at=10.0))
        plan.add(WorkerFault("w2", kind="slow", probability=0.5))
        assert [f.worker for f in plan.scheduled()] == ["w0", "w1"]
        assert [f.worker for f in plan.probabilistic()] == ["w2"]

    def test_scheduled_faults_fire_at_their_times(self):
        site, client = build(n_workers=2)
        plan = FaultPlan()
        plan.add(WorkerFault("w0", kind="slow", at=30.0, slow_factor=2.0))
        plan.add(WorkerFault("w1", kind="crash", at=50.0))
        site.injector.apply(plan)

        def scenario():
            yield site.env.timeout(100.0)

        drive(site, scenario())
        assert site.injector.log == [(30.0, "slow", "w0"), (50.0, "crash", "w1")]
        assert site.element.worker("w0").slow_factor == 2.0
        assert site.element.worker("w1").failed

    def test_probabilistic_faults_are_seeded_and_reproducible(self):
        times = []
        for _ in range(2):
            site, _ = build(n_workers=2)
            plan = FaultPlan(seed=11, check_every=5.0, horizon=500.0)
            plan.add(WorkerFault("w1", kind="crash", probability=0.1))
            site.injector.apply(plan)

            def scenario():
                yield site.env.timeout(600.0)

            drive(site, scenario())
            times.append(list(site.injector.log))
        assert times[0] == times[1]
        assert times[0], "fault should have fired within the horizon"


class TestFailureInjector:
    def test_crash_fails_running_job_with_node_crash(self):
        site, client = build(n_workers=2)

        def scenario():
            info = yield from client.obtain_proxy_and_connect(n_engines=2)
            ref = site.registry.engines(info.session_id)[0]
            site.injector.crash_worker(ref.worker)
            job = site.session_service._sessions[info.session_id][
                "engine_jobs"
            ][ref.engine_id]
            yield job.done
            assert job.state == JobState.FAILED
            assert isinstance(job.error, NodeCrash)
            assert site.element.worker(ref.worker).failed

        drive(site, scenario())

    def test_hung_job_keeps_running_until_cancelled(self):
        site, client = build(n_workers=2, enable_recovery=False)

        def scenario():
            info = yield from client.obtain_proxy_and_connect(n_engines=2)
            ref = site.registry.engines(info.session_id)[0]
            job = site.session_service._sessions[info.session_id][
                "engine_jobs"
            ][ref.engine_id]
            site.injector.hang_worker(ref.worker)
            yield site.env.timeout(200.0)
            assert job.state == JobState.RUNNING  # frozen, not dead
            site.scheduler.cancel(job.id, "give-up")
            yield job.done
            assert job.state == JobState.FAILED
            assert isinstance(job.error, NodeHang)

        drive(site, scenario())

    def test_restore_worker_returns_node_to_pool(self):
        site, _ = build(n_workers=2)
        site.injector.crash_worker("w0")
        assert site.scheduler.available_worker_count == 1
        site.injector.restore_worker("w0")
        assert site.scheduler.available_worker_count == 2


# ---------------------------------------------------------------------------
# Heartbeats
# ---------------------------------------------------------------------------

class TestHeartbeats:
    def test_monitor_stale_logic(self):
        env = Environment()
        registry = WorkerRegistryService(env)
        config = RecoveryConfig(heartbeat_interval=5.0, heartbeat_timeout=20.0)
        monitor = HeartbeatMonitor(env, registry, "s1", config)
        monitor.watch("e0")
        monitor.watch("e1")

        def scenario():
            yield env.timeout(15.0)
            registry.heartbeat("s1", "e1")
            yield env.timeout(10.0)  # now=25: e0 silent for 25s, e1 for 10s
            assert monitor.stale() == ["e0"]
            yield env.timeout(20.0)  # now=45: both silent past the timeout
            assert monitor.stale() == ["e0", "e1"]
            monitor.unwatch("e0")
            assert monitor.stale() == ["e1"]

        env.run(until=env.process(scenario()))

    def test_engines_heartbeat_while_alive(self):
        site, client = build(n_workers=2)

        def scenario():
            info = yield from client.obtain_proxy_and_connect(n_engines=2)
            yield site.env.timeout(60.0)
            for ref in site.registry.engines(info.session_id):
                last = site.registry.last_heartbeat(
                    info.session_id, ref.engine_id
                )
                assert last is not None
                assert site.env.now - last <= site.config.heartbeat_interval

        drive(site, scenario())

    def test_detection_latency_is_bounded_by_timeout_plus_period(self):
        site, client = build(n_workers=2)
        config = site.session_service.recovery
        marks = {}

        def scenario():
            info = yield from client.obtain_proxy_and_connect(n_engines=2)
            yield from client.select_dataset("ds-small")
            yield from client.upload_code(higgs.SOURCE)
            yield from client.run()
            yield site.env.timeout(10.0)
            ref = site.registry.engines(info.session_id)[0]
            marks["killed_at"] = site.env.now
            site.injector.hang_worker(ref.worker)  # only heartbeats detect
            final = yield from client.wait_for_completion(
                poll_interval=2.0, timeout=4000.0
            )
            marks["session"] = site.session_service._sessions[info.session_id]
            yield from client.close()

        drive(site, scenario())
        recoveries = marks["session"]["recoveries"]
        assert len(recoveries) == 1
        latency = recoveries[0]["detected_at"] - marks["killed_at"]
        # Last beat is at most one interval before the kill; the monitor
        # needs a beat older than the timeout, observed at sweep granularity.
        assert latency >= config.heartbeat_timeout - config.heartbeat_interval
        assert latency <= config.heartbeat_timeout + config.period + 1e-6


# ---------------------------------------------------------------------------
# Re-dispatch under worker loss
# ---------------------------------------------------------------------------

class TestRecovery:
    @pytest.mark.parametrize("kind", ["crash", "hang", "link-down"])
    def test_one_of_n_loss_recovers_with_exact_results(self, kind):
        site, client = build(n_workers=4)
        results = {}

        def scenario():
            info = yield from client.obtain_proxy_and_connect(n_engines=4)
            yield from client.select_dataset("ds-small")
            yield from client.upload_code(higgs.SOURCE)
            yield from client.run()
            yield site.env.timeout(10.0)
            victim = site.registry.engines(info.session_id)[0]
            site.injector.apply_fault(
                WorkerFault(victim.worker, kind=kind, at=site.env.now)
            )
            final = yield from client.wait_for_completion(
                poll_interval=2.0, timeout=4000.0
            )
            results["tree"] = final.tree
            results["progress"] = final.progress
            results["status"] = yield from client.status()
            yield from client.close()

        drive(site, scenario())
        progress = results["progress"]
        assert progress.complete
        assert progress.events_processed == 2000
        assert progress.expected_engines == 3
        assert not progress.recovering
        status = results["status"]
        assert len(status["node_failures"]) == 1
        assert not status["failures"]  # node loss is not an analysis crash
        assert status["orphaned_parts"] == 0
        assert len(status["redispatches"]) == 1
        # Merged histogram is exactly a failure-free single run's.
        local = local_reference_tree().get("/higgs/dijet_mass")
        merged = results["tree"].get("/higgs/dijet_mass")
        assert merged.entries == local.entries
        assert np.array_equal(merged.heights(), local.heights())

    def test_all_but_one_loss_recovers_with_exact_results(self):
        site, client = build(n_workers=3)
        results = {}

        def scenario():
            info = yield from client.obtain_proxy_and_connect(n_engines=3)
            yield from client.select_dataset("ds-small")
            yield from client.upload_code(higgs.SOURCE)
            yield from client.run()
            yield site.env.timeout(10.0)
            refs = site.registry.engines(info.session_id)
            for victim in refs[:2]:  # (N-1)-of-N: 2 of 3 die at once
                site.injector.crash_worker(victim.worker)
            final = yield from client.wait_for_completion(
                poll_interval=2.0, timeout=8000.0
            )
            results["progress"] = final.progress
            results["tree"] = final.tree
            results["status"] = yield from client.status()
            yield from client.close()

        drive(site, scenario())
        progress = results["progress"]
        assert progress.complete
        assert progress.events_processed == 2000
        assert progress.expected_engines == 1
        status = results["status"]
        assert len(status["recoveries"]) == 2
        assert len(status["redispatches"]) == 2
        local = local_reference_tree().get("/higgs/dijet_mass")
        merged = results["tree"].get("/higgs/dijet_mass")
        assert merged.entries == local.entries
        assert np.array_equal(merged.heights(), local.heights())

    def test_spare_worker_preferred_over_survivor_takeover(self):
        site, client = build(n_workers=4)
        results = {}

        def scenario():
            info = yield from client.obtain_proxy_and_connect(n_engines=3)
            yield from client.select_dataset("ds-small")
            yield from client.upload_code(higgs.SOURCE)
            yield from client.run()
            yield site.env.timeout(10.0)
            victim = site.registry.engines(info.session_id)[0]
            site.injector.crash_worker(victim.worker)
            final = yield from client.wait_for_completion(
                poll_interval=2.0, timeout=4000.0
            )
            results["progress"] = final.progress
            results["tree"] = final.tree
            results["status"] = yield from client.status()
            results["session_id"] = info.session_id
            yield from client.close()

        drive(site, scenario())
        status = results["status"]
        # The orphaned part went to a brand-new engine on the spare worker,
        # keeping parallelism at 3.
        spare_engine = f"{results['session_id']}-engine-3"
        assert [r["to"] for r in status["redispatches"]] == [spare_engine]
        assert status["n_engines"] == 3
        assert results["progress"].expected_engines == 3
        local = local_reference_tree().get("/higgs/dijet_mass")
        merged = results["tree"].get("/higgs/dijet_mass")
        assert merged.entries == local.entries
        assert np.array_equal(merged.heights(), local.heights())

    def test_total_loss_is_unrecoverable(self):
        site, client = build(n_workers=3)

        def scenario():
            info = yield from client.obtain_proxy_and_connect(n_engines=3)
            yield from client.select_dataset("ds-small")
            yield from client.upload_code(higgs.SOURCE)
            yield from client.run()
            yield site.env.timeout(10.0)
            for ref in site.registry.engines(info.session_id):
                site.injector.crash_worker(ref.worker)
            with pytest.raises(ClientError, match="unrecoverable"):
                yield from client.wait_for_completion(
                    poll_interval=2.0, timeout=4000.0
                )
            assert (yield from client.close())

        drive(site, scenario())

    def test_recovery_restages_only_orphaned_partitions(self):
        site, client = build(n_workers=4)
        results = {}

        def scenario():
            info = yield from client.obtain_proxy_and_connect(n_engines=4)
            yield from client.select_dataset("ds-small")
            yield from client.upload_code(higgs.SOURCE)
            transferred_before = len(site.ftp.log)
            yield from client.run()
            yield site.env.timeout(10.0)
            victim = site.registry.engines(info.session_id)[0]
            site.injector.crash_worker(victim.worker)
            yield from client.wait_for_completion(
                poll_interval=2.0, timeout=4000.0
            )
            # After run() starts, the only SE -> worker transfers are
            # recovery re-staging (snapshots travel over RMI, not GridFTP).
            results["restage_transfers"] = [
                entry
                for entry in site.ftp.log[transferred_before:]
                if entry.src == site.storage.name
            ]
            yield from client.close()

        drive(site, scenario())
        # Exactly one partition (the dead engine's) was re-staged.
        assert len(results["restage_transfers"]) == 1


# ---------------------------------------------------------------------------
# Idempotent shutdown under failures
# ---------------------------------------------------------------------------

class TestShutdown:
    def test_close_is_idempotent(self):
        site, client = build(n_workers=2)

        def scenario():
            info = yield from client.obtain_proxy_and_connect(n_engines=2)
            sid = info.session_id
            assert (yield from client.close())
            # Second close at the service level: a no-op, not an error.
            again = yield site.env.process(site.session_service.close(sid))
            assert again is True

        drive(site, scenario())

    def test_close_with_crashed_engine_does_not_deadlock(self):
        site, client = build(n_workers=3)

        def scenario():
            info = yield from client.obtain_proxy_and_connect(n_engines=3)
            ref = site.registry.engines(info.session_id)[0]
            site.injector.crash_worker(ref.worker)
            # Close right away: one engine is already dead and will never
            # read its shutdown directive.
            assert (yield from client.close())
            assert site.registry.count(info.session_id) == 0

        drive(site, scenario())

    def test_close_with_hung_engine_does_not_deadlock(self):
        site, client = build(n_workers=2)

        def scenario():
            info = yield from client.obtain_proxy_and_connect(n_engines=2)
            ref = site.registry.engines(info.session_id)[0]
            site.injector.hang_worker(ref.worker)
            started = site.env.now
            assert (yield from client.close())
            # The monitor cancels the hung job; close never waits forever.
            assert site.env.now - started < 1000.0

        drive(site, scenario())

    def test_drop_session_is_idempotent(self):
        site, _ = build(n_workers=2)
        for _ in range(2):
            site.registry.drop_session("ghost")
            site.aida.drop_session("ghost")
            site.codeloader.drop_session("ghost")


# ---------------------------------------------------------------------------
# Service-envelope fault injection
# ---------------------------------------------------------------------------

class TestEnvelopeFaults:
    def test_every_registered_operation_can_be_fault_injected(self):
        site, _ = build(n_workers=2)
        checked = []

        def scenario():
            for service in site.container.services:
                for operation in site.container.operations(service):
                    boom = Fault(f"injected into {service}.{operation}")
                    site.container.inject_fault(
                        service, operation, boom, count=1
                    )
                    try:
                        yield site.container.call(service, operation, {})
                    except Fault as exc:
                        assert exc is boom
                        checked.append((service, operation))
                    else:
                        raise AssertionError(
                            f"{service}.{operation} did not raise its "
                            "injected fault"
                        )

        drive(site, scenario())
        # The sweep actually exercised a meaningful surface.
        assert len(checked) >= 10
        services = {service for service, _ in checked}
        assert {"catalog", "locator", "control", "session", "aida"} <= services

    def test_counted_fault_is_transient(self):
        site, _ = build(n_workers=2)
        boom = Fault("twice")
        site.container.inject_fault("catalog", "browse", boom, count=2)

        def scenario():
            for _ in range(2):
                with pytest.raises(Fault):
                    yield site.container.call(
                        "catalog", "browse", {"path": "/"}
                    )
            listing = yield site.container.call(
                "catalog", "browse", {"path": "/"}
            )
            assert listing is not None

        drive(site, scenario())

    def test_counted_fault_validation(self):
        site, _ = build(n_workers=2)
        with pytest.raises(ValueError):
            site.container.inject_fault("catalog", "browse", Fault("x"), count=0)


# ---------------------------------------------------------------------------
# GRAM submission retry
# ---------------------------------------------------------------------------

class TestGramRetry:
    def test_submission_retries_transient_gatekeeper_outage(self):
        site, client = build(n_workers=2)
        site.gram.inject_failures(2)
        marks = {}

        def scenario():
            started = site.env.now
            info = yield from client.obtain_proxy_and_connect(n_engines=2)
            marks["elapsed"] = site.env.now - started
            marks["n"] = info.n_engines

        drive(site, scenario())
        assert marks["n"] == 2
        # Two failed attempts cost the policy's first two backoff delays.
        expected = sum(site.gram.retry_policy.delays()[:2])
        assert marks["elapsed"] >= expected

    def test_submission_gives_up_after_policy_exhausted(self):
        site, client = build(n_workers=2)
        site.gram.inject_failures(site.gram.retry_policy.max_attempts)

        def scenario():
            client.obtain_proxy()
            with pytest.raises(GramUnavailable):
                yield from client.connect(n_engines=2)

        drive(site, scenario())
