"""Unit tests for the benchmark support package."""

import numpy as np
import pytest

from repro.bench.model import (
    PaperModel,
    fit_grid_model,
    fit_local_model,
    grid_time,
    local_time,
)
from repro.bench.surface import compute_surfaces
from repro.bench.tables import ComparisonTable, format_seconds


# ---------------------------------------------------------------------------
# Paper model
# ---------------------------------------------------------------------------

def test_paper_model_local():
    assert local_time(100.0) == pytest.approx(1150.0)
    assert PaperModel().local(0.0) == 0.0


def test_paper_model_grid_matches_printed_equation():
    model = PaperModel()
    # T_grid(471, 16) = 0.338*471 + 53 + (62 + 5.3*471)/16
    expected = 0.338 * 471 + 53 + (62 + 5.3 * 471) / 16
    assert model.grid(471, 16) == pytest.approx(expected)
    assert grid_time(471, 16) == pytest.approx(expected)


def test_paper_model_grid_vectorized():
    model = PaperModel()
    xs = np.array([10.0, 100.0])
    values = model.grid(xs, 4)
    assert values.shape == (2,)
    assert values[1] > values[0]


def test_paper_conclusion_grid_wins_large_datasets():
    model = PaperModel()
    assert model.grid(471, 16) < model.local(471)
    assert model.grid(1000, 4) < model.local(1000)


def test_paper_conclusion_local_wins_tiny_datasets():
    model = PaperModel()
    assert model.local(1.0) < model.grid(1.0, 16)


def test_crossover_size_bracketed():
    model = PaperModel()
    for n in (1, 2, 4, 16, 64):
        x_star = model.crossover_size(n)
        assert model.local(x_star) == pytest.approx(model.grid(x_star, n), rel=1e-9)
        # Just below: local wins; just above: grid wins.
        assert model.local(x_star * 0.9) < model.grid(x_star * 0.9, n)
        assert model.local(x_star * 1.1) > model.grid(x_star * 1.1, n)


def test_crossover_decreases_with_nodes():
    model = PaperModel()
    values = [model.crossover_size(n) for n in (1, 2, 4, 8, 16)]
    assert all(a > b for a, b in zip(values, values[1:]))


def test_crossover_paper_claim_order_10mb():
    """§4: 'for large dataset (> ~10 MB) ... it is much better to use the Grid'."""
    model = PaperModel()
    assert 5 < model.crossover_size(16) < 25


def test_crossover_infinite_when_grid_cannot_win():
    model = PaperModel(local_per_mb=0.1)
    assert model.crossover_size(1) == float("inf")


# ---------------------------------------------------------------------------
# Fitting
# ---------------------------------------------------------------------------

def test_fit_local_model_recovers_slope():
    xs = np.array([10.0, 50.0, 200.0, 471.0])
    ys = 11.5 * xs
    slope, residual = fit_local_model(xs, ys)
    assert slope == pytest.approx(11.5)
    assert residual == pytest.approx(0.0, abs=1e-9)


def test_fit_local_model_validation():
    with pytest.raises(ValueError):
        fit_local_model([], [])


def test_fit_grid_model_recovers_coefficients():
    model = PaperModel()
    xs, ns, ys = [], [], []
    for x in (10.0, 50.0, 200.0, 471.0, 1000.0):
        for n in (1, 2, 4, 8, 16):
            xs.append(x)
            ns.append(n)
            ys.append(float(model.grid(x, n)))
    fitted, residual = fit_grid_model(xs, ns, ys)
    assert fitted.grid_per_mb == pytest.approx(0.338, rel=1e-6)
    assert fitted.grid_fixed == pytest.approx(53.0, rel=1e-6)
    assert fitted.grid_per_node_fixed == pytest.approx(62.0, rel=1e-4)
    assert fitted.grid_per_node_per_mb == pytest.approx(5.3, rel=1e-6)
    assert residual == pytest.approx(0.0, abs=1e-6)


def test_fit_grid_model_validation():
    with pytest.raises(ValueError):
        fit_grid_model([1, 2], [1, 2], [1])
    with pytest.raises(ValueError):
        fit_grid_model([1, 2, 3], [1, 2, 3], [1, 2, 3])


# ---------------------------------------------------------------------------
# Surfaces
# ---------------------------------------------------------------------------

def test_surfaces_from_paper_model():
    result = compute_surfaces(
        sizes_mb=[1, 10, 100, 1000], nodes=[1, 4, 16]
    )
    assert result.local.shape == (4, 3)
    # Local is flat in N.
    assert np.allclose(result.local[:, 0], result.local[:, 2])
    # Grid wins at 1000 MB, 16 nodes; loses at 1 MB, 1 node.
    wins = result.grid_wins()
    assert wins[3, 2]
    assert not wins[0, 0]


def test_surface_crossover_interpolation():
    result = compute_surfaces(
        sizes_mb=np.linspace(1, 100, 100), nodes=[16]
    )
    model = PaperModel()
    assert result.crossover_mb[0] == pytest.approx(
        model.crossover_size(16), rel=0.02
    )


def test_surface_crossover_edge_cases():
    # Grid always wins -> crossover at the smallest size.
    result = compute_surfaces(
        sizes_mb=[10, 100],
        nodes=[4],
        local_fn=lambda x: 1e9,
        grid_fn=lambda x, n: 1.0,
    )
    assert result.crossover_mb[0] == 10.0
    # Grid never wins -> inf.
    result = compute_surfaces(
        sizes_mb=[10, 100],
        nodes=[4],
        local_fn=lambda x: 1.0,
        grid_fn=lambda x, n: 1e9,
    )
    assert result.crossover_mb[0] == float("inf")


def test_surface_validation():
    with pytest.raises(ValueError):
        compute_surfaces([], [1])


def test_surface_ascii_rendering():
    result = compute_surfaces(sizes_mb=[1, 471], nodes=[1, 16])
    text = result.render_ascii()
    assert "G" in text and "L" in text
    assert "471.0" in text


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def test_format_seconds():
    assert format_seconds(None) == "-"
    assert format_seconds(5.5) == "5.5 s"
    assert format_seconds(93) == "93 s"
    assert format_seconds(259) == "4 m 19 s"
    assert format_seconds(2700) == "45 m 00 s"
    assert format_seconds(7200) == "2.00 h"
    assert format_seconds(-93) == "-93 s"


def test_comparison_table_render():
    table = ComparisonTable("Table 1", ["phase", "paper", "ours"])
    table.add_row("analysis", "258 s", "260 s")
    text = table.render()
    assert "Table 1" in text
    assert "analysis" in text
    assert text == str(table)


def test_comparison_table_row_validation():
    table = ComparisonTable("t", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row("only-one")


def test_surface_to_csv():
    result = compute_surfaces(sizes_mb=[10, 100], nodes=[1, 4])
    csv = result.to_csv()
    lines = csv.splitlines()
    assert lines[0] == "size_mb,nodes,local_s,grid_s"
    assert len(lines) == 1 + 4
    size, nodes, local_s, grid_s = lines[1].split(",")
    assert size == "10" and nodes == "1"
    assert float(local_s) == pytest.approx(115.0)


# ---------------------------------------------------------------------------
# Profiling
# ---------------------------------------------------------------------------

def test_profile_analysis_reports_hotspots():
    from repro.analysis import higgs
    from repro.bench.profiling import profile_analysis
    from repro.dataset.generator import ILCEventGenerator
    from repro.engine.sandbox import CodeBundle

    batch = ILCEventGenerator(seed=1).generate(2000)
    report = profile_analysis(CodeBundle(higgs.SOURCE), batch)
    assert report.events == 2000
    assert report.wall_seconds >= 0
    assert report.events_per_second > 0
    assert report.hotspots
    text = report.render(top=5)
    assert "events/s" in text
    assert "cumtime" in text
    # The engine's chunk loop must appear somewhere in the hot path.
    assert any("process" in s.function for s in report.hotspots)
