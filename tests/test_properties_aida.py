"""Property-based tests (hypothesis) for AIDA merge/serialization invariants.

The IPA architecture is only correct if "fill distributed, then merge"
equals "fill centrally": these properties pin that down for every mergeable
object, along with serialization fidelity and merge algebra laws.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aida.axis import Axis
from repro.aida.cloud import Cloud1D
from repro.aida.hist1d import Histogram1D
from repro.aida.hist2d import Histogram2D
from repro.aida.ntuple import NTuple
from repro.aida.profile import Profile1D

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
weights = st.floats(min_value=0.001, max_value=100.0, allow_nan=False)
points = st.lists(st.tuples(finite_floats, weights), max_size=60)
xy_points = st.lists(
    st.tuples(finite_floats, finite_floats, weights), max_size=60
)


def fill_hist(data):
    hist = Histogram1D("h", bins=20, lower=-100.0, upper=100.0)
    for x, w in data:
        hist.fill(x, w)
    return hist


@given(points, points)
def test_hist1d_merge_commutative(data_a, data_b):
    a, b = fill_hist(data_a), fill_hist(data_b)
    ab = a + b
    ba = b + a
    assert np.array_equal(ab._counts, ba._counts)
    assert np.allclose(ab._sumw, ba._sumw)
    assert np.isclose(ab._swx, ba._swx)


@given(points, points, points)
def test_hist1d_merge_associative(da, db, dc):
    a, b, c = fill_hist(da), fill_hist(db), fill_hist(dc)
    left = (a + b) + c
    right = a + (b + c)
    assert np.array_equal(left._counts, right._counts)
    assert np.allclose(left._sumw, right._sumw)


@given(points, points)
def test_hist1d_distributed_fill_equals_central(da, db):
    """Fill on two engines then merge == fill everything on one engine."""
    merged = fill_hist(da) + fill_hist(db)
    central = fill_hist(da + db)
    assert np.array_equal(merged._counts, central._counts)
    assert np.allclose(merged._sumw, central._sumw)
    assert np.allclose(merged._sumw2, central._sumw2)
    assert np.isclose(merged._swx, central._swx)
    assert np.isclose(merged._swx2, central._swx2)


@given(points)
def test_hist1d_merge_identity(data):
    """Merging with an empty histogram changes nothing."""
    hist = fill_hist(data)
    empty = Histogram1D("h", bins=20, lower=-100.0, upper=100.0)
    merged = hist + empty
    assert merged == hist.copy()


@given(points)
def test_hist1d_serialization_roundtrip(data):
    hist = fill_hist(data)
    assert Histogram1D.from_dict(hist.to_dict()) == hist


@given(points)
def test_hist1d_entry_conservation(data):
    """Every fill lands in exactly one slot."""
    hist = fill_hist(data)
    assert hist.all_entries == len(data)
    assert hist.sum_all_bin_heights == np.float64(
        sum(w for _, w in data)
    ) or np.isclose(hist.sum_all_bin_heights, sum(w for _, w in data))


@given(points)
def test_hist1d_scale_linearity(data):
    hist = fill_hist(data)
    doubled = hist.copy()
    doubled.scale(2.0)
    assert np.allclose(doubled._sumw, 2 * hist._sumw)
    assert np.allclose(doubled._sumw2, 4 * hist._sumw2)


@given(st.lists(finite_floats, min_size=1, max_size=50))
def test_hist1d_mean_within_data_range(xs):
    hist = Histogram1D("h", bins=50, lower=-2e6, upper=2e6)
    for x in xs:
        hist.fill(x)
    assert min(xs) - 1e-6 <= hist.mean <= max(xs) + 1e-6
    assert hist.rms >= 0


@given(xy_points, xy_points)
def test_hist2d_distributed_fill_equals_central(da, db):
    def fill(data):
        h = Histogram2D(
            "h",
            x_bins=8,
            x_lower=-100.0,
            x_upper=100.0,
            y_bins=8,
            y_lower=-100.0,
            y_upper=100.0,
        )
        for x, y, w in data:
            h.fill(x, y, w)
        return h

    merged = fill(da) + fill(db)
    central = fill(da + db)
    assert np.array_equal(merged._counts, central._counts)
    assert np.allclose(merged._sumw, central._sumw)
    assert np.isclose(merged._swx, central._swx)
    assert np.isclose(merged._swy2, central._swy2)


@given(xy_points, xy_points)
def test_profile_distributed_fill_equals_central(da, db):
    def fill(data):
        p = Profile1D("p", bins=10, lower=-100.0, upper=100.0)
        for x, y, w in data:
            p.fill(x, y, w)
        return p

    merged = fill(da) + fill(db)
    central = fill(da + db)
    assert np.array_equal(merged._counts, central._counts)
    assert np.allclose(merged._sumwy, central._sumwy)
    assert np.allclose(merged._sumwy2, central._sumwy2)


@given(points, points)
def test_cloud_merge_entry_count(da, db):
    def fill(data):
        c = Cloud1D("c", max_points=1000)
        for x, w in data:
            c.fill(x, w)
        return c

    merged = fill(da) + fill(db)
    assert merged.entries == len(da) + len(db)


@given(points, points, st.integers(min_value=1, max_value=30))
def test_cloud_merge_total_weight_conserved(da, db, max_points):
    """Weight survives merging regardless of conversion state."""
    def fill(data):
        c = Cloud1D("c", max_points=max_points)
        for x, w in data:
            c.fill(x, w)
        return c

    merged = fill(da) + fill(db)
    expected = sum(w for _, w in da) + sum(w for _, w in db)
    if merged.converted:
        total = merged.histogram().sum_all_bin_heights
    else:
        total = float(np.sum(merged.weights())) if merged.entries else 0.0
    assert np.isclose(total, expected) or (expected == 0 and total == 0)


@given(
    st.lists(st.tuples(finite_floats, finite_floats), max_size=40),
    st.lists(st.tuples(finite_floats, finite_floats), max_size=40),
)
def test_ntuple_merge_preserves_rows(ra, rb):
    def fill(rows):
        nt = NTuple("n", ["a", "b"])
        for a, b in rows:
            nt.fill(a=a, b=b)
        return nt

    merged = fill(ra) + fill(rb)
    assert merged.rows == len(ra) + len(rb)
    if ra:
        assert merged.column("a")[0] == np.float64(ra[0][0])


@given(
    st.integers(min_value=1, max_value=64),
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
)
def test_axis_roundtrip_and_coverage(bins, lower, width):
    """Every coordinate maps to exactly one storage slot within bounds."""
    axis = Axis(bins=bins, lower=lower, upper=lower + width)
    xs = np.linspace(lower - width, lower + 2 * width, 101)
    slots = axis.coords_to_storage(xs)
    assert np.all((slots >= 0) & (slots <= bins + 1))
    # Edges of each bin map into that bin.
    for i in range(bins):
        if axis.bin_width(i) > 0:
            assert axis.coord_to_index(axis.bin_lower_edge(i)) in (i, i - 1, i + 1)


@given(points)
@settings(max_examples=30)
def test_hist1d_json_roundtrip_via_serial(data):
    import json

    from repro.aida.serial import from_dict, to_dict

    hist = fill_hist(data)
    restored = from_dict(json.loads(json.dumps(to_dict(hist))))
    assert restored == hist
