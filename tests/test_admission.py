"""Per-VO fair-share admission control and weighted-fair job dispatch."""

import pytest

from repro.grid.admission import AdmissionController, AdmissionError
from repro.grid.nodes import ComputeElement, NodeSpec, WorkerNode
from repro.grid.scheduler import BatchScheduler, QueueSpec, SchedulerError
from repro.obs import Observability
from repro.services.envelope import RetryAfter
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


# -- controller validation + quota math ---------------------------------


def test_controller_validation(env):
    with pytest.raises(ValueError):
        AdmissionController(env, capacity=0)
    with pytest.raises(ValueError):
        AdmissionController(env, capacity=4, queue_depth=-1)
    with pytest.raises(ValueError):
        AdmissionController(env, capacity=4, retry_after_s=0.0)
    with pytest.raises(ValueError):
        AdmissionController(env, capacity=4, shares={"ilc": 0.0})


def test_quota_splits_capacity_by_share(env):
    ctl = AdmissionController(
        env, capacity=12, shares={"ilc": 2.0, "atlas": 1.0}
    )
    assert ctl.share("ilc") == 2.0
    assert ctl.share("unknown") == 1.0
    assert ctl.quota("ilc") == pytest.approx(8.0)
    assert ctl.quota("atlas") == pytest.approx(4.0)
    # A new VO joins the denominator with the default share.
    assert ctl.quota("cms") == pytest.approx(12 * 1.0 / 4.0)


def test_acquire_validation(env):
    ctl = AdmissionController(env, capacity=4)

    def check():
        with pytest.raises(AdmissionError):
            yield from ctl.acquire("ilc", 0)
        with pytest.raises(AdmissionError):
            yield from ctl.acquire("ilc", 5)

    env.run(until=env.process(check()))
    with pytest.raises(AdmissionError):
        ctl.release("ilc", 0)


# -- grant / borrow / backpressure --------------------------------------


def test_single_vo_borrows_the_whole_pool(env):
    # Work conservation: with nobody else waiting, one VO may hold every
    # slot even though its fair quota is smaller.
    ctl = AdmissionController(env, capacity=8, shares={"ilc": 1.0, "atlas": 1.0})

    def scenario():
        yield from ctl.acquire("ilc", 4)
        yield from ctl.acquire("ilc", 4)

    env.run(until=env.process(scenario()))
    assert ctl.active("ilc") == 8
    assert ctl.free == 0


def test_over_quota_rejected_with_scaled_hint(env):
    ctl = AdmissionController(
        env, capacity=4, queue_depth=1, retry_after_s=2.0
    )
    hints = []

    def scenario():
        yield from ctl.acquire("ilc", 4)  # pool exhausted
        env.process(waiter())  # occupies the one queue slot
        yield env.timeout(0)
        for _ in range(2):
            try:
                yield from ctl.acquire("ilc", 1)
            except RetryAfter as fault:
                hints.append(fault.retry_after)

    def waiter():
        yield from ctl.acquire("ilc", 1)

    env.run(until=env.process(scenario()))
    # hint = retry_after_s * (1 + backlog); one waiter queued -> 4.0.
    assert hints == [pytest.approx(4.0), pytest.approx(4.0)]
    assert ctl.waiting("ilc") == 1


def test_zero_queue_depth_rejects_immediately(env):
    ctl = AdmissionController(env, capacity=2)

    def scenario():
        yield from ctl.acquire("ilc", 2)
        with pytest.raises(RetryAfter):
            yield from ctl.acquire("ilc", 1)

    env.run(until=env.process(scenario()))


def test_release_wakes_waiters_weighted_fair(env):
    # ilc holds the pool; atlas (weight 3) and cms (weight 1) queue up.
    # On release, the VO with the smaller active/share ratio goes first —
    # atlas drains three grants before cms's ratio catches up.
    ctl = AdmissionController(
        env,
        capacity=4,
        shares={"atlas": 3.0, "cms": 1.0},
        queue_depth=8,
    )
    order = []

    def holder():
        yield from ctl.acquire("ilc", 4)
        for _ in range(4):
            yield env.timeout(1.0)
            ctl.release("ilc", 1)

    def requester(vo, tag):
        yield from ctl.acquire(vo, 1)
        order.append((tag, env.now))

    def scenario():
        hold = env.process(holder())
        yield env.timeout(0)  # ilc grabs the pool first
        for index in range(3):
            env.process(requester("atlas", f"atlas-{index}"))
        env.process(requester("cms", "cms-0"))
        yield hold

    env.run(until=env.process(scenario()))
    # Ratios (active/share) decide each wake: tie at 0.0 goes to atlas
    # by name; then atlas at 1/3 loses to cms at 0/1; after cms holds
    # one slot (ratio 1.0) atlas drains its remaining waiters.
    assert [tag for tag, _ in order] == [
        "atlas-0",
        "cms-0",
        "atlas-1",
        "atlas-2",
    ]
    # Exactly one grant per released slot, at the release times.
    assert [t for _, t in order] == [1.0, 2.0, 3.0, 4.0]


def test_strict_head_never_bypassed(env):
    # A big request at the head of the fair-share order blocks smaller
    # ones behind it from jumping the queue (no starvation of big jobs).
    ctl = AdmissionController(env, capacity=4, queue_depth=4)
    order = []

    def holder():
        yield from ctl.acquire("ilc", 4)
        yield env.timeout(1.0)
        ctl.release("ilc", 1)  # not enough for the big head
        yield env.timeout(1.0)
        ctl.release("ilc", 3)  # now it fits

    def requester(vo, n, tag):
        yield from ctl.acquire(vo, n)
        order.append((tag, env.now))

    def scenario():
        hold = env.process(holder())
        yield env.timeout(0)
        env.process(requester("atlas", 3, "big"))
        yield env.timeout(0)
        env.process(requester("atlas", 1, "small"))
        yield hold

    env.run(until=env.process(scenario()))
    assert order[0][0] == "big"
    assert order[0][1] == pytest.approx(2.0)
    # The small one takes the slot the big request left free.
    assert order[1] == ("small", pytest.approx(2.0))


def test_release_floors_at_zero_and_stats_shape(env):
    ctl = AdmissionController(env, capacity=4, shares={"ilc": 1.0})
    ctl.release("ilc", 3)  # over-release must not go negative
    assert ctl.active("ilc") == 0
    assert ctl.free == 4
    stats = ctl.stats()
    assert stats["capacity"] == 4
    assert stats["free"] == 4
    assert stats["vos"]["ilc"]["active"] == 0
    assert stats["vos"]["ilc"]["share"] == 1.0


def test_admission_events_and_metrics(env):
    obs = Observability(env, enabled=True)
    ctl = AdmissionController(env, capacity=1, obs=obs)

    def scenario():
        yield from ctl.acquire("ilc", 1)
        with pytest.raises(RetryAfter):
            yield from ctl.acquire("ilc", 1)

    env.run(until=env.process(scenario()))
    kinds = [e.kind for e in obs.events.events()]
    assert "session_admitted" in kinds
    assert "admission_rejected" in kinds


# -- scheduler weighted-fair dispatch -----------------------------------


def build_scheduler(n_workers=1):
    env = Environment()
    workers = [
        WorkerNode(env, f"w{i}", NodeSpec(cpu_mhz=866))
        for i in range(n_workers)
    ]
    sched = BatchScheduler(env, ComputeElement("ce", workers))
    sched.add_queue(QueueSpec("interactive", priority=1, dispatch_latency=0.1))
    return env, sched


def sleeper(duration):
    def body(env, worker):
        yield env.timeout(duration)
        return "done"

    return body


def test_vo_weight_validation():
    env, sched = build_scheduler()
    with pytest.raises(SchedulerError):
        sched.set_vo_weight("ilc", 0.0)


def test_untagged_jobs_keep_submission_order():
    # All jobs without a VO: WFQ degenerates to the original
    # (priority, id) order, so nothing about the seed behaviour changes.
    env, sched = build_scheduler(n_workers=1)
    jobs = [
        sched.submit(f"j{i}", "interactive", sleeper(1.0)) for i in range(4)
    ]
    env.run()
    starts = [job.start_time for job in jobs]
    assert starts == sorted(starts)


def test_wfq_interleaves_vos_on_a_contended_queue():
    # 4 ilc jobs then 4 atlas jobs on one worker: FIFO would run all of
    # ilc first; WFQ alternates because each dispatch bumps the serving
    # VO's rank.
    env, sched = build_scheduler(n_workers=1)
    jobs = []
    for index in range(4):
        jobs.append(
            sched.submit(f"ilc-{index}", "interactive", sleeper(1.0), vo="ilc")
        )
    for index in range(4):
        jobs.append(
            sched.submit(
                f"atlas-{index}", "interactive", sleeper(1.0), vo="atlas"
            )
        )
    env.run()
    order = sorted(jobs, key=lambda j: j.start_time)
    vos = [job.vo for job in order]
    assert vos == [
        "ilc", "atlas", "ilc", "atlas", "ilc", "atlas", "ilc", "atlas"
    ]
    assert sched.vo_served("ilc") == 4
    assert sched.vo_served("atlas") == 4


def test_wfq_weights_skew_the_interleave():
    # ilc weighs 3: it gets ~3 dispatches for every atlas one.
    env, sched = build_scheduler(n_workers=1)
    sched.set_vo_weight("ilc", 3.0)
    jobs = []
    for index in range(6):
        jobs.append(
            sched.submit(f"ilc-{index}", "interactive", sleeper(1.0), vo="ilc")
        )
    for index in range(2):
        jobs.append(
            sched.submit(
                f"atlas-{index}", "interactive", sleeper(1.0), vo="atlas"
            )
        )
    env.run()
    order = sorted(jobs, key=lambda j: j.start_time)
    first_four = [job.vo for job in order[:4]]
    # Within the first four dispatches atlas gets exactly one slot.
    assert first_four.count("atlas") == 1
    assert first_four.count("ilc") == 3
