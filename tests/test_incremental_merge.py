"""Tests for the incremental merge pipeline: delta snapshots, per-engine
caching in the AIDA manager, and the resync protocol between them."""

import pytest

from repro.aida.hist1d import Histogram1D
from repro.aida.tree import ObjectTree
from repro.engine.engine import AnalysisEngine, Snapshot
from repro.obs import Observability
from repro.services.aida_manager import AIDAManagerService
from repro.sim import Environment


def make_snapshot(
    engine_id,
    entries,
    sequence=1,
    run_id=0,
    final=False,
    base_sequence=0,
    path="/h",
):
    tree = ObjectTree()
    hist = Histogram1D("h", bins=10, lower=0, upper=10)
    for _ in range(entries):
        hist.fill(5.0)
    tree.put(path, hist)
    return Snapshot(
        engine_id=engine_id,
        sequence=sequence,
        events_processed=entries,
        total_events=100,
        analysis_version=1,
        run_id=run_id,
        tree=tree.to_dict(),
        final=final,
        base_sequence=base_sequence,
    )


def merged_entries(env, manager, session_id="s1", path="/h"):
    tree_dict, _ = env.run(until=manager.merged(session_id))
    return ObjectTree.from_dict(tree_dict).get(path).entries


# ---------------------------------------------------------------------------
# engine-side delta snapshots
# ---------------------------------------------------------------------------

def make_engine(**kwargs):
    engine = AnalysisEngine("e0", **kwargs)
    engine.tree.put("/a", Histogram1D("a", bins=10, lower=0, upper=10))
    engine.tree.put("/b", Histogram1D("b", bins=10, lower=0, upper=10))
    return engine


def test_first_snapshot_is_full_keyframe():
    engine = make_engine()
    snap = engine.take_snapshot()
    assert snap.base_sequence == 0
    assert set(snap.tree["objects"]) == {"/a", "/b"}


def test_delta_carries_only_changed_objects():
    engine = make_engine()
    engine.take_snapshot()
    engine.tree.get("/a").fill(5.0)
    snap = engine.take_snapshot()
    assert snap.base_sequence == 1
    assert snap.sequence == 2
    assert set(snap.tree["objects"]) == {"/a"}


def test_unchanged_tree_yields_empty_delta():
    engine = make_engine()
    engine.take_snapshot()
    snap = engine.take_snapshot()
    assert snap.base_sequence == 1
    assert snap.tree["objects"] == {}


def test_keyframe_cadence():
    engine = make_engine(keyframe_every=3)
    kinds = []
    for _ in range(7):
        engine.tree.get("/a").fill(5.0)
        kinds.append(engine.take_snapshot().base_sequence == 0)
    # full, delta, delta, full, delta, delta, full
    assert kinds == [True, False, False, True, False, False, True]


def test_full_flag_forces_keyframe():
    engine = make_engine()
    engine.take_snapshot()
    snap = engine.take_snapshot(full=True)
    assert snap.base_sequence == 0
    assert set(snap.tree["objects"]) == {"/a", "/b"}


def test_delta_snapshots_disabled_always_full():
    engine = make_engine(delta_snapshots=False)
    for _ in range(3):
        snap = engine.take_snapshot()
        assert snap.base_sequence == 0


def test_rewind_resets_delta_state():
    engine = make_engine()
    engine.take_snapshot()
    engine.rewind()
    engine.tree.put("/c", Histogram1D("c", bins=10, lower=0, upper=10))
    snap = engine.take_snapshot()
    assert snap.base_sequence == 0  # first snapshot of the new run is full
    assert snap.sequence == 1
    assert snap.run_id == 1


def test_replaced_object_is_detected_as_dirty():
    engine = make_engine()
    engine.take_snapshot()
    engine.tree.remove("/b")
    engine.tree.put("/b", Histogram1D("b", bins=10, lower=0, upper=10))
    snap = engine.take_snapshot()
    assert set(snap.tree["objects"]) == {"/b"}


# ---------------------------------------------------------------------------
# manager-side ingestion and the resync protocol
# ---------------------------------------------------------------------------

def test_delta_applies_on_top_of_keyframe():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0)
    assert manager.submit_snapshot("s1", make_snapshot("e0", 10)) == "accepted"
    delta = make_snapshot("e0", 25, sequence=2, base_sequence=1)
    assert manager.submit_snapshot("s1", delta) == "accepted"
    assert merged_entries(env, manager) == 25  # latest cumulative state wins


def test_delta_adds_new_paths():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0)
    manager.submit_snapshot("s1", make_snapshot("e0", 10))
    delta = make_snapshot("e0", 7, sequence=2, base_sequence=1, path="/h2")
    assert manager.submit_snapshot("s1", delta) == "accepted"
    tree_dict, _ = env.run(until=manager.merged("s1"))
    tree = ObjectTree.from_dict(tree_dict)
    assert tree.get("/h").entries == 10
    assert tree.get("/h2").entries == 7


def test_delta_without_keyframe_requests_resync():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0)
    delta = make_snapshot("e0", 10, sequence=2, base_sequence=1)
    assert manager.submit_snapshot("s1", delta) == "resync"
    assert manager.snapshot_count("s1") == 0
    # A full keyframe recovers.
    full = make_snapshot("e0", 10, sequence=3)
    assert manager.submit_snapshot("s1", full) == "accepted"
    assert merged_entries(env, manager) == 10


def test_sequence_gap_requests_resync():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0)
    manager.submit_snapshot("s1", make_snapshot("e0", 10, sequence=1))
    # Delta based on sequence 2, but the cache holds sequence 1.
    delta = make_snapshot("e0", 30, sequence=3, base_sequence=2)
    assert manager.submit_snapshot("s1", delta) == "resync"
    assert merged_entries(env, manager) == 10  # cache untouched


def test_non_incremental_manager_refuses_deltas():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0, incremental=False)
    delta = make_snapshot("e0", 10, sequence=2, base_sequence=1)
    assert manager.submit_snapshot("s1", delta) == "resync"
    assert manager.submit_snapshot("s1", make_snapshot("e0", 10)) == "accepted"
    assert merged_entries(env, manager) == 10


def test_engine_manager_resync_roundtrip():
    # A lost snapshot self-heals: the manager reports the gap, the engine
    # republishes a full keyframe, and the merged state is exact.
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0)
    engine = make_engine()
    engine.take_snapshot()  # keyframe... lost in transit, never submitted
    engine.tree.get("/a").fill(5.0)
    delta = engine.take_snapshot()
    assert delta.base_sequence == 1
    assert manager.submit_snapshot("s1", delta) == "resync"
    full = engine.take_snapshot(full=True)
    assert manager.submit_snapshot("s1", full) == "accepted"
    tree_dict, _ = env.run(until=manager.merged("s1"))
    assert ObjectTree.from_dict(tree_dict).get("/a").entries == 1


# ---------------------------------------------------------------------------
# drop accounting
# ---------------------------------------------------------------------------

def test_dropped_snapshots_counted_by_reason():
    env = Environment()
    obs = Observability(env)
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0, obs=obs)
    manager.submit_snapshot("s1", make_snapshot("e0", 10, sequence=2, run_id=1))
    # banned engine
    manager.discard_engine("s1", "e1")
    assert manager.submit_snapshot("s1", make_snapshot("e1", 5)) == "dropped"
    # stale run
    stale = make_snapshot("e2", 5, run_id=0)
    assert manager.submit_snapshot("s1", stale) == "dropped"
    # out-of-order duplicate
    dup = make_snapshot("e0", 5, sequence=2, run_id=1)
    assert manager.submit_snapshot("s1", dup) == "dropped"
    # delta gap
    gap = make_snapshot("e3", 5, sequence=5, base_sequence=4, run_id=1)
    assert manager.submit_snapshot("s1", gap) == "resync"
    counter = obs.metrics.get("aida_snapshots_dropped_total")
    assert counter.value(reason="banned") == 1
    assert counter.value(reason="stale_run") == 1
    assert counter.value(reason="out_of_order") == 1
    assert counter.value(reason="gap") == 1


# ---------------------------------------------------------------------------
# snapshot aliasing (regression)
# ---------------------------------------------------------------------------

def test_mutating_submitted_tree_cannot_corrupt_merge():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0)
    snapshot = make_snapshot("e0", 10)
    manager.submit_snapshot("s1", snapshot)
    before = merged_entries(env, manager)
    # The submitter still holds the tree dict; scribble all over it.
    for obj_data in snapshot.tree["objects"].values():
        obj_data["counts"] = [999] * len(obj_data["counts"])
        obj_data["swx"] = -1.0
    snapshot.tree["objects"]["/evil"] = {"kind": "bogus"}
    assert merged_entries(env, manager) == before == 10


@pytest.mark.parametrize("incremental", [True, False])
def test_served_tree_is_not_aliased_to_cache(incremental):
    env = Environment()
    manager = AIDAManagerService(
        env, merge_cost_per_tree=0.0, incremental=incremental
    )
    manager.submit_snapshot("s1", make_snapshot("e0", 10))
    tree_dict, _ = env.run(until=manager.merged("s1"))
    counts = tree_dict["objects"]["/h"]["counts"]
    if isinstance(counts, list):
        counts[:] = [0] * len(counts)
    tree_dict["objects"]["/h"]["swx"] = -1.0
    assert merged_entries(env, manager) == 10


# ---------------------------------------------------------------------------
# the incremental cost model
# ---------------------------------------------------------------------------

def test_merge_latency_incremental_charges_per_dirty_engine():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.1)
    assert manager.merge_latency_incremental(1, 64) == pytest.approx(0.1)
    assert manager.merge_latency_incremental(5, 64) == pytest.approx(0.5)
    assert manager.merge_latency_incremental(0, 64) == 0.0
    assert manager.merge_latency_incremental(1, 0) == 0.0
    # Capped at the from-scratch cost.
    assert manager.merge_latency_incremental(64, 64) == pytest.approx(
        manager.merge_latency(64)
    )
    assert manager.merge_latency_incremental(100, 64) == pytest.approx(
        manager.merge_latency(64)
    )


def test_poll_charges_only_dirty_engines():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.5)
    for i in range(8):
        manager.submit_snapshot("s1", make_snapshot(f"e{i}", 10))
    env.run(until=manager.merged("s1"))
    first_poll = env.now
    assert first_poll == pytest.approx(0.5 * 8)
    # Clean poll: nothing dirty, nothing charged.
    env.run(until=manager.merged("s1"))
    assert env.now == pytest.approx(first_poll)
    # One engine advances: one tree's worth of work.
    delta = make_snapshot("e3", 20, sequence=2, base_sequence=1)
    manager.submit_snapshot("s1", delta)
    env.run(until=manager.merged("s1"))
    assert env.now == pytest.approx(first_poll + 0.5)
    assert manager.merge_log[-1] == ("s1", 8, 0.5)


def test_cache_metrics_track_hits_and_misses():
    env = Environment()
    obs = Observability(env)
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0, obs=obs)
    for i in range(4):
        manager.submit_snapshot("s1", make_snapshot(f"e{i}", 10))
    env.run(until=manager.merged("s1"))  # all 4 dirty
    manager.submit_snapshot(
        "s1", make_snapshot("e0", 20, sequence=2, base_sequence=1)
    )
    env.run(until=manager.merged("s1"))  # 1 dirty, 3 cached
    assert obs.metrics.get("aida_merge_cache_misses_total").total() == 5
    assert obs.metrics.get("aida_merge_cache_hits_total").total() == 3
    dirty = obs.metrics.get("aida_merge_dirty_engines")
    assert dirty.count() == 2


# ---------------------------------------------------------------------------
# cache invalidation keeps results exact
# ---------------------------------------------------------------------------

def test_discard_engine_removes_its_contribution():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0)
    manager.submit_snapshot("s1", make_snapshot("e0", 10))
    manager.submit_snapshot("s1", make_snapshot("e1", 20))
    assert merged_entries(env, manager) == 30  # caches are warm
    manager.discard_engine("s1", "e1")
    assert merged_entries(env, manager) == 10


def test_begin_run_invalidates_caches():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0)
    manager.submit_snapshot("s1", make_snapshot("e0", 50))
    assert merged_entries(env, manager) == 50
    manager.begin_run("s1", 1)
    # A delta from the new run cannot apply: the cache is gone.
    delta = make_snapshot("e0", 60, sequence=2, base_sequence=1, run_id=1)
    assert manager.submit_snapshot("s1", delta) == "resync"
    manager.submit_snapshot("s1", make_snapshot("e0", 5, run_id=1))
    assert merged_entries(env, manager) == 5


def test_rewind_via_submission_invalidates_caches():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0)
    manager.submit_snapshot("s1", make_snapshot("e0", 50))
    assert merged_entries(env, manager) == 50
    # A run-1 snapshot arrives without an explicit begin_run.
    manager.submit_snapshot("s1", make_snapshot("e1", 5, run_id=1))
    assert merged_entries(env, manager) == 5


def test_drop_session_clears_caches():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0)
    manager.submit_snapshot("s1", make_snapshot("e0", 10))
    env.run(until=manager.merged("s1"))
    manager.drop_session("s1")
    tree_dict, progress = env.run(until=manager.merged("s1"))
    assert tree_dict["objects"] == {}
    assert progress.engines_reporting == 0


# ---------------------------------------------------------------------------
# incremental vs from-scratch equivalence
# ---------------------------------------------------------------------------

def test_incremental_matches_from_scratch_merge():
    env = Environment()
    incremental = AIDAManagerService(env, merge_cost_per_tree=0.0)
    scratch = AIDAManagerService(env, merge_cost_per_tree=0.0, incremental=False)
    for i in range(5):
        snap = make_snapshot(f"e{i}", 10 * (i + 1))
        incremental.submit_snapshot("s1", snap)
        scratch.submit_snapshot("s1", snap)
    left, _ = env.run(until=incremental.merged("s1"))
    right, _ = env.run(until=scratch.merged("s1"))
    assert left == right
