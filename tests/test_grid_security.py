"""Unit tests for the toy GSI security substrate."""

import pytest

from repro.grid.security import (
    AuthorizationService,
    CertificateAuthority,
    SecurityError,
    SitePolicy,
    VirtualOrganization,
    build_chain,
    mutual_authenticate,
)


@pytest.fixture
def ca():
    return CertificateAuthority("ipa-ca")


@pytest.fixture
def alice(ca):
    return ca.issue_identity("/O=ILC/CN=alice", now=0.0)


def test_issue_identity_fields(ca, alice):
    cert = alice.certificate
    assert cert.subject == "/O=ILC/CN=alice"
    assert cert.issuer == "ipa-ca"
    assert cert.proxy_depth == 0
    assert cert.valid_at(100.0)


def test_issue_identity_lifetime_validation(ca):
    with pytest.raises(SecurityError):
        ca.issue_identity("x", now=0.0, lifetime=0)


def test_validate_identity_chain(ca, alice):
    assert ca.validate_chain([alice.certificate], now=1.0) == "/O=ILC/CN=alice"


def test_validate_empty_chain_rejected(ca):
    with pytest.raises(SecurityError):
        ca.validate_chain([], now=0.0)


def test_expired_identity_rejected(ca):
    short = ca.issue_identity("bob", now=0.0, lifetime=10.0)
    assert ca.validate_chain([short.certificate], now=5.0) == "bob"
    with pytest.raises(SecurityError, match="expired"):
        ca.validate_chain([short.certificate], now=11.0)


def test_revoked_identity_rejected(ca, alice):
    ca.revoke(alice.subject)
    with pytest.raises(SecurityError, match="revoked"):
        ca.validate_chain([alice.certificate], now=1.0)


def test_tampered_certificate_rejected(ca, alice):
    import dataclasses

    forged = dataclasses.replace(alice.certificate, subject="/O=ILC/CN=mallory")
    with pytest.raises(SecurityError):
        ca.validate_chain([forged], now=1.0)


def test_proxy_issuance_and_validation(ca, alice):
    proxy = alice.issue_proxy(now=0.0, lifetime=3600.0)
    cert = proxy.certificate
    assert cert.subject.endswith("/CN=proxy")
    assert cert.proxy_depth == 1
    assert cert.issuer == alice.subject
    chain = build_chain(proxy, alice)
    assert ca.validate_chain(chain, now=10.0) == "/O=ILC/CN=alice"


def test_proxy_lifetime_bounded_by_parent(ca):
    short_lived = ca.issue_identity("carol", now=0.0, lifetime=100.0)
    proxy = short_lived.issue_proxy(now=50.0, lifetime=3600.0)
    assert proxy.certificate.not_after == 100.0


def test_proxy_from_expired_parent_rejected(ca):
    short_lived = ca.issue_identity("dave", now=0.0, lifetime=10.0)
    with pytest.raises(SecurityError, match="expired"):
        short_lived.issue_proxy(now=20.0)


def test_expired_proxy_rejected(ca, alice):
    proxy = alice.issue_proxy(now=0.0, lifetime=60.0)
    chain = build_chain(proxy, alice)
    with pytest.raises(SecurityError, match="expired"):
        ca.validate_chain(chain, now=61.0)


def test_proxy_without_parent_cert_rejected(ca, alice):
    proxy = alice.issue_proxy(now=0.0)
    with pytest.raises(SecurityError, match="chain"):
        ca.validate_chain([proxy.certificate], now=1.0)


def test_proxy_wrong_parent_rejected(ca, alice):
    mallory = ca.issue_identity("/O=ILC/CN=mallory", now=0.0)
    proxy = alice.issue_proxy(now=0.0)
    with pytest.raises(SecurityError):
        ca.validate_chain([proxy.certificate, mallory.certificate], now=1.0)


def test_second_level_proxy_with_registered_key(ca, alice):
    proxy1 = alice.issue_proxy(now=0.0, lifetime=3600.0)
    ca.register_delegation_key(proxy1.subject, proxy1._private_key)
    proxy2 = proxy1.issue_proxy(now=0.0, lifetime=600.0)
    chain = [proxy2.certificate, proxy1.certificate, alice.certificate]
    assert ca.validate_chain(chain, now=1.0) == alice.subject


def test_proxy_lifetime_validation(alice):
    with pytest.raises(SecurityError):
        alice.issue_proxy(now=0.0, lifetime=0)


def test_vo_membership_roundtrip():
    vo = VirtualOrganization("ilc")
    vo.add_member("alice", role="admin")
    assert vo.is_member("alice")
    assert vo.role("alice") == "admin"
    vo.remove_member("alice")
    assert not vo.is_member("alice")
    assert vo.role("alice") is None
    vo.remove_member("alice")  # idempotent


def test_site_policy_validation():
    with pytest.raises(ValueError):
        SitePolicy(max_engines_per_session=0)


def test_authorization_allows_vo_member():
    vo = VirtualOrganization("ilc")
    vo.add_member("alice")
    policy = SitePolicy(max_engines_per_session=16, allowed_vos=("ilc",))
    authz = AuthorizationService([vo], policy)
    assert authz.authorize("alice") is policy
    assert authz.vo_of("alice") == "ilc"


def test_authorization_rejects_non_member():
    vo = VirtualOrganization("ilc")
    policy = SitePolicy(allowed_vos=("ilc",))
    authz = AuthorizationService([vo], policy)
    with pytest.raises(SecurityError, match="not authorized"):
        authz.authorize("mallory")
    assert authz.vo_of("mallory") is None


def test_authorization_rejects_member_of_disallowed_vo():
    other = VirtualOrganization("cms")
    other.add_member("alice")
    policy = SitePolicy(allowed_vos=("ilc",))
    authz = AuthorizationService([other], policy)
    with pytest.raises(SecurityError):
        authz.authorize("alice")


def test_mutual_authentication_success(ca, alice):
    service = ca.issue_identity("/O=SLAC/CN=ipa-service", now=0.0)
    proxy = alice.issue_proxy(now=0.0, lifetime=100.0)
    ctx = mutual_authenticate(
        build_chain(proxy, alice), [service.certificate], ca, now=1.0
    )
    assert ctx.identity == alice.subject
    assert ctx.proxy_subject == proxy.subject
    assert ctx.expires_at == 100.0
    assert ctx.valid_at(99.0)
    assert not ctx.valid_at(101.0)
    assert len(ctx.session_key) == 64


def test_mutual_authentication_rejects_bad_service(ca, alice):
    rogue_ca = CertificateAuthority("rogue")
    rogue_service = rogue_ca.issue_identity("service", now=0.0)
    proxy = alice.issue_proxy(now=0.0)
    with pytest.raises(SecurityError):
        mutual_authenticate(
            build_chain(proxy, alice), [rogue_service.certificate], ca, now=1.0
        )


def test_mutual_authentication_rejects_expired_client(ca, alice):
    service = ca.issue_identity("service", now=0.0)
    proxy = alice.issue_proxy(now=0.0, lifetime=10.0)
    with pytest.raises(SecurityError):
        mutual_authenticate(
            build_chain(proxy, alice), [service.certificate], ca, now=20.0
        )
