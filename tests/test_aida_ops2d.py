"""Unit tests for 2-D histogram arithmetic."""

import numpy as np
import pytest

from repro.aida.hist2d import Histogram2D
from repro.aida.ops import HistogramOpsError
from repro.aida.ops2d import divide2d, efficiency2d, normalize2d, subtract2d


def make(fills, name="h"):
    hist = Histogram2D(
        name, x_bins=2, x_lower=0, x_upper=2, y_bins=2, y_lower=0, y_upper=2
    )
    for x, y, w in fills:
        hist.fill(x, y, w)
    return hist


def test_subtract2d():
    a = make([(0.5, 0.5, 10.0), (1.5, 1.5, 4.0)])
    b = make([(0.5, 0.5, 3.0)])
    diff = subtract2d(a, b)
    assert diff.bin_height(0, 0) == pytest.approx(7.0)
    assert diff.bin_height(1, 1) == pytest.approx(4.0)
    assert diff.bin_error(0, 0) == pytest.approx(np.sqrt(100 + 9))


def test_subtract2d_incompatible():
    a = make([])
    b = Histogram2D("b", x_bins=3, x_lower=0, x_upper=1, y_bins=2, y_lower=0, y_upper=2)
    with pytest.raises(HistogramOpsError):
        subtract2d(a, b)


def test_divide2d():
    a = make([(0.5, 0.5, 8.0)])
    b = make([(0.5, 0.5, 4.0), (1.5, 1.5, 2.0)])
    ratio = divide2d(a, b)
    assert ratio.bin_height(0, 0) == pytest.approx(2.0)
    assert ratio.bin_height(1, 1) == 0.0  # empty numerator
    assert ratio.bin_height(0, 1) == 0.0  # empty denominator


def test_efficiency2d():
    total = make([])
    passed = make([])
    for _ in range(100):
        total.fill(0.5, 0.5)
    for _ in range(40):
        passed.fill(0.5, 0.5)
    eff = efficiency2d(passed, total)
    assert eff.bin_height(0, 0) == pytest.approx(0.4)
    assert eff.bin_error(0, 0) == pytest.approx(np.sqrt(0.4 * 0.6 / 100))
    with pytest.raises(HistogramOpsError):
        efficiency2d(total, passed)  # superset as passed


def test_normalize2d():
    hist = make([(0.5, 0.5, 2.0), (1.5, 0.5, 6.0)])
    unit = normalize2d(hist)
    assert unit.sum_bin_heights == pytest.approx(1.0)
    assert unit.bin_height(1, 0) == pytest.approx(0.75)
    assert unit.mean_x == pytest.approx(hist.mean_x)  # moments preserved
    empty = Histogram2D(
        "e", x_bins=1, x_lower=0, x_upper=1, y_bins=1, y_lower=0, y_upper=1
    )
    assert normalize2d(empty).sum_bin_heights == 0.0


def test_ops2d_results_mergeable():
    a = make([(0.5, 0.5, 4.0)])
    b = make([(0.5, 0.5, 2.0)])
    ratio = divide2d(a, b)
    doubled = ratio + ratio
    assert doubled.bin_height(0, 0) == pytest.approx(4.0)
