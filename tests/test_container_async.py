"""Async service container: request queues, dispatch slots, backpressure."""

import pytest

from repro.services.container import AsyncServiceContainer, ServiceProfile
from repro.services.envelope import (
    RetryAfter,
    ServiceContainer,
    ServiceError,
)
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def make_container(env, **kwargs):
    container = AsyncServiceContainer(
        env, soap_latency=0.0, rmi_latency=0.0, **kwargs
    )

    def echo(value):
        return value

    def slow(duration, value="done"):
        yield env.timeout(duration)
        return value

    container.register("svc", {"echo": echo, "slow": slow})
    return container


def test_profile_validation():
    with pytest.raises(ValueError):
        ServiceProfile(concurrency=0)
    with pytest.raises(ValueError):
        ServiceProfile(queue_depth=0)
    with pytest.raises(ValueError):
        ServiceProfile(dispatch_overhead_s=-1.0)


def test_configure_service_rejects_duplicate_profile(env):
    container = make_container(env)
    container.configure_service("svc", ServiceProfile())
    with pytest.raises(ServiceError, match="already has a profile"):
        container.configure_service("svc", ServiceProfile())


def test_unprofiled_service_matches_direct_dispatch_timing(env):
    # Without a profile the async container must be bit-identical to the
    # base container: same result, same completion time.
    base_env = Environment()
    base = ServiceContainer(base_env, soap_latency=0.25, rmi_latency=0.05)
    asyn = AsyncServiceContainer(env, soap_latency=0.25, rmi_latency=0.05)
    for target, target_env in ((base, base_env), (asyn, env)):
        def slow(duration, _env=target_env):
            yield _env.timeout(duration)
            return "done"

        target.register("svc", {"slow": slow})
    r1 = base_env.run(until=base.call("svc", "slow", {"duration": 3.0}))
    r2 = env.run(until=asyn.call("svc", "slow", {"duration": 3.0}))
    assert r1 == r2 == "done"
    assert env.now == pytest.approx(base_env.now)


def test_dispatch_overhead_serializes_across_slots(env):
    # 1 slot, 0.1 s per dispatch: the Nth concurrent request waits for
    # N-1 dispatches before its own.
    container = make_container(env)
    container.configure_service(
        "svc", ServiceProfile(concurrency=1, dispatch_overhead_s=0.1)
    )
    finished = {}

    def caller(index):
        yield container.call("svc", "echo", {"value": index})
        finished[index] = env.now

    for index in range(4):
        env.process(caller(index))
    env.run()
    assert finished == {
        0: pytest.approx(0.1),
        1: pytest.approx(0.2),
        2: pytest.approx(0.3),
        3: pytest.approx(0.4),
    }
    assert container.stats()["svc"] == {
        "backlog": 0,
        "served": 4,
        "rejected": 0,
    }


def test_concurrency_widens_the_dispatch_pool(env):
    container = make_container(env)
    container.configure_service(
        "svc", ServiceProfile(concurrency=2, dispatch_overhead_s=0.1)
    )
    finished = {}

    def caller(index):
        yield container.call("svc", "echo", {"value": index})
        finished[index] = env.now

    for index in range(4):
        env.process(caller(index))
    env.run()
    # Two slots: requests drain pairwise.
    assert finished == {
        0: pytest.approx(0.1),
        1: pytest.approx(0.1),
        2: pytest.approx(0.2),
        3: pytest.approx(0.2),
    }


def test_no_head_of_line_blocking(env):
    # A slow *handler* holds no dispatch slot: a fast request queued
    # behind it completes long before the slow one.
    container = make_container(env)
    container.configure_service(
        "svc", ServiceProfile(concurrency=1, dispatch_overhead_s=0.01)
    )
    finished = {}

    def caller(op, args, key):
        yield container.call("svc", op, args)
        finished[key] = env.now

    env.process(caller("slow", {"duration": 100.0}, "slow"))
    env.process(caller("echo", {"value": 1}, "fast"))
    env.run()
    assert finished["fast"] == pytest.approx(0.02)
    assert finished["slow"] == pytest.approx(100.01)


def test_bounded_queue_refuses_with_retry_after(env):
    container = make_container(env)
    container.configure_service(
        "svc",
        ServiceProfile(concurrency=1, queue_depth=2, dispatch_overhead_s=1.0),
    )
    outcomes = {}

    def caller(index):
        try:
            yield container.call("svc", "echo", {"value": index})
            outcomes[index] = "ok"
        except RetryAfter as fault:
            outcomes[index] = fault.retry_after

    for index in range(4):
        env.process(caller(index))
    env.run()
    # Two fit in the queue; the rest are refused with a drain hint that
    # covers the backlog in front of them.
    accepted = [k for k, v in outcomes.items() if v == "ok"]
    refused = {k: v for k, v in outcomes.items() if v != "ok"}
    assert len(accepted) == 2
    assert len(refused) == 2
    assert all(hint >= 1.0 for hint in refused.values())
    assert container.stats()["svc"]["rejected"] == 2
    assert container.queue_backlog("svc") == 0


def test_rejected_request_never_reaches_the_handler(env):
    container = make_container(env)
    container.configure_service(
        "svc",
        ServiceProfile(concurrency=1, queue_depth=1, dispatch_overhead_s=1.0),
    )
    calls = []

    def record(value):
        calls.append(value)
        return value

    container.register("audited", {"record": record})
    container.configure_service(
        "audited",
        ServiceProfile(concurrency=1, queue_depth=1, dispatch_overhead_s=1.0),
    )
    errors = []

    def caller(index):
        try:
            yield container.call("audited", "record", {"value": index})
        except RetryAfter as fault:
            errors.append((index, fault))

    for index in range(3):
        env.process(caller(index))
    env.run()
    assert sorted(calls) == [0]  # one queued slot, one rejected pair
    assert len(errors) == 2


def test_profile_lookup_and_backlog_of_unprofiled_service(env):
    container = make_container(env)
    profile = ServiceProfile(concurrency=3)
    container.configure_service("svc", profile)
    assert container.profile("svc") is profile
    assert container.profile("other") is None
    assert container.queue_backlog("other") == 0
    assert container.stats() == {
        "svc": {"backlog": 0, "served": 0, "rejected": 0}
    }
