"""Unit tests for site assembly, calibration config, and experiment drivers."""

import numpy as np
import pytest

from repro.core.config import Calibration, DEFAULT_CALIBRATION
from repro.core.experiment import (
    EVENTS_PER_MB,
    run_grid_experiment,
    run_local_experiment,
)
from repro.core.site import GridSite, SiteConfig


# ---------------------------------------------------------------------------
# Calibration
# ---------------------------------------------------------------------------

def test_calibration_validation():
    with pytest.raises(ValueError):
        Calibration(wan_bandwidth_mbps=0)
    with pytest.raises(ValueError):
        Calibration(split_rate_s_per_mb=-1)
    with pytest.raises(ValueError):
        Calibration(chunk_events=0)


def test_default_calibration_paper_provenance():
    cal = DEFAULT_CALIBRATION
    # WAN: 471 MB in ~32 min.
    assert 471 / cal.wan_bandwidth_mbps == pytest.approx(1920, rel=0.01)
    # LAN fetch: 471 MB in ~63 s.
    assert 471 / cal.lan_fetch_bandwidth_mbps == pytest.approx(63, rel=0.01)
    # Split: 0.25 s/MB.
    assert cal.split_rate_s_per_mb == 0.25
    # Local analysis: 471 MB in ~13 min.
    assert 471 * cal.local_analysis_rate_s_per_mb == pytest.approx(780, rel=0.01)


# ---------------------------------------------------------------------------
# SiteConfig / GridSite
# ---------------------------------------------------------------------------

def test_site_config_validation():
    with pytest.raises(ValueError):
        SiteConfig(n_workers=0)


def test_site_builds_complete_topology():
    site = GridSite(SiteConfig(n_workers=3))
    hosts = set(site.network.hosts)
    assert {"desktop", "repository", "manager", "se", "w0", "w1", "w2"} <= hosts
    assert len(site.workers) == 3
    assert site.scheduler.queues.keys() == {"interactive", "batch"}
    assert site.policy.max_engines_per_session == 3
    assert set(site.container.services) >= {
        "catalog", "locator", "control", "session", "aida",
    }


def test_site_policy_override():
    site = GridSite(SiteConfig(n_workers=8, max_engines_per_session=2))
    assert site.policy.max_engines_per_session == 2


def test_enroll_user_joins_vo():
    site = GridSite(SiteConfig(n_workers=1))
    credential = site.enroll_user("/CN=new-user", role="admin")
    assert site.vo.is_member("/CN=new-user")
    assert site.vo.role("/CN=new-user") == "admin"
    assert credential.subject == "/CN=new-user"


def test_register_dataset_wires_catalog_and_locator():
    site = GridSite(SiteConfig(n_workers=1))
    entry = site.register_dataset(
        "d1", "/a/d1", size_mb=10, n_events=100, metadata={"k": "v"}
    )
    assert site.catalog.entry("d1") is entry
    location = site.locator.locate("d1")
    assert location.size_mb == 10
    assert location.origin_host == "repository"


def test_register_dataset_resident_on_se():
    site = GridSite(SiteConfig(n_workers=1))
    site.register_dataset(
        "d2", "/a/d2", size_mb=10, n_events=100, origin_host=None
    )
    assert site.locator.locate("d2").origin_host is None


def test_standard_datasets():
    site = GridSite(SiteConfig(n_workers=1))
    site.register_standard_datasets()
    assert len(site.catalog) == 3
    paper = site.catalog.entry("ilc-zh-500gev")
    assert paper.size_mb == 471.0
    assert paper.n_events == 40_000
    hits = site.catalog.search('domain == "finance"')
    assert len(hits) == 1


# ---------------------------------------------------------------------------
# Experiment drivers
# ---------------------------------------------------------------------------

def test_events_per_mb_matches_reference_dataset():
    assert EVENTS_PER_MB == pytest.approx(40_000 / 471.0)


def test_local_experiment_breakdown():
    local = run_local_experiment(100.0)
    assert local.download == pytest.approx(100 / 0.2453, rel=0.01)
    assert local.analysis == pytest.approx(100 * 1.656, rel=0.01)
    assert local.total == local.download + local.analysis
    assert local.tree is None


def test_local_experiment_with_results():
    local = run_local_experiment(5.0, events_per_mb=40, compute_results=True)
    assert local.tree is not None
    assert local.tree.get("/higgs/dijet_mass").all_entries > 0


def test_grid_experiment_breakdown_properties():
    grid = run_grid_experiment(50.0, 4, events_per_mb=10)
    assert grid.size_mb == 50.0
    assert grid.n_nodes == 4
    assert grid.stage_dataset == pytest.approx(
        grid.move_whole + grid.split + grid.move_parts
    )
    assert grid.total == pytest.approx(
        grid.stage_dataset + grid.stage_code + grid.analysis
    )
    assert grid.total_with_setup > grid.total
    assert grid.tree is not None
    assert grid.tree.get("/higgs/dijet_mass").all_entries > 0


def test_grid_and_local_same_content_same_results():
    """The grid pipeline and the local baseline agree on the physics."""
    grid = run_grid_experiment(5.0, 2, events_per_mb=40, content_seed=321)
    local = run_local_experiment(
        5.0, events_per_mb=40, content_seed=321, compute_results=True
    )
    a = grid.tree.get("/higgs/dijet_mass")
    b = local.tree.get("/higgs/dijet_mass")
    assert a.entries == b.entries
    assert np.allclose(a.heights(), b.heights())


def test_grid_experiment_custom_calibration():
    fast_wan = Calibration(wan_bandwidth_mbps=100.0)
    local = run_local_experiment(100.0, calibration=fast_wan)
    assert local.download < 10.0


def test_grid_experiment_split_strategy_passthrough():
    grid = run_grid_experiment(
        20.0, 2, events_per_mb=10, split_strategy="by-bytes", collect_tree=False
    )
    assert grid.analysis > 0
