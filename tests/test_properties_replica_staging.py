"""Property test: replica-aware staging never changes analysis results.

Under random interleavings of sessions, cache evictions, node kills (with
restore), and dataset re-registrations, every session's merged histograms
must be exactly equal — dict equality, float bits included — to a
reference run on a replica-free site.  The replica layer may only change
*when* bytes move, never *which* events reach which analysis.

The counting analysis sums unit weights, so the merged heights are exact
in floating point regardless of the engine/part permutation the replica
alignment introduces — any mismatch is a real staleness or geometry bug,
not round-off.
"""

import random

import pytest

from repro.analysis import counting
from repro.client.client import IPAClient
from repro.core.site import GridSite, SiteConfig
from repro.services.locator import DatasetLocation

N_WORKERS = 4
N_ENGINES = 3
N_OPS = 8


def build_site(enable_replica_cache=True):
    site = GridSite(
        SiteConfig(
            n_workers=N_WORKERS,
            enable_replica_cache=enable_replica_cache,
        )
    )
    site.register_dataset(
        "ds", "/t/ds", size_mb=30.0, n_events=1500,
        content={"kind": "ilc", "seed": 7},
    )
    return site


def analyze_once(site, cred, dataset_hint=None):
    """Full session: stage, analyze, merge; returns (staged, tree dict)."""
    client = IPAClient(site, cred)
    out = {}

    def scenario():
        yield from client.obtain_proxy_and_connect(
            n_engines=N_ENGINES, dataset_hint=dataset_hint
        )
        out["staged"] = yield from client.select_dataset("ds")
        yield from client.upload_code(counting.SOURCE)
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=3.0)
        out["tree"] = final.tree.to_dict()
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    return out["staged"], out["tree"]


def reregister(site):
    site.locator.replace_location(
        DatasetLocation(
            dataset_id="ds",
            kind="gridftp",
            host="se",
            path="/t/ds",
            size_mb=30.0,
            n_events=1500,
            splitter_host="se",
            origin_host="repository",
        )
    )


@pytest.mark.parametrize("seed", range(6))
def test_chaotic_replica_interleavings_preserve_results(seed):
    rng = random.Random(seed)

    # Reference: the same analysis on a site with no replica layer at all.
    ref_site = build_site(enable_replica_cache=False)
    _, reference_tree = analyze_once(
        ref_site, ref_site.enroll_user("/CN=ref")
    )

    site = build_site()
    cred = site.enroll_user("/CN=alice")
    rm = site.replicas
    workers = [w.name for w in site.workers]
    invalidated = False  # a bump/kill since the last stage?

    staged, tree = analyze_once(site, cred)  # cold priming stage
    assert tree == reference_tree

    for _ in range(N_OPS):
        op = rng.random()
        if op < 0.45:
            hint = "ds" if rng.random() < 0.5 else None
            staged, tree = analyze_once(site, cred, dataset_hint=hint)
            assert tree == reference_tree
            hits = staged.local_hits + staged.peer_hits + staged.se_hits
            assert hits + staged.cold_parts == N_ENGINES
            if invalidated:
                # Nothing stale may have been served: the whole-file fetch
                # re-ran, so every byte came from the new registration.
                assert staged.fetch_seconds > 0
            invalidated = False
        elif op < 0.65:
            # Scratch-purge one random cached part.
            victim = rng.choice(workers)
            keys = rm.caches[victim].keys()
            if keys:
                rm.caches[victim].remove(rng.choice(keys), reason="purge")
        elif op < 0.85:
            # Kill and immediately restore a worker: its cache is wiped.
            victim = rng.choice(workers)
            site.injector.crash_worker(victim)
            assert len(rm.caches[victim]) == 0
            assert victim not in rm.catalog.hosts_with_dataset("ds")
            site.injector.restore_worker(victim)
        else:
            # Content re-registered under the same id: generation bump.
            reregister(site)
            assert all(len(c) == 0 for c in rm.caches.values())
            assert not rm.has_whole(site.locator.locate("ds"))
            invalidated = True

    # Final sweep: one more warm-ish run must still match exactly.
    _, tree = analyze_once(site, cred, dataset_hint="ds")
    assert tree == reference_tree
