"""Tracer: span lifecycle, context propagation, envelopes, round-trips."""

import pytest

from repro.obs import NULL_SPAN, NULL_TRACER, Observability
from repro.obs.exporters import (
    build_tree,
    render_tree,
    spans_from_jsonl,
    trace_to_jsonl,
    tracer_tree,
)
from repro.obs.trace import Tracer
from repro.services.envelope import ServiceContainer
from repro.sim import Environment


def make_tracer():
    env = Environment()
    return env, Tracer(env)


def test_span_lifecycle():
    env, tracer = make_tracer()
    span = tracer.start("work", mb=471)
    assert span.span_id == "s1"
    assert span.attrs == {"mb": 471}
    assert not span.finished and span.duration == 0.0
    env.run(until=env.timeout(3.0))
    span.set(parts=16).finish(extra="yes")
    assert span.finished
    assert span.duration == 3.0
    assert span.attrs == {"mb": 471, "parts": 16, "extra": "yes"}
    # finish() is idempotent: the first end time sticks.
    env.run(until=env.timeout(1.0))
    span.finish()
    assert span.end == 3.0
    assert span.status == "ok"


def test_span_error_and_context_manager():
    env, tracer = make_tracer()
    failed = tracer.start("bad").finish(error="boom")
    assert failed.status == "error"
    assert failed.attrs["error"] == "boom"
    with pytest.raises(RuntimeError):
        with tracer.start("ctx"):
            raise RuntimeError("nope")
    ctx = tracer.find("ctx")[0]
    assert ctx.finished and ctx.status == "error"


def test_parent_resolution_precedence():
    env, tracer = make_tracer()
    a = tracer.start("a")
    b = tracer.start("b")
    with tracer.activate(a):
        assert tracer.current_id == a.span_id
        # Explicit parent beats parent_id beats current.
        assert tracer.start("x", parent=b, parent_id="s999").parent_id == b.span_id
        assert tracer.start("y", parent_id=b.span_id).parent_id == b.span_id
        assert tracer.child("z").parent_id == a.span_id
    assert tracer.current is None
    assert tracer.child("root2").parent_id is None


def test_activate_nests_and_restores():
    env, tracer = make_tracer()
    a = tracer.start("a")
    b = tracer.start("b")
    with tracer.activate(a):
        with tracer.activate(b):
            assert tracer.current is b
        assert tracer.current is a
    assert tracer.current is None


def test_wrap_installs_span_only_while_running():
    env, tracer = make_tracer()
    span = tracer.start("outer")

    def work():
        assert tracer.current is span
        yield "first"
        assert tracer.current is span
        yield "second"
        return "value"

    proxy = tracer.wrap(span, work())
    assert next(proxy) == "first"
    assert tracer.current is None  # restored while suspended
    assert proxy.send(None) == "second"
    with pytest.raises(StopIteration) as stop:
        proxy.send(None)
    assert stop.value.value == "value"
    assert span.finished


def test_wrap_records_errors():
    env, tracer = make_tracer()
    span = tracer.start("doomed")

    def work():
        yield "once"
        raise ValueError("kaput")

    proxy = tracer.wrap(span, work())
    next(proxy)
    with pytest.raises(ValueError):
        proxy.send(None)
    assert span.finished
    assert span.status == "error"
    assert "kaput" in span.attrs["error"]


def test_wrap_isolates_interleaved_processes():
    """Two concurrent sim processes never see each other's context."""
    env, tracer = make_tracer()

    def worker(tag, delay):
        for step in range(3):
            tracer.child(f"{tag}.step{step}")
            yield env.timeout(delay)

    env.process(tracer.trace_gen("left", worker("left", 1.0)))
    env.process(tracer.trace_gen("right", worker("right", 1.5)))
    env.run()

    left = tracer.find("left")[0]
    right = tracer.find("right")[0]
    for step in range(3):
        assert tracer.find(f"left.step{step}")[0].parent_id == left.span_id
        assert tracer.find(f"right.step{step}")[0].parent_id == right.span_id
    # trace_gen closes each root when its generator returns.
    assert left.finished and left.duration == 3.0
    assert right.finished and right.duration == 4.5


def test_envelope_carries_trace_context():
    env = Environment()
    obs = Observability(env)
    container = ServiceContainer(env, obs=obs)
    container.register("echo", {"ping": lambda x: x + 1})

    def client():
        result = yield container.call("echo", "ping", {"x": 41})
        assert result == 42

    process = env.process(obs.tracer.trace_gen("client", client()))
    env.run(until=process)

    root = obs.tracer.find("client")[0]
    call = obs.tracer.find("call:echo.ping")[0]
    assert call.parent_id == root.span_id
    assert call.finished and call.status == "ok"
    assert call.attrs["channel"] == "soap"
    assert obs.metrics.get("service_calls_total").total() == 1
    assert obs.metrics.get("service_call_seconds").count(channel="soap") == 1


def test_jsonl_round_trip_rebuilds_identical_tree():
    env, tracer = make_tracer()

    def inner():
        tracer.child("leaf", n=1)
        yield env.timeout(2.0)

    def outer():
        yield env.process(tracer.trace_gen("inner", inner()))
        yield env.timeout(1.0)

    env.run(until=env.process(tracer.trace_gen("outer", outer(), mb=7)))
    for span in tracer.spans:
        span.finish()  # close the zero-length leaf for export

    text = trace_to_jsonl(tracer)
    assert len(text.strip().splitlines()) == len(tracer.spans)
    rebuilt = build_tree(spans_from_jsonl(text))
    assert rebuilt == tracer_tree(tracer)
    assert rebuilt[0]["name"] == "outer"
    assert rebuilt[0]["attrs"] == {"mb": 7}
    assert "outer" in render_tree(tracer)


def test_build_tree_promotes_orphans():
    records = [
        {"span_id": "s2", "parent_id": "s99", "name": "orphan", "start": 1.0},
        {"span_id": "s1", "parent_id": None, "name": "root", "start": 0.0},
    ]
    roots = [node["name"] for node in build_tree(records)]
    assert roots == ["root", "orphan"]


def test_null_tracer_is_transparent():
    def gen():
        yield 1

    g = gen()
    assert NULL_TRACER.wrap(NULL_SPAN, g) is g
    assert NULL_TRACER.trace_gen("x", g) is g
    assert NULL_TRACER.start("x") is NULL_SPAN
    assert NULL_TRACER.child("x") is NULL_SPAN
    assert NULL_TRACER.current_id is None
    with NULL_TRACER.activate(NULL_SPAN) as span:
        assert span is NULL_SPAN
    assert NULL_SPAN.child("y") is NULL_SPAN
    assert NULL_SPAN.finish() is NULL_SPAN
    assert NULL_SPAN.finished


def test_disabled_observability_uses_null_tracer():
    obs = Observability(enabled=False)
    assert obs.tracer is NULL_TRACER
    assert not obs.tracer.enabled
