"""Property test: the incremental merge is bit-identical to a from-scratch
flat merge under random interleavings of submissions, discards, rewinds,
and polls.

The reference model tracks, per engine, a deep copy of the engine tree at
the moment of each *accepted* snapshot (snapshots are cumulative, so the
latest accepted one is the engine's whole contribution).  After every poll
the manager's served tree must equal — by exact serialized-dict equality,
so float bits included — a flat ``merge_from`` fold of the surviving
reference trees in sorted engine order.
"""

import random

import pytest

from repro.aida.hist1d import Histogram1D
from repro.aida.profile import Profile1D
from repro.aida.tree import ObjectTree
from repro.engine.engine import AnalysisEngine
from repro.services.aida_manager import AIDAManagerService
from repro.sim import Environment

N_ENGINES = 4
N_OPS = 80


def populate(engine):
    # What an analysis' ``start`` would do; 30 bins so the array codec's
    # compact form is exercised end to end.
    engine.tree.put("/h/a", Histogram1D("a", bins=30, lower=0.0, upper=1.0))
    engine.tree.put("/h/b", Histogram1D("b", bins=30, lower=0.0, upper=1.0))
    engine.tree.put("/p", Profile1D("p", bins=30, lower=0.0, upper=1.0))


def fresh_engine(engine_id):
    engine = AnalysisEngine(engine_id, keyframe_every=3)
    populate(engine)
    return engine


def fill_random(engine, rng):
    engine.tree.get("/h/a").fill(rng.random(), weight=rng.random())
    if rng.random() < 0.6:
        engine.tree.get("/h/b").fill(rng.random())
    if rng.random() < 0.4:
        engine.tree.get("/p").fill(rng.random(), rng.random())


def reference_merge(latest):
    merged = ObjectTree()
    for engine_id in sorted(latest):
        merged.merge_from(latest[engine_id])
    return merged.to_dict()


def check(env, manager, latest):
    tree_dict, _ = env.run(until=manager.merged("s1"))
    assert tree_dict == reference_merge(latest)


@pytest.mark.parametrize("seed", range(6))
def test_incremental_merge_matches_flat_merge(seed):
    rng = random.Random(seed)
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.0)
    engines = {f"e{i}": fresh_engine(f"e{i}") for i in range(N_ENGINES)}
    banned = set()
    #: engine -> deep copy of its tree at the latest *accepted* snapshot.
    latest = {}
    #: (snapshot, tree copy) pairs taken but not yet submitted.
    held = []

    def submit(engine_id, snapshot, state):
        status = manager.submit_snapshot("s1", snapshot)
        if status == "resync":
            engine = engines[engine_id]
            full = engine.take_snapshot(full=True)
            status = manager.submit_snapshot("s1", full)
            state = engine.tree.copy()
        if status == "accepted":
            assert engine_id not in banned
            latest[engine_id] = state
        else:
            assert status in ("dropped", "resync")

    for _ in range(N_OPS):
        op = rng.random()
        engine_id = rng.choice(sorted(engines))
        engine = engines[engine_id]
        if op < 0.40:
            fill_random(engine, rng)
        elif op < 0.70:
            submit(engine_id, engine.take_snapshot(), engine.tree.copy())
        elif op < 0.78:
            # Take now, deliver later (possibly out of order).
            held.append((engine_id, engine.take_snapshot(), engine.tree.copy()))
        elif op < 0.84 and held:
            submit(*held.pop(rng.randrange(len(held))))
        elif op < 0.90:
            check(env, manager, latest)
        elif op < 0.95 and len(latest) > 1:
            manager.discard_engine("s1", engine_id)
            banned.add(engine_id)
            latest.pop(engine_id, None)
            held = [entry for entry in held if entry[0] != engine_id]
        else:
            # Rewind: every engine starts a new run; old snapshots go stale.
            run_id = max(e.run_id for e in engines.values()) + 1
            manager.begin_run("s1", run_id)
            for other in engines.values():
                while other.run_id < run_id:
                    other.rewind()
                populate(other)
            latest.clear()
            held.clear()

    # Drain anything still held, then a final full comparison.
    for entry in held:
        submit(*entry)
    for engine_id, engine in sorted(engines.items()):
        if engine_id not in banned:
            fill_random(engine, rng)
            submit(engine_id, engine.take_snapshot(), engine.tree.copy())
    check(env, manager, latest)
