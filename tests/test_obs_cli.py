"""Operator CLI: ``python -m repro.obs`` subcommands end to end."""

import json

import pytest

from repro.obs.__main__ import main, record_run


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One small instrumented run recorded through the CLI entry point."""
    out_dir = tmp_path_factory.mktemp("cli-telemetry")
    summary = record_run(
        out_dir, nodes=4, size_mb=96.0, n_events=8_000
    )
    return summary, out_dir


def test_record_exports_all_artifacts(recorded):
    summary, out_dir = recorded
    for name in ("spans", "events", "profile", "metrics", "dashboard"):
        assert name in summary["paths"]
    assert (out_dir / "spans.jsonl").stat().st_size > 0
    assert (out_dir / "events.jsonl").stat().st_size > 0
    assert (out_dir / "profile.jsonl").stat().st_size > 0
    assert "# TYPE" in (out_dir / "metrics.prom").read_text()
    assert "ipa status board" in (out_dir / "dashboard.txt").read_text()
    assert summary["events_processed"] == 8_000
    # A clean run: no node misbehaves (the aggressive 250 ms poll
    # objective may still breach — polling pays a per-poll merge cost).
    assert summary["stragglers_flagged"] == 0
    assert summary["event_counts"]["session_created"] == 1
    assert summary["event_counts"]["session_closed"] == 1
    assert summary["event_counts"]["checkpoint_committed"] > 0


def test_record_subcommand_via_main(tmp_path, capsys):
    assert (
        main(
            [
                "record",
                "--out",
                str(tmp_path),
                "--nodes",
                "4",
                "--size-mb",
                "96",
                "--events",
                "8000",
                "--slow",
                "w1:4",
            ]
        )
        == 0
    )
    printed = capsys.readouterr().out
    assert "session: session-1" in printed
    assert "slo breaches:" in printed
    assert "stragglers flagged:" in printed
    assert "artifacts:" in printed
    events = [
        json.loads(line)
        for line in (tmp_path / "events.jsonl").read_text().splitlines()
        if line.strip()
    ]
    assert any(
        e["kind"] == "fault_injected" and e["attrs"]["target"] == "w1"
        for e in events
    )


def test_trace_and_phases_subcommands(recorded, capsys):
    _, out_dir = recorded
    spans = str(out_dir / "spans.jsonl")
    assert main(["trace", spans, "--max-depth", "2"]) == 0
    rendered = capsys.readouterr().out
    assert "call:control.create_session" in rendered
    assert "session.create" in rendered
    assert main(["phases", spans]) == 0
    table = capsys.readouterr().out
    for phase in ("move_whole", "split", "move_parts", "stage_code"):
        assert phase in table
    assert "total" in table


def test_events_subcommand_with_filters(recorded, capsys):
    _, out_dir = recorded
    events = str(out_dir / "events.jsonl")
    assert main(["events", events]) == 0
    assert "session_created" in capsys.readouterr().out
    assert main(["events", events, "--kind", "session_closed", "--tail", "1"]) == 0
    filtered = capsys.readouterr().out
    assert "session_closed" in filtered
    assert "session_created" not in filtered


def test_profile_subcommand(recorded, capsys):
    _, out_dir = recorded
    assert main(["profile", str(out_dir / "profile.jsonl"), "--limit", "5"]) == 0
    rendered = capsys.readouterr().out
    assert "stack" in rendered
    assert "seconds" in rendered


def test_dashboard_subcommand_from_artifacts(recorded, capsys):
    _, out_dir = recorded
    assert (
        main(
            [
                "dashboard",
                "--events",
                str(out_dir / "events.jsonl"),
                "--profile",
                str(out_dir / "profile.jsonl"),
                "--spans",
                str(out_dir / "spans.jsonl"),
            ]
        )
        == 0
    )
    board = capsys.readouterr().out
    assert "ipa status board (from export)" in board
    assert "profile:" in board
    assert "SLO breaches" in board
    assert main(["dashboard"]) == 0
    assert "(no artifacts provided)" in capsys.readouterr().out
