"""Edge-case tests for service internals (envelope, session, engine host)."""

import pytest

from repro.analysis import counting
from repro.client.client import IPAClient
from repro.core.config import DEFAULT_CALIBRATION
from repro.core.site import GridSite, SiteConfig
from repro.services.aida_manager import AIDAManagerService
from repro.services.content import ContentStore
from repro.services.envelope import Fault, ServiceContainer, ServiceError
from repro.services.registry import WorkerRegistryService
from repro.services.session import EngineHost, SessionError
from repro.sim import Environment, Store


def test_generator_operation_failure_propagates():
    """An operation that raises mid-generator fails at the caller."""
    env = Environment()
    container = ServiceContainer(env)

    def flaky():
        yield env.timeout(1.0)
        raise Fault("died midway")

    container.register("svc", {"op": flaky})

    def check():
        with pytest.raises(Fault, match="died midway"):
            yield container.call("svc", "op")
        # The environment keeps working afterwards.
        yield env.timeout(1.0)

    env.run(until=env.process(check()))


def test_engine_host_rejects_unknown_directive():
    env = Environment()
    host = EngineHost(
        engine_id="e0",
        session_id="s0",
        registry=WorkerRegistryService(env),
        aida=AIDAManagerService(env, merge_cost_per_tree=0.0),
        content_store=ContentStore(),
        calibration=DEFAULT_CALIBRATION,
    )
    from repro.grid.nodes import NodeSpec, WorkerNode

    worker = WorkerNode(env, "w0", NodeSpec())
    proc = env.process(host.body(env, worker))

    def poke():
        yield env.timeout(5.0)
        yield host.mailbox.put(("teleport",))

    env.process(poke())
    with pytest.raises(SessionError, match="unknown directive"):
        env.run()


def test_engine_host_rejects_unknown_control_verb():
    env = Environment()
    host = EngineHost(
        engine_id="e0",
        session_id="s0",
        registry=WorkerRegistryService(env),
        aida=AIDAManagerService(env, merge_cost_per_tree=0.0),
        content_store=ContentStore(),
        calibration=DEFAULT_CALIBRATION,
    )
    with pytest.raises(SessionError, match="unknown control verb"):
        host._apply_control("warp", None)


def test_session_operations_after_close_rejected():
    site = GridSite(SiteConfig(n_workers=2))
    site.register_dataset(
        "ds", "/t/ds", size_mb=10.0, n_events=500,
        content={"kind": "ilc", "seed": 1},
    )
    client = IPAClient(site, site.enroll_user("/CN=alice"))

    def scenario():
        info = yield from client.obtain_proxy_and_connect()
        yield from client.close()
        with pytest.raises(SessionError, match="no active session"):
            site.session_service.status(info.session_id)
        with pytest.raises(SessionError):
            site.session_service.token(info.session_id)

    site.env.run(until=site.env.process(scenario()))


def test_double_close_rejected():
    site = GridSite(SiteConfig(n_workers=1))
    client = IPAClient(site, site.enroll_user("/CN=alice"))

    def scenario():
        info = yield from client.obtain_proxy_and_connect()
        yield from client.close()
        with pytest.raises(Exception, match="no active session"):
            yield site.container.call(
                "control", "close_session", {"session_id": info.session_id}
            )

    site.env.run(until=site.env.process(scenario()))


def test_stage_code_before_dataset_is_fine():
    """Code can be staged before the dataset (order independence)."""
    site = GridSite(SiteConfig(n_workers=2))
    site.register_dataset(
        "ds", "/t/ds", size_mb=10.0, n_events=500,
        content={"kind": "ilc", "seed": 1},
    )
    client = IPAClient(site, site.enroll_user("/CN=alice"))
    results = {}

    def scenario():
        yield from client.obtain_proxy_and_connect()
        yield from client.upload_code(counting.SOURCE)  # before the data
        yield from client.select_dataset("ds")
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=3.0)
        results["events"] = final.progress.events_processed
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    assert results["events"] == 500


def test_create_session_zero_engines_rejected():
    site = GridSite(SiteConfig(n_workers=2))
    client = IPAClient(site, site.enroll_user("/CN=alice"))

    def scenario():
        client.obtain_proxy()
        with pytest.raises(SessionError, match=">= 1"):
            yield from client.connect(n_engines=0)

    site.env.run(until=site.env.process(scenario()))
