"""Straggler detection: robust z-scores, hysteresis, and the acceptance run.

The acceptance bar for the telemetry plane: a seeded 16-node run with one
injected slow node flags exactly that node within 3 poll rounds, reports
the p99 poll-latency breach as an SLO event, and turns the flag into
scheduler + heartbeat hints that are withdrawn on session close.
"""

import json

import pytest

from repro.obs import NULL_OBS
from repro.obs.anomaly import (
    NULL_ANOMALY_MONITOR,
    AnomalyMonitor,
    StragglerReport,
    robust_zscores,
)
from repro.obs.events import EventLog


class Clock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now


# -- robust z-scores -------------------------------------------------------

def test_robust_zscores_uniform_cohort_is_all_zero():
    assert robust_zscores({}) == {}
    assert robust_zscores({"a": 5.0}) == {"a": 0.0}
    assert robust_zscores({"a": 5.0, "b": 5.0, "c": 5.0}) == {
        "a": 0.0,
        "b": 0.0,
        "c": 0.0,
    }


def test_robust_zscores_flag_single_outlier():
    values = {f"e{i}": 100.0 for i in range(15)}
    values["slow"] = 25.0  # one 4x-slow engine among 16
    scores = robust_zscores(values)
    # MAD is zero (15 identical values), so the meanAD fallback kicks in:
    # meanAD = 75/16, z = 0.6745 * (25 - 100) / (75/16) ≈ -10.8.
    assert scores["slow"] == pytest.approx(-10.792, abs=0.01)
    for engine, score in scores.items():
        if engine != "slow":
            assert score == 0.0


def test_robust_zscores_median_and_mad_path():
    scores = robust_zscores({"a": 1.0, "b": 2.0, "c": 3.0, "d": 100.0})
    # median 2.5, deviations (1.5, 0.5, 0.5, 97.5), MAD 1.0.
    assert scores["d"] == pytest.approx(0.6745 * 97.5)
    assert scores["a"] == pytest.approx(-0.6745 * 1.5)


# -- monitor unit behaviour ------------------------------------------------

def make_monitor(clock=None, **kwargs):
    clock = clock or Clock()
    events = EventLog(clock)
    defaults = {"min_engines": 4, "min_points": 2, "window_s": 60.0}
    defaults.update(kwargs)
    return AnomalyMonitor(clock, events=events, **defaults), events, clock


def feed_progress(monitor, clock, rates, t0=0.0, steps=3, dt=5.0):
    """Feed cumulative progress counters implying ``rates`` events/s."""
    for step in range(steps):
        clock.now = t0 + step * dt
        for engine, rate in rates.items():
            monitor.record_snapshot(
                "s-1", engine, int(rate * (clock.now - t0)) + 1
            )


def test_rates_lags_and_jitter_windows():
    monitor, _, clock = make_monitor()
    feed_progress(monitor, clock, {"e0": 100.0, "e1": 50.0})
    assert monitor.rates("s-1")["e0"] == pytest.approx(100.0)
    assert monitor.rates("s-1")["e1"] == pytest.approx(50.0)
    clock.now = 17.0
    assert monitor.snapshot_lags("s-1") == {"e0": 7.0, "e1": 7.0}
    monitor.record_heartbeat("s-1", "e0", 2.0)
    monitor.record_heartbeat("s-1", "e0", 9.0)
    assert monitor.heartbeat_jitter("s-1") == {"e0": 9.0}


def test_min_engines_and_min_points_gate_detection():
    monitor, events, clock = make_monitor(min_engines=4)
    # Three engines, one pathologically slow: cohort too small to judge.
    feed_progress(monitor, clock, {"e0": 100.0, "e1": 100.0, "e2": 1.0})
    assert monitor.detect("s-1") == []
    assert events.counts() == {}
    # A fourth engine with a single point does not participate either.
    monitor.record_snapshot("s-1", "e3", 1)
    assert monitor.detect("s-1") == []


def test_detect_flags_slow_engine_and_clears_with_hysteresis():
    monitor, events, clock = make_monitor(threshold=3.5)
    rates = {f"e{i}": 100.0 for i in range(15)}
    rates["e15"] = 25.0
    feed_progress(monitor, clock, rates)
    reports = monitor.detect("s-1")
    assert [r.engine_id for r in reports] == ["e15"]
    report = reports[0]
    assert isinstance(report, StragglerReport)
    assert report.signal == "rate"
    assert report.score < -3.5
    assert report.median == pytest.approx(100.0)
    assert events.counts() == {"straggler_detected": 1}
    # Re-detecting while still flagged emits nothing new.
    assert [r.engine_id for r in monitor.detect("s-1")] == ["e15"]
    assert events.counts() == {"straggler_detected": 1}
    assert [r.engine_id for r in monitor.stragglers("s-1")] == ["e15"]
    # Recovery: fresh window where the engine is back with the cohort.
    feed_progress(
        monitor, clock, {engine: 100.0 for engine in rates}, t0=200.0
    )
    assert monitor.detect("s-1") == []
    assert events.counts() == {
        "straggler_detected": 1,
        "straggler_recovered": 1,
    }


def test_forget_engine_and_session_drop_flags():
    monitor, _, clock = make_monitor()
    rates = {f"e{i}": 100.0 for i in range(7)}
    rates["e7"] = 10.0
    feed_progress(monitor, clock, rates)
    assert monitor.detect("s-1")
    monitor.forget_engine("s-1", "e7")
    assert monitor.stragglers("s-1") == []
    assert "e7" not in monitor.rates("s-1")
    monitor.forget_session("s-1")
    monitor.forget_session("s-1")  # idempotent
    assert monitor.rates("s-1") == {}
    assert monitor.detect("s-1") == []


def test_monitor_validation():
    with pytest.raises(ValueError):
        AnomalyMonitor(Clock(), window_s=0.0)
    with pytest.raises(ValueError):
        AnomalyMonitor(Clock(), threshold=0.0)


def test_null_anomaly_monitor_is_inert():
    null = NULL_OBS.anomaly
    assert null is NULL_ANOMALY_MONITOR
    assert null.enabled is False
    assert null.record_snapshot("s", "e", 1) is None
    assert null.record_heartbeat("s", "e", 1.0) is None
    assert null.rates("s") == {}
    assert null.snapshot_lags("s") == {}
    assert null.heartbeat_jitter("s") == {}
    assert null.detect("s") == []
    assert null.stragglers("s") == []
    assert null.forget_engine("s", "e") is None
    assert null.forget_session("s") is None


# -- acceptance: seeded 16-node run with one injected slow node ------------

N_NODES = 16
SLOW_WORKER = "w5"
POLL_INTERVAL = 5.0


@pytest.fixture(scope="module")
def slow_node_run(tmp_path_factory):
    from repro.obs.__main__ import record_run

    out_dir = tmp_path_factory.mktemp("telemetry")
    summary = record_run(
        out_dir,
        nodes=N_NODES,
        size_mb=480.0,
        n_events=80_000,
        slow_worker=SLOW_WORKER,
        slow_factor=4.0,
    )
    events = [
        json.loads(line)
        for line in (out_dir / "events.jsonl").read_text().splitlines()
        if line.strip()
    ]
    return summary, events, out_dir


def test_acceptance_straggler_flagged_within_three_poll_rounds(slow_node_run):
    summary, events, _ = slow_node_run
    assert summary["stragglers_flagged"] >= 1
    injections = [e for e in events if e["kind"] == "fault_injected"]
    assert [e["attrs"]["target"] for e in injections] == [SLOW_WORKER]
    injected_at = injections[0]["time"]
    flags = [e for e in events if e["kind"] == "straggler_detected"]
    # Exactly one engine flagged: the one on the degraded worker.
    assert {e["attrs"]["engine"] for e in flags} == {
        f"{summary['session_id']}-engine-5"
    }
    assert flags[0]["time"] - injected_at <= 3 * POLL_INTERVAL


def test_acceptance_poll_latency_breach_reported_as_event(slow_node_run):
    summary, events, _ = slow_node_run
    assert summary["slo_breaches"] >= 1
    breaches = [e for e in events if e["kind"] == "slo_breach"]
    assert breaches, "expected a poll-latency SLO breach event"
    breach = breaches[0]
    assert breach["attrs"]["policy"] == "poll-latency"
    assert breach["attrs"]["signal"] == "aida.merged"
    assert breach["attrs"]["estimate"] > breach["attrs"]["objective"]
    assert breach["severity"] == "warning"


def test_acceptance_dashboard_shows_flag_and_breach(slow_node_run):
    _, _, out_dir = slow_node_run
    board = (out_dir / "dashboard.txt").read_text()
    assert "straggler" in board
    assert SLOW_WORKER in board
    assert "BREACH" in board
    assert "poll-latency" in board


def test_straggler_hints_reach_scheduler_and_heartbeat_then_clear():
    """Mid-run, a flagged engine is deprioritized and suspected; close undoes both."""
    from repro.analysis import higgs
    from repro.client.client import IPAClient
    from repro.core.site import GridSite, SiteConfig

    site = GridSite(SiteConfig(n_workers=N_NODES, enable_observability=True))
    site.register_dataset(
        "ds-hints",
        "/test/ds-hints",
        size_mb=480.0,
        n_events=80_000,
        metadata={"experiment": "ilc"},
        content={"kind": "ilc", "seed": 0},
    )
    client = IPAClient(site, site.enroll_user("/O=ILC/CN=hints"))
    out = {}

    def scenario():
        info = yield from client.obtain_proxy_and_connect(n_engines=N_NODES)
        yield from client.select_dataset("ds-hints")
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()
        while site.aida.snapshot_count(info.session_id) < N_NODES:
            yield site.env.timeout(1.0)
        site.injector.slow_worker(SLOW_WORKER, 4.0)
        deadline = site.env.now + 200.0
        while (
            not site.gram.scheduler.deprioritized
            and site.env.now < deadline
        ):
            yield site.env.timeout(1.0)
        out["deprioritized"] = list(site.gram.scheduler.deprioritized)
        flagged = site.obs.anomaly.stragglers(info.session_id)
        monitor = site.session_service._sessions[info.session_id]["monitor"]
        out["flagged"] = [r.engine_id for r in flagged]
        out["timeouts"] = {
            r.engine_id: monitor.timeout_for(r.engine_id) for r in flagged
        }
        out["base_timeout"] = monitor.config.heartbeat_timeout
        yield from client.wait_for_completion(
            poll_interval=POLL_INTERVAL, timeout=100_000.0
        )
        yield from client.close()
        out["after_close"] = list(site.gram.scheduler.deprioritized)
        out["session_id"] = info.session_id

    site.env.run(until=site.env.process(scenario()))

    assert out["deprioritized"] == [SLOW_WORKER]
    assert out["flagged"] == [f"{out['session_id']}-engine-5"]
    for engine_id, timeout in out["timeouts"].items():
        assert timeout < out["base_timeout"], engine_id
    # close() withdraws the hints and forgets the session's series.
    assert out["after_close"] == []
    assert site.obs.anomaly.stragglers(out["session_id"]) == []
