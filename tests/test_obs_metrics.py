"""Metrics layer: counters, gauges, histograms, registry, exposition."""

import pytest

from repro.obs import NULL_METRIC, NULL_REGISTRY, Observability
from repro.obs.exporters import metrics_to_prometheus
from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    exponential_buckets,
)


def test_exponential_buckets_ladder():
    buckets = exponential_buckets(0.5, 2.0, 4)
    assert buckets == (0.5, 1.0, 2.0, 4.0)
    assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(0.005)
    assert len(DEFAULT_LATENCY_BUCKETS) == 16


@pytest.mark.parametrize(
    "kwargs",
    [
        {"start": 0.0, "factor": 2.0, "count": 4},
        {"start": -1.0, "factor": 2.0, "count": 4},
        {"start": 1.0, "factor": 1.0, "count": 4},
        {"start": 1.0, "factor": 2.0, "count": 0},
    ],
)
def test_exponential_buckets_validation(kwargs):
    with pytest.raises(MetricError):
        exponential_buckets(**kwargs)


@pytest.mark.parametrize("name", ["", "9lives", "has space", "semi;colon"])
def test_invalid_metric_names(name):
    with pytest.raises(MetricError):
        Counter(name)


def test_counter_series_and_total():
    counter = Counter("events_total", "events processed")
    counter.inc()
    counter.inc(4, engine="e1")
    counter.inc(2, engine="e1")
    counter.inc(3, engine="e2")
    assert counter.value() == 1.0
    assert counter.value(engine="e1") == 6.0
    assert counter.value(engine="e2") == 3.0
    assert counter.value(engine="missing") == 0.0
    assert counter.total() == 10.0
    # Label values are stringified, so 1 and "1" are the same series.
    counter.inc(1, engine=1)
    assert counter.value(engine="1") == 1.0


def test_counter_rejects_decrease():
    counter = Counter("c_total")
    with pytest.raises(MetricError):
        counter.inc(-1)


def test_gauge_up_and_down():
    gauge = Gauge("queue_depth")
    gauge.set(5, site="slac")
    gauge.inc(2, site="slac")
    gauge.dec(4, site="slac")
    assert gauge.value(site="slac") == 3.0
    assert gauge.value() == 0.0
    gauge.inc(-1.5)
    assert gauge.value() == -1.5


def test_histogram_bucket_boundaries():
    hist = Histogram("lat_seconds", buckets=(1.0, 2.0, 4.0))
    # A value equal to a bound belongs to that bucket (Prometheus ``le``).
    hist.observe(1.0)
    hist.observe(2.0)
    hist.observe(0.1)
    hist.observe(3.0)
    hist.observe(100.0)  # past the last bound: +Inf
    cumulative = hist.cumulative_counts()
    assert cumulative == [(1.0, 2), (2.0, 3), (4.0, 4), (float("inf"), 5)]
    assert hist.count() == 5
    assert hist.total() == pytest.approx(106.1)
    assert hist.mean() == pytest.approx(106.1 / 5)


def test_histogram_labeled_series_are_independent():
    hist = Histogram("x_seconds", buckets=(1.0,))
    hist.observe(0.5, phase="a")
    hist.observe(2.0, phase="b")
    assert hist.count(phase="a") == 1
    assert hist.count(phase="b") == 1
    assert hist.count() == 0
    assert hist.mean(phase="missing") == 0.0
    assert hist.cumulative_counts(phase="missing") == [(1.0, 0), (float("inf"), 0)]


@pytest.mark.parametrize("buckets", [(), (2.0, 1.0), (1.0, 1.0)])
def test_histogram_bucket_validation(buckets):
    with pytest.raises(MetricError):
        Histogram("h_seconds", buckets=buckets)


def test_registry_get_or_create_is_idempotent():
    registry = MetricsRegistry()
    a = registry.counter("calls_total", "calls")
    b = registry.counter("calls_total")
    assert a is b
    hist = registry.histogram("lat_seconds", buckets=(1.0, 2.0))
    assert registry.histogram("lat_seconds", buckets=(1.0, 2.0)) is hist
    assert registry.histogram("lat_seconds") is hist  # None buckets: reuse
    assert registry.get("calls_total") is a
    assert registry.get("absent") is None
    assert [m.name for m in registry.metrics] == ["calls_total", "lat_seconds"]


def test_registry_rejects_type_and_bucket_mismatch():
    registry = MetricsRegistry()
    registry.counter("thing")
    with pytest.raises(MetricError):
        registry.gauge("thing")
    registry.histogram("h_seconds", buckets=(1.0, 2.0))
    with pytest.raises(MetricError):
        registry.histogram("h_seconds", buckets=(1.0, 4.0))


def test_prometheus_exposition():
    registry = MetricsRegistry()
    registry.counter("jobs_total", "jobs run").inc(3, site="slac")
    registry.gauge("engines_live").set(16)
    hist = registry.histogram("wait_seconds", "queue wait", buckets=(1.0, 10.0))
    hist.observe(0.5)
    hist.observe(30.0)
    text = metrics_to_prometheus(registry)
    assert "# HELP jobs_total jobs run" in text
    assert "# TYPE jobs_total counter" in text
    assert 'jobs_total{site="slac"} 3' in text
    assert "# TYPE engines_live gauge" in text
    assert "# TYPE wait_seconds histogram" in text
    assert 'wait_seconds_bucket{le="1"} 1' in text
    assert 'wait_seconds_bucket{le="+Inf"} 2' in text
    assert "wait_seconds_sum 30.5" in text
    assert "wait_seconds_count 2" in text


def test_null_registry_is_inert():
    assert NULL_REGISTRY.counter("anything") is NULL_METRIC
    assert NULL_REGISTRY.gauge("anything") is NULL_METRIC
    assert NULL_REGISTRY.histogram("anything", buckets=(1.0,)) is NULL_METRIC
    assert NULL_REGISTRY.get("anything") is None
    assert NULL_REGISTRY.metrics == []
    NULL_METRIC.inc(5, a="b")
    NULL_METRIC.observe(1.0)
    NULL_METRIC.set(2.0)
    assert NULL_METRIC.value() == 0.0
    assert NULL_METRIC.count() == 0
    assert NULL_METRIC.cumulative_counts() == []


def test_disabled_observability_uses_null_registry():
    obs = Observability(enabled=False)
    assert obs.metrics is NULL_REGISTRY
    assert not obs.metrics.enabled


def test_enabled_observability_requires_env():
    with pytest.raises(ValueError):
        Observability(env=None, enabled=True)
