"""Unit + integration tests for the hierarchical merge tier.

Covers topology planning and routing, the tiered poll latency model,
combiner crash/resync and leaf retirement, checkpoint/restore of the
tier, session-state hygiene, and an end-to-end site run with
``merge_fan_in`` set against the flat reference.
"""

import numpy as np
import pytest

from repro.aida.cloud import Cloud1D
from repro.aida.hist1d import Histogram1D
from repro.aida.tree import ObjectTree
from repro.analysis import higgs
from repro.client.client import IPAClient
from repro.core.site import GridSite, SiteConfig
from repro.engine.engine import Snapshot
from repro.services.aida_manager import AIDAManagerService, MergeError
from repro.services.combiner import (
    CombinerError,
    MergeTree,
    plan_groups,
)
from repro.sim import Environment

COST = 0.01


def snap(engine_id, sequence, tree_dict, base=0, final=False):
    return Snapshot(
        engine_id=engine_id,
        sequence=sequence,
        events_processed=10,
        total_events=10,
        analysis_version=1,
        run_id=0,
        tree=tree_dict,
        final=final,
        base_sequence=base,
    )


def dyadic_tree(values):
    """A tree whose histogram fills are exact dyadic rationals, so every
    fold association yields bit-identical float sums."""
    tree = ObjectTree()
    hist = Histogram1D("h", "h", bins=16, lower=0.0, upper=1.0)
    for value in values:
        hist.fill((value % 33) / 32.0, weight=((value % 8) + 1) / 8.0)
    tree.put("/d/h", hist)
    return tree.to_dict()


def build_pair(n_engines, fan_in, grouping="chunk"):
    """A flat and a tiered manager fed from the same environment."""
    env = Environment()
    flat = AIDAManagerService(env, merge_cost_per_tree=COST)
    tiered = AIDAManagerService(
        env, merge_cost_per_tree=COST, fan_in=fan_in, grouping=grouping
    )
    ids = [f"engine-{i:04d}" for i in range(n_engines)]
    tiered.configure_tier("s1", ids)
    return env, flat, tiered, ids


# -- planning and topology --------------------------------------------------

def test_plan_groups_chunks_sorted_ids_contiguously():
    groups = plan_groups(["e3", "e1", "e0", "e2", "e4"], 2)
    assert groups == [["e0", "e1"], ["e2", "e3"], ["e4"]]


def test_plan_groups_worker_policy_clusters_by_worker():
    workers = {"e0": "w1", "e1": "w0", "e2": "w1", "e3": "w0"}
    groups = plan_groups(["e0", "e1", "e2", "e3"], 2, "worker", workers)
    assert groups == [["e1", "e3"], ["e0", "e2"]]


def test_plan_groups_rejects_bad_inputs():
    with pytest.raises(CombinerError):
        plan_groups(["e0"], 1)
    with pytest.raises(CombinerError):
        plan_groups(["e0"], 2, "rack")


def test_tree_topology_shape():
    tier = MergeTree("s1", 4, plan_groups([f"e{i:02d}" for i in range(64)], 4))
    assert [len(level) for level in tier.levels] == [16, 4, 1]
    assert tier.depth == 3
    assert tier.n_combiners == 21
    assert tier.root.combiner_id == "s1/combiner-3.0"


def test_single_group_tree_has_depth_one():
    tier = MergeTree("s1", 8, [["e0", "e1"]])
    assert tier.depth == 1
    assert tier.root is tier.levels[0][0]


def test_late_engine_routes_to_contiguous_leaf():
    tier = MergeTree("s1", 2, plan_groups(["e0", "e2", "e4", "e6"], 2))
    # "e3" sorts between e2 and e4: it must join e2's leaf so the global
    # sorted order stays contiguous per leaf.
    assert tier.combiner_of("e3") == tier.combiner_of("e2")
    assert tier.combiner_of("e7") == tier.combiner_of("e6")
    # Below every low bound: routed to the first leaf.
    assert tier.combiner_of("a0") == tier.combiner_of("e0")


def test_configure_tier_noop_without_fan_in_or_when_flat():
    env = Environment()
    flat = AIDAManagerService(env, merge_cost_per_tree=COST)
    assert flat.configure_tier("s1", ["e0", "e1"]) is None
    assert flat.tier("s1") is None
    assert flat.combiner_of("s1", "e0") is None
    non_inc = AIDAManagerService(
        env, merge_cost_per_tree=COST, fan_in=2, incremental=False
    )
    assert non_inc.configure_tier("s1", ["e0", "e1"]) is None


def test_configure_tier_is_idempotent_and_migrates_flat_state():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=COST, fan_in=2)
    # Snapshot lands before the session layer wires the topology.
    manager.submit_snapshot("s1", snap("e0", 1, dyadic_tree([1, 2])))
    tier = manager.configure_tier("s1", ["e0", "e1", "e2"])
    assert tier is manager.configure_tier("s1", ["e0", "e1", "e2"])
    assert tier.engine_entry("e0") is not None
    tree_dict, _ = env.run(until=manager.merged("s1"))
    reference = ObjectTree()
    reference.merge_from(ObjectTree.from_dict(dyadic_tree([1, 2])))
    assert tree_dict == reference.to_dict()


# -- latency model ----------------------------------------------------------

def test_all_dirty_poll_costs_f_log_f_not_n():
    env, flat, tiered, ids = build_pair(64, 4)
    for i, engine_id in enumerate(ids):
        payload = dyadic_tree([i, i + 1])
        flat.submit_snapshot("s1", snap(engine_id, 1, payload))
        tiered.submit_snapshot("s1", snap(engine_id, 1, payload))
    tier = tiered.tier("s1")
    # Levels hold 16/4/1 combiners folding at most 4 inputs each: the
    # all-dirty poll charges 4+4+4 = 12 tree-merges, not 64.
    assert tier.poll_latency(COST) == pytest.approx(12 * COST)
    assert flat.merge_latency_incremental(64, 64) == pytest.approx(64 * COST)


def test_single_dirty_engine_costs_one_fold_per_level():
    env, _, tiered, ids = build_pair(64, 4)
    for i, engine_id in enumerate(ids):
        tiered.submit_snapshot("s1", snap(engine_id, 1, dyadic_tree([i])))
    env.run(until=tiered.merged("s1"))
    tier = tiered.tier("s1")
    assert tier.poll_latency(COST) == 0.0
    delta = {"objects": dyadic_tree([7])["objects"]}
    tiered.submit_snapshot("s1", snap(ids[7], 2, delta, base=1))
    assert tier.poll_latency(COST) == pytest.approx(tier.depth * COST)


def test_merge_latency_incremental_accounts_for_fan_in():
    env = Environment()
    manager = AIDAManagerService(env, merge_cost_per_tree=0.1, fan_in=4)
    # 64 total / fan-in 4 -> 3 levels, each folding min(n_dirty, 4).
    assert manager.merge_latency_incremental(1, 64) == pytest.approx(0.3)
    assert manager.merge_latency_incremental(2, 64) == pytest.approx(0.6)
    # Capped at the from-scratch tree merge (cost * f * levels).
    assert manager.merge_latency_incremental(64, 64) == pytest.approx(
        manager.merge_latency(64)
    )
    flat = AIDAManagerService(env, merge_cost_per_tree=0.1)
    assert flat.merge_latency_incremental(2, 64) == pytest.approx(0.2)


# -- correctness: tiered == flat -------------------------------------------

def test_tiered_merge_is_exactly_equal_to_flat_merge():
    env, flat, tiered, ids = build_pair(27, 3)
    for i, engine_id in enumerate(ids):
        payload = dyadic_tree([i, 2 * i, 3 * i])
        flat.submit_snapshot("s1", snap(engine_id, 1, payload))
        tiered.submit_snapshot("s1", snap(engine_id, 1, payload))
    flat_tree, flat_progress = env.run(until=flat.merged("s1"))
    tiered_tree, tiered_progress = env.run(until=tiered.merged("s1"))
    assert tiered_tree == flat_tree
    assert tiered_progress.engines_reporting == flat_progress.engines_reporting
    # Deltas keep them in lockstep.
    delta = {"objects": dyadic_tree([5])["objects"]}
    flat.submit_snapshot("s1", snap(ids[5], 2, dict(delta), base=1))
    tiered.submit_snapshot("s1", snap(ids[5], 2, dict(delta), base=1))
    flat_tree, _ = env.run(until=flat.merged("s1"))
    tiered_tree, _ = env.run(until=tiered.merged("s1"))
    assert tiered_tree == flat_tree


def test_chunk_grouping_preserves_cloud_concatenation_order():
    # Cloud merges are list concatenations: order-sensitive, so they
    # detect any fold-order deviation exactly.
    env, flat, tiered, ids = build_pair(10, 3)
    for i, engine_id in enumerate(ids):
        tree = ObjectTree()
        cloud = Cloud1D("c", "c")
        cloud.fill(float(i), weight=1.0)
        cloud.fill(float(i) + 0.5, weight=2.0)
        tree.put("/c", cloud)
        flat.submit_snapshot("s1", snap(engine_id, 1, tree.to_dict()))
        tiered.submit_snapshot("s1", snap(engine_id, 1, tree.to_dict()))
    flat_tree, _ = env.run(until=flat.merged("s1"))
    tiered_tree, _ = env.run(until=tiered.merged("s1"))
    assert tiered_tree == flat_tree


def test_discard_engine_removes_contribution_from_tier():
    env, flat, tiered, ids = build_pair(9, 2)
    for i, engine_id in enumerate(ids):
        payload = dyadic_tree([i])
        flat.submit_snapshot("s1", snap(engine_id, 1, payload))
        tiered.submit_snapshot("s1", snap(engine_id, 1, payload))
    flat.discard_engine("s1", ids[4])
    tiered.discard_engine("s1", ids[4])
    flat_tree, _ = env.run(until=flat.merged("s1"))
    tiered_tree, _ = env.run(until=tiered.merged("s1"))
    assert tiered_tree == flat_tree
    # Banned: late submissions never reach the tier.
    assert tiered.submit_snapshot("s1", snap(ids[4], 2, dyadic_tree([9]))) == (
        "dropped"
    )


def test_rewind_resets_tier_but_keeps_topology():
    env, _, tiered, ids = build_pair(8, 2)
    for i, engine_id in enumerate(ids):
        tiered.submit_snapshot("s1", snap(engine_id, 1, dyadic_tree([i])))
    env.run(until=tiered.merged("s1"))
    tier = tiered.tier("s1")
    depth = tier.depth
    tiered.begin_run("s1", 1)
    assert tiered.tier("s1") is tier
    assert tier.depth == depth
    assert not tier.dirty_engines
    tree_dict, _ = env.run(until=tiered.merged("s1"))
    assert tree_dict == ObjectTree().to_dict()


# -- combiner failures ------------------------------------------------------

def test_leaf_combiner_crash_forces_resync_and_heals():
    env, flat, tiered, ids = build_pair(8, 2)
    for i, engine_id in enumerate(ids):
        payload = dyadic_tree([i, i + 3])
        flat.submit_snapshot("s1", snap(engine_id, 1, payload))
        tiered.submit_snapshot("s1", snap(engine_id, 1, payload))
    flat_tree, _ = env.run(until=flat.merged("s1"))
    env.run(until=tiered.merged("s1"))
    victim = tiered.combiner_of("s1", ids[0])
    affected = tiered.crash_combiner("s1", victim)
    assert affected == sorted(ids[:2])
    # A delta on a lost cache is answered with "resync".
    delta = {"objects": dyadic_tree([0])["objects"]}
    assert tiered.submit_snapshot("s1", snap(ids[0], 2, delta, base=1)) == (
        "resync"
    )
    # The served tree honestly drops the lost contributions...
    partial_tree, _ = env.run(until=tiered.merged("s1"))
    assert partial_tree != flat_tree
    # ...and heals once the affected engines republish keyframes.
    for i, engine_id in enumerate(affected):
        tiered.submit_snapshot(
            "s1", snap(engine_id, 3, dyadic_tree([i, i + 3]))
        )
    healed_tree, _ = env.run(until=tiered.merged("s1"))
    assert healed_tree == flat_tree


def test_internal_combiner_crash_rebuilds_without_engine_resync():
    env, flat, tiered, ids = build_pair(16, 2)
    for i, engine_id in enumerate(ids):
        payload = dyadic_tree([i])
        flat.submit_snapshot("s1", snap(engine_id, 1, payload))
        tiered.submit_snapshot("s1", snap(engine_id, 1, payload))
    flat_tree, _ = env.run(until=flat.merged("s1"))
    env.run(until=tiered.merged("s1"))
    tier = tiered.tier("s1")
    internal = tier.levels[1][0].combiner_id
    assert tiered.crash_combiner("s1", internal) == []
    rebuilt_tree, _ = env.run(until=tiered.merged("s1"))
    assert rebuilt_tree == flat_tree


def test_crash_unknown_combiner_raises():
    env, _, tiered, _ = build_pair(4, 2)
    with pytest.raises(CombinerError):
        tiered.crash_combiner("s1", "s1/combiner-9.9")
    flat = AIDAManagerService(env, merge_cost_per_tree=COST)
    with pytest.raises(MergeError):
        flat.crash_combiner("s1", "anything")


def test_retire_leaf_reparents_engines_and_preserves_tree():
    env, flat, tiered, ids = build_pair(9, 2)
    for i, engine_id in enumerate(ids):
        payload = dyadic_tree([i, 7 * i])
        flat.submit_snapshot("s1", snap(engine_id, 1, payload))
        tiered.submit_snapshot("s1", snap(engine_id, 1, payload))
    flat_tree, _ = env.run(until=flat.merged("s1"))
    env.run(until=tiered.merged("s1"))
    victim = tiered.combiner_of("s1", ids[2])
    target = tiered.retire_combiner("s1", victim)
    assert tiered.combiner_of("s1", ids[2]) == target
    retired_tree, _ = env.run(until=tiered.merged("s1"))
    assert retired_tree == flat_tree
    # Deltas keep flowing through the new parent.
    delta = {"objects": dyadic_tree([2])["objects"]}
    assert tiered.submit_snapshot("s1", snap(ids[2], 2, delta, base=1)) == (
        "accepted"
    )
    flat.submit_snapshot("s1", snap(ids[2], 2, dict(delta), base=1))
    flat_tree, _ = env.run(until=flat.merged("s1"))
    tiered_tree, _ = env.run(until=tiered.merged("s1"))
    assert tiered_tree == flat_tree


def test_retire_only_leaf_is_rejected():
    tier = MergeTree("s1", 2, [["e0", "e1"]])
    with pytest.raises(CombinerError):
        tier.retire_combiner(tier.levels[0][0].combiner_id)


# -- durability and hygiene -------------------------------------------------

def test_checkpoint_restore_rebuilds_tier_bit_identically():
    env, _, tiered, ids = build_pair(9, 2)
    for i, engine_id in enumerate(ids):
        tiered.submit_snapshot("s1", snap(engine_id, 1, dyadic_tree([i, i])))
    before, _ = env.run(until=tiered.merged("s1"))
    state = tiered.checkpoint_state("s1")
    assert state["tier_groups"] == tiered.tier("s1").leaf_groups()
    tiered.crash()
    tiered.restart()
    tiered.restore_state("s1", state)
    tier = tiered.tier("s1")
    assert tier is not None
    assert len(tier.dirty_engines) == len(ids)
    after, _ = env.run(until=tiered.merged("s1"))
    assert after == before


def test_drop_session_releases_tier_state():
    env, _, tiered, ids = build_pair(4, 2)
    tiered.submit_snapshot("s1", snap(ids[0], 1, dyadic_tree([1])))
    assert "tiers" in tiered.session_cache_keys("s1")
    tiered.drop_session("s1")
    assert tiered.session_cache_keys("s1") == []
    # Zombie snapshot after close must not resurrect the tier.
    assert tiered.submit_snapshot("s1", snap(ids[1], 1, dyadic_tree([2]))) == (
        "dropped"
    )
    assert tiered.tier("s1") is None


# -- end to end -------------------------------------------------------------

def build_site(**site_kwargs):
    site = GridSite(SiteConfig(n_workers=4, **site_kwargs))
    site.register_dataset(
        "ds-small",
        "/test/ds-small",
        size_mb=20.0,
        n_events=2_000,
        metadata={"experiment": "ilc", "energy": 500},
        content={"kind": "ilc", "seed": 42},
    )
    user = site.enroll_user("/O=ILC/CN=alice")
    return site, IPAClient(site, user)


def run_scenario(site, client):
    results = {}

    def scenario():
        yield from client.obtain_proxy_and_connect()
        yield from client.select_dataset("ds-small")
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=2.0)
        results["tree"] = final.tree
        results["progress"] = final.progress
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    return results


@pytest.mark.parametrize("grouping", ["chunk", "worker"])
def test_site_run_with_merge_tier_matches_flat(grouping):
    flat_results = run_scenario(*build_site())
    tiered_results = run_scenario(
        *build_site(merge_fan_in=2, merge_grouping=grouping)
    )
    assert tiered_results["progress"].complete
    flat_mass = flat_results["tree"].get("/higgs/dijet_mass")
    tiered_mass = tiered_results["tree"].get("/higgs/dijet_mass")
    # Bin *entries* are integers: exact under any fold association.
    assert tiered_mass.all_entries == flat_mass.all_entries
    n_bins = flat_mass.axis.bins
    np.testing.assert_array_equal(
        np.asarray([tiered_mass.bin_entries(i) for i in range(n_bins)]),
        np.asarray([flat_mass.bin_entries(i) for i in range(n_bins)]),
    )
    np.testing.assert_allclose(
        tiered_mass.heights(), flat_mass.heights(), rtol=1e-9
    )


def test_site_tier_is_wired_and_snapshots_are_stamped():
    site, client = build_site(merge_fan_in=2, enable_observability=True)
    done = {}

    def scenario():
        info = yield from client.obtain_proxy_and_connect()
        done["session"] = info.session_id
        yield from client.select_dataset("ds-small")
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()
        yield from client.wait_for_completion(poll_interval=2.0)
        tier = site.aida.tier(info.session_id)
        assert tier is not None
        assert tier.depth >= 2
        snapshots = site.aida._snapshots[info.session_id]
        assert snapshots, "engines reported"
        for engine_id, snapshot in snapshots.items():
            assert snapshot.combiner == tier.combiner_of(engine_id)
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    kinds = [e.kind for e in site.obs.events.events()]
    assert "tier_configured" in kinds
