"""Unit tests for simulation resources: Resource, PriorityResource, Store, Container."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource, Store


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    granted = []

    def user(name, hold):
        with res.request() as req:
            yield req
            granted.append((name, env.now))
            yield env.timeout(hold)

    env.process(user("a", 5))
    env.process(user("b", 5))
    env.process(user("c", 5))
    env.run()
    assert granted == [("a", 0), ("b", 0), ("c", 5)]


def test_resource_count_tracks_usage():
    env = Environment()
    res = Resource(env, capacity=1)

    def user():
        with res.request() as req:
            yield req
            assert res.count == 1
            yield env.timeout(1)

    env.process(user())
    env.run()
    assert res.count == 0


def test_resource_release_idempotent_for_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def canceller():
        yield env.timeout(1)
        req = res.request()
        assert not req.triggered
        req.cancel()
        yield env.timeout(1)
        assert not req.triggered

    env.process(holder())
    env.process(canceller())
    env.run()
    assert res.count == 0
    assert res.queue == []


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(name):
        with res.request() as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    for name in "abc":
        env.process(user(name))
    env.run()
    assert order == ["a", "b", "c"]


def test_resource_usage_since_recorded():
    env = Environment()
    res = Resource(env, capacity=1)

    def user():
        with res.request() as req:
            yield req
            assert req.usage_since == env.now
            yield env.timeout(2)

    def late_user():
        yield env.timeout(1)
        with res.request() as req:
            yield req
            assert req.usage_since == 2.0

    env.process(user())
    env.process(late_user())
    env.run()


# ---------------------------------------------------------------------------
# PriorityResource
# ---------------------------------------------------------------------------

def test_priority_resource_orders_by_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(10)

    def user(name, priority):
        yield env.timeout(1)  # queue behind the holder
        with res.request(priority=priority) as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    env.process(holder())
    env.process(user("low", 5))
    env.process(user("high", 1))
    env.process(user("mid", 3))
    env.run()
    assert order == ["high", "mid", "low"]


def test_priority_resource_fifo_within_same_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(5)

    def user(name):
        yield env.timeout(1)
        with res.request(priority=2) as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    env.process(holder())
    for name in "abc":
        env.process(user(name))
    env.run()
    assert order == ["a", "b", "c"]


def test_priority_resource_cancel_skips_heap_entry():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(5)

    def cancelling_user():
        yield env.timeout(1)
        req = res.request(priority=1)
        yield env.timeout(1)
        req.cancel()

    def user():
        yield env.timeout(1)
        with res.request(priority=2) as req:
            yield req
            order.append(env.now)

    env.process(holder())
    env.process(cancelling_user())
    env.process(user())
    env.run()
    assert order == [5]


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_put_get_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_item():
    env = Environment()
    store = Store(env)
    log = []

    def consumer():
        item = yield store.get()
        log.append((env.now, item))

    def producer():
        yield env.timeout(4)
        yield store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert log == [(4, "late")]


def test_store_put_blocks_when_full():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer():
        yield store.put("a")
        log.append(("a", env.now))
        yield store.put("b")
        log.append(("b", env.now))

    def consumer():
        yield env.timeout(5)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert log == [("a", 0), ("b", 5)]


def test_store_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_len():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    env.run()
    assert len(store) == 2


# ---------------------------------------------------------------------------
# Container
# ---------------------------------------------------------------------------

def test_container_init_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=11)
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=-1)


def test_container_put_get_levels():
    env = Environment()
    tank = Container(env, capacity=100, init=50)

    def proc():
        yield tank.get(20)
        assert tank.level == 30
        yield tank.put(60)
        assert tank.level == 90

    env.run(until=env.process(proc()))


def test_container_get_blocks_until_level_sufficient():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    log = []

    def consumer():
        yield tank.get(10)
        log.append(env.now)

    def producer():
        yield env.timeout(3)
        yield tank.put(10)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert log == [3]


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    log = []

    def producer():
        yield tank.put(5)
        log.append(env.now)

    def consumer():
        yield env.timeout(2)
        yield tank.get(5)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert log == [2]


def test_container_zero_amount_rejected():
    env = Environment()
    tank = Container(env, capacity=10, init=5)
    with pytest.raises(ValueError):
        tank.put(0)
    with pytest.raises(ValueError):
        tank.get(-1)
