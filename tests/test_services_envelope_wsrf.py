"""Unit tests for the envelope transport and WSRF resources."""

import pytest

from repro.services.envelope import Fault, ServiceContainer, ServiceError
from repro.services.wsrf import ResourceHome, ResourceRef, WsrfError
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def container(env):
    container = ServiceContainer(env, soap_latency=0.25, rmi_latency=0.05)

    def add(a, b):
        return a + b

    def slow(duration):
        # Generator operation: advances simulated time itself.
        yield env.timeout(duration)
        return "done"

    def crash():
        raise Fault("bad request")

    container.register("math", {"add": add, "slow": slow, "crash": crash})
    return container


def test_call_returns_value(env, container):
    result = env.run(until=container.call("math", "add", {"a": 2, "b": 3}))
    assert result == 5


def test_call_pays_soap_latency_both_ways(env, container):
    env.run(until=container.call("math", "add", {"a": 1, "b": 1}))
    assert env.now == pytest.approx(0.5)


def test_generator_operation_advances_time(env, container):
    result = env.run(until=container.call("math", "slow", {"duration": 3.0}))
    assert result == "done"
    assert env.now == pytest.approx(0.5 + 3.0)


def test_unknown_service_and_operation(env, container):
    def check():
        with pytest.raises(ServiceError, match="unknown service"):
            yield container.call("ghost", "op")
        with pytest.raises(ServiceError, match="no operation"):
            yield container.call("math", "ghost")

    env.run(until=env.process(check()))


def test_unknown_channel(env, container):
    def check():
        with pytest.raises(ServiceError, match="channel"):
            yield container.call("math", "add", {"a": 1, "b": 2}, channel="pigeon")

    env.run(until=env.process(check()))


def test_fault_propagates_to_caller(env, container):
    def check():
        with pytest.raises(Fault, match="bad request"):
            yield container.call("math", "crash")

    env.run(until=env.process(check()))


def test_rmi_requires_token(env, container):
    def check():
        with pytest.raises(Fault, match="token"):
            yield container.call("math", "add", {"a": 1, "b": 1}, channel="rmi")
        container.issue_token("secret")
        value = yield container.call(
            "math", "add", {"a": 1, "b": 1}, channel="rmi", token="secret"
        )
        assert value == 2
        container.revoke_token("secret")
        with pytest.raises(Fault):
            yield container.call(
                "math", "add", {"a": 1, "b": 1}, channel="rmi", token="secret"
            )

    env.run(until=env.process(check()))


def test_rmi_cheaper_than_soap(env, container):
    container.issue_token("t")

    def check():
        start = env.now
        yield container.call("math", "add", {"a": 1, "b": 1}, channel="soap")
        soap_time = env.now - start
        start = env.now
        yield container.call(
            "math", "add", {"a": 1, "b": 1}, channel="rmi", token="t"
        )
        rmi_time = env.now - start
        assert rmi_time < soap_time

    env.run(until=env.process(check()))


def test_duplicate_service_rejected(container):
    with pytest.raises(ServiceError):
        container.register("math", {})


def test_register_object_exposes_public_methods(env):
    class Greeter:
        def hello(self, name):
            return f"hi {name}"

        def _private(self):  # pragma: no cover - must not be exposed
            return "secret"

    container = ServiceContainer(env)
    container.register_object("greeter", Greeter())
    assert "greeter" in container.services
    result = env.run(until=container.call("greeter", "hello", {"name": "bob"}))
    assert result == "hi bob"

    def check():
        with pytest.raises(ServiceError):
            yield container.call("greeter", "_private")

    env.run(until=env.process(check()))


def test_fault_injection(env, container):
    container.inject_fault("math", "add", RuntimeError("injected"))

    def check():
        with pytest.raises(RuntimeError, match="injected"):
            yield container.call("math", "add", {"a": 1, "b": 1})
        container.clear_fault("math", "add")
        value = yield container.call("math", "add", {"a": 1, "b": 1})
        assert value == 2

    env.run(until=env.process(check()))


def test_call_log_records_success(env, container):
    env.run(until=container.call("math", "add", {"a": 1, "b": 1}))
    assert container.call_log == [("math", "add", "soap")]


# ---------------------------------------------------------------------------
# WSRF
# ---------------------------------------------------------------------------

def test_resource_create_and_properties(env):
    home = ResourceHome(env, "session")
    ref = home.create({"owner": "alice"})
    assert ref.resource_type == "session"
    assert home.get_property(ref, "owner") == "alice"
    home.set_property(ref, "engines", 16)
    assert home.properties(ref) == {"owner": "alice", "engines": 16}
    assert home.live_count == 1


def test_resource_ids_unique(env):
    home = ResourceHome(env, "session")
    refs = {home.create().resource_id for _ in range(10)}
    assert len(refs) == 10


def test_resource_bad_key_rejected(env):
    home = ResourceHome(env, "session")
    ref = home.create()
    forged = ResourceRef(ref.resource_id, "wrong-key", "session")
    with pytest.raises(WsrfError, match="bad key"):
        home.get_property(forged, "x")


def test_resource_destroy(env):
    home = ResourceHome(env, "session")
    ref = home.create()
    home.destroy(ref)
    assert not home.exists(ref)
    with pytest.raises(WsrfError):
        home.properties(ref)
    assert home.live_count == 0


def test_resource_unknown_property(env):
    home = ResourceHome(env, "session")
    ref = home.create()
    with pytest.raises(WsrfError, match="no property"):
        home.get_property(ref, "ghost")


def test_resource_lifetime_expiry(env):
    home = ResourceHome(env, "session", default_lifetime=100.0)
    ref = home.create()

    def check():
        assert home.exists(ref)
        yield env.timeout(101.0)
        assert not home.exists(ref)
        with pytest.raises(WsrfError, match="expired"):
            home.properties(ref)

    env.run(until=env.process(check()))


def test_resource_lease_renewal(env):
    home = ResourceHome(env, "session", default_lifetime=100.0)
    ref = home.create()

    def check():
        yield env.timeout(50.0)
        home.set_termination_time(ref, env.now + 100.0)
        yield env.timeout(80.0)
        assert home.exists(ref)  # t=130 < 150
        with pytest.raises(WsrfError):
            home.set_termination_time(ref, env.now - 1.0)

    env.run(until=env.process(check()))


def test_resource_default_lifetime_validation(env):
    with pytest.raises(ValueError):
        ResourceHome(env, "x", default_lifetime=0)
