"""Integration tests: the full client -> services -> grid -> results loop."""

import numpy as np
import pytest

from repro.analysis import counting, cuts, higgs
from repro.client.client import ClientError, IPAClient
from repro.client.display import dashboard
from repro.core.site import GridSite, SiteConfig
from repro.engine.sandbox import CodeBundle
from repro.grid.scheduler import JobState
from repro.services.content import ContentStore
from repro.services.envelope import Fault
from repro.engine.runner import run_local


def build(n_workers=4, **site_kwargs):
    site = GridSite(SiteConfig(n_workers=n_workers, **site_kwargs))
    site.register_dataset(
        "ds-small",
        "/test/ds-small",
        size_mb=20.0,
        n_events=2_000,
        metadata={"experiment": "ilc", "energy": 500},
        content={"kind": "ilc", "seed": 42},
    )
    site.register_dataset(
        "ds-long",
        "/test/ds-long",
        size_mb=400.0,
        n_events=2_000,
        metadata={"experiment": "ilc", "energy": 500},
        content={"kind": "ilc", "seed": 42},
    )
    user = site.enroll_user("/O=ILC/CN=alice")
    client = IPAClient(site, user)
    return site, client


def drive(site, generator):
    return site.env.run(until=site.env.process(generator))


def test_full_workflow_produces_correct_merged_results():
    site, client = build(n_workers=4)
    results = {}

    def scenario():
        info = yield from client.obtain_proxy_and_connect()
        assert info.n_engines == 4
        yield from client.select_dataset("ds-small")
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=2.0)
        results["tree"] = final.tree
        results["progress"] = final.progress
        yield from client.close()

    drive(site, scenario())
    progress = results["progress"]
    assert progress.complete
    assert progress.events_processed == 2000
    # The merged grid result equals a single local run over the same data.
    content = ContentStore()
    batch = content.events_for({"kind": "ilc", "seed": 42}, 0, 2000)
    local_tree = run_local(CodeBundle(higgs.SOURCE), batch)
    merged = results["tree"].get("/higgs/dijet_mass")
    local = local_tree.get("/higgs/dijet_mass")
    assert merged.entries == local.entries
    assert np.allclose(merged.heights(), local.heights())
    assert merged.mean == pytest.approx(local.mean)


def test_session_creation_respects_policy_limit():
    site, client = build(n_workers=4, max_engines_per_session=2)

    def scenario():
        client.obtain_proxy()
        with pytest.raises(Exception, match="site policy"):
            yield from client.connect(n_engines=4)
        info = yield from client.connect(n_engines=2)
        assert info.n_engines == 2

    drive(site, scenario())


def test_unauthorized_user_rejected():
    site, _ = build()
    outsider_cred = site.ca.issue_identity("/O=CMS/CN=bob", now=0.0)
    client = IPAClient(site, outsider_cred)

    def scenario():
        client.obtain_proxy()
        with pytest.raises(Exception, match="not authorized"):
            yield from client.connect()

    drive(site, scenario())


def test_engines_occupy_workers_and_release_on_close():
    site, client = build(n_workers=3)

    def scenario():
        yield from client.obtain_proxy_and_connect()
        assert site.scheduler.running_count == 3
        assert site.scheduler.idle_worker_count == 0
        yield from client.close()
        assert site.registry.count("session-1") == 0

    drive(site, scenario())
    assert site.scheduler.idle_worker_count == 3
    assert all(
        job.state == JobState.COMPLETED
        for job in site.scheduler._jobs.values()
    )


def test_catalog_browse_and_search_via_client():
    site, client = build()

    def scenario():
        listing = yield from client.browse_catalog("/")
        assert "test" in listing["directories"]
        hits = yield from client.search_catalog('experiment == "ilc"')
        assert [e.dataset_id for e in hits] == ["ds-long", "ds-small"]
        hits = yield from client.search_catalog("size_mb < 100")
        assert [e.dataset_id for e in hits] == ["ds-small"]

    drive(site, scenario())


def test_client_requires_session_before_operations():
    site, client = build()
    with pytest.raises(ClientError):
        client._require_session()

    def scenario():
        with pytest.raises(ClientError):
            yield from client.select_dataset("ds-small")

    drive(site, scenario())


def test_rmi_poll_rejected_without_valid_token():
    site, client = build()

    def scenario():
        yield from client.obtain_proxy_and_connect()
        client.data_plugin.token = "forged"
        with pytest.raises(Fault, match="token"):
            yield from client.poll()

    drive(site, scenario())


def test_rmi_token_revoked_after_close():
    site, client = build()

    def scenario():
        info = yield from client.obtain_proxy_and_connect()
        session_id, token = info.session_id, info.token
        yield from client.close()
        client.data_plugin.bind(session_id, token)
        client.session = info  # simulate a stale client
        with pytest.raises(Fault, match="token"):
            yield from client.poll()

    drive(site, scenario())


def test_pause_resume_midrun():
    site, client = build(n_workers=2)
    checkpoints = {}

    def scenario():
        yield from client.obtain_proxy_and_connect()
        yield from client.select_dataset("ds-long")
        yield from client.upload_code(counting.SOURCE)
        yield from client.run()
        yield site.env.timeout(70.0)  # run for a while (past serial overhead)
        yield from client.pause()
        yield site.env.timeout(10.0)
        status = yield from client.status()
        cursors = [e["cursor"] for e in status["engines"]]
        checkpoints["paused_at"] = cursors
        assert all(c < 1000 for c in cursors)  # not finished
        yield site.env.timeout(50.0)
        status = yield from client.status()
        assert [e["cursor"] for e in status["engines"]] == cursors  # frozen
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=2.0)
        assert final.progress.events_processed == 2000
        yield from client.close()

    drive(site, scenario())


def test_step_runs_exact_event_count():
    site, client = build(n_workers=2)

    def scenario():
        yield from client.obtain_proxy_and_connect()
        yield from client.select_dataset("ds-small")
        yield from client.upload_code(counting.SOURCE)
        yield from client.step(300)
        yield site.env.timeout(120.0)
        status = yield from client.status()
        assert [e["cursor"] for e in status["engines"]] == [300, 300]
        assert all(e["state"] == "paused" for e in status["engines"])
        yield from client.close()

    drive(site, scenario())


def test_rewind_and_rerun_with_new_cut():
    """The §3.6 interactive loop: run, tighten a cut, reload, rewind, rerun."""
    site, client = build(n_workers=2)
    results = {}

    def scenario():
        yield from client.obtain_proxy_and_connect()
        yield from client.select_dataset("ds-long")
        yield from client.upload_code(
            cuts.SOURCE, parameters={"min_energy": 0.0}
        )
        yield from client.run()
        first = yield from client.wait_for_completion(poll_interval=2.0)
        results["loose"] = first.tree.get("/cuts/energy_pass").entries

        # Tighten the cut, reload the code, rewind and rerun.
        yield from client.reload_code(parameters={"min_energy": 480.0})
        yield from client.rewind()
        yield from client.run()
        second = yield from client.wait_for_completion(poll_interval=2.0)
        results["tight"] = second.tree.get("/cuts/energy_pass").entries
        results["run_id"] = second.progress.run_id
        yield from client.close()

    drive(site, scenario())
    assert results["tight"] < results["loose"]
    assert results["run_id"] == 1  # one rewind happened


def test_stop_prevents_completion():
    site, client = build(n_workers=2)

    def scenario():
        yield from client.obtain_proxy_and_connect()
        yield from client.select_dataset("ds-long")
        yield from client.upload_code(counting.SOURCE)
        yield from client.run()
        yield site.env.timeout(60.0)
        yield from client.stop()
        yield site.env.timeout(60.0)
        status = yield from client.status()
        assert all(e["state"] == "stopped" for e in status["engines"])
        assert all(e["cursor"] < 1000 for e in status["engines"])
        yield from client.close()

    drive(site, scenario())


def test_wait_for_completion_timeout():
    site, client = build(n_workers=2)

    def scenario():
        yield from client.obtain_proxy_and_connect()
        yield from client.select_dataset("ds-small")
        yield from client.upload_code(counting.SOURCE)
        # Never started: completion can't happen.
        with pytest.raises(ClientError, match="timed out"):
            yield from client.wait_for_completion(poll_interval=5.0, timeout=60.0)
        yield from client.close()

    drive(site, scenario())


def test_intermediate_results_stream_in():
    """Partial merged results are visible long before the run finishes."""
    site, client = build(n_workers=2)
    observations = []

    def scenario():
        yield from client.obtain_proxy_and_connect()
        yield from client.select_dataset("ds-long")
        yield from client.upload_code(counting.SOURCE)
        yield from client.run()
        for _ in range(120):
            yield site.env.timeout(5.0)
            result = yield from client.poll()
            observations.append(result.progress.events_processed)
            if result.progress.complete:
                break
        yield from client.close()

    drive(site, scenario())
    assert observations[-1] == 2000
    # Strictly increasing prefix: results streamed, not delivered at once.
    partial = [obs for obs in observations if 0 < obs < 2000]
    assert partial, "never saw a partial result"


def test_dashboard_renders_merged_tree():
    site, client = build(n_workers=2)
    results = {}

    def scenario():
        yield from client.obtain_proxy_and_connect()
        yield from client.select_dataset("ds-small")
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=2.0)
        results["final"] = final
        yield from client.close()

    drive(site, scenario())
    text = dashboard(results["final"].tree, results["final"].progress)
    assert "events=2000/2000" in text
    assert "/higgs/dijet_mass" in text
    assert "100.0%" in text


def test_two_sequential_sessions_on_one_site():
    site, client = build(n_workers=2)

    def scenario():
        info1 = yield from client.obtain_proxy_and_connect()
        yield from client.close()
        info2 = yield from client.obtain_proxy_and_connect()
        assert info2.session_id != info1.session_id
        yield from client.close()

    drive(site, scenario())


def test_trading_dataset_cross_domain():
    """The paper's 'other fields' claim: trading records through the same pipeline."""
    from repro.analysis import trading

    site = GridSite(SiteConfig(n_workers=2))
    site.register_standard_datasets()
    user = site.enroll_user("/O=ILC/CN=quant")
    client = IPAClient(site, user)
    results = {}

    def scenario():
        yield from client.obtain_proxy_and_connect()
        hits = yield from client.search_catalog('domain == "finance"')
        assert len(hits) == 1
        yield from client.select_dataset(hits[0].dataset_id)
        yield from client.upload_code(trading.SOURCE)
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=5.0)
        results["tree"] = final.tree
        yield from client.close()

    drive(site, scenario())
    assert results["tree"].get("/trading/daily_volume").entries == 5000


def test_large_site_stress_64_workers():
    """A 64-engine session completes and merges correctly."""
    site = GridSite(SiteConfig(n_workers=64))
    site.register_dataset(
        "big", "/t/big", size_mb=640.0, n_events=6400,
        content={"kind": "ilc", "seed": 9},
    )
    client = IPAClient(site, site.enroll_user("/CN=alice"))
    results = {}

    def scenario():
        info = yield from client.obtain_proxy_and_connect()
        assert info.n_engines == 64
        yield from client.select_dataset("big")
        yield from client.upload_code(counting.SOURCE)
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=10.0)
        results["progress"] = final.progress
        results["tree"] = final.tree
        yield from client.close()

    drive(site, scenario())
    assert results["progress"].engines_reporting == 64
    assert results["progress"].events_processed == 6400
    assert results["tree"].get("/counts/process").entries == 6400
    assert site.scheduler.idle_worker_count == 64
