"""Unit tests for grid node types."""

import pytest

from repro.grid.nodes import (
    ComputeElement,
    ManagerNode,
    Node,
    NodeSpec,
    StorageElement,
    WorkerNode,
)
from repro.sim import Environment


def test_nodespec_validation():
    with pytest.raises(ValueError):
        NodeSpec(cpu_mhz=0)
    with pytest.raises(ValueError):
        NodeSpec(cores=0)
    with pytest.raises(ValueError):
        NodeSpec(disk_read_mbps=0)
    with pytest.raises(ValueError):
        NodeSpec(disk_write_mbps=-1)


def test_compute_time_scales_with_clock():
    env = Environment()
    fast = Node(env, "fast", NodeSpec(cpu_mhz=1700))
    slow = Node(env, "slow", NodeSpec(cpu_mhz=866))
    assert fast.compute_time(10.0) == pytest.approx(10.0)
    assert slow.compute_time(10.0) == pytest.approx(10.0 * 1700 / 866)


def test_compute_advances_clock():
    env = Environment()
    node = Node(env, "n", NodeSpec(cpu_mhz=1700))
    env.run(until=node.compute(5.0))
    assert env.now == pytest.approx(5.0)


def test_compute_negative_rejected():
    env = Environment()
    node = Node(env, "n", NodeSpec())
    with pytest.raises(ValueError):
        node.compute(-1)


def test_compute_serializes_on_single_core():
    env = Environment()
    node = Node(env, "n", NodeSpec(cpu_mhz=1700, cores=1))
    p1 = node.compute(3.0)
    p2 = node.compute(3.0)
    env.run()
    assert env.now == pytest.approx(6.0)


def test_compute_parallel_on_two_cores():
    env = Environment()
    node = Node(env, "n", NodeSpec(cpu_mhz=1700, cores=2))
    node.compute(3.0)
    node.compute(3.0)
    env.run()
    assert env.now == pytest.approx(3.0)


def test_disk_read_write_rates():
    env = Environment()
    node = Node(env, "n", NodeSpec(disk_read_mbps=100, disk_write_mbps=50))
    env.run(until=node.disk_read(200))
    assert env.now == pytest.approx(2.0)
    start = env.now
    env.run(until=node.disk_write(200))
    assert env.now - start == pytest.approx(4.0)


def test_disk_negative_size_rejected():
    env = Environment()
    node = Node(env, "n", NodeSpec())
    with pytest.raises(ValueError):
        node.disk_read(-1)


def test_store_and_has_file():
    env = Environment()
    node = Node(env, "n", NodeSpec())
    assert not node.has_file("part-0")
    node.store_file("part-0", 29.4)
    assert node.has_file("part-0")
    assert node.disk_files["part-0"] == 29.4


def test_worker_busy_flag():
    env = Environment()
    worker = WorkerNode(env, "w", NodeSpec())
    assert not worker.busy
    worker.engine_id = "engine-1"
    assert worker.busy


def test_storage_element_sequential_read_serializes():
    env = Environment()
    se = StorageElement(env, "se", NodeSpec(disk_read_mbps=10))
    se.sequential_read(50)
    se.sequential_read(50)
    env.run()
    assert env.now == pytest.approx(10.0)  # 5 + 5, strictly serialized


def test_compute_element_requires_workers():
    with pytest.raises(ValueError):
        ComputeElement("ce", [])


def test_compute_element_rejects_duplicate_names():
    env = Environment()
    workers = [WorkerNode(env, "w", NodeSpec()), WorkerNode(env, "w", NodeSpec())]
    with pytest.raises(ValueError):
        ComputeElement("ce", workers)


def test_compute_element_lookup_and_idle():
    env = Environment()
    workers = [WorkerNode(env, f"w{i}", NodeSpec()) for i in range(4)]
    ce = ComputeElement("ce", workers)
    assert len(ce) == 4
    assert ce.worker("w2") is workers[2]
    with pytest.raises(KeyError):
        ce.worker("nope")
    workers[0].engine_id = "e"
    assert [w.name for w in ce.idle_workers()] == ["w1", "w2", "w3"]


def test_manager_node_is_a_node():
    env = Environment()
    mgr = ManagerNode(env, "mgr", NodeSpec())
    assert isinstance(mgr, Node)
