"""Unit tests for the replica subsystem: catalog, node cache, selector,
and the manager facade (classification, alignment, invalidation)."""

import pytest

from repro.grid.network import Network
from repro.grid.nodes import NodeSpec, StorageElement, WorkerNode
from repro.replica import (
    NodeCache,
    ReplicaCatalog,
    ReplicaError,
    ReplicaManager,
    ReplicaSelector,
)
from repro.services.locator import DatasetLocation
from repro.services.splitter import PartDescriptor
from repro.sim import Environment


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------

def test_catalog_register_and_lookup():
    catalog = ReplicaCatalog()
    key = catalog.part_key("ds", "by-events", 4, 0, 0, 250)
    catalog.register(key, "ds", "w0", 10.0, now=1.0)
    assert catalog.has(key, "w0")
    assert not catalog.has(key, "w1")
    assert [r.host for r in catalog.holders(key)] == ["w0"]
    assert len(catalog) == 1


def test_catalog_keys_pin_geometry():
    catalog = ReplicaCatalog()
    four = catalog.part_key("ds", "by-events", 4, 0, 0, 250)
    eight = catalog.part_key("ds", "by-events", 8, 0, 0, 125)
    bybytes = catalog.part_key("ds", "by-bytes", 4, 0, 0, 250)
    assert len({four, eight, bybytes}) == 3


def test_catalog_generation_bump_invalidates_old_replicas():
    catalog = ReplicaCatalog()
    seen = []
    catalog.add_invalidation_hook(lambda r, reason: seen.append((r.key, reason)))
    key = catalog.whole_key("ds")
    catalog.register(key, "ds", "se", 100.0)
    assert catalog.generation("ds") == 0
    assert catalog.bump_generation("ds") == 1
    assert not catalog.has(key, "se")
    assert seen == [(key, "re-registration")]
    # New-generation keys differ, so the old copy can never be served.
    assert catalog.whole_key("ds") != key


def test_catalog_unregister_fires_hooks_once():
    catalog = ReplicaCatalog()
    seen = []
    catalog.add_invalidation_hook(lambda r, reason: seen.append(reason))
    catalog.register("k", "ds", "w0", 1.0)
    assert catalog.unregister("k", "w0", reason="eviction")
    assert not catalog.unregister("k", "w0")  # second removal finds nothing
    assert seen == ["eviction"]


def test_catalog_invalidate_host():
    catalog = ReplicaCatalog()
    catalog.register("a", "ds", "w0", 1.0)
    catalog.register("b", "ds", "w0", 1.0)
    catalog.register("a", "ds", "w1", 1.0)
    assert catalog.invalidate_host("w0") == 2
    assert [r.host for r in catalog.holders("a")] == ["w1"]


def test_catalog_hosts_with_dataset_skips_stale_generations():
    catalog = ReplicaCatalog()
    old = catalog.part_key("ds", "by-events", 2, 0, 0, 50)
    catalog.register(old, "ds", "w0", 5.0)
    catalog.bump_generation("ds")
    new = catalog.part_key("ds", "by-events", 2, 0, 0, 50)
    catalog.register(new, "ds", "w1", 7.0)
    assert catalog.hosts_with_dataset("ds") == {"w1": 7.0}


def test_catalog_rejects_negative_size():
    with pytest.raises(ReplicaError):
        ReplicaCatalog().register("k", "ds", "w0", -1.0)


# ---------------------------------------------------------------------------
# NodeCache
# ---------------------------------------------------------------------------

def test_cache_lru_eviction_order():
    evicted = []
    cache = NodeCache(
        "w0", capacity_mb=20.0,
        on_evict=lambda node, key, reason: evicted.append((key, reason)),
    )
    assert cache.put("a", 10.0, now=0.0)
    assert cache.put("b", 10.0, now=1.0)
    cache.touch("a", now=2.0)  # b is now the least recently used
    assert cache.put("c", 10.0, now=3.0)
    assert evicted == [("b", "capacity")]
    assert sorted(cache.keys()) == ["a", "c"]
    assert cache.used_mb == pytest.approx(20.0)


def test_cache_pinned_entries_block_capacity_eviction():
    cache = NodeCache("w0", capacity_mb=10.0)
    assert cache.put("a", 10.0, now=0.0, pin="s1")
    assert not cache.put("b", 10.0, now=1.0)  # cannot make room
    assert "a" in cache
    cache.unpin_session("s1")
    assert cache.put("b", 10.0, now=2.0)
    assert cache.keys() == ["b"]


def test_cache_oversized_object_rejected():
    cache = NodeCache("w0", capacity_mb=5.0)
    assert not cache.put("huge", 6.0, now=0.0)
    assert len(cache) == 0


def test_cache_ttl_expiry_spares_pins():
    cache = NodeCache("w0", ttl_s=10.0)
    cache.put("old", 1.0, now=0.0)
    cache.put("pinned", 1.0, now=0.0, pin="s1")
    assert not cache.has("old", now=11.0)
    assert cache.has("pinned", now=11.0)


def test_cache_remove_overrides_pins():
    cache = NodeCache("w0")
    cache.put("a", 1.0, now=0.0, pin="s1")
    assert cache.remove("a", reason="node-failure")
    assert "a" not in cache


def test_cache_put_refreshes_existing_entry():
    cache = NodeCache("w0", capacity_mb=10.0, ttl_s=5.0)
    cache.put("a", 4.0, now=0.0)
    assert cache.put("a", 4.0, now=4.0, pin="s2")
    assert cache.has("a", now=8.0)  # TTL restarted at the second put
    assert cache.entry("a").pins == {"s2"}


# ---------------------------------------------------------------------------
# Selector
# ---------------------------------------------------------------------------

def star_network(env, n_workers=3):
    net = Network(env)
    net.add_host("se")
    for i in range(n_workers):
        name = f"w{i}"
        net.add_host(name)
        net.add_link(f"se-{name}", "se", name, bandwidth=7.6, latency=0.001)
    return net


def test_selector_charges_se_its_own_spindle_read():
    env = Environment()
    selector = ReplicaSelector(star_network(env), "se", se_disk_mbps=10.24)
    # Even with nothing queued, serving from the SE costs the serial
    # spindle read of the part itself; a peer cache skips the disk arm
    # entirely, so it wins whenever the extra LAN hop is cheaper.
    choice = selector.choose("w0", 10.0, ["se", "w1"], queued_se_mb=0.0)
    assert choice.host == "w1"
    se_est = selector.estimate("se", "w0", 10.0, queued_se_mb=0.0)
    assert se_est.backlog_s == pytest.approx(10.0 / 10.24)
    # The SE is still chosen when it is the only reachable source.
    assert selector.choose("w0", 10.0, ["se"]).host == "se"


def test_selector_peer_wins_once_spindle_backlog_builds():
    env = Environment()
    selector = ReplicaSelector(star_network(env), "se", se_disk_mbps=10.24)
    choice = selector.choose("w0", 10.0, ["se", "w1"], queued_se_mb=100.0)
    assert choice.host == "w1"
    se_est = selector.estimate("se", "w0", 10.0, queued_se_mb=100.0)
    assert se_est.backlog_s == pytest.approx(110.0 / 10.24)


def test_selector_unreachable_candidate_dropped():
    env = Environment()
    net = star_network(env)
    selector = ReplicaSelector(net, "se", se_disk_mbps=10.24)
    net.fail_links_of("w1")
    choice = selector.choose("w0", 10.0, ["se", "w1"])
    assert choice.host == "se"
    assert selector.estimate("w1", "w0", 10.0) is None
    assert set(selector.rank("w0", 10.0, ["se", "w1"])) == {"se"}


# ---------------------------------------------------------------------------
# Manager
# ---------------------------------------------------------------------------

class _Ref:
    """Stand-in for an EngineReference (only .worker is consulted)."""

    def __init__(self, worker):
        self.worker = worker

    def __repr__(self):
        return f"_Ref({self.worker})"


def build_manager(n_workers=4, capacity_mb=None, ttl_s=None):
    env = Environment()
    net = star_network(env, n_workers)
    se = StorageElement(env, "se", NodeSpec())
    workers = [WorkerNode(env, f"w{i}", NodeSpec()) for i in range(n_workers)]
    manager = ReplicaManager(
        env, net, se, workers, capacity_mb=capacity_mb, ttl_s=ttl_s
    )
    return env, manager, workers


def make_location(size_mb=40.0, n_events=400, origin="repository"):
    return DatasetLocation(
        dataset_id="ds",
        kind="gridftp",
        host="se",
        path="/store/ds.ipad",
        size_mb=size_mb,
        n_events=n_events,
        splitter_host="se",
        origin_host=origin,
    )


def make_parts(workers, size_mb=10.0, events_each=100):
    return [
        PartDescriptor(
            part_index=i,
            start_event=i * events_each,
            stop_event=(i + 1) * events_each,
            size_mb=size_mb,
            worker=w,
        )
        for i, w in enumerate(workers)
    ]


def test_manager_cold_plan_is_fully_cold():
    env, manager, workers = build_manager()
    parts = make_parts([w.name for w in workers])
    plan = manager.plan_sources(make_location(), "by-events", parts)
    assert plan.fully_cold
    assert len(plan.missing) == 4


def test_manager_classification_local_se_and_missing():
    env, manager, workers = build_manager()
    location = make_location()
    parts = make_parts([w.name for w in workers])
    keys = manager.part_keys("ds", "by-events", parts)
    # w0 caches part 0; the SE holds a part file for part 1; 2/3 are cold.
    manager.record_worker_part("ds", keys[0], "w0", 10.0)
    manager.record_se_part("ds", keys[1], 10.0)
    plan = manager.plan_sources(location, "by-events", parts, keys)
    kinds = [s.kind for s in plan.sources]
    assert kinds == ["local", "se", "missing", "missing"]
    assert not plan.fully_cold


def test_manager_alignment_sends_parts_to_their_holders():
    env, manager, workers = build_manager()
    parts = make_parts([w.name for w in workers])
    keys = manager.part_keys("ds", "by-events", parts)
    # w3 holds part 0's bytes, w0 holds part 3's: alignment must swap them.
    manager.record_worker_part("ds", keys[0], "w3", 10.0)
    manager.record_worker_part("ds", keys[3], "w0", 10.0)
    refs = [_Ref(w.name) for w in workers]
    aligned = manager.align_references(refs, keys)
    assert [r.worker for r in aligned] == ["w3", "w1", "w2", "w0"]
    # All-cold alignment is the identity permutation.
    cold_keys = manager.part_keys("other", "by-events", parts)
    assert manager.align_references(refs, cold_keys) == refs


def test_manager_failed_worker_is_never_a_source():
    env, manager, workers = build_manager()
    parts = make_parts([w.name for w in workers])
    keys = manager.part_keys("ds", "by-events", parts)
    manager.record_worker_part("ds", keys[0], "w0", 10.0)
    workers[0].failed = True
    assert not manager.worker_has("w0", keys[0])
    plan = manager.plan_sources(make_location(), "by-events", parts, keys)
    assert plan.sources[0].kind == "missing"


def test_manager_invalidate_host_clears_cache_and_catalog():
    env, manager, workers = build_manager()
    parts = make_parts([w.name for w in workers])
    keys = manager.part_keys("ds", "by-events", parts)
    manager.record_worker_part("ds", keys[0], "w0", 10.0)
    manager.record_worker_part("ds", keys[1], "w0", 10.0)
    assert manager.invalidate_host("w0") == 2
    assert len(manager.caches["w0"]) == 0
    assert manager.catalog.holders(keys[0]) == []


def test_manager_eviction_unregisters_catalog_replica():
    env, manager, workers = build_manager(capacity_mb=10.0)
    parts = make_parts([w.name for w in workers])
    keys = manager.part_keys("ds", "by-events", parts)
    manager.record_worker_part("ds", keys[0], "w0", 10.0)
    env.run(until=1.0)
    manager.record_worker_part("ds", keys[1], "w0", 10.0)  # evicts part 0
    assert manager.catalog.holders(keys[0]) == []
    assert manager.catalog.has(keys[1], "w0")


def test_manager_dataset_updated_invalidates_everything():
    env, manager, workers = build_manager()
    location = make_location(origin=None)
    parts = make_parts([w.name for w in workers])
    keys = manager.part_keys("ds", "by-events", parts)
    for key, part in zip(keys, parts):
        manager.record_worker_part("ds", key, part.worker, part.size_mb)
    manager.dataset_updated("ds")
    plan = manager.plan_sources(location, "by-events", parts)
    assert plan.fully_cold
    assert all(len(cache) == 0 for cache in manager.caches.values())


def test_manager_has_whole_and_record_whole():
    env, manager, workers = build_manager()
    se_resident = make_location(origin=None)
    fetched = make_location(origin="repository")
    assert manager.has_whole(se_resident)
    assert not manager.has_whole(fetched)
    manager.record_whole(fetched)
    assert manager.has_whole(fetched)


def test_manager_preferred_workers_ranked_by_cached_mb():
    env, manager, workers = build_manager()
    parts = make_parts([w.name for w in workers])
    keys = manager.part_keys("ds", "by-events", parts)
    manager.record_worker_part("ds", keys[0], "w2", 10.0)
    manager.record_worker_part("ds", keys[1], "w2", 10.0)
    manager.record_worker_part("ds", keys[2], "w1", 10.0)
    assert manager.preferred_workers("ds") == ["w2", "w1"]
    workers[2].failed = True
    assert manager.preferred_workers("ds") == ["w1"]


def test_manager_session_pins_released_on_unpin():
    env, manager, workers = build_manager(capacity_mb=10.0)
    parts = make_parts([w.name for w in workers])
    keys = manager.part_keys("ds", "by-events", parts)
    manager.record_worker_part("ds", keys[0], "w0", 10.0, session_id="s1")
    # Pinned: a competing part cannot evict it.
    assert not manager.record_worker_part("ds", keys[1], "w0", 10.0)
    manager.unpin_session("s1")
    assert manager.record_worker_part("ds", keys[1], "w0", 10.0)
