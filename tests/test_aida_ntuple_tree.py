"""Unit tests for NTuple and ObjectTree."""

import numpy as np
import pytest

from repro.aida.hist1d import Histogram1D
from repro.aida.ntuple import NTuple
from repro.aida.tree import ObjectTree, TreeError, join_path, split_path


# ---------------------------------------------------------------------------
# NTuple
# ---------------------------------------------------------------------------

def make_ntuple():
    return NTuple("events", ["mass", "energy", "njets"])


def test_ntuple_validation():
    with pytest.raises(ValueError):
        NTuple("", ["a"])
    with pytest.raises(ValueError):
        NTuple("n", [])
    with pytest.raises(ValueError):
        NTuple("n", ["a", "a"])


def test_ntuple_fill_kwargs():
    nt = make_ntuple()
    nt.fill(mass=125.0, energy=500.0, njets=4)
    assert nt.rows == 1
    assert nt.column("mass")[0] == 125.0


def test_ntuple_fill_missing_column_rejected():
    nt = make_ntuple()
    with pytest.raises(ValueError, match="missing"):
        nt.fill(mass=125.0)
    with pytest.raises(ValueError, match="extra"):
        nt.fill(mass=1.0, energy=2.0, njets=3, bogus=4.0)


def test_ntuple_fill_row_positional():
    nt = make_ntuple()
    nt.fill_row([100.0, 200.0, 2.0])
    assert nt.column("energy")[0] == 200.0
    with pytest.raises(ValueError):
        nt.fill_row([1.0, 2.0])


def test_ntuple_unknown_column():
    nt = make_ntuple()
    with pytest.raises(KeyError):
        nt.column("nope")


def test_ntuple_project1d():
    nt = make_ntuple()
    for mass in [100.0, 120.0, 121.0, 200.0]:
        nt.fill(mass=mass, energy=0.0, njets=2)
    hist = nt.project1d("mass", bins=10, lower=100, upper=200)
    assert isinstance(hist, Histogram1D)
    assert hist.all_entries == 4


def test_ntuple_project1d_with_cut():
    nt = make_ntuple()
    nt.fill(mass=120.0, energy=0.0, njets=2)
    nt.fill(mass=121.0, energy=0.0, njets=1)
    hist = nt.project1d(
        "mass", bins=10, lower=100, upper=200, cut=lambda c: c["njets"] >= 2
    )
    assert hist.all_entries == 1


def test_ntuple_project2d():
    nt = make_ntuple()
    nt.fill(mass=120.0, energy=450.0, njets=2)
    hist = nt.project2d(
        "mass", "energy", 10, 100, 200, 10, 400, 500
    )
    assert hist.all_entries == 1


def test_ntuple_merge():
    a = make_ntuple()
    b = make_ntuple()
    a.fill(mass=1.0, energy=2.0, njets=3)
    b.fill(mass=4.0, energy=5.0, njets=6)
    merged = a + b
    assert merged.rows == 2
    assert a.rows == 1


def test_ntuple_merge_column_mismatch():
    a = make_ntuple()
    b = NTuple("events", ["mass"])
    with pytest.raises(ValueError):
        a + b
    with pytest.raises(TypeError):
        a += 3


def test_ntuple_reset_copy_serialization():
    nt = make_ntuple()
    nt.fill(mass=1.0, energy=2.0, njets=3)
    clone = nt.copy()
    restored = NTuple.from_dict(nt.to_dict())
    nt.reset()
    assert nt.rows == 0
    assert clone.rows == 1
    assert restored.rows == 1
    assert restored.columns == ("mass", "energy", "njets")


# ---------------------------------------------------------------------------
# Path helpers
# ---------------------------------------------------------------------------

def test_split_path():
    assert split_path("/a/b/c") == ("a", "b", "c")
    assert split_path("/a//b/") == ("a", "b")
    with pytest.raises(TreeError):
        split_path("relative/path")
    with pytest.raises(TreeError):
        split_path("")
    with pytest.raises(TreeError):
        split_path("/a/../b")


def test_join_path_inverse():
    assert join_path(("a", "b")) == "/a/b"
    assert split_path(join_path(("x", "y", "z"))) == ("x", "y", "z")


# ---------------------------------------------------------------------------
# ObjectTree
# ---------------------------------------------------------------------------

def hist(name, entries=0):
    h = Histogram1D(name, bins=10, lower=0, upper=10)
    for _ in range(entries):
        h.fill(5.0)
    return h


def test_tree_put_get():
    tree = ObjectTree()
    h = hist("mass")
    tree.put("/higgs/mass", h)
    assert tree.get("/higgs/mass") is h
    assert tree.exists("/higgs/mass")
    assert "/higgs/mass" in tree


def test_tree_get_missing_raises():
    tree = ObjectTree()
    with pytest.raises(TreeError):
        tree.get("/nope")


def test_tree_ls():
    tree = ObjectTree()
    tree.put("/a/x", hist("x"))
    tree.put("/a/y", hist("y"))
    tree.put("/b", hist("b"))
    assert tree.ls("/") == ["a/", "b"]
    assert tree.ls("/a") == ["x", "y"]
    with pytest.raises(TreeError):
        tree.ls("/missing")


def test_tree_mkdir_and_is_dir():
    tree = ObjectTree()
    tree.mkdir("/d1/d2")
    assert tree.is_dir("/d1")
    assert tree.is_dir("/d1/d2")
    assert not tree.is_dir("/d3")
    assert tree.is_dir("/")
    tree.mkdir("/d1/d2")  # idempotent


def test_tree_object_dir_conflicts():
    tree = ObjectTree()
    tree.put("/a", hist("a"))
    with pytest.raises(TreeError):
        tree.mkdir("/a/b")
    with pytest.raises(TreeError):
        tree.put("/a/b", hist("b"))
    tree.mkdir("/d")
    with pytest.raises(TreeError):
        tree.put("/d", hist("d"))


def test_tree_remove():
    tree = ObjectTree()
    tree.put("/a/x", hist("x"))
    tree.remove("/a/x")
    assert not tree.exists("/a/x")
    tree.remove("/a")  # remove directory
    assert not tree.is_dir("/a")
    with pytest.raises(TreeError):
        tree.remove("/a")


def test_tree_walk_sorted():
    tree = ObjectTree()
    tree.put("/z", hist("z"))
    tree.put("/a/b", hist("b"))
    tree.put("/a/a", hist("a"))
    assert [p for p, _ in tree.walk()] == ["/z", "/a/a", "/a/b"]
    assert len(tree) == 3
    assert tree.paths() == ["/z", "/a/a", "/a/b"]


def test_tree_find_by_name():
    tree = ObjectTree()
    tree.put("/run1/mass", hist("mass"))
    tree.put("/run2/mass", hist("mass"))
    tree.put("/run2/pt", hist("pt"))
    assert tree.find("mass") == ["/run1/mass", "/run2/mass"]


def test_tree_merge_from_combines_shared_objects():
    a = ObjectTree()
    b = ObjectTree()
    a.put("/h", hist("h", entries=2))
    b.put("/h", hist("h", entries=3))
    b.put("/only_b", hist("ob", entries=1))
    a.merge_from(b)
    assert a.get("/h").entries == 5
    assert a.get("/only_b").entries == 1
    # b untouched
    assert b.get("/h").entries == 3


def test_tree_merge_from_copies_not_aliases():
    a = ObjectTree()
    b = ObjectTree()
    b.put("/h", hist("h", entries=1))
    a.merge_from(b)
    a.get("/h").fill(5.0)
    assert b.get("/h").entries == 1


def test_tree_merge_incompatible_raises():
    a = ObjectTree()
    b = ObjectTree()
    a.put("/h", hist("h"))
    b.put("/h", NTuple("n", ["c"]))
    with pytest.raises(TreeError):
        a.merge_from(b)


def test_tree_copy_independent():
    tree = ObjectTree()
    tree.put("/h", hist("h", entries=1))
    clone = tree.copy()
    clone.get("/h").fill(5.0)
    assert tree.get("/h").entries == 1


def test_tree_reset_all():
    tree = ObjectTree()
    tree.put("/h", hist("h", entries=5))
    tree.reset_all()
    assert tree.get("/h").entries == 0


def test_tree_serialization_roundtrip():
    tree = ObjectTree()
    tree.put("/higgs/mass", hist("mass", entries=4))
    nt = NTuple("nt", ["a"])
    nt.fill(a=1.0)
    tree.put("/nt", nt)
    restored = ObjectTree.from_dict(tree.to_dict())
    assert restored.paths() == tree.paths()
    assert restored.get("/higgs/mass").entries == 4
    assert restored.get("/nt").rows == 1
