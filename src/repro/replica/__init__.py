"""Replica management and staging cache for the grid layer.

The paper's fitted cost model makes staging the dominant cost of a grid
session — ``T_grid = 0.338·X + 53 + (62 + 5.3·X)/N`` — and every term of
the staging pipeline (WAN fetch, serial split, scatter) is pure data
movement.  The related replica-management literature (Allcock et al.,
*Secure, Efficient Data Transport and Replica Management for
High-Performance Data-Intensive Computing*) pairs GridFTP with a replica
catalog precisely so that data moved once is never moved again.  This
package supplies that mechanism:

* :mod:`repro.replica.catalog` — :class:`ReplicaCatalog`: logical dataset
  ids (and split *parts*) → physical replicas on storage elements and
  worker caches, with per-dataset generations, health state, and
  invalidation hooks;
* :mod:`repro.replica.cache` — :class:`NodeCache`: per-worker staging
  cache with capacity accounting, LRU + TTL eviction, and per-session
  pinning of parts while a run is active;
* :mod:`repro.replica.selector` — :class:`ReplicaSelector`: picks the
  cheapest source per part from the network topology (SE spindle backlog
  vs peer-to-peer fetch from another worker's cache);
* :mod:`repro.replica.manager` — :class:`ReplicaManager`: the facade the
  session service stages through (warm-hit classification, reference
  alignment, registration, pinning, invalidation, metrics).

The session service consults the catalog before every stage: a warm hit
skips the WAN fetch and/or the scatter entirely, a partial hit moves only
the missing parts, and a fully cold stage falls through to the original
§3.4 pipeline with bit-identical timings.
"""

from repro.replica.cache import CacheEntry, NodeCache
from repro.replica.catalog import Replica, ReplicaCatalog, ReplicaError
from repro.replica.manager import PartSource, ReplicaManager, StagePlan
from repro.replica.selector import ReplicaSelector, SourceEstimate

__all__ = [
    "CacheEntry",
    "NodeCache",
    "PartSource",
    "Replica",
    "ReplicaCatalog",
    "ReplicaError",
    "ReplicaManager",
    "ReplicaSelector",
    "SourceEstimate",
    "StagePlan",
]
