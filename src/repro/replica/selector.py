"""Network-cost-aware replica source selection.

Given several hosts holding the same part — the storage element, plus any
worker caches — the selector estimates the transfer cost of each source
from the grid topology and picks the cheapest.  The estimate mirrors the
flow model without running it:

``cost = route latency + size / bottleneck bandwidth (+ spindle backlog)``

The SE term adds the *serial* spindle-read backlog: parts leaving the SE
queue behind one disk arm (the reason Table 2's "move parts" column
flattens at ``46 + 62/N`` instead of scaling 1/N), so once a few parts
are already queued on the spindle, a peer worker's cache — reached over
its own LAN links with no disk bottleneck — becomes the cheaper source.
This is what makes the peer-to-peer path win exactly when it should.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.grid.network import Network, NetworkError


@dataclass(frozen=True)
class SourceEstimate:
    """Estimated cost of pulling one part from one candidate host."""

    host: str
    size_mb: float
    latency_s: float
    transfer_s: float
    backlog_s: float

    @property
    def total_s(self) -> float:
        return self.latency_s + self.transfer_s + self.backlog_s


class ReplicaSelector:
    """Picks the cheapest source host for each part transfer.

    Parameters
    ----------
    network:
        Topology used to estimate per-source route cost.
    se_name:
        Host name of the storage element (its estimates gain the serial
        spindle-backlog term).
    se_disk_mbps:
        SE spindle sequential-read rate in MB/s.
    """

    def __init__(
        self, network: Network, se_name: str, se_disk_mbps: float
    ) -> None:
        if se_disk_mbps <= 0:
            raise ValueError("se_disk_mbps must be > 0")
        self.network = network
        self.se_name = se_name
        self.se_disk_mbps = se_disk_mbps

    def estimate(
        self,
        src: str,
        dst: str,
        size_mb: float,
        queued_se_mb: float = 0.0,
    ) -> Optional[SourceEstimate]:
        """Cost of moving *size_mb* from *src* to *dst*, or ``None``.

        ``None`` means the source is currently unreachable (a link on the
        route is down) — the caller simply drops the candidate.
        *queued_se_mb* is the payload already queued on the SE spindle
        ahead of this part; it only contributes when *src* is the SE.
        """
        if src == dst:
            return SourceEstimate(src, size_mb, 0.0, 0.0, 0.0)
        try:
            route = self.network.route(src, dst)
        except NetworkError:
            return None
        backlog = 0.0
        if src == self.se_name:
            backlog = (queued_se_mb + size_mb) / self.se_disk_mbps
        transfer = (
            size_mb / route.bottleneck_bandwidth if route.links else 0.0
        )
        return SourceEstimate(
            host=src,
            size_mb=size_mb,
            latency_s=route.latency,
            transfer_s=transfer,
            backlog_s=backlog,
        )

    def choose(
        self,
        dst: str,
        size_mb: float,
        candidates: Sequence[str],
        queued_se_mb: float = 0.0,
    ) -> Optional[SourceEstimate]:
        """Cheapest reachable candidate for *dst*, or ``None`` if none.

        Ties break toward the SE (authoritative copy), then by host name,
        so selection is deterministic.
        """
        estimates: List[SourceEstimate] = []
        for host in candidates:
            est = self.estimate(host, dst, size_mb, queued_se_mb=queued_se_mb)
            if est is not None:
                estimates.append(est)
        if not estimates:
            return None
        return min(
            estimates,
            key=lambda e: (e.total_s, e.host != self.se_name, e.host),
        )

    def rank(
        self,
        dst: str,
        size_mb: float,
        candidates: Sequence[str],
        queued_se_mb: float = 0.0,
    ) -> Dict[str, SourceEstimate]:
        """All reachable candidates with their estimates (for diagnostics)."""
        out: Dict[str, SourceEstimate] = {}
        for host in candidates:
            est = self.estimate(host, dst, size_mb, queued_se_mb=queued_se_mb)
            if est is not None:
                out[host] = est
        return out
