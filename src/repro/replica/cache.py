"""Per-worker staging cache with capacity accounting, LRU+TTL, pinning.

Each worker node gets a :class:`NodeCache` tracking which dataset parts it
holds on local disk and how many megabytes they occupy.  Admission may
evict least-recently-used *unpinned* entries to make room; entries pinned
by an active session are never evicted for capacity, only invalidated
(node failure, dataset re-registration), because a running engine is
reading them.

The cache is deliberately dumb about *what* the keys mean — the
:class:`~repro.replica.catalog.ReplicaCatalog` owns logical identity; the
cache only owns local residency, recency, and pins.  The ``on_evict``
callback is how the two stay consistent: every eviction unregisters the
corresponding catalog replica.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set


@dataclass
class CacheEntry:
    """One cached object on a worker's local disk."""

    key: str
    size_mb: float
    added_at: float
    last_used: float
    pins: Set[str] = field(default_factory=set)

    @property
    def pinned(self) -> bool:
        return bool(self.pins)


#: Signature of eviction callbacks: ``on_evict(node_name, key, reason)``.
EvictionCallback = Callable[[str, str, str], None]


class NodeCache:
    """LRU + TTL staging cache for one worker node.

    Parameters
    ----------
    name:
        Worker/node name (reported to the eviction callback).
    capacity_mb:
        Disk budget for cached parts.  ``None`` disables the capacity
        limit (TTL and explicit invalidation still apply).
    ttl_s:
        Entries unused for longer than this are treated as expired on the
        next lookup and dropped.  ``None`` disables expiry.
    on_evict:
        Called as ``on_evict(name, key, reason)`` for every entry that
        leaves the cache for any reason other than an explicit
        ``remove(..., silent=True)``.
    """

    def __init__(
        self,
        name: str,
        capacity_mb: Optional[float] = None,
        ttl_s: Optional[float] = None,
        on_evict: Optional[EvictionCallback] = None,
    ) -> None:
        self.name = name
        self.capacity_mb = capacity_mb
        self.ttl_s = ttl_s
        self.on_evict = on_evict
        self._entries: Dict[str, CacheEntry] = {}
        self.evictions = 0

    # -- accounting --------------------------------------------------------
    @property
    def used_mb(self) -> float:
        return sum(e.size_mb for e in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> List[str]:
        return list(self._entries)

    def entry(self, key: str) -> Optional[CacheEntry]:
        return self._entries.get(key)

    # -- lookup ------------------------------------------------------------
    def _expired(self, entry: CacheEntry, now: float) -> bool:
        if self.ttl_s is None or entry.pinned:
            return False
        return (now - entry.last_used) > self.ttl_s

    def has(self, key: str, now: float) -> bool:
        """Whether *key* is resident and fresh (drops it if TTL-expired)."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        if self._expired(entry, now):
            self._drop(key, reason="ttl-expired")
            return False
        return True

    def touch(self, key: str, now: float) -> bool:
        """Mark *key* as used now (refreshes LRU order and TTL)."""
        if not self.has(key, now):
            return False
        self._entries[key].last_used = now
        return True

    # -- admission ---------------------------------------------------------
    def put(
        self,
        key: str,
        size_mb: float,
        now: float,
        pin: Optional[str] = None,
    ) -> bool:
        """Admit *key*; evict LRU unpinned entries to make room.

        Returns ``False`` (and caches nothing) when pinned residents leave
        too little head-room — the part is simply staged without caching.
        """
        existing = self._entries.get(key)
        if existing is not None:
            existing.last_used = now
            existing.size_mb = size_mb
            if pin is not None:
                existing.pins.add(pin)
            return True
        if self.capacity_mb is not None:
            if size_mb > self.capacity_mb:
                return False
            self._sweep_expired(now)
            needed = self.used_mb + size_mb - self.capacity_mb
            if needed > 0 and not self._evict_lru(needed):
                return False
        entry = CacheEntry(key=key, size_mb=size_mb, added_at=now, last_used=now)
        if pin is not None:
            entry.pins.add(pin)
        self._entries[key] = entry
        return True

    def _sweep_expired(self, now: float) -> None:
        for key in list(self._entries):
            entry = self._entries[key]
            if self._expired(entry, now):
                self._drop(key, reason="ttl-expired")

    def _evict_lru(self, needed_mb: float) -> bool:
        """Evict unpinned entries, least recently used first."""
        victims = sorted(
            (e for e in self._entries.values() if not e.pinned),
            key=lambda e: (e.last_used, e.key),
        )
        freeable = sum(e.size_mb for e in victims)
        if freeable < needed_mb:
            return False
        freed = 0.0
        for victim in victims:
            if freed >= needed_mb:
                break
            freed += victim.size_mb
            self._drop(victim.key, reason="capacity")
        return True

    # -- pinning -----------------------------------------------------------
    def pin(self, key: str, session_id: str) -> bool:
        """Pin *key* for *session_id* (no capacity eviction while pinned)."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        entry.pins.add(session_id)
        return True

    def unpin_session(self, session_id: str) -> int:
        """Release every pin held by *session_id*; entries stay cached."""
        count = 0
        for entry in self._entries.values():
            if session_id in entry.pins:
                entry.pins.discard(session_id)
                count += 1
        return count

    # -- removal -----------------------------------------------------------
    def remove(self, key: str, reason: str = "invalidated") -> bool:
        """Forcibly drop *key* (overrides pins — invalidation, not LRU)."""
        if key not in self._entries:
            return False
        self._drop(key, reason=reason)
        return True

    def clear(self, reason: str = "invalidated") -> int:
        """Drop every entry (node failure wipes the staging area)."""
        keys = list(self._entries)
        for key in keys:
            self._drop(key, reason=reason)
        return len(keys)

    def _drop(self, key: str, reason: str) -> None:
        self._entries.pop(key)
        self.evictions += 1
        if self.on_evict is not None:
            self.on_evict(self.name, key, reason)
