"""Replica manager: the facade the session service stages through.

Combines the :class:`~repro.replica.catalog.ReplicaCatalog` (logical →
physical mapping), one :class:`~repro.replica.cache.NodeCache` per worker
(residency, LRU/TTL, pins), and the
:class:`~repro.replica.selector.ReplicaSelector` (network-cost source
choice) behind one API:

* classify each part of an upcoming stage as **local** (the assigned
  worker already caches it), **peer** (another worker's cache can serve
  it point-to-point), **se** (the part file exists on the storage element
  from an earlier split), or **missing** (must be split/queried first);
* *align* the session's engine references so workers holding cached
  parts are assigned exactly those parts — a cached part is only a local
  hit if the part index lands on its holder;
* record new copies (SE whole file, SE part files, worker parts) and pin
  worker parts for the staging session;
* invalidate on node failure and dataset re-registration, keeping the
  worker caches and the catalog mutually consistent.

Consistency invariant: every cache entry has a catalog record and vice
versa (for worker hosts).  Cache evictions unregister the replica;
catalog invalidations drop the cache entry; both directions are
re-entrant-safe because the second removal finds nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.grid.network import Network
from repro.grid.nodes import StorageElement, WorkerNode
from repro.obs import NULL_OBS, Observability
from repro.replica.cache import NodeCache
from repro.replica.catalog import Replica, ReplicaCatalog
from repro.replica.selector import ReplicaSelector
from repro.services.locator import DatasetLocation
from repro.services.splitter import PartDescriptor


@dataclass
class PartSource:
    """Where one part of an upcoming stage will come from.

    ``kind`` is one of ``"local"`` (already on the assigned worker),
    ``"peer"`` (fetched from another worker's cache), ``"se"`` (part file
    resident on the storage element, scatter without a split pass) or
    ``"missing"`` (must be produced by a split/range query first).
    """

    part: PartDescriptor
    key: str
    kind: str
    source: Optional[str] = None

    @property
    def worker(self) -> str:
        return self.part.worker

    @property
    def size_mb(self) -> float:
        return self.part.size_mb


@dataclass
class StagePlan:
    """Classified movement plan for one dataset stage."""

    dataset_id: str
    sources: List[PartSource] = field(default_factory=list)

    def of_kind(self, kind: str) -> List[PartSource]:
        return [s for s in self.sources if s.kind == kind]

    @property
    def local(self) -> List[PartSource]:
        return self.of_kind("local")

    @property
    def peer(self) -> List[PartSource]:
        return self.of_kind("peer")

    @property
    def se(self) -> List[PartSource]:
        return self.of_kind("se")

    @property
    def missing(self) -> List[PartSource]:
        return self.of_kind("missing")

    @property
    def fully_cold(self) -> bool:
        """No reusable copy anywhere: every part must be produced."""
        return len(self.missing) == len(self.sources)


class ReplicaManager:
    """Site-wide replica state: catalog + per-worker caches + selector.

    Parameters
    ----------
    env:
        Simulation environment (supplies timestamps for LRU/TTL).
    network:
        Topology for source-cost estimation.
    storage:
        The storage element (its host name anchors SE replicas).
    workers:
        Worker nodes that get staging caches.
    capacity_mb:
        Per-worker cache budget (``None`` = unlimited).
    ttl_s:
        Per-entry idle time-to-live (``None`` = no expiry).
    se_disk_mbps:
        SE spindle rate, for the selector's backlog term.
    """

    def __init__(
        self,
        env,
        network: Network,
        storage: StorageElement,
        workers: Sequence[WorkerNode],
        capacity_mb: Optional[float] = None,
        ttl_s: Optional[float] = None,
        se_disk_mbps: float = 10.24,
        obs: Optional[Observability] = None,
    ) -> None:
        self.env = env
        self.storage = storage
        self.obs = obs or NULL_OBS
        self.catalog = ReplicaCatalog()
        self.selector = ReplicaSelector(network, storage.name, se_disk_mbps)
        self._workers: Dict[str, WorkerNode] = {w.name: w for w in workers}
        self.caches: Dict[str, NodeCache] = {
            w.name: NodeCache(
                w.name, capacity_mb, ttl_s, on_evict=self._on_evict
            )
            for w in workers
        }
        self.catalog.add_invalidation_hook(self._on_invalidate)
        metrics = self.obs.metrics
        self._hits = metrics.counter(
            "replica_stage_hits_total",
            "Parts served from a replica during staging, by level "
            "(local cache, peer cache, SE part file, whole file)",
        )
        self._misses = metrics.counter(
            "replica_stage_misses_total",
            "Parts with no reusable replica (produced by split/query)",
        )
        self._saved = metrics.counter(
            "replica_bytes_saved_mb_total",
            "Payload MB not re-transferred thanks to replicas",
        )
        self._evicted = metrics.counter(
            "replica_cache_evictions_total",
            "Worker-cache entries dropped, by reason",
        )
        self._invalidated = metrics.counter(
            "replica_invalidations_total",
            "Catalog replicas invalidated, by reason",
        )

    # -- catalog/cache consistency hooks -----------------------------------
    def _on_evict(self, node: str, key: str, reason: str) -> None:
        self._evicted.inc(reason=reason)
        self.obs.events.emit(
            "replica_evicted",
            message=f"{node} dropped {key} ({reason})",
            severity="debug",
            node=node,
            key=key,
            reason=reason,
        )
        self.catalog.unregister(key, node, reason=reason)

    def _on_invalidate(self, replica: Replica, reason: str) -> None:
        self._invalidated.inc(reason=reason)
        self.obs.events.emit(
            "replica_invalidated",
            message=f"{replica.host} replica {replica.key} ({reason})",
            severity="debug",
            host=replica.host,
            key=replica.key,
            reason=reason,
        )
        cache = self.caches.get(replica.host)
        if cache is not None:
            cache.remove(replica.key, reason=reason)

    # -- keys ---------------------------------------------------------------
    def whole_key(self, dataset_id: str) -> str:
        return self.catalog.whole_key(dataset_id)

    def part_keys(
        self,
        dataset_id: str,
        strategy: str,
        parts: Sequence[PartDescriptor],
    ) -> List[str]:
        """Logical keys for a concrete split geometry (worker-independent)."""
        n = len(parts)
        return [
            self.catalog.part_key(
                dataset_id, strategy, n, p.part_index, p.start_event, p.stop_event
            )
            for p in parts
        ]

    # -- whole-file replicas -------------------------------------------------
    def has_whole(self, location: DatasetLocation) -> bool:
        """Whether the whole dataset file is already on the SE.

        Datasets registered without an ``origin_host`` are SE-resident by
        construction; fetched datasets count only once the fetch was
        recorded via :meth:`record_whole`.
        """
        if location.origin_host is None:
            return True
        return self.catalog.has(
            self.whole_key(location.dataset_id), self.storage.name
        )

    def record_whole(self, location: DatasetLocation) -> None:
        """Record the SE copy of the whole file (after a WAN fetch)."""
        self.catalog.register(
            self.whole_key(location.dataset_id),
            location.dataset_id,
            self.storage.name,
            location.size_mb,
            now=self.env.now,
        )

    def forget_whole(
        self, dataset_id: str, reason: str = "evicted"
    ) -> bool:
        """Drop the SE whole-file copy (federation byte-pressure eviction).

        Only the whole-file replica goes; split part files and worker
        caches survive (they serve same-geometry restages until the next
        generation bump).  Returns whether a copy was actually dropped.
        Datasets resident by construction (no ``origin_host``) have no
        whole-file record and return ``False`` — the home copy cannot be
        evicted.
        """
        key = self.whole_key(dataset_id)
        if not self.catalog.has(key, self.storage.name):
            return False
        self.catalog.unregister(key, self.storage.name, reason=reason)
        return True

    def resident_mb(self) -> float:
        """Total MB of valid replicas this site holds (SE + worker caches)."""
        return self.catalog.total_mb()

    # -- residency queries ----------------------------------------------------
    def worker_has(self, worker: str, key: str) -> bool:
        """Fresh cache hit on a healthy worker (TTL enforced here)."""
        node = self._workers.get(worker)
        if node is None or node.failed or node.link_down:
            return False
        cache = self.caches.get(worker)
        return cache is not None and cache.has(key, self.env.now)

    def se_has_part(self, key: str) -> bool:
        return self.catalog.has(key, self.storage.name)

    # -- reference alignment ---------------------------------------------------
    def align_references(self, references: Sequence, keys: Sequence[str]):
        """Permute engine references so cached parts land on their holders.

        ``references`` are the session's
        :class:`~repro.services.registry.EngineReference` objects in
        current part order; ``keys`` the part keys for the same geometry.
        Each part index greedily claims a reference whose worker caches
        that part; leftover references fill the remaining slots in their
        original order, so an all-cold stage is a no-op permutation.
        """
        remaining = list(references)
        aligned: List = [None] * len(keys)
        for index, key in enumerate(keys):
            for ref in remaining:
                if self.worker_has(ref.worker, key):
                    aligned[index] = ref
                    remaining.remove(ref)
                    break
        for index in range(len(aligned)):
            if aligned[index] is None:
                aligned[index] = remaining.pop(0)
        return aligned

    # -- stage planning ---------------------------------------------------------
    def plan_sources(
        self,
        location: DatasetLocation,
        strategy: str,
        parts: Sequence[PartDescriptor],
        keys: Optional[Sequence[str]] = None,
    ) -> StagePlan:
        """Classify every part as local / peer / se / missing.

        Peer-vs-SE choice is cost-based: the selector charges the SE the
        serial spindle backlog of parts already planned from it, so once
        the spindle queue builds up a peer cache becomes the cheaper
        source — peer-to-peer fetches absorb exactly the overflow.
        """
        if keys is None:
            keys = self.part_keys(location.dataset_id, strategy, parts)
        plan = StagePlan(dataset_id=location.dataset_id)
        queued_se_mb = 0.0
        for part, key in zip(parts, keys):
            if self.worker_has(part.worker, key):
                plan.sources.append(PartSource(part, key, "local"))
                continue
            candidates = [
                replica.host
                for replica in self.catalog.holders(key)
                if replica.host != part.worker
                and (
                    replica.host == self.storage.name
                    or self.worker_has(replica.host, key)
                )
            ]
            choice = self.selector.choose(
                part.worker, part.size_mb, candidates, queued_se_mb
            )
            if choice is None:
                plan.sources.append(PartSource(part, key, "missing"))
                queued_se_mb += part.size_mb  # the split will scatter it
            elif choice.host == self.storage.name:
                plan.sources.append(
                    PartSource(part, key, "se", source=choice.host)
                )
                queued_se_mb += part.size_mb
            else:
                plan.sources.append(
                    PartSource(part, key, "peer", source=choice.host)
                )
        return plan

    def note_stage(self, plan: StagePlan, fetch_skipped_mb: float = 0.0) -> None:
        """Account a stage's hit/miss/bytes-saved metrics."""
        for kind in ("local", "peer", "se"):
            hits = plan.of_kind(kind)
            if hits:
                self._hits.inc(len(hits), level=kind)
        if plan.missing:
            self._misses.inc(len(plan.missing))
        saved = sum(s.size_mb for s in plan.local) + fetch_skipped_mb
        if saved:
            self._saved.inc(saved)
        if fetch_skipped_mb:
            self._hits.inc(level="whole")

    # -- registration -------------------------------------------------------
    def record_se_part(
        self, dataset_id: str, key: str, size_mb: float
    ) -> None:
        """Record a part file produced on the SE by a split pass."""
        self.catalog.register(
            key, dataset_id, self.storage.name, size_mb, now=self.env.now
        )

    def record_worker_part(
        self,
        dataset_id: str,
        key: str,
        worker: str,
        size_mb: float,
        session_id: Optional[str] = None,
    ) -> bool:
        """Admit a staged part into *worker*'s cache and the catalog.

        Returns ``False`` (nothing recorded) when the cache cannot make
        room — the part is still staged on disk for the session, it just
        will not be reusable afterwards.
        """
        cache = self.caches.get(worker)
        if cache is None:
            return False
        if not cache.put(key, size_mb, now=self.env.now, pin=session_id):
            return False
        self.catalog.register(
            key, dataset_id, worker, size_mb, now=self.env.now
        )
        return True

    def touch(self, worker: str, key: str, session_id: Optional[str] = None) -> None:
        """Refresh LRU order for a local hit and optionally pin it."""
        cache = self.caches.get(worker)
        if cache is None:
            return
        cache.touch(key, self.env.now)
        if session_id is not None:
            cache.pin(key, session_id)

    def unpin_session(self, session_id: str) -> None:
        """Release every pin the session holds (close / dataset switch)."""
        for cache in self.caches.values():
            cache.unpin_session(session_id)

    # -- invalidation --------------------------------------------------------
    def invalidate_host(self, host: str, reason: str = "node-failure") -> int:
        """Node died: drop every replica it held (pins do not protect)."""
        count = self.catalog.invalidate_host(host, reason=reason)
        cache = self.caches.get(host)
        if cache is not None:
            cache.clear(reason=reason)
        return count

    def invalidate_dataset(self, dataset_id: str, reason: str = "invalidated") -> int:
        return self.catalog.invalidate_dataset(dataset_id, reason=reason)

    def dataset_updated(
        self, dataset_id: str, site_id: Optional[str] = None
    ) -> int:
        """Dataset re-registered: bump the generation, killing old replicas.

        ``site_id`` identifies the originating site when the update comes
        through a locator hook; a single-site manager invalidates its own
        copies either way, the parameter exists so federated catalogs can
        fan the same callback out per site without over-invalidating.
        """
        del site_id  # single-site manager: all local copies die regardless
        return self.catalog.bump_generation(dataset_id)

    # -- placement affinity ----------------------------------------------------
    def preferred_workers(self, dataset_id: str) -> List[str]:
        """Workers ranked by cached MB of *dataset_id* (most first).

        Feeds the scheduler's data-affinity placement: engines land on
        nodes that already hold parts of the dataset they will analyze.
        """
        totals = self.catalog.hosts_with_dataset(dataset_id)
        ranked = [
            (mb, host)
            for host, mb in totals.items()
            if host in self._workers
            and not self._workers[host].failed
        ]
        ranked.sort(key=lambda item: (-item[0], item[1]))
        return [host for _mb, host in ranked]
