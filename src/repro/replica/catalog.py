"""Replica catalog: logical dataset objects → physical copies.

The catalog maps *logical keys* — a whole dataset file or one split part —
to the hosts that hold a physical copy (the storage element, or a worker
node's staging cache).  Keys embed the dataset's *generation*: when a
dataset is re-registered (its content replaced), the generation is bumped
and every replica of the old generation is invalidated, so a stale copy
can never satisfy a lookup for the new content.

Part keys embed the full split geometry (strategy, part count, event
range), because a cached part is only reusable by a session that would
split the dataset identically.  A 4-way part is useless to an 8-way
session — the keys simply never match.

Invalidation removes the record *and* fires the registered hooks, which
is how worker caches, metrics, and the resilience layer stay coherent:
the catalog is the single source of truth for "who holds what", and a
replica that is not in the catalog is never served.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


class ReplicaError(Exception):
    """Raised on invalid replica-catalog operations."""


@dataclass
class Replica:
    """One physical copy of a logical object on one host.

    Attributes
    ----------
    key:
        Logical object key (whole-file or part key, generation included).
    dataset_id:
        The dataset the object belongs to.
    host:
        Network host holding the copy (``"se"`` or a worker name).
    size_mb:
        Physical size of the copy.
    generation:
        Dataset generation the copy was cut from.
    registered_at:
        Simulated time of registration.
    valid:
        Flipped to ``False`` on invalidation; invalid replicas are never
        returned by lookups (kept only on the hook's view of the event).
    """

    key: str
    dataset_id: str
    host: str
    size_mb: float
    generation: int
    registered_at: float
    valid: bool = True


#: Signature of invalidation hooks: ``hook(replica, reason)``.
InvalidationHook = Callable[[Replica, str], None]


class ReplicaCatalog:
    """Registry of dataset/part replicas with generations and hooks."""

    def __init__(self) -> None:
        #: dataset id -> current generation (0 until first bump).
        self._generations: Dict[str, int] = {}
        #: logical key -> host -> replica record.
        self._replicas: Dict[str, Dict[str, Replica]] = {}
        #: dataset id -> keys ever registered for it (for invalidation).
        self._dataset_keys: Dict[str, set] = {}
        self._hooks: List[InvalidationHook] = []
        #: Monotonic counters (for tests/diagnostics).
        self.invalidations = 0
        self.registrations = 0

    # -- generations -------------------------------------------------------
    def generation(self, dataset_id: str) -> int:
        """Current generation of *dataset_id* (0 when never re-registered)."""
        return self._generations.get(dataset_id, 0)

    def bump_generation(self, dataset_id: str) -> int:
        """Re-registration of a dataset: new generation, old replicas die.

        Every replica of every older generation is invalidated (reason
        ``"re-registration"``), so no copy of the previous content can be
        served against the new dataset id.  Returns the new generation.
        """
        self.invalidate_dataset(dataset_id, reason="re-registration")
        new_gen = self.generation(dataset_id) + 1
        self._generations[dataset_id] = new_gen
        return new_gen

    # -- keys --------------------------------------------------------------
    def whole_key(self, dataset_id: str) -> str:
        """Logical key of the whole dataset file at its current generation."""
        return f"{dataset_id}@g{self.generation(dataset_id)}/whole"

    def part_key(
        self,
        dataset_id: str,
        strategy: str,
        n_parts: int,
        part_index: int,
        start_event: int,
        stop_event: int,
    ) -> str:
        """Logical key of one split part at the current generation.

        The key pins the whole split geometry: parts cut under a different
        strategy or fan-out never collide.
        """
        return (
            f"{dataset_id}@g{self.generation(dataset_id)}"
            f"/{strategy}/{n_parts}/{part_index}:{start_event}-{stop_event}"
        )

    # -- registration ------------------------------------------------------
    def register(
        self,
        key: str,
        dataset_id: str,
        host: str,
        size_mb: float,
        now: float = 0.0,
    ) -> Replica:
        """Record that *host* holds a copy of *key* (idempotent refresh)."""
        if size_mb < 0:
            raise ReplicaError("size_mb must be >= 0")
        replica = Replica(
            key=key,
            dataset_id=dataset_id,
            host=host,
            size_mb=size_mb,
            generation=self.generation(dataset_id),
            registered_at=now,
        )
        self._replicas.setdefault(key, {})[host] = replica
        self._dataset_keys.setdefault(dataset_id, set()).add(key)
        self.registrations += 1
        return replica

    def unregister(self, key: str, host: str, reason: str = "eviction") -> bool:
        """Drop one replica record (cache eviction); fires the hooks."""
        holders = self._replicas.get(key)
        if not holders or host not in holders:
            return False
        replica = holders.pop(host)
        if not holders:
            self._replicas.pop(key, None)
        replica.valid = False
        self.invalidations += 1
        for hook in self._hooks:
            hook(replica, reason)
        return True

    # -- lookup ------------------------------------------------------------
    def holders(self, key: str) -> List[Replica]:
        """All valid replicas of *key* (possibly empty)."""
        return [r for r in self._replicas.get(key, {}).values() if r.valid]

    def has(self, key: str, host: str) -> bool:
        """Whether *host* holds a valid replica of *key*."""
        replica = self._replicas.get(key, {}).get(host)
        return replica is not None and replica.valid

    def total_mb(self) -> float:
        """Total MB of all valid replicas (federation byte-pressure input)."""
        return sum(
            replica.size_mb
            for holders in self._replicas.values()
            for replica in holders.values()
            if replica.valid
        )

    def hosts_with_dataset(self, dataset_id: str) -> Dict[str, float]:
        """host -> cached MB of the dataset's *current* generation.

        Feeds data-affinity placement: workers already holding parts of the
        dataset rank first when engines are dispatched.
        """
        gen = self.generation(dataset_id)
        totals: Dict[str, float] = {}
        for key in self._dataset_keys.get(dataset_id, ()):  # pragma: no branch
            for replica in self._replicas.get(key, {}).values():
                if replica.valid and replica.generation == gen:
                    totals[replica.host] = (
                        totals.get(replica.host, 0.0) + replica.size_mb
                    )
        return totals

    # -- invalidation ------------------------------------------------------
    def add_invalidation_hook(self, hook: InvalidationHook) -> None:
        """Call *hook(replica, reason)* whenever a replica is invalidated."""
        self._hooks.append(hook)

    def invalidate_host(self, host: str, reason: str = "node-failure") -> int:
        """Invalidate every replica on *host* (node died / disk lost)."""
        count = 0
        for key in list(self._replicas):
            if host in self._replicas.get(key, {}):
                if self.unregister(key, host, reason=reason):
                    count += 1
        return count

    def invalidate_dataset(
        self, dataset_id: str, reason: str = "invalidated"
    ) -> int:
        """Invalidate every replica of every generation of *dataset_id*."""
        count = 0
        for key in list(self._dataset_keys.get(dataset_id, ())):
            for host in list(self._replicas.get(key, {})):
                if self.unregister(key, host, reason=reason):
                    count += 1
            self._dataset_keys.get(dataset_id, set()).discard(key)
        return count

    def __len__(self) -> int:
        return sum(len(holders) for holders in self._replicas.values())
