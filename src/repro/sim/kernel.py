"""Core discrete-event simulation kernel: events, processes, environment.

The design mirrors SimPy's proven architecture but is intentionally small and
fully deterministic: the event queue is ordered by ``(time, priority,
sequence-number)`` so two runs with the same inputs produce identical traces.

Concepts
--------
*Event*
    Something that will happen at a point in simulated time.  An event is
    first *triggered* (given a value and scheduled) and later *processed*
    (its callbacks run and waiting processes resume).
*Process*
    A Python generator wrapped so that each ``yield <event>`` suspends the
    process until the event is processed.  The generator's return value
    becomes the value of the process event itself, so processes can wait on
    each other.
*Environment*
    Owns the clock and the event heap, and drives everything through
    :meth:`Environment.step` / :meth:`Environment.run`.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.sim.errors import Interrupt, SimulationError, StopSimulation

#: Scheduling priority for events that must run before normal events at the
#: same timestamp (e.g. interrupts).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

_UNSET = object()


class Event:
    """A happening at a point in simulated time.

    Events move through three states:

    1. *pending* — created, not yet triggered;
    2. *triggered* — given a value/exception and placed on the event heap;
    3. *processed* — popped from the heap; callbacks have run.

    Processes wait on events by ``yield``-ing them.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables ``cb(event)`` invoked when the event is processed.
        #: ``None`` once processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _UNSET
        self._ok: Optional[bool] = None
        # A failed event whose exception was "defused" (handled by a waiting
        # process) does not crash the simulation.
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """``True`` once the event has a value and is (or was) scheduled."""
        return self._value is not _UNSET

    @property
    def processed(self) -> bool:
        """``True`` once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is _UNSET:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The exception of a failed event, else ``None``."""
        if self._ok is False:
            return self._value
        return None

    def defused(self) -> None:
        """Mark a failed event as handled so it will not crash the run."""
        self._defused = True

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value* and schedule it."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with *exception* and schedule it."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy success/failure state from another (triggered) event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed *delay* of simulated time."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout({self.delay}) at {id(self):#x}>"


class Initialize(Event):
    """Internal event that starts a newly created :class:`Process`."""

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env.schedule(self, priority=URGENT)


class Interruption(Event):
    """Internal urgent event that delivers an :class:`Interrupt`."""

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        if process.triggered:
            raise RuntimeError("cannot interrupt a terminated process")
        if process is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks.append(self._interrupt)
        self.env.schedule(self, priority=URGENT)

    def _interrupt(self, event: "Event") -> None:
        proc = self.process
        if proc.triggered:
            return  # Process finished before the interrupt was delivered.
        # Detach the process from whatever it was waiting on, then resume it
        # with the failing interrupt event.
        if proc._target is not None and proc._target.callbacks is not None:
            try:
                proc._target.callbacks.remove(proc._resume)
            except ValueError:
                pass
        proc._resume(self)


class Process(Event):
    """A running generator; also an event that fires when it terminates.

    Yield events from the generator to wait for them; the value sent back
    into the generator is the event's value.  If the awaited event failed,
    its exception is thrown into the generator (and thereby *defused*).
    """

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on.
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not terminated."""
        return self._value is _UNSET

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into this process as soon as possible."""
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with *event*'s outcome until it blocks."""
        self.env._active_proc = self
        while True:
            try:
                if event._ok:
                    target = self._generator.send(event._value)
                else:
                    # The waiting process handles the failure: defuse it.
                    event._defused = True
                    exc = event._value
                    target = self._generator.throw(exc)
            except StopIteration as stop:
                self._target = None
                self.env._active_proc = None
                self.succeed(stop.value)
                return
            except BaseException as exc:  # generator crashed
                self._target = None
                self.env._active_proc = None
                self.fail(exc)
                return

            if not isinstance(target, Event):
                # Push the error back into the generator so the traceback
                # points at the offending yield.
                event = Event(self.env)
                event._ok = False
                event._value = SimulationError(
                    f"process yielded non-event {target!r}"
                )
                event._defused = False
                continue
            if target.callbacks is not None:
                # Not yet processed: wait for it.
                target.callbacks.append(self._resume)
                self._target = target
                break
            # Already processed: continue immediately with its outcome.
            event = target
        self.env._active_proc = None

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", self._generator)
        return f"<Process({name}) at {id(self):#x}>"


class Condition(Event):
    """Waits for a combination of *events* per an evaluation function."""

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise ValueError("events belong to different environments")
        # Immediately check already-processed events, subscribe to the rest.
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)
        if not self._events and not self.triggered:
            self.succeed(ConditionValue())

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    def _collect_values(self) -> "ConditionValue":
        result = ConditionValue()
        for event in self._events:
            # Only events that have actually been *processed* count; a
            # Timeout is triggered at creation but has not happened yet.
            if event.callbacks is None and event._ok:
                result.events.append(event)
        return result


class ConditionValue:
    """Ordered mapping of the events (and values) a condition collected."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(key)
        return key.value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def values(self) -> List[Any]:
        """Values of the collected events, in creation order."""
        return [event.value for event in self.events]

    def __repr__(self) -> str:
        return f"<ConditionValue {self.values()!r}>"


class AllOf(Condition):
    """Condition that fires once *all* events have fired."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda evs, n: n >= len(evs), events)


class AnyOf(Condition):
    """Condition that fires once *any one* event has fired."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda evs, n: n >= 1 or not evs, events)


class Environment:
    """The simulation environment: virtual clock plus event heap.

    Parameters
    ----------
    initial_time:
        Starting value of the clock (simulated seconds).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_proc: Optional[Process] = None

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing after *delay* seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` from *generator*."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition event firing when all *events* have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition event firing when any of *events* has fired."""
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------
    def schedule(
        self, event: Event, priority: int = NORMAL, delay: float = 0.0
    ) -> None:
        """Place a triggered *event* on the heap ``delay`` seconds from now."""
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next event; raises :class:`EmptySchedule` when done."""
        if not self._queue:
            raise EmptySchedule()
        self._now, _, _, event = heapq.heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            # Nobody handled the failure: crash the simulation.
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run until the heap is empty, a time, or an event.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain; a number — run until the
            clock reaches it; an :class:`Event` — run until it is processed
            and return its value.
        """
        stop: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
                if stop.callbacks is None:  # already processed
                    return stop.value
                stop.callbacks.append(StopSimulation.callback)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until ({at}) must not be before now ({self._now})"
                    )
                stop = Event(self)
                stop._ok = True
                stop._value = None
                stop.callbacks.append(StopSimulation.callback)
                self.schedule(stop, priority=URGENT, delay=at - self._now)
        try:
            while True:
                self.step()
        except StopSimulation as stopped:
            return stopped.args[0]
        except EmptySchedule:
            if stop is not None and not stop.triggered:
                if isinstance(until, Event):
                    raise SimulationError(
                        "no scheduled events left but until event was not "
                        "triggered"
                    ) from None
            return None


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""
