"""Exception types for the discrete-event simulation kernel."""

from __future__ import annotations

from typing import Any


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at a target event.

    The triggering event's value is carried in ``args[0]``.
    """

    @classmethod
    def callback(cls, event: Any) -> None:
        """Event callback that stops the simulation with the event's value."""
        if event.ok:
            raise cls(event.value)
        raise event.exception


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called on it.

    Parameters
    ----------
    cause:
        Arbitrary object describing why the interrupt happened.  Available
        as :attr:`cause` in the handler.
    """

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0] if self.args else None
