"""Exception types for the discrete-event simulation kernel."""

from __future__ import annotations

from typing import Any


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at a target event.

    The triggering event's value is carried in ``args[0]``.
    """

    @classmethod
    def callback(cls, event: Any) -> None:
        """Event callback that stops the simulation with the event's value."""
        if event.ok:
            raise cls(event.value)
        raise event.exception


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called on it.

    Parameters
    ----------
    cause:
        Arbitrary object describing why the interrupt happened.  Available
        as :attr:`cause` in the handler.
    """

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0] if self.args else None


class NodeFailure(SimulationError):
    """Base class for simulated infrastructure failures.

    Used as the *cause* of kernel interrupts (and raised directly by the
    network layer) so every consumer — scheduler, session service, tests —
    can distinguish infrastructure loss from application errors by type
    instead of comparing bare interrupt-cause strings.

    Parameters
    ----------
    node:
        Name of the failed node (or link, for :class:`LinkDown`).
    detail:
        Optional human-readable context.
    """

    def __init__(self, node: str, detail: str = "") -> None:
        message = f"{type(self).__name__}({node!r})"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.node = node
        self.detail = detail


class NodeCrash(NodeFailure):
    """The node died abruptly: its processes stop and never come back."""


class NodeHang(NodeFailure):
    """The node froze: its processes stop making progress but the job
    never terminates — only missing heartbeats reveal the failure."""


class LinkDown(NodeFailure):
    """A network link went down; in-flight flows crossing it fail."""
