"""Shared-resource primitives for the simulation kernel.

``Resource``
    A counted resource (e.g. CPU slots on a worker, scheduler slots).
    Processes *request* a unit, possibly queueing, and *release* it.
``PriorityResource``
    Like ``Resource`` but the wait queue is ordered by a numeric priority
    (lower value = served first).  Used for the dedicated "interactive"
    scheduler queue the paper calls for.
``Store``
    A FIFO buffer of Python objects with blocking ``put``/``get``.
``Container``
    A continuous quantity (e.g. bytes of disk) with blocking ``put``/``get``.
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Any, List, Optional

from repro.sim.kernel import Environment, Event


class Request(Event):
    """Event returned by :meth:`Resource.request`.

    Usable as a context manager so the unit is always released::

        with resource.request() as req:
            yield req
            ... # hold the resource
    """

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.usage_since: Optional[float] = None

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a queued request (no-op if already granted)."""
        self.resource._cancel(self)


class PriorityRequest(Request):
    """Request with a priority; lower values are granted first."""

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        self.priority = priority
        super().__init__(resource)


class Resource:
    """A resource with integer ``capacity`` and a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self.env = env
        self._capacity = capacity
        self.users: List[Request] = []
        self.queue: List[Request] = []

    @property
    def capacity(self) -> int:
        """Total number of units."""
        return self._capacity

    @property
    def count(self) -> int:
        """Number of units currently in use."""
        return len(self.users)

    def request(self) -> Request:
        """Request one unit; the returned event fires when granted."""
        req = Request(self)
        self.queue.append(req)
        self._trigger()
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted unit (idempotent)."""
        if request in self.users:
            self.users.remove(request)
        else:
            self._cancel(request)
        self._trigger()

    def _cancel(self, request: Request) -> None:
        if not request.triggered and request in self.queue:
            self.queue.remove(request)

    def _trigger(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            req = self._pop_next()
            req.usage_since = self.env.now
            self.users.append(req)
            req.succeed()

    def _pop_next(self) -> Request:
        return self.queue.pop(0)


class PriorityResource(Resource):
    """Resource whose queue is served in ``(priority, fifo)`` order."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._heap: List[tuple] = []
        self._seq = count()

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        """Request one unit with *priority* (lower = more urgent)."""
        req = PriorityRequest(self, priority)
        heappush(self._heap, (priority, next(self._seq), req))
        self.queue.append(req)
        self._trigger()
        return req

    def _cancel(self, request: Request) -> None:
        super()._cancel(request)
        # Lazy deletion from the heap: entries for cancelled requests are
        # skipped in _pop_next.

    def _pop_next(self) -> Request:
        while self._heap:
            _, _, req = heappop(self._heap)
            if req in self.queue:
                self.queue.remove(req)
                return req
        raise RuntimeError("priority heap out of sync with queue")


class StorePut(Event):
    """Event returned by :meth:`Store.put`; fires once the item is stored."""

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; its value is the item."""

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)


class Store:
    """FIFO buffer of arbitrary items with optional capacity."""

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._putters: List[StorePut] = []
        self._getters: List[StoreGet] = []

    def put(self, item: Any) -> StorePut:
        """Insert *item*; blocks (the event) while the store is full."""
        event = StorePut(self, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self) -> StoreGet:
        """Remove and return the oldest item; blocks while empty."""
        event = StoreGet(self)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and len(self.items) < self.capacity:
                put = self._putters.pop(0)
                self.items.append(put.item)
                put.succeed()
                progressed = True
            if self._getters and self.items:
                get = self._getters.pop(0)
                get.succeed(self.items.pop(0))
                progressed = True

    def __len__(self) -> int:
        return len(self.items)


class ContainerPut(Event):
    """Event for :meth:`Container.put`."""

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError("amount must be > 0")
        super().__init__(container.env)
        self.amount = amount


class ContainerGet(Event):
    """Event for :meth:`Container.get`."""

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError("amount must be > 0")
        super().__init__(container.env)
        self.amount = amount


class Container:
    """A continuous quantity between 0 and ``capacity``."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._putters: List[ContainerPut] = []
        self._getters: List[ContainerGet] = []

    @property
    def level(self) -> float:
        """Current amount stored."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Add *amount*; blocks while it would exceed capacity."""
        event = ContainerPut(self, amount)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self, amount: float) -> ContainerGet:
        """Take *amount*; blocks while the level is insufficient."""
        event = ContainerGet(self, amount)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if (
                self._putters
                and self._level + self._putters[0].amount <= self.capacity
            ):
                put = self._putters.pop(0)
                self._level += put.amount
                put.succeed()
                progressed = True
            if self._getters and self._getters[0].amount <= self._level:
                get = self._getters.pop(0)
                self._level -= get.amount
                get.succeed(get.amount)
                progressed = True
