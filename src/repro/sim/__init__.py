"""Discrete-event simulation kernel used by the simulated Grid substrate.

This package provides a small, self-contained, deterministic discrete-event
simulator in the style of SimPy: an :class:`~repro.sim.kernel.Environment`
advances a virtual clock by processing events in time order, and *processes*
(Python generators) model concurrent activities by yielding events they wait
on.

Everything in the IPA reproduction that measures *time* — WAN/LAN transfers,
dataset splitting, scheduler queues, engine start-up, analysis compute — runs
on this kernel, so a "45 minute" experiment from the paper completes in
milliseconds of wall-clock while preserving the timing structure.

Public API
----------
``Environment``
    The event loop and virtual clock.
``Process``, ``Timeout``, ``Event``, ``AnyOf``, ``AllOf``
    Event primitives.
``Resource``, ``PriorityResource``, ``Store``, ``Container``
    Shared-resource primitives with queueing.
``Interrupt``
    Exception raised inside a process that another process interrupted.
``NodeFailure``, ``NodeCrash``, ``NodeHang``, ``LinkDown``
    Typed infrastructure-failure causes used by the fault-injection and
    recovery subsystem (:mod:`repro.resilience`).
"""

from repro.sim.errors import (
    Interrupt,
    LinkDown,
    NodeCrash,
    NodeFailure,
    NodeHang,
    SimulationError,
    StopSimulation,
)
from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Process,
    Timeout,
)
from repro.sim.resources import Container, PriorityResource, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "LinkDown",
    "NodeCrash",
    "NodeFailure",
    "NodeHang",
    "PriorityResource",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "StopSimulation",
    "Timeout",
]
