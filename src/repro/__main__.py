"""``python -m repro`` — run the quickstart demo from the command line.

Options::

    python -m repro                 # 4-worker demo, Higgs search
    python -m repro --nodes 16      # paper-scale node count
    python -m repro --size-mb 471   # paper-scale dataset
"""

from __future__ import annotations

import argparse

from repro.analysis import higgs
from repro.client import IPAClient, dashboard
from repro.core import GridSite, SiteConfig


def main(argv=None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="IPA demo: interactive parallel Higgs analysis on a "
        "simulated grid",
    )
    parser.add_argument("--nodes", type=int, default=4, help="worker nodes")
    parser.add_argument(
        "--size-mb", type=float, default=50.0, help="dataset size in MB"
    )
    parser.add_argument(
        "--events", type=int, default=5000, help="events in the dataset"
    )
    parser.add_argument("--seed", type=int, default=2006, help="content seed")
    args = parser.parse_args(argv)

    site = GridSite(SiteConfig(n_workers=args.nodes))
    site.register_dataset(
        "demo",
        "/demo",
        size_mb=args.size_mb,
        n_events=args.events,
        metadata={"experiment": "ilc"},
        content={"kind": "ilc", "seed": args.seed},
    )
    client = IPAClient(site, site.enroll_user("/O=ILC/CN=demo-user"))

    def scenario():
        info = yield from client.obtain_proxy_and_connect()
        print(f"session ready: {info.n_engines} engines")
        staged = yield from client.select_dataset("demo")
        print(f"staged {staged.size_mb:.0f} MB in {staged.stage_seconds:.1f} s")
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()
        final = yield from client.wait_for_completion(poll_interval=5.0)
        print(dashboard(final.tree, final.progress, max_objects=1))
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    print(f"total: {site.env.now:.1f} simulated seconds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
