"""Bounded structured event log with subscriptions and JSONL export.

Metrics answer "how much"; traces answer "where did the time go"; the
event log answers "what happened" — the discrete, operator-significant
state transitions of a run: a fault was detected, an engine was
quarantined, a replica was evicted, a checkpoint committed, an SLO
breached.  Every record is typed (``kind``), timestamped on the simulated
clock, and carries free-form attributes.

The log is **bounded**: it keeps the newest ``capacity`` events and
counts what it dropped, so a week-long chaos run cannot grow it without
limit.  Subscribers receive every event at emit time (before any
eviction), which is how the dashboard and tests observe transitions
live; per-kind all-time counts survive eviction too.

When observability is disabled, :data:`NULL_EVENT_LOG` swallows
everything at the cost of one attribute lookup and call — the same
contract as the null tracer and registry.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


#: Canonical event kinds emitted by the instrumented runtime.  ``emit``
#: accepts any kind string — this tuple documents (and tests pin) the
#: vocabulary the built-in instrumentation uses.
EVENT_KINDS = (
    "session_created",
    "session_closed",
    "session_admitted",
    "admission_rejected",
    "fault_injected",
    "fault_detected",
    "engine_quarantined",
    "engine_redispatched",
    "replica_evicted",
    "replica_invalidated",
    "transfer_failed",
    "gram_unavailable",
    "checkpoint_committed",
    "service_crash",
    "service_recovered",
    "tier_configured",
    "combiner_crash",
    "combiner_retired",
    "slo_breach",
    "slo_recovered",
    "straggler_detected",
    "straggler_recovered",
    "federation_session_brokered",
    "federation_failover",
    "federation_replica_migrated",
    "federation_replica_evicted",
    "site_partitioned",
    "site_healed",
)

#: Recognised severities, in increasing order of alarm.
SEVERITIES = ("debug", "info", "warning", "error")


@dataclass(frozen=True)
class Event:
    """One structured event on the simulated clock."""

    seq: int
    time: float
    kind: str
    severity: str = "info"
    message: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (what the JSONL export contains)."""
        return {
            "seq": self.seq,
            "time": self.time,
            "kind": self.kind,
            "severity": self.severity,
            "message": self.message,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Event":
        """Rebuild an event from its dict form."""
        return cls(
            seq=int(record["seq"]),
            time=float(record["time"]),
            kind=str(record["kind"]),
            severity=str(record.get("severity", "info")),
            message=str(record.get("message", "")),
            attrs=dict(record.get("attrs", {})),
        )


class EventLog:
    """Bounded in-memory log of :class:`Event` records.

    Parameters
    ----------
    env:
        Simulation environment (events are stamped with ``env.now``).
    capacity:
        Newest events kept; older ones are dropped (and counted in
        :attr:`dropped`).
    """

    enabled = True

    def __init__(self, env, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._subscribers: List[tuple] = []
        self._counts: Dict[str, int] = {}
        #: Events evicted by the capacity bound (all-time).
        self.dropped = 0
        self._seq = 0

    # -- emission ---------------------------------------------------------
    def emit(
        self,
        kind: str,
        /,
        message: str = "",
        severity: str = "info",
        **attrs: Any,
    ) -> Event:
        """Record one event now; notifies subscribers before bounding."""
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}")
        self._seq += 1
        event = Event(
            seq=self._seq,
            time=self.env.now,
            kind=kind,
            severity=severity,
            message=message,
            attrs=attrs,
        )
        self._counts[kind] = self._counts.get(kind, 0) + 1
        for want_kind, callback in list(self._subscribers):
            if want_kind is None or want_kind == kind:
                callback(event)
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        return event

    # -- subscriptions ----------------------------------------------------
    def subscribe(
        self,
        callback: Callable[[Event], None],
        kind: Optional[str] = None,
    ) -> Callable[[], None]:
        """Call *callback* on every emit (optionally one *kind* only).

        Returns an unsubscribe function.  Subscriber exceptions propagate
        to the emitter — the simulation is deterministic, so a broken
        subscriber should fail the run loudly rather than silently drop
        telemetry.
        """
        entry = (kind, callback)
        self._subscribers.append(entry)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(entry)
            except ValueError:
                pass

        return unsubscribe

    # -- queries ----------------------------------------------------------
    def events(
        self,
        kind: Optional[str] = None,
        severity: Optional[str] = None,
        since: Optional[float] = None,
    ) -> List[Event]:
        """Retained events (oldest first), optionally filtered."""
        out = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if severity is not None and event.severity != severity:
                continue
            if since is not None and event.time < since:
                continue
            out.append(event)
        return out

    def tail(self, n: int = 10) -> List[Event]:
        """The newest *n* retained events, oldest first."""
        if n <= 0:
            return []
        return list(self._events)[-n:]

    def counts(self) -> Dict[str, int]:
        """All-time per-kind emit counts (survive capacity eviction)."""
        return dict(sorted(self._counts.items()))

    def __len__(self) -> int:
        return len(self._events)

    # -- export -----------------------------------------------------------
    def to_jsonl(self) -> str:
        """Serialize the retained events, one JSON object per line."""
        return "\n".join(
            json.dumps(event.to_dict(), sort_keys=True)
            for event in self._events
        )


def events_from_jsonl(text: str) -> List[Event]:
    """Parse a JSONL event dump back into :class:`Event` records."""
    out = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            out.append(Event.from_dict(json.loads(line)))
    return out


def render_events(
    events: List[Event], limit: Optional[int] = None
) -> str:
    """Human-readable one-line-per-event rendering (newest last)."""
    rows = events[-limit:] if limit is not None else events
    if not rows:
        return "(no events)"
    lines = []
    for event in rows:
        attrs = " ".join(
            f"{k}={event.attrs[k]}" for k in sorted(event.attrs)
        )
        parts = [f"[{event.time:10.2f}]", f"{event.severity:<7}", event.kind]
        if event.message:
            parts.append(event.message)
        if attrs:
            parts.append(f"({attrs})")
        lines.append(" ".join(parts))
    return "\n".join(lines)


class NullEventLog:
    """Event log stand-in whose every operation is free (or nearly so)."""

    enabled = False
    env = None
    capacity = 0
    dropped = 0

    def emit(self, kind, /, message="", severity="info", **attrs) -> None:
        return None

    def subscribe(self, callback, kind=None) -> Callable[[], None]:
        return lambda: None

    def events(self, kind=None, severity=None, since=None) -> list:
        return []

    def tail(self, n: int = 10) -> list:
        return []

    def counts(self) -> dict:
        return {}

    def to_jsonl(self) -> str:
        return ""

    def __len__(self) -> int:
        return 0


NULL_EVENT_LOG = NullEventLog()
