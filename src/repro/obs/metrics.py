"""Labeled metrics: Counter / Gauge / Histogram plus a registry.

The design follows the Prometheus data model (the de-facto lingua franca
of grid/cluster monitoring): a metric has a name, a help string and a set
of **labeled series**; counters only go up, gauges go both ways, and
histograms count observations into cumulative ``le`` buckets (exponential
bucket ladders suit latencies, whose interesting range spans decades —
RMI polls at 50 ms next to 100 s staging passes).

Everything is plain in-process bookkeeping on the simulated clock's side:
no threads, no wall clock, fully deterministic.  When observability is
disabled the :data:`NULL_REGISTRY` hands out no-op metrics so call sites
pay a single attribute lookup and method call.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple


class MetricError(Exception):
    """Raised on invalid metric names, types, or observations."""


LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    """Canonical, hashable form of a label set (sorted by label name)."""
    if not labels:  # fast path: most hot series are unlabeled
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def exponential_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """``count`` bucket upper bounds: ``start * factor**i``.

    The standard ladder for latency histograms; an implicit ``+Inf``
    bucket is always appended by :class:`Histogram` itself.
    """
    if start <= 0:
        raise MetricError("start must be > 0")
    if factor <= 1:
        raise MetricError("factor must be > 1")
    if count < 1:
        raise MetricError("count must be >= 1")
    return tuple(start * factor ** i for i in range(count))


#: 5 ms .. ~163 s in 16 doubling steps — covers RMI latency through the
#: longest staging phases of the paper's tables.
DEFAULT_LATENCY_BUCKETS = exponential_buckets(0.005, 2.0, 16)


def quantile_from_cumulative(
    pairs: List[Tuple[float, int]], q: float
) -> float:
    """Estimate the *q*-quantile from ``(le, cumulative count)`` pairs.

    Monotone (piecewise-linear) interpolation inside the bucket holding
    the target rank, the same estimate ``histogram_quantile`` computes in
    PromQL: the rank is ``q * total``; observations are assumed uniform
    within a bucket; the first finite bucket interpolates from 0 and the
    ``+Inf`` bucket degrades to the highest finite bound.  Returns ``nan``
    with no observations.  Shared by :meth:`Histogram.quantile` and the
    sliding-window estimators in :mod:`repro.obs.slo`.
    """
    if not 0.0 <= q <= 1.0:
        raise MetricError("quantile must be in [0, 1]")
    if not pairs:
        return float("nan")
    total = pairs[-1][1]
    if total == 0:
        return float("nan")
    rank = q * total
    previous_bound = 0.0
    previous_cum = 0
    for index, (bound, cumulative) in enumerate(pairs):
        if cumulative >= rank:
            if bound == float("inf"):
                # Past the last finite bound there is no upper edge to
                # interpolate toward; report the highest finite bound
                # (or the rank-holding count when there is none).
                return previous_bound if index > 0 else float("nan")
            in_bucket = cumulative - previous_cum
            if in_bucket <= 0:
                return bound
            fraction = (rank - previous_cum) / in_bucket
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_cum = bound, cumulative
    return previous_bound  # pragma: no cover - +Inf pair is always last


class Metric:
    """Base: one named metric holding labeled series."""

    type_name = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not name or not all(c.isalnum() or c in "_:" for c in name):
            raise MetricError(f"invalid metric name {name!r}")
        if name[0].isdigit():
            raise MetricError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._series: Dict[LabelKey, object] = {}

    def series(self) -> Dict[LabelKey, object]:
        """All labeled series (label key -> value/state), sorted by key."""
        return dict(sorted(self._series.items()))

    def labels_seen(self) -> List[LabelKey]:
        """Label keys with at least one recorded value."""
        return sorted(self._series)


class Counter(Metric):
    """Monotonically increasing count (events, bytes, retries...)."""

    type_name = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add *amount* (>= 0) to the labeled series."""
        if amount < 0:
            raise MetricError("counters can only increase")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value of one labeled series (0 when never incremented)."""
        return float(self._series.get(_label_key(labels), 0.0))

    def total(self) -> float:
        """Sum over every labeled series."""
        return float(sum(self._series.values()))


class Gauge(Metric):
    """A value that goes up and down (queue depth, live engines...)."""

    type_name = "gauge"

    def set(self, value: float, **labels: object) -> None:
        """Set the labeled series to *value*."""
        self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add *amount* (may be negative) to the labeled series."""
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        """Subtract *amount* from the labeled series."""
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        """Current value of one labeled series (0 when never set)."""
        return float(self._series.get(_label_key(labels), 0.0))


class _HistogramSeries:
    """Per-label-set histogram state: bucket counts, sum, count."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets  # per-bucket (non-cumulative)
        self.sum = 0.0
        self.count = 0


class Histogram(Metric):
    """Observation distribution over fixed ``le`` (<=) buckets."""

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Iterable[float]] = None,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        if not bounds:
            raise MetricError("histogram needs at least one bucket")
        if list(bounds) != sorted(bounds):
            raise MetricError("bucket bounds must be sorted ascending")
        if len(set(bounds)) != len(bounds):
            raise MetricError("bucket bounds must be distinct")
        #: Finite upper bounds; an implicit +Inf bucket follows them.
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in bounds)

    def _get(self, labels: Dict[str, object]) -> _HistogramSeries:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries(len(self.buckets) + 1)
            self._series[key] = series
        return series

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation (``value <= bound`` lands in a bucket)."""
        series = self._get(labels)
        # First bound >= value, i.e. the smallest bucket whose ``le``
        # admits the observation; past the last bound this is +Inf.
        index = bisect_left(self.buckets, value)
        series.counts[index] += 1
        series.sum += value
        series.count += 1

    def count(self, **labels: object) -> int:
        """Total observations in one labeled series."""
        series = self._series.get(_label_key(labels))
        return series.count if series is not None else 0

    def total(self, **labels: object) -> float:
        """Sum of observed values in one labeled series."""
        series = self._series.get(_label_key(labels))
        return series.sum if series is not None else 0.0

    def mean(self, **labels: object) -> float:
        """Mean observation (0 when empty)."""
        series = self._series.get(_label_key(labels))
        if series is None or series.count == 0:
            return 0.0
        return series.sum / series.count

    def quantile(self, q: float, **labels: object) -> float:
        """Estimated *q*-quantile of one labeled series.

        Monotone interpolation over the cumulative bucket counts (see
        :func:`quantile_from_cumulative`); the error is bounded by the
        width of the bucket holding the target rank.  ``nan`` when the
        series has no observations.
        """
        return quantile_from_cumulative(
            self.cumulative_counts(**labels), q
        )

    def cumulative_counts(self, **labels: object) -> List[Tuple[float, int]]:
        """Prometheus-style ``(le, cumulative count)`` pairs, +Inf last."""
        series = self._series.get(_label_key(labels))
        counts = (
            series.counts
            if series is not None
            else [0] * (len(self.buckets) + 1)
        )
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(list(self.buckets) + [float("inf")], counts):
            running += n
            out.append((bound, running))
        return out


class MetricsRegistry:
    """Get-or-create store of named metrics.

    Re-requesting a name returns the existing instance; requesting it as a
    different type (or a histogram with different buckets) is an error —
    mismatched series would silently corrupt dashboards otherwise.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise MetricError(
                    f"metric {name!r} already registered as "
                    f"{existing.type_name}"
                )
            if cls is Histogram and kwargs.get("buckets") is not None:
                if tuple(kwargs["buckets"]) != existing.buckets:
                    raise MetricError(
                        f"histogram {name!r} already registered with "
                        f"different buckets"
                    )
            return existing
        metric = cls(name, help, **kwargs) if kwargs else cls(name, help)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Iterable[float]] = None,
    ) -> Histogram:
        """Get or create a :class:`Histogram`."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    @property
    def metrics(self) -> List[Metric]:
        """Registered metrics sorted by name."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def get(self, name: str) -> Optional[Metric]:
        """Look up a metric by name (``None`` when absent)."""
        return self._metrics.get(name)


class _NullMetric:
    """Shared no-op stand-in for every metric type when disabled."""

    type_name = "null"
    name = "null"
    help = ""
    buckets: Tuple[float, ...] = ()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass

    def value(self, **labels: object) -> float:
        return 0.0

    def total(self, **labels: object) -> float:
        return 0.0

    def count(self, **labels: object) -> int:
        return 0

    def mean(self, **labels: object) -> float:
        return 0.0

    def quantile(self, q: float, **labels: object) -> float:
        return 0.0

    def series(self) -> dict:
        return {}

    def cumulative_counts(self, **labels: object) -> list:
        return []


NULL_METRIC = _NullMetric()


class NullRegistry:
    """Registry that hands out :data:`NULL_METRIC` for everything."""

    enabled = False
    metrics: List[Metric] = []

    def counter(self, name: str, help: str = "") -> _NullMetric:
        return NULL_METRIC

    def gauge(self, name: str, help: str = "") -> _NullMetric:
        return NULL_METRIC

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Iterable[float]] = None,
    ) -> _NullMetric:
        return NULL_METRIC

    def get(self, name: str) -> None:
        return None


NULL_REGISTRY = NullRegistry()
