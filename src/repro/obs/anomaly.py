"""Straggler detection: per-engine rates, robust z-scores, hint emission.

A 16-way interactive session is only as fast as its slowest engine, so
the telemetry plane watches three per-engine signals, all windowed on the
simulated clock:

* **event rate** — events/s derived from the cumulative
  ``events_processed`` counters riding on every AIDA snapshot;
* **snapshot lag** — seconds since the engine's last snapshot reached
  the manager;
* **heartbeat jitter** — the engine's largest recent gap between beats.

Detection uses the **robust (modified) z-score**: ``0.6745 * (x - median)
/ MAD``.  Unlike the mean/stddev z-score, one pathological engine cannot
drag the baseline toward itself — the median and MAD are computed over
the cohort, so a single 4x-slow node among 16 sticks out at |z| ≈ 10
instead of inflating the standard deviation it is judged against.  When
the cohort is so uniform that the MAD is zero (common in a deterministic
simulation), the mean absolute deviation about the median is used as the
scale instead.

Flag/unflag transitions are emitted as ``straggler_detected`` /
``straggler_recovered`` events.  Detection stays **advisory**: the
session monitor reads :meth:`AnomalyMonitor.stragglers` each sweep and
turns reports into *hints* — scheduler deprioritization and earlier
heartbeat suspicion — never into direct kills (a slow engine still
produces correct results; only the heartbeat monitor declares death).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional


#: Φ⁻¹(0.75): scales the MAD to estimate σ under normality, making the
#: modified z-score comparable to an ordinary z-score.
MAD_SCALE = 0.6745

#: Default |z| above which an engine is flagged.
DEFAULT_THRESHOLD = 3.5


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def robust_zscores(values: Dict[str, float]) -> Dict[str, float]:
    """Modified z-score of every entry against the cohort median.

    ``z = 0.6745 * (x - median) / MAD``; falls back to the mean absolute
    deviation about the median when the MAD is zero, and to all-zeros
    when every value is identical.
    """
    if len(values) < 2:
        return {key: 0.0 for key in values}
    center = _median(list(values.values()))
    deviations = [abs(v - center) for v in values.values()]
    scale = _median(deviations)
    if scale == 0.0:
        scale = sum(deviations) / len(deviations)
    if scale == 0.0:
        return {key: 0.0 for key in values}
    return {
        key: MAD_SCALE * (value - center) / scale
        for key, value in values.items()
    }


@dataclass(frozen=True)
class StragglerReport:
    """One flagged engine with the evidence that flagged it."""

    session_id: str
    engine_id: str
    score: float  # signed modified z of the triggering signal
    signal: str  # "rate" | "lag" | "jitter"
    value: float  # the engine's value of that signal
    median: float  # the cohort median of that signal
    signals: Dict[str, float] = field(default_factory=dict)


class _EngineSeries:
    """Windowed raw signals of one engine."""

    __slots__ = ("progress", "beats")

    def __init__(self) -> None:
        #: (time, cumulative events_processed) from accepted snapshots.
        self.progress: deque = deque()
        #: (time, gap_seconds) from registry heartbeats.
        self.beats: deque = deque()


class AnomalyMonitor:
    """Per-session, per-engine rate tracking + straggler detection.

    Parameters
    ----------
    env:
        Simulation environment.
    events:
        Optional event log for flag/unflag transitions.
    metrics:
        Optional metrics registry (``straggler_flags_total`` counter and
        ``straggler_engines`` gauge).
    window_s:
        Sliding window over which rates/lags/jitter are computed.
    threshold:
        |modified z| at which an engine is flagged.
    clear_threshold:
        |z| below which a flagged engine is unflagged (hysteresis so a
        borderline engine does not flap every sweep).
    min_engines:
        Cohort size required before any detection runs — medians over
        tiny cohorts are noise.
    min_points:
        Snapshot observations an engine needs in-window before its rate
        participates.
    """

    enabled = True

    def __init__(
        self,
        env,
        events=None,
        metrics=None,
        window_s: float = 60.0,
        threshold: float = DEFAULT_THRESHOLD,
        clear_threshold: Optional[float] = None,
        min_engines: int = 4,
        min_points: int = 2,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be > 0")
        if threshold <= 0:
            raise ValueError("threshold must be > 0")
        self.env = env
        self.events = events
        self.metrics = metrics
        self.window_s = window_s
        self.threshold = threshold
        self.clear_threshold = (
            clear_threshold if clear_threshold is not None else threshold / 2
        )
        self.min_engines = min_engines
        self.min_points = min_points
        self._series: Dict[str, Dict[str, _EngineSeries]] = {}
        self._flagged: Dict[str, Dict[str, StragglerReport]] = {}

    # -- signal ingestion --------------------------------------------------
    def _engine(self, session_id: str, engine_id: str) -> _EngineSeries:
        session = self._series.setdefault(session_id, {})
        series = session.get(engine_id)
        if series is None:
            series = _EngineSeries()
            session[engine_id] = series
        return series

    def record_snapshot(
        self, session_id: str, engine_id: str, events_processed: int
    ) -> None:
        """Feed one accepted snapshot's cumulative progress counter."""
        series = self._engine(session_id, engine_id)
        series.progress.append((self.env.now, float(events_processed)))
        self._prune(series.progress)

    def record_heartbeat(
        self, session_id: str, engine_id: str, gap: float
    ) -> None:
        """Feed one heartbeat gap (seconds between consecutive beats)."""
        series = self._engine(session_id, engine_id)
        series.beats.append((self.env.now, float(gap)))
        self._prune(series.beats)

    def _prune(self, items: deque) -> None:
        horizon = self.env.now - self.window_s
        while items and items[0][0] < horizon:
            items.popleft()

    def forget_engine(self, session_id: str, engine_id: str) -> None:
        """Drop an engine's series and flag (quarantined or shut down)."""
        self._series.get(session_id, {}).pop(engine_id, None)
        flagged = self._flagged.get(session_id, {})
        if flagged.pop(engine_id, None) is not None:
            self._set_flag_gauge(session_id)

    def forget_session(self, session_id: str) -> None:
        """Drop every series of a session (close); idempotent."""
        self._series.pop(session_id, None)
        if self._flagged.pop(session_id, None):
            self._set_flag_gauge(session_id)

    # -- windowed signals --------------------------------------------------
    def rates(self, session_id: str) -> Dict[str, float]:
        """events/s per engine over the window (engines with data only)."""
        out: Dict[str, float] = {}
        for engine_id, series in self._series.get(session_id, {}).items():
            self._prune(series.progress)
            points = series.progress
            if len(points) < self.min_points:
                continue
            (t0, e0), (t1, e1) = points[0], points[-1]
            if t1 <= t0:
                continue
            out[engine_id] = (e1 - e0) / (t1 - t0)
        return out

    def snapshot_lags(self, session_id: str) -> Dict[str, float]:
        """Seconds since each engine's newest snapshot."""
        now = self.env.now
        out: Dict[str, float] = {}
        for engine_id, series in self._series.get(session_id, {}).items():
            if series.progress:
                out[engine_id] = now - series.progress[-1][0]
        return out

    def heartbeat_jitter(self, session_id: str) -> Dict[str, float]:
        """Largest in-window heartbeat gap per engine."""
        out: Dict[str, float] = {}
        for engine_id, series in self._series.get(session_id, {}).items():
            self._prune(series.beats)
            if series.beats:
                out[engine_id] = max(gap for _, gap in series.beats)
        return out

    # -- detection ---------------------------------------------------------
    def detect(self, session_id: str) -> List[StragglerReport]:
        """Run one detection sweep; returns the currently flagged set.

        Transitions (newly flagged / recovered) are emitted as events.
        An engine is flagged when its event rate sits ``threshold`` robust
        z-scores *below* the cohort median, or its snapshot lag sits that
        far *above*; heartbeat jitter is reported as supporting evidence.
        Flags clear with hysteresis at ``clear_threshold``.
        """
        flagged = self._flagged.setdefault(session_id, {})
        rates = self.rates(session_id)
        lags = self.snapshot_lags(session_id)
        jitter = self.heartbeat_jitter(session_id)
        if len(rates) < self.min_engines:
            return sorted(flagged.values(), key=lambda r: r.engine_id)
        rate_z = robust_zscores(rates)
        lag_z = robust_zscores(lags)
        jitter_z = robust_zscores(jitter)
        rate_median = _median(list(rates.values()))
        lag_median = _median(list(lags.values())) if lags else 0.0
        for engine_id in sorted(rates):
            z_rate = rate_z.get(engine_id, 0.0)
            z_lag = lag_z.get(engine_id, 0.0)
            z_jitter = jitter_z.get(engine_id, 0.0)
            signals = {
                "rate_z": z_rate,
                "lag_z": z_lag,
                "jitter_z": z_jitter,
            }
            # One-sided: only slow (low-rate) or silent (high-lag) engines
            # are stragglers; an unusually fast engine is not a problem.
            severity = max(-z_rate, z_lag)
            if engine_id not in flagged and severity >= self.threshold:
                if -z_rate >= z_lag:
                    report = StragglerReport(
                        session_id,
                        engine_id,
                        score=z_rate,
                        signal="rate",
                        value=rates[engine_id],
                        median=rate_median,
                        signals=signals,
                    )
                else:
                    report = StragglerReport(
                        session_id,
                        engine_id,
                        score=z_lag,
                        signal="lag",
                        value=lags.get(engine_id, 0.0),
                        median=lag_median,
                        signals=signals,
                    )
                flagged[engine_id] = report
                if self.metrics is not None:
                    self.metrics.counter(
                        "straggler_flags_total",
                        "Engines flagged as stragglers",
                    ).inc(signal=report.signal)
                if self.events is not None:
                    self.events.emit(
                        "straggler_detected",
                        message=(
                            f"{engine_id}: {report.signal} "
                            f"{report.value:.3g} vs median "
                            f"{report.median:.3g} (z={report.score:.1f})"
                        ),
                        severity="warning",
                        session=session_id,
                        engine=engine_id,
                        signal=report.signal,
                        score=report.score,
                        value=report.value,
                        median=report.median,
                    )
                self._set_flag_gauge(session_id)
            elif engine_id in flagged and severity <= self.clear_threshold:
                report = flagged.pop(engine_id)
                if self.events is not None:
                    self.events.emit(
                        "straggler_recovered",
                        message=f"{engine_id}: back within the cohort",
                        session=session_id,
                        engine=engine_id,
                        signal=report.signal,
                    )
                self._set_flag_gauge(session_id)
        return sorted(flagged.values(), key=lambda r: r.engine_id)

    def _set_flag_gauge(self, session_id: str) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "straggler_engines",
                "Engines currently flagged as stragglers",
            ).set(len(self._flagged.get(session_id, {})), session=session_id)

    def stragglers(self, session_id: str) -> List[StragglerReport]:
        """Currently flagged engines (no detection sweep), sorted."""
        return sorted(
            self._flagged.get(session_id, {}).values(),
            key=lambda r: r.engine_id,
        )


class NullAnomalyMonitor:
    """Anomaly monitor stand-in: every operation is free (or nearly so)."""

    enabled = False
    env = None
    events = None
    metrics = None
    window_s = 0.0
    threshold = DEFAULT_THRESHOLD

    def record_snapshot(self, session_id, engine_id, events_processed) -> None:
        pass

    def record_heartbeat(self, session_id, engine_id, gap) -> None:
        pass

    def forget_engine(self, session_id, engine_id) -> None:
        pass

    def forget_session(self, session_id) -> None:
        pass

    def rates(self, session_id) -> dict:
        return {}

    def snapshot_lags(self, session_id) -> dict:
        return {}

    def heartbeat_jitter(self, session_id) -> dict:
        return {}

    def detect(self, session_id) -> list:
        return []

    def stragglers(self, session_id) -> list:
        return []


NULL_ANOMALY_MONITOR = NullAnomalyMonitor()
