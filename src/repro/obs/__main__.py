"""Operator CLI for the telemetry plane: ``python -m repro.obs``.

Render exported telemetry offline, or record a fresh instrumented run:

* ``trace spans.jsonl`` — indented trace tree;
* ``phases spans.jsonl`` — per-phase summary table;
* ``events events.jsonl`` — the structured event log;
* ``profile profile.jsonl`` — folded-stack flame table;
* ``dashboard --events E [--profile P] [--spans S]`` — the status board
  rebuilt from exported artifacts;
* ``record --out DIR`` — run a seeded, fully instrumented 16-node
  session (optionally with an injected slow node) and export
  ``spans.jsonl`` / ``events.jsonl`` / ``profile.jsonl`` /
  ``metrics.prom`` / ``dashboard.txt`` — what the chaos CI job uploads.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional


def _read(path: str) -> str:
    return Path(path).read_text()


def cmd_trace(args: argparse.Namespace) -> str:
    from repro.obs.exporters import render_tree_records, spans_from_jsonl

    return render_tree_records(
        spans_from_jsonl(_read(args.file)), max_depth=args.max_depth
    )


def cmd_phases(args: argparse.Namespace) -> str:
    from repro.obs.exporters import phase_summary_records, spans_from_jsonl

    return phase_summary_records(spans_from_jsonl(_read(args.file)))


def cmd_events(args: argparse.Namespace) -> str:
    from repro.obs.events import events_from_jsonl, render_events

    events = events_from_jsonl(_read(args.file))
    if args.kind:
        events = [e for e in events if e.kind == args.kind]
    return render_events(events, limit=args.tail)


def cmd_profile(args: argparse.Namespace) -> str:
    from repro.obs.profile import profile_from_jsonl, render_profile

    return render_profile(
        profile_from_jsonl(_read(args.file)), limit=args.limit
    )


def cmd_dashboard(args: argparse.Namespace) -> str:
    from repro.obs.dashboard import board_from_jsonl

    return board_from_jsonl(
        events_text=_read(args.events) if args.events else None,
        profile_text=_read(args.profile) if args.profile else None,
        spans_text=_read(args.spans) if args.spans else None,
    )


def record_run(
    out_dir: Path,
    nodes: int = 16,
    size_mb: float = 480.0,
    n_events: int = 160_000,
    slow_worker: Optional[str] = None,
    slow_factor: float = 4.0,
    seed: int = 0,
    sample_period: float = 2.0,
) -> dict:
    """Run one instrumented session and export its telemetry artifacts.

    Returns a small summary dict (session id, breach/straggler counts,
    artifact paths) so tests and the CI job can assert on the result.
    """
    from repro.analysis import higgs
    from repro.client.client import IPAClient
    from repro.core.site import GridSite, SiteConfig
    from repro.obs.dashboard import render_board
    from repro.obs.exporters import metrics_to_prometheus, trace_to_jsonl
    from repro.obs.profile import SamplingProfiler, profile_to_jsonl

    site = GridSite(
        SiteConfig(n_workers=nodes, enable_observability=True)
    )
    site.register_dataset(
        "ds-telemetry",
        "/test/ds-telemetry",
        size_mb=size_mb,
        n_events=n_events,
        metadata={"experiment": "ilc"},
        content={"kind": "ilc", "seed": seed},
    )
    client = IPAClient(site, site.enroll_user("/O=ILC/CN=telemetry"))
    profiler = SamplingProfiler(site.obs, period=sample_period)
    profiler.install(site.env)
    out: dict = {}

    def scenario():
        info = yield from client.obtain_proxy_and_connect(n_engines=nodes)
        out["session_id"] = info.session_id
        yield from client.select_dataset("ds-telemetry")
        yield from client.upload_code(higgs.SOURCE)
        yield from client.run()
        if slow_worker is not None:
            # Let the engines publish once, then degrade the victim.
            while site.aida.snapshot_count(info.session_id) < nodes:
                yield site.env.timeout(1.0)
            site.injector.slow_worker(slow_worker, slow_factor)
        final = yield from client.wait_for_completion(
            poll_interval=5.0, timeout=100_000.0
        )
        out["events_processed"] = final.progress.events_processed
        out["board"] = render_board(
            site.obs,
            session_service=site.session_service,
            session_id=info.session_id,
        )
        yield from client.close()

    site.env.run(until=site.env.process(scenario()))
    profiler.stop()

    out_dir.mkdir(parents=True, exist_ok=True)
    artifacts = {
        "spans": out_dir / "spans.jsonl",
        "events": out_dir / "events.jsonl",
        "profile": out_dir / "profile.jsonl",
        "metrics": out_dir / "metrics.prom",
        "dashboard": out_dir / "dashboard.txt",
    }
    artifacts["spans"].write_text(trace_to_jsonl(site.obs.tracer) + "\n")
    artifacts["events"].write_text(site.obs.events.to_jsonl() + "\n")
    artifacts["profile"].write_text(
        profile_to_jsonl(profiler.weights) + "\n"
    )
    artifacts["metrics"].write_text(
        metrics_to_prometheus(site.obs.metrics)
    )
    artifacts["dashboard"].write_text(out["board"] + "\n")

    counts = site.obs.events.counts()
    out["paths"] = {name: str(path) for name, path in artifacts.items()}
    out["slo_breaches"] = counts.get("slo_breach", 0)
    out["stragglers_flagged"] = counts.get("straggler_detected", 0)
    out["event_counts"] = counts
    return out


def cmd_record(args: argparse.Namespace) -> str:
    slow_worker = None
    slow_factor = 4.0
    if args.slow:
        slow_worker, _, factor_text = args.slow.partition(":")
        if factor_text:
            slow_factor = float(factor_text)
    summary = record_run(
        Path(args.out),
        nodes=args.nodes,
        size_mb=args.size_mb,
        n_events=args.events,
        slow_worker=slow_worker,
        slow_factor=slow_factor,
        seed=args.seed,
    )
    lines = [
        f"session: {summary['session_id']}",
        f"events processed: {summary['events_processed']}",
        f"slo breaches: {summary['slo_breaches']}",
        f"stragglers flagged: {summary['stragglers_flagged']}",
        "artifacts:",
    ]
    lines.extend(
        f"  {name}: {path}" for name, path in sorted(summary["paths"].items())
    )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render exported telemetry or record an instrumented run.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("trace", help="render a trace tree from spans JSONL")
    p.add_argument("file")
    p.add_argument("--max-depth", type=int, default=None)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("phases", help="per-phase summary from spans JSONL")
    p.add_argument("file")
    p.set_defaults(func=cmd_phases)

    p = sub.add_parser("events", help="render an event log from JSONL")
    p.add_argument("file")
    p.add_argument("--kind", default=None)
    p.add_argument("--tail", type=int, default=None)
    p.set_defaults(func=cmd_events)

    p = sub.add_parser("profile", help="render a folded profile from JSONL")
    p.add_argument("file")
    p.add_argument("--limit", type=int, default=None)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "dashboard", help="rebuild the status board from exported JSONL"
    )
    p.add_argument("--events", default=None)
    p.add_argument("--profile", default=None)
    p.add_argument("--spans", default=None)
    p.set_defaults(func=cmd_dashboard)

    p = sub.add_parser(
        "record", help="run an instrumented session and export telemetry"
    )
    p.add_argument("--out", required=True)
    p.add_argument("--nodes", type=int, default=16)
    p.add_argument("--size-mb", type=float, default=480.0)
    p.add_argument("--events", type=int, default=160_000)
    p.add_argument(
        "--slow",
        default=None,
        metavar="WORKER[:FACTOR]",
        help="inject a slow-node fault mid-run (e.g. w3:4)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_record)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    print(args.func(args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
