"""Continuous profiling: folded span stacks on the simulated clock.

Two complementary views of where a session's time goes, both expressed in
the collapsed "flame graph" format (``phase;subphase;detail weight``):

* :func:`fold_records` — a **deterministic exact fold** over the finished
  trace.  Every phase-tagged span is swept boundary-by-boundary; each
  elementary time slice is attributed to the deepest descendant span
  active during it (the span's ancestor chain becomes the stack), and
  time no descendant covers is the phase's self time.  Per phase, the
  folded weights are anchored so they **sum exactly to the phase total**
  that :func:`repro.obs.exporters.phase_totals` (and therefore
  ``GridBreakdown``) reports — the profile and the paper tables can never
  disagree.
* :class:`SamplingProfiler` — a **live sampler**: a simulation process
  that wakes every ``period`` simulated seconds and folds the currently
  *open* span stacks, the way a wall-clock profiler samples threads.
  Cheap, available mid-run (it feeds the dashboard), and statistically
  convergent to the exact fold as the period shrinks.

Both emit/ingest one-object-per-line JSONL so profiles ride the same
export path as traces and events.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional

from repro.obs.trace import Span, Tracer


FrameWeights = Dict[str, float]


# -- exact fold over finished spans ---------------------------------------

def _clip(
    start: float, end: float, lo: float, hi: float
) -> Optional[tuple]:
    clipped_start = max(start, lo)
    clipped_end = min(end, hi)
    if clipped_end <= clipped_start:
        return None
    return (clipped_start, clipped_end)


def fold_records(records: List[Dict[str, Any]]) -> FrameWeights:
    """Exact folded stacks from span dicts (see module docstring).

    Only spans tagged with a ``phase`` attribute root a fold; their
    finished descendants (clipped to the root's interval) form the
    stacks.  Anchoring guarantees, per phase::

        math.fsum(w for stack, w in weights.items()
                  if stack == phase or stack.startswith(phase + ";"))
        == sum of that phase's root durations
    """
    finished = [r for r in records if r.get("end") is not None]
    children: Dict[str, List[Dict[str, Any]]] = {}
    for record in finished:
        parent = record.get("parent_id")
        if parent:
            children.setdefault(parent, []).append(record)

    weights: FrameWeights = {}
    phase_targets: Dict[str, float] = {}

    for root in finished:
        phase = (root.get("attrs") or {}).get("phase")
        if phase is None:
            continue
        phase = str(phase)
        lo, hi = root["start"], root["end"]
        phase_targets[phase] = phase_targets.get(phase, 0.0) + (hi - lo)
        weights.setdefault(phase, 0.0)
        if hi <= lo:
            continue

        # Depth-first collection of descendants, remembering each one's
        # stack path (names below the root) and depth.
        entries = []  # (clipped_start, clipped_end, depth, seq, path)
        stack = [(root, 0, ())]
        seq = 0
        while stack:
            node, depth, path = stack.pop()
            for child in children.get(node["span_id"], ()):  # start order
                interval = _clip(child["start"], child["end"], lo, hi)
                child_path = path + (child["name"],)
                if interval is not None:
                    seq += 1
                    entries.append(
                        (interval[0], interval[1], depth + 1, seq, child_path)
                    )
                stack.append((child, depth + 1, child_path))

        if not entries:
            weights[phase] += hi - lo
            continue

        boundaries = sorted(
            {lo, hi}
            | {e[0] for e in entries}
            | {e[1] for e in entries}
        )
        for left, right in zip(boundaries, boundaries[1:]):
            active = [
                e for e in entries if e[0] <= left and e[1] >= right
            ]
            if not active:
                key = phase  # self time: no descendant covers this slice
            else:
                # Deepest active span wins the slice; ties go to the most
                # recently started (largest seq) — the innermost frame.
                _, _, _, _, path = max(
                    active, key=lambda e: (e[2], e[3])
                )
                key = ";".join((phase,) + path)
            weights[key] = weights.get(key, 0.0) + (right - left)

    # Anchor: adjust each phase's self-time entry until the folded sum is
    # bit-equal to the phase total (float addition of slice lengths can
    # round away from end-start; fsum is order-independent, so nudging one
    # entry converges in a step or two).
    for phase, target in phase_targets.items():
        keys = [
            k for k in weights if k == phase or k.startswith(phase + ";")
        ]
        for _ in range(8):
            total = math.fsum(weights[k] for k in keys)
            if total == target:
                break
            weights[phase] += target - total
    return weights


def fold_tracer(tracer: Tracer) -> FrameWeights:
    """Exact folded stacks of a live tracer's finished spans."""
    from repro.obs.exporters import span_to_dict

    return fold_records(
        [span_to_dict(span) for span in tracer.finished_spans()]
    )


def phase_weights(weights: FrameWeights) -> Dict[str, float]:
    """Per-phase folded totals (``fsum`` over each phase's stacks)."""
    phases: Dict[str, List[float]] = {}
    for stack, weight in weights.items():
        phase = stack.split(";", 1)[0]
        phases.setdefault(phase, []).append(weight)
    return {
        phase: math.fsum(values) for phase, values in sorted(phases.items())
    }


# -- live sampling profiler ------------------------------------------------

class SamplingProfiler:
    """Samples open span stacks every ``period`` simulated seconds.

    Install on an enabled :class:`~repro.obs.Observability` and start:

    >>> profiler = SamplingProfiler(obs, period=1.0)
    >>> profiler.install(env)          # doctest: +SKIP

    Each tick attributes ``period`` seconds to every currently open leaf
    span's stack (rooted at the nearest phase-tagged ancestor when one
    exists).  With observability disabled, :meth:`install` is a no-op.
    """

    def __init__(self, obs, period: float = 1.0) -> None:
        if period <= 0:
            raise ValueError("period must be > 0")
        self.obs = obs
        self.period = period
        self.weights: FrameWeights = {}
        self.samples = 0
        self._proc = None

    def install(self, env):
        """Start the sampling loop; returns the process (or ``None``)."""
        if not getattr(self.obs, "enabled", False):
            return None
        self._proc = env.process(self._run(env))
        return self._proc

    def stop(self) -> None:
        """Stop the sampling loop (idempotent)."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("profiler-stop")
        self._proc = None

    def _run(self, env):
        from repro.sim import Interrupt

        try:
            while True:
                yield env.timeout(self.period)
                self.sample()
        except Interrupt:
            return

    def sample(self) -> int:
        """Fold the currently open span stacks once; returns leaf count."""
        tracer = self.obs.tracer
        open_spans = [s for s in tracer.spans if s.end is None]
        if not open_spans:
            return 0
        self.samples += 1
        by_id: Dict[str, Span] = {s.span_id: s for s in open_spans}
        has_open_child = {
            s.parent_id for s in open_spans if s.parent_id in by_id
        }
        leaves = [s for s in open_spans if s.span_id not in has_open_child]
        for leaf in leaves:
            names: List[str] = []
            phase: Optional[str] = None
            node: Optional[Span] = leaf
            while node is not None:
                names.append(node.name)
                if phase is None and node.attrs.get("phase") is not None:
                    phase = str(node.attrs["phase"])
                node = by_id.get(node.parent_id)
            names.reverse()
            if phase is not None:
                names.insert(0, phase)
            stack = ";".join(names)
            self.weights[stack] = self.weights.get(stack, 0.0) + self.period
        return len(leaves)


# -- export / rendering ----------------------------------------------------

def profile_to_jsonl(weights: FrameWeights) -> str:
    """One ``{"stack": ..., "weight": ...}`` object per line, sorted."""
    return "\n".join(
        json.dumps({"stack": stack, "weight": weights[stack]},
                   sort_keys=True)
        for stack in sorted(weights)
    )


def profile_from_jsonl(text: str) -> FrameWeights:
    """Parse a profile JSONL dump back into folded weights."""
    weights: FrameWeights = {}
    for line in text.splitlines():
        line = line.strip()
        if line:
            record = json.loads(line)
            weights[str(record["stack"])] = float(record["weight"])
    return weights


def folded_lines(weights: FrameWeights) -> str:
    """The classic collapsed-stack format: ``stack weight`` per line."""
    return "\n".join(
        f"{stack} {weights[stack]:g}" for stack in sorted(weights)
    )


def render_profile(
    weights: FrameWeights, width: int = 40, limit: Optional[int] = None
) -> str:
    """ASCII flame-table: heaviest stacks first with proportional bars."""
    if not weights:
        return "(no profile samples)"
    rows = sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))
    if limit is not None:
        rows = rows[:limit]
    total = math.fsum(w for _, w in weights.items())
    heaviest = rows[0][1] if rows else 0.0
    name_width = max(len("stack"), max(len(s) for s, _ in rows))
    lines = [
        f"{'stack'.ljust(name_width)}  {'seconds':>10}  {'share':>6}",
    ]
    for stack, weight in rows:
        share = weight / total if total else 0.0
        bar = "#" * max(
            1 if weight > 0 else 0,
            int(round(width * (weight / heaviest))) if heaviest else 0,
        )
        lines.append(
            f"{stack.ljust(name_width)}  {weight:10.2f}  {share:6.1%}  {bar}"
        )
    return "\n".join(lines)
