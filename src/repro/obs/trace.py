"""Hierarchical span tracer on the simulated clock.

One session produces one **trace tree**: a root span opened by the client,
service-call spans beneath it (propagated through the message envelope's
``trace_parent`` field), and under those the GRAM submits, GridFTP
transfers, splitter passes, engine lifetimes and AIDA merges.

Because the simulation kernel interleaves many cooperative processes on
one Python thread, a naive "current span" global would leak context
between processes.  :meth:`Tracer.wrap` solves this the way asyncio
contextvars do: it proxies a generator and installs the span as
``current`` only while that generator is actually executing (between a
``send`` and the next ``yield``), restoring the previous span around every
suspension.  Code that runs inside a wrapped generator can therefore call
:meth:`Tracer.child` and always get the right parent, no matter how the
kernel schedules it.

When tracing is disabled, :data:`NULL_TRACER` returns a shared no-op span
and :meth:`NullTracer.wrap` returns the generator unchanged, so the
instrumentation costs one attribute lookup and call per site.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional


class TraceError(Exception):
    """Raised on invalid span operations."""


class Span:
    """A named interval on the simulated clock with a parent link."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "attrs", "status", "_tracer")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: str,
        parent_id: Optional[str],
        start: float,
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs
        self.status = "ok"

    @property
    def finished(self) -> bool:
        """True once the span has an end time."""
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def finish(self, error: Optional[str] = None, **attrs: Any) -> "Span":
        """Close the span at the current simulated time (idempotent)."""
        if attrs:
            self.attrs.update(attrs)
        if error is not None:
            self.status = "error"
            self.attrs.setdefault("error", error)
        if self.end is None:
            self.end = self._tracer.env.now
        return self

    def child(self, name: str, **attrs: Any) -> "Span":
        """Open a new span parented to this one."""
        return self._tracer.start(name, parent=self, **attrs)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish(error=repr(exc) if exc is not None else None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"{self.duration:.3f}s" if self.finished else "open"
        return f"<Span {self.span_id} {self.name!r} {state}>"


class _Activation:
    """Context manager installing a span as the tracer's current."""

    __slots__ = ("_tracer", "_span", "_saved")

    def __init__(self, tracer: "Tracer", span: Optional[Span]) -> None:
        self._tracer = tracer
        self._span = span
        self._saved: Optional[Span] = None

    def __enter__(self) -> Optional[Span]:
        self._saved = self._tracer.current
        self._tracer.current = self._span
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.current = self._saved


class Tracer:
    """Span factory + recorder bound to a simulation environment."""

    enabled = True

    def __init__(self, env) -> None:
        self.env = env
        #: Every span ever started, in start order.
        self.spans: List[Span] = []
        #: The span considered "ambient" for :meth:`child`; managed by
        #: :meth:`activate` / :meth:`wrap`.
        self.current: Optional[Span] = None
        self._seq = 0

    # -- span creation ----------------------------------------------------
    def start(
        self,
        name: str,
        parent: Optional[Span] = None,
        parent_id: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span.  Explicit *parent* wins over *parent_id*; with
        neither, the current span (if any) is the parent."""
        if parent is not None:
            pid: Optional[str] = parent.span_id
        elif parent_id is not None:
            pid = parent_id
        else:
            pid = self.current.span_id if self.current is not None else None
        self._seq += 1
        span = Span(
            self,
            name,
            span_id=f"s{self._seq}",
            parent_id=pid,
            start=self.env.now,
            attrs=dict(attrs),
        )
        self.spans.append(span)
        return span

    def child(self, name: str, **attrs: Any) -> Span:
        """Open a span under the current span (a root span when none)."""
        return self.start(name, **attrs)

    def activate(self, span: Optional[Span]) -> _Activation:
        """Context manager making *span* current for a synchronous block."""
        return _Activation(self, span)

    @property
    def current_id(self) -> Optional[str]:
        """Span id of the current span (for envelope propagation)."""
        return self.current.span_id if self.current is not None else None

    # -- generator context propagation ------------------------------------
    def wrap(
        self, span: Span, gen: Generator, finish: bool = True
    ) -> Generator:
        """Proxy *gen* so *span* is current whenever it executes.

        The proxy forwards every yield/send/throw unchanged, so it is
        transparent to the simulation kernel.  With ``finish=True`` the
        span is closed when the generator returns (or raises, recording
        the error).
        """

        def runner():
            value: Any = None
            error: Optional[BaseException] = None
            while True:
                saved = self.current
                self.current = span
                try:
                    if error is None:
                        target = gen.send(value)
                    else:
                        pending, error = error, None
                        target = gen.throw(pending)
                except StopIteration as stop:
                    if finish:
                        span.finish()
                    return stop.value
                except BaseException as exc:
                    if finish:
                        span.finish(error=repr(exc))
                    raise
                finally:
                    self.current = saved
                try:
                    value = yield target
                except BaseException as exc:  # thrown in while suspended
                    value, error = None, exc

        return runner()

    def trace_gen(
        self,
        name: str,
        gen: Generator,
        parent: Optional[Span] = None,
        parent_id: Optional[str] = None,
        **attrs: Any,
    ) -> Generator:
        """Start a span and wrap *gen* under it in one call."""
        span = self.start(name, parent=parent, parent_id=parent_id, **attrs)
        return self.wrap(span, gen)

    # -- queries ----------------------------------------------------------
    def finished_spans(self) -> List[Span]:
        """Spans with an end time, in start order."""
        return [span for span in self.spans if span.finished]

    def find(self, name: str) -> List[Span]:
        """All spans with the given name, in start order."""
        return [span for span in self.spans if span.name == name]

    def roots(self) -> List[Span]:
        """Spans without a parent, in start order."""
        return [span for span in self.spans if span.parent_id is None]

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of *span*, in start order."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def descendant_names(self, root: Span) -> List[str]:
        """Names of every span in *root*'s subtree (excluding the root)."""
        by_parent: Dict[str, List[Span]] = {}
        for span in self.spans:
            if span.parent_id is not None:
                by_parent.setdefault(span.parent_id, []).append(span)
        out: List[str] = []
        stack = [root]
        while stack:
            node = stack.pop()
            for child in by_parent.get(node.span_id, ()):
                out.append(child.name)
                stack.append(child)
        return sorted(out)


class _NullSpan:
    """Shared do-nothing span used when tracing is disabled."""

    __slots__ = ()

    name = "null"
    span_id = ""
    parent_id = None
    start = 0.0
    end = 0.0
    status = "ok"
    attrs: Dict[str, Any] = {}
    finished = True
    duration = 0.0

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def finish(self, error: Optional[str] = None, **attrs: Any) -> "_NullSpan":
        return self

    def child(self, name: str, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class _NullActivation:
    __slots__ = ()

    def __enter__(self):
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_ACTIVATION = _NullActivation()


class NullTracer:
    """Tracer stand-in whose every operation is free (or nearly so)."""

    enabled = False
    env = None
    spans: List[Span] = []
    current = None
    current_id = None

    def start(self, name, parent=None, parent_id=None, **attrs) -> _NullSpan:
        return NULL_SPAN

    def child(self, name, **attrs) -> _NullSpan:
        return NULL_SPAN

    def activate(self, span) -> _NullActivation:
        return _NULL_ACTIVATION

    def wrap(self, span, gen, finish: bool = True) -> Generator:
        return gen

    def trace_gen(self, name, gen, parent=None, parent_id=None, **attrs):
        return gen

    def finished_spans(self) -> list:
        return []

    def find(self, name) -> list:
        return []

    def roots(self) -> list:
        return []


NULL_TRACER = NullTracer()
