"""Observability layer: the telemetry plane on the simulated clock.

The paper's argument is a timing argument — Tables 1/2 and the cost model
``T_grid = 0.338X + 53 + (62 + 5.3X)/N`` are phase breakdowns of a live
session — so the runtime itself must be able to say where the time goes,
whether the latency objective holds, and which node is dragging.  This
package provides:

* :mod:`repro.obs.metrics` — Counter / Gauge / Histogram with labeled
  series, exponential latency buckets, and bucket-interpolated quantiles;
* :mod:`repro.obs.trace` — a span tracer with correct context propagation
  across interleaved simulation processes;
* :mod:`repro.obs.events` — a bounded structured event log (faults,
  quarantines, evictions, checkpoints, SLO breaches) with subscriptions;
* :mod:`repro.obs.slo` — sliding-window quantile estimators and
  :class:`~repro.obs.slo.SLOPolicy` objectives with error-budget burn;
* :mod:`repro.obs.anomaly` — per-engine rate tracking and robust z-score
  straggler detection feeding scheduler/heartbeat hints;
* :mod:`repro.obs.profile` — folded ``phase;subphase`` stacks, exact (from
  the finished trace) and sampled (live, on the simulated clock);
* :mod:`repro.obs.dashboard` — the ASCII status board, live or from
  exported JSONL;
* :mod:`repro.obs.exporters` — JSON-lines traces, Prometheus text
  exposition, and the per-phase summary that reconciles with
  :mod:`repro.core.timeline` and feeds the paper-table benchmarks.

Everything hangs off one :class:`Observability` handle.  Components take
``obs=None`` and fall back to :data:`NULL_OBS`, whose tracer, registry,
event log, SLO tracker and anomaly monitor are all no-ops —
instrumentation is free when disabled (asserted by
``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.anomaly import (
    NULL_ANOMALY_MONITOR,
    AnomalyMonitor,
    NullAnomalyMonitor,
    StragglerReport,
    robust_zscores,
)
from repro.obs.events import (
    EVENT_KINDS,
    Event,
    EventLog,
    NULL_EVENT_LOG,
    NullEventLog,
    events_from_jsonl,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NULL_METRIC,
    NULL_REGISTRY,
    NullRegistry,
    exponential_buckets,
    quantile_from_cumulative,
)
from repro.obs.slo import (
    NULL_SLO_TRACKER,
    NullSLOTracker,
    SLOError,
    SLOPolicy,
    SLOTracker,
    SlidingReservoir,
    WindowedHistogram,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    TraceError,
    Tracer,
)


class Observability:
    """One handle bundling the whole telemetry plane.

    Parameters
    ----------
    env:
        Simulation environment (spans and windows read its clock).  May
        be ``None`` only when ``enabled=False``.
    enabled:
        With ``False``, every subsystem is the shared no-op singleton.
    event_capacity:
        Bound of the structured event log.
    """

    def __init__(
        self,
        env=None,
        enabled: bool = True,
        event_capacity: int = 2048,
    ) -> None:
        if enabled and env is None:
            raise ValueError("an enabled Observability needs an environment")
        self.enabled = enabled
        self.env = env
        if enabled:
            self.tracer: Tracer = Tracer(env)
            self.metrics: MetricsRegistry = MetricsRegistry()
            self.events: EventLog = EventLog(env, capacity=event_capacity)
            self.slo: SLOTracker = SLOTracker(
                env, events=self.events, metrics=self.metrics
            )
            self.anomaly: AnomalyMonitor = AnomalyMonitor(
                env, events=self.events, metrics=self.metrics
            )
        else:
            self.tracer = NULL_TRACER
            self.metrics = NULL_REGISTRY
            self.events = NULL_EVENT_LOG
            self.slo = NULL_SLO_TRACKER
            self.anomaly = NULL_ANOMALY_MONITOR


#: Shared disabled instance — the default for every instrumented component.
NULL_OBS = Observability(enabled=False)


def ensure_obs(obs: Optional[Observability]) -> Observability:
    """``obs`` itself, or :data:`NULL_OBS` when ``None``."""
    return obs if obs is not None else NULL_OBS


__all__ = [
    "AnomalyMonitor",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "EVENT_KINDS",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NULL_ANOMALY_MONITOR",
    "NULL_EVENT_LOG",
    "NULL_METRIC",
    "NULL_OBS",
    "NULL_REGISTRY",
    "NULL_SLO_TRACKER",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullAnomalyMonitor",
    "NullEventLog",
    "NullRegistry",
    "NullSLOTracker",
    "NullTracer",
    "Observability",
    "SLOError",
    "SLOPolicy",
    "SLOTracker",
    "SlidingReservoir",
    "Span",
    "StragglerReport",
    "TraceError",
    "Tracer",
    "WindowedHistogram",
    "ensure_obs",
    "events_from_jsonl",
    "exponential_buckets",
    "quantile_from_cumulative",
    "robust_zscores",
]
