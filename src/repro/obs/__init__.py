"""Observability layer: metrics + hierarchical tracing on the simulated clock.

The paper's argument is a timing argument — Tables 1/2 and the cost model
``T_grid = 0.338X + 53 + (62 + 5.3X)/N`` are phase breakdowns of a live
session — so the runtime itself must be able to say where the time goes.
This package provides:

* :mod:`repro.obs.metrics` — Counter / Gauge / Histogram with labeled
  series and exponential latency buckets;
* :mod:`repro.obs.trace` — a span tracer with correct context propagation
  across interleaved simulation processes;
* :mod:`repro.obs.exporters` — JSON-lines traces, Prometheus text
  exposition, and the per-phase summary that reconciles with
  :mod:`repro.core.timeline` and feeds the paper-table benchmarks.

Everything hangs off one :class:`Observability` handle.  Components take
``obs=None`` and fall back to :data:`NULL_OBS`, whose tracer and registry
are no-ops — instrumentation is free when disabled (asserted by
``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NULL_METRIC,
    NULL_REGISTRY,
    NullRegistry,
    exponential_buckets,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    TraceError,
    Tracer,
)


class Observability:
    """One handle bundling a tracer and a metrics registry.

    Parameters
    ----------
    env:
        Simulation environment (spans read its clock).  May be ``None``
        only when ``enabled=False``.
    enabled:
        With ``False``, both the tracer and the registry are the shared
        no-op singletons.
    """

    def __init__(self, env=None, enabled: bool = True) -> None:
        if enabled and env is None:
            raise ValueError("an enabled Observability needs an environment")
        self.enabled = enabled
        self.env = env
        if enabled:
            self.tracer: Tracer = Tracer(env)
            self.metrics: MetricsRegistry = MetricsRegistry()
        else:
            self.tracer = NULL_TRACER
            self.metrics = NULL_REGISTRY


#: Shared disabled instance — the default for every instrumented component.
NULL_OBS = Observability(enabled=False)


def ensure_obs(obs: Optional[Observability]) -> Observability:
    """``obs`` itself, or :data:`NULL_OBS` when ``None``."""
    return obs if obs is not None else NULL_OBS


__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NULL_METRIC",
    "NULL_OBS",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "Observability",
    "Span",
    "TraceError",
    "Tracer",
    "ensure_obs",
    "exponential_buckets",
]
