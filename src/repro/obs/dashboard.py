"""Live ASCII status board: nodes × phase, SLO gauges, stragglers, events.

The GRAPPA portal's lesson (PAPERS.md) is that a grid analysis framework
needs an *operator surface*, not just logs: one glance should answer "are
my engines healthy, is the latency objective holding, who is slow, what
just happened".  This module renders exactly that board, two ways:

* :func:`render_board` — live, mid-run, from the :class:`Observability`
  handle plus (optionally) a session service: per-node engine progress,
  SLO gauges with error-budget burn, the currently flagged stragglers,
  and the newest events;
* :func:`board_from_jsonl` — offline, from exported JSONL artifacts
  (events / profile / spans), for post-mortems and the chaos CI job.

Every section degrades gracefully: with ``NULL_OBS`` the board still
renders, stating that telemetry is disabled.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.events import Event, events_from_jsonl, render_events
from repro.obs.profile import profile_from_jsonl, render_profile


def progress_bar(fraction: float, width: int = 20) -> str:
    """``[####....]`` bar for a 0..1 fraction (clamped)."""
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(width * fraction))
    return "[" + "#" * filled + "." * (width - filled) + "]"


# -- section renderers (shared by live and offline boards) ----------------

def nodes_section(
    engines: List[Dict[str, object]],
    flagged: Optional[Dict[str, str]] = None,
    bar_width: int = 16,
) -> List[str]:
    """Per-engine rows: worker, state, progress bar, straggler marks.

    *engines* rows carry ``engine_id`` / ``worker`` / ``cursor`` /
    ``total`` / ``state`` (the shape ``SessionService.status`` returns);
    *flagged* maps engine ids to a short straggler annotation.
    """
    if not engines:
        return ["  (no engines)"]
    flagged = flagged or {}
    lines = []
    for row in engines:
        total = int(row.get("total") or 0)
        cursor = int(row.get("cursor") or 0)
        fraction = cursor / total if total else 0.0
        mark = flagged.get(str(row.get("engine_id")), "")
        lines.append(
            "  {worker:<8} {engine:<10} {state:<9} {bar} "
            "{cursor:>8}/{total:<8}{mark}".format(
                worker=str(row.get("worker") or "?"),
                engine=str(row.get("engine_id")),
                state=str(row.get("state") or "?"),
                bar=progress_bar(fraction, bar_width),
                cursor=cursor,
                total=total,
                mark=f"  << {mark}" if mark else "",
            )
        )
    return lines


def slo_section(rows: List[Dict[str, object]]) -> List[str]:
    """SLO gauge rows from :meth:`repro.obs.slo.SLOTracker.status`."""
    if not rows:
        return ["  (no SLO policies)"]
    lines = []
    for row in rows:
        estimate = row["estimate"]
        shown = (
            "    --" if estimate != estimate else f"{estimate:6.3f}s"
        )
        state = "BREACH" if row["breached"] else "ok"
        lines.append(
            "  {name:<16} p{q:<4} {est} / {obj:.3f}s  {state:<6} "
            "budget {budget:>4.0%}  burn {burn:4.1f}x  "
            "({n} samples/{w:.0f}s)".format(
                name=row["name"],
                q=f"{float(row['quantile']) * 100:g}",
                est=shown,
                obj=row["objective"],
                state=state,
                budget=row["budget_remaining"],
                burn=row["burn_rate"],
                n=row["samples"],
                w=row["window_s"],
            )
        )
    return lines


def straggler_section(reports) -> List[str]:
    """Rows for the currently flagged stragglers."""
    if not reports:
        return ["  (none)"]
    lines = []
    for report in reports:
        lines.append(
            "  {engine:<10} {signal}={value:.3g} vs median {median:.3g} "
            "(z={score:.1f})".format(
                engine=report.engine_id,
                signal=report.signal,
                value=report.value,
                median=report.median,
                score=report.score,
            )
        )
    return lines


def events_section(events: List[Event], limit: int = 8) -> List[str]:
    """The newest events, one line each."""
    if not events:
        return ["  (no events)"]
    return [
        "  " + line
        for line in render_events(events, limit=limit).splitlines()
    ]


def sites_section(rows: List[Dict[str, object]]) -> List[str]:
    """Per-site federation panel rows (from ``Federation.stats()``).

    Each row carries ``site`` / ``sessions`` / ``active_sessions`` /
    ``resident_replica_mb`` / ``wan_in_mb`` / ``wan_out_mb`` /
    ``admission_backlog`` / ``partitioned``.
    """
    if not rows:
        return ["  (no sites)"]
    lines = []
    for row in rows:
        lines.append(
            "  {site:<8} sessions {sessions:>3} (live {active:>2})  "
            "replicas {resident:>8.1f} MB  wan in/out "
            "{wan_in:>8.1f}/{wan_out:<8.1f} MB  backlog {backlog:>3}"
            "{mark}".format(
                site=str(row.get("site") or "?"),
                sessions=int(row.get("sessions") or 0),
                active=int(row.get("active_sessions") or 0),
                resident=float(row.get("resident_replica_mb") or 0.0),
                wan_in=float(row.get("wan_in_mb") or 0.0),
                wan_out=float(row.get("wan_out_mb") or 0.0),
                backlog=int(row.get("admission_backlog") or 0),
                mark="  << PARTITIONED" if row.get("partitioned") else "",
            )
        )
    return lines


# -- boards ----------------------------------------------------------------

def render_board(
    obs,
    session_service=None,
    session_id: Optional[str] = None,
    max_events: int = 8,
    federation=None,
) -> str:
    """The live board, renderable at any simulated time.

    With a *session_service* and *session_id* the per-node section shows
    that session's engines; otherwise it is omitted.  With a
    *federation* (a :class:`~repro.federation.topology.Federation`) a
    per-site panel is prepended — sessions brokered, resident replica
    bytes, WAN traffic, admission backlog, partition state.  SLO /
    straggler / event sections come from the
    :class:`~repro.obs.Observability` handle and say so when telemetry
    is disabled.
    """
    now = getattr(getattr(obs, "env", None), "now", None)
    header = "== ipa status board"
    if now is not None:
        header += f" @ t={now:.1f}s"
    if session_id is not None:
        header += f"  session {session_id}"
    lines = [header + " =="]

    if federation is not None:
        stats = federation.stats()
        lines.append(
            "sites ({brokered} brokered, {failovers} failovers, "
            "{migrations} migrations, {evictions} evictions):".format(
                **stats
            )
        )
        lines.extend(sites_section(stats["sites"]))

    if session_service is not None and session_id is not None:
        status = session_service.status(session_id)
        flagged = {}
        if getattr(obs, "enabled", False):
            for report in obs.anomaly.stragglers(session_id):
                flagged[report.engine_id] = (
                    f"straggler z={report.score:.1f}"
                )
        lines.append("nodes:")
        lines.extend(nodes_section(status["engines"], flagged))
        if status["orphaned_parts"]:
            lines.append(
                f"  orphaned parts: {status['orphaned_parts']}"
            )

    if not getattr(obs, "enabled", False):
        lines.append("telemetry: (observability disabled)")
        return "\n".join(lines)

    lines.append("slo:")
    lines.extend(slo_section(obs.slo.status()))

    lines.append("stragglers:")
    if session_id is not None:
        lines.extend(straggler_section(obs.anomaly.stragglers(session_id)))
    else:
        lines.append("  (no session selected)")

    lines.append(f"events (last {max_events}):")
    lines.extend(events_section(obs.events.tail(max_events), max_events))
    return "\n".join(lines)


def board_from_jsonl(
    events_text: Optional[str] = None,
    profile_text: Optional[str] = None,
    spans_text: Optional[str] = None,
    max_events: int = 8,
) -> str:
    """Rebuild a board snapshot from exported JSONL artifacts.

    Any subset of the three artifacts may be provided; sections without
    data are omitted.  Used by ``python -m repro.obs dashboard`` and the
    chaos CI job's post-mortem rendering.
    """
    lines = ["== ipa status board (from export) =="]
    rendered_any = False

    if spans_text is not None:
        from repro.obs.exporters import (
            phase_summary_records,
            spans_from_jsonl,
        )

        records = spans_from_jsonl(spans_text)
        lines.append(phase_summary_records(records))
        rendered_any = True

    if profile_text is not None:
        weights = profile_from_jsonl(profile_text)
        lines.append("profile:")
        lines.extend(
            "  " + line
            for line in render_profile(weights, limit=12).splitlines()
        )
        rendered_any = True

    if events_text is not None:
        events = events_from_jsonl(events_text)
        breaches = [e for e in events if e.kind == "slo_breach"]
        stragglers = [e for e in events if e.kind == "straggler_detected"]
        lines.append(
            f"events: {len(events)} exported, "
            f"{len(breaches)} SLO breaches, "
            f"{len(stragglers)} stragglers flagged"
        )
        federated = [e for e in events if e.kind.startswith("federation_")]
        partitions = [e for e in events if e.kind == "site_partitioned"]
        if federated or partitions:
            brokered = sum(
                1 for e in federated if e.kind == "federation_session_brokered"
            )
            failovers = sum(
                1 for e in federated if e.kind == "federation_failover"
            )
            migrations = sum(
                1 for e in federated if e.kind == "federation_replica_migrated"
            )
            lines.append(
                f"federation: {brokered} brokered, {failovers} failovers, "
                f"{migrations} migrations, {len(partitions)} partitions"
            )
        lines.extend(events_section(events[-max_events:], max_events))
        rendered_any = True

    if not rendered_any:
        lines.append("(no artifacts provided)")
    return "\n".join(lines)
