"""Rolling SLOs: sliding-window quantiles, objectives, error budgets.

The paper's whole claim is a latency claim — interactive response within
"the limits of human tolerance" — so the telemetry plane must be able to
*state* that claim as an objective ("poll p99 < 250 ms over 60 s") and
continuously check it against the live run.  Two estimators back each
objective, both windowed on the **simulated clock**:

* an **exact reservoir** of the raw ``(time, value)`` observations inside
  the window — authoritative while the window holds at most
  ``reservoir_cap`` samples (interactive polling easily fits);
* a **bucketed sliding histogram** — the window is divided into slots,
  each holding a bucket-count array; expiring a slot subtracts its counts,
  so the quantile estimate (monotone interpolation, the same math as
  :meth:`repro.obs.metrics.Histogram.quantile`) stays O(buckets) however
  many observations arrive.

:class:`SLOTracker` evaluates every matching policy on each observation:
crossing the objective transitions the policy into *breached* and emits an
``slo_breach`` event (``slo_recovered`` on the way back); the tracker also
integrates **error-budget burn** — the fraction of the allowed
over-objective observations (``1 - quantile``) actually consumed, both
windowed and for the whole run.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    quantile_from_cumulative,
)


class SLOError(Exception):
    """Raised on invalid SLO policies or observations."""


class SlidingReservoir:
    """Exact sliding-window reservoir of raw observations.

    Keeps every ``(time, value)`` pair inside ``window_s`` up to ``cap``
    entries; beyond the cap the oldest entries are shed and the reservoir
    stops being authoritative (:attr:`saturated`).
    """

    def __init__(self, window_s: float, cap: int = 512) -> None:
        if window_s <= 0:
            raise SLOError("window_s must be > 0")
        if cap < 1:
            raise SLOError("cap must be >= 1")
        self.window_s = window_s
        self.cap = cap
        self._items: deque = deque()
        #: True once the cap forced shedding inside a live window.
        self.saturated = False

    def observe(self, now: float, value: float) -> None:
        """Record one observation at simulated time *now*."""
        self._items.append((now, value))
        self.prune(now)
        if len(self._items) > self.cap:
            self._items.popleft()
            self.saturated = True

    def prune(self, now: float) -> None:
        """Drop observations older than the window."""
        horizon = now - self.window_s
        items = self._items
        while items and items[0][0] <= horizon:
            items.popleft()

    def values(self, now: float) -> List[float]:
        """Raw values inside the window, in arrival order."""
        self.prune(now)
        return [value for _, value in self._items]

    def count(self, now: float) -> int:
        """Observations inside the window."""
        self.prune(now)
        return len(self._items)

    def quantile(self, q: float, now: float) -> float:
        """Exact *q*-quantile (linear interpolation between order stats)."""
        if not 0.0 <= q <= 1.0:
            raise SLOError("quantile must be in [0, 1]")
        values = sorted(self.values(now))
        if not values:
            return float("nan")
        if len(values) == 1:
            return values[0]
        position = q * (len(values) - 1)
        low = int(position)
        high = min(low + 1, len(values) - 1)
        fraction = position - low
        return values[low] + (values[high] - values[low]) * fraction


class WindowedHistogram:
    """Sliding-window bucket histogram: a ring of per-slot count arrays.

    The window is split into ``slots`` equal time slots; each observation
    lands in the current slot's bucket array; advancing past a slot
    boundary zeroes the slots that fell out of the window.  Quantiles are
    the same monotone interpolation the cumulative registry histogram
    uses, but computed over only the in-window counts.
    """

    def __init__(
        self,
        window_s: float,
        slots: int = 12,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        if window_s <= 0:
            raise SLOError("window_s must be > 0")
        if slots < 1:
            raise SLOError("slots must be >= 1")
        self.window_s = window_s
        self.slots = slots
        self.slot_s = window_s / slots
        self.buckets: Tuple[float, ...] = tuple(
            buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS
        )
        n = len(self.buckets) + 1  # +Inf bucket
        self._counts = [[0] * n for _ in range(slots)]
        self._slot_index = 0  # absolute slot number of the current slot

    def _advance(self, now: float) -> None:
        current = int(now / self.slot_s)
        behind = current - self._slot_index
        if behind <= 0:
            return
        for offset in range(1, min(behind, self.slots) + 1):
            slot = (self._slot_index + offset) % self.slots
            self._counts[slot] = [0] * (len(self.buckets) + 1)
        self._slot_index = current

    def observe(self, now: float, value: float) -> None:
        """Record one observation at simulated time *now*."""
        self._advance(now)
        index = bisect_left(self.buckets, value)
        self._counts[self._slot_index % self.slots][index] += 1

    def cumulative_counts(self, now: float) -> List[Tuple[float, int]]:
        """In-window ``(le, cumulative count)`` pairs, +Inf last."""
        self._advance(now)
        totals = [0] * (len(self.buckets) + 1)
        for slot in self._counts:
            for index, count in enumerate(slot):
                totals[index] += count
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(
            list(self.buckets) + [float("inf")], totals
        ):
            running += count
            out.append((bound, running))
        return out

    def count(self, now: float) -> int:
        """Observations inside the window."""
        return self.cumulative_counts(now)[-1][1]

    def quantile(self, q: float, now: float) -> float:
        """Bucket-interpolated *q*-quantile of the window."""
        return quantile_from_cumulative(self.cumulative_counts(now), q)


@dataclass(frozen=True)
class SLOPolicy:
    """One service-level objective over a named signal.

    ``SLOPolicy("poll-p99", signal="aida.merged", quantile=0.99,
    objective=0.25, window_s=60.0)`` reads: *the p99 of ``aida.merged``
    latency over any 60 simulated seconds stays below 250 ms*.

    Parameters
    ----------
    name:
        Unique policy name (appears in events, metrics, the dashboard).
    signal:
        Observation stream the policy watches; call sites feed streams
        via :meth:`SLOTracker.record`.  The service container feeds every
        completed call as ``service.operation``.
    objective:
        Threshold in signal units (seconds for latency signals).
    quantile:
        Which quantile is constrained (0.99 → p99).  Its complement,
        ``1 - quantile``, is the error budget: the fraction of
        observations allowed over the objective.
    window_s:
        Sliding evaluation window in simulated seconds.
    min_samples:
        Observations required in-window before the policy can breach
        (avoids alarming on the first slow call of an empty window).
    description:
        Free-text shown on the dashboard.
    """

    name: str
    signal: str
    objective: float
    quantile: float = 0.99
    window_s: float = 60.0
    min_samples: int = 5
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SLOError("policy needs a name")
        if not self.signal:
            raise SLOError("policy needs a signal")
        if self.objective <= 0:
            raise SLOError("objective must be > 0")
        if not 0.0 < self.quantile < 1.0:
            raise SLOError("quantile must be in (0, 1)")
        if self.window_s <= 0:
            raise SLOError("window_s must be > 0")
        if self.min_samples < 1:
            raise SLOError("min_samples must be >= 1")


class _PolicyState:
    """Live evaluation state of one policy."""

    __slots__ = (
        "policy",
        "reservoir",
        "window",
        "bad_times",
        "breached",
        "breaches",
        "total_count",
        "total_bad",
        "current",
    )

    def __init__(self, policy: SLOPolicy, reservoir_cap: int) -> None:
        self.policy = policy
        self.reservoir = SlidingReservoir(policy.window_s, cap=reservoir_cap)
        self.window = WindowedHistogram(policy.window_s)
        #: Times of in-window observations over the objective.
        self.bad_times: deque = deque()
        self.breached = False
        self.breaches = 0
        self.total_count = 0
        self.total_bad = 0
        self.current = float("nan")


class SLOTracker:
    """Evaluates :class:`SLOPolicy` objectives against live observations.

    Parameters
    ----------
    env:
        Simulation environment (windows slide on ``env.now``).
    events:
        Optional :class:`repro.obs.events.EventLog`; breach/recovery
        transitions are emitted into it.
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry`; the tracker
        keeps ``slo_quantile_seconds`` / ``slo_breaches_total`` series
        per policy.
    reservoir_cap:
        Per-policy exact-reservoir capacity; beyond it the bucketed
        estimator takes over.
    """

    enabled = True

    def __init__(
        self,
        env,
        events=None,
        metrics=None,
        reservoir_cap: int = 512,
    ) -> None:
        self.env = env
        self.events = events
        self.metrics = metrics
        self.reservoir_cap = reservoir_cap
        self._policies: Dict[str, _PolicyState] = {}
        self._by_signal: Dict[str, List[_PolicyState]] = {}

    # -- policy management -------------------------------------------------
    def add_policy(self, policy: SLOPolicy) -> SLOPolicy:
        """Register a policy; duplicate names are rejected."""
        if policy.name in self._policies:
            raise SLOError(f"policy {policy.name!r} already registered")
        state = _PolicyState(policy, self.reservoir_cap)
        self._policies[policy.name] = state
        self._by_signal.setdefault(policy.signal, []).append(state)
        return policy

    @property
    def policies(self) -> List[SLOPolicy]:
        """Registered policies, sorted by name."""
        return [
            self._policies[name].policy for name in sorted(self._policies)
        ]

    # -- observation -------------------------------------------------------
    def record(self, signal: str, value: float) -> None:
        """Feed one observation of *signal*; evaluates matching policies."""
        states = self._by_signal.get(signal)
        if not states:
            return
        now = self.env.now
        for state in states:
            self._observe(state, now, value)

    def _observe(self, state: _PolicyState, now: float, value: float) -> None:
        policy = state.policy
        state.reservoir.observe(now, value)
        state.window.observe(now, value)
        state.total_count += 1
        if value > policy.objective:
            state.total_bad += 1
            state.bad_times.append(now)
        horizon = now - policy.window_s
        while state.bad_times and state.bad_times[0] <= horizon:
            state.bad_times.popleft()
        self._evaluate(state, now)

    def _estimate(self, state: _PolicyState, now: float) -> Tuple[float, int]:
        """(quantile estimate, in-window sample count) for one policy."""
        if not state.reservoir.saturated:
            return (
                state.reservoir.quantile(state.policy.quantile, now),
                state.reservoir.count(now),
            )
        return (
            state.window.quantile(state.policy.quantile, now),
            state.window.count(now),
        )

    def _evaluate(self, state: _PolicyState, now: float) -> None:
        policy = state.policy
        estimate, samples = self._estimate(state, now)
        state.current = estimate
        if self.metrics is not None:
            self.metrics.gauge(
                "slo_quantile_seconds",
                "Current windowed quantile estimate per SLO policy",
            ).set(0.0 if estimate != estimate else estimate, policy=policy.name)
        if samples < policy.min_samples:
            return
        over = estimate == estimate and estimate > policy.objective
        if over and not state.breached:
            state.breached = True
            state.breaches += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "slo_breaches_total",
                    "SLO breach transitions per policy",
                ).inc(policy=policy.name)
            if self.events is not None:
                self.events.emit(
                    "slo_breach",
                    message=(
                        f"{policy.name}: p{policy.quantile * 100:g} "
                        f"{estimate:.3f}s > objective {policy.objective:.3f}s"
                    ),
                    severity="warning",
                    policy=policy.name,
                    signal=policy.signal,
                    estimate=estimate,
                    objective=policy.objective,
                    samples=samples,
                )
        elif not over and state.breached:
            state.breached = False
            if self.events is not None:
                self.events.emit(
                    "slo_recovered",
                    message=(
                        f"{policy.name}: p{policy.quantile * 100:g} back to "
                        f"{estimate:.3f}s"
                    ),
                    policy=policy.name,
                    signal=policy.signal,
                    estimate=estimate,
                    objective=policy.objective,
                )

    # -- reporting ---------------------------------------------------------
    def status(self, name: Optional[str] = None) -> List[Dict[str, object]]:
        """Current evaluation of every policy (or one, by *name*).

        Each row reports the live quantile estimate, breach state, and
        error-budget accounting: ``budget_remaining`` is the unconsumed
        fraction of the windowed budget (clamped at 0) and ``burn_rate``
        is the consumption speed relative to exactly-on-budget (1.0 =
        spending the budget as fast as it accrues, >1 = burning it down).
        """
        now = self.env.now
        names = [name] if name is not None else sorted(self._policies)
        rows: List[Dict[str, object]] = []
        for policy_name in names:
            state = self._policies.get(policy_name)
            if state is None:
                raise SLOError(f"unknown policy {policy_name!r}")
            policy = state.policy
            estimate, samples = self._estimate(state, now)
            state.current = estimate
            horizon = now - policy.window_s
            while state.bad_times and state.bad_times[0] <= horizon:
                state.bad_times.popleft()
            allowed = 1.0 - policy.quantile
            bad_fraction = (
                len(state.bad_times) / samples if samples else 0.0
            )
            burn_rate = bad_fraction / allowed if allowed > 0 else 0.0
            total_bad_fraction = (
                state.total_bad / state.total_count
                if state.total_count
                else 0.0
            )
            rows.append(
                {
                    "name": policy.name,
                    "signal": policy.signal,
                    "quantile": policy.quantile,
                    "objective": policy.objective,
                    "window_s": policy.window_s,
                    "estimate": estimate,
                    "samples": samples,
                    "exact": not state.reservoir.saturated,
                    "breached": state.breached,
                    "breaches": state.breaches,
                    "budget_remaining": max(0.0, 1.0 - burn_rate),
                    "burn_rate": burn_rate,
                    "total_burn": (
                        total_bad_fraction / allowed if allowed > 0 else 0.0
                    ),
                }
            )
        return rows


class NullSLOTracker:
    """SLO tracker stand-in whose every operation is free (or nearly so)."""

    enabled = False
    env = None
    events = None
    metrics = None
    policies: List[SLOPolicy] = []

    def add_policy(self, policy: SLOPolicy) -> SLOPolicy:
        return policy

    def record(self, signal: str, value: float) -> None:
        pass

    def status(self, name: Optional[str] = None) -> list:
        return []


NULL_SLO_TRACKER = NullSLOTracker()
