"""Exporters: JSON-lines traces, Prometheus text metrics, phase summaries.

Three consumption paths for the telemetry the runtime emits:

* **JSON lines** — one object per finished span; round-trips losslessly
  (``spans_from_jsonl(trace_to_jsonl(t))`` rebuilds the identical tree),
  so traces can be dumped to disk and analyzed offline;
* **Prometheus text exposition** — counters/gauges/histograms in the
  ``# HELP`` / ``# TYPE`` format every scraper understands;
* **per-phase summary** — spans carrying a ``phase`` attribute are summed
  into the paper's phase vocabulary (session_setup / move_whole / split /
  move_parts / stage_code / analysis), rendered as an ASCII table, and
  exportable into a :class:`repro.core.timeline.Timeline` so the existing
  Gantt view and the benchmark tables are fed by the same telemetry.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.core.timeline import Timeline
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer


#: Canonical ordering of the paper's phase vocabulary in summaries.
PHASE_ORDER = (
    "session_setup",
    "move_whole",
    "split",
    "move_parts",
    "stage_code",
    "analysis",
)


# -- traces ---------------------------------------------------------------

def span_to_dict(span: Span) -> Dict[str, Any]:
    """Plain-dict form of one span (what the JSON-lines dump contains)."""
    return {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "status": span.status,
        "attrs": dict(span.attrs),
    }


def trace_to_jsonl(tracer: Tracer) -> str:
    """Serialize every finished span as one JSON object per line."""
    return "\n".join(
        json.dumps(span_to_dict(span), sort_keys=True)
        for span in tracer.finished_spans()
    )


def spans_from_jsonl(text: str) -> List[Dict[str, Any]]:
    """Parse a JSON-lines trace dump back into span dicts."""
    records = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def build_tree(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Nest span dicts into parent->children trees (roots returned).

    Children are ordered by start time, then span id; each node gains a
    ``children`` list.  Orphans (parent not in the record set) become
    roots, so partial dumps still produce a usable forest.
    """
    nodes = {rec["span_id"]: dict(rec, children=[]) for rec in records}
    roots: List[Dict[str, Any]] = []
    for rec in sorted(records, key=lambda r: (r["start"], r["span_id"])):
        node = nodes[rec["span_id"]]
        parent = nodes.get(rec.get("parent_id") or "")
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    return roots


def tracer_tree(tracer: Tracer) -> List[Dict[str, Any]]:
    """The tracer's finished spans as nested trees (see :func:`build_tree`)."""
    return build_tree([span_to_dict(s) for s in tracer.finished_spans()])


def render_tree_records(
    records: List[Dict[str, Any]], max_depth: Optional[int] = None
) -> str:
    """Human-readable indented rendering of span dicts (JSONL records)."""
    lines: List[str] = []

    def walk(node: Dict[str, Any], depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        end = node["end"]
        duration = (end - node["start"]) if end is not None else 0.0
        lines.append(
            f"{'  ' * depth}{node['name']}  "
            f"[{node['start']:.2f} .. {end:.2f}]  {duration:.2f}s"
        )
        for child in node["children"]:
            walk(child, depth + 1)

    for root in build_tree(records):
        walk(root, 0)
    return "\n".join(lines) if lines else "(no finished spans)"


def render_tree(tracer: Tracer, max_depth: Optional[int] = None) -> str:
    """Human-readable indented rendering of the trace forest."""
    return render_tree_records(
        [span_to_dict(s) for s in tracer.finished_spans()], max_depth
    )


# -- metrics --------------------------------------------------------------

def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition spec.

    Backslash, double-quote and newline must be escaped inside the quoted
    label value (in that order — escaping the backslash first keeps the
    transform reversible).
    """
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    """Invert :func:`escape_label_value` (used by the round-trip parser)."""
    out: List[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            if nxt == "n":
                out.append("\n")
            else:  # \\ and \" (unknown escapes pass the char through)
                out.append(nxt)
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def _escape_help(text: str) -> str:
    """HELP lines escape backslash and newline only (spec)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(pairs, extra: Optional[str] = None) -> str:
    parts = [f'{k}="{escape_label_value(str(v))}"' for k, v in pairs]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def metrics_to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for metric in registry.metrics:
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.type_name}")
        if isinstance(metric, Histogram):
            for key in metric.labels_seen():
                labels = dict(key)
                for bound, cumulative in metric.cumulative_counts(**labels):
                    le = "+Inf" if bound == float("inf") else _format_value(bound)
                    le_label = 'le="' + le + '"'
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_format_labels(key, le_label)} {cumulative}"
                    )
                lines.append(
                    f"{metric.name}_sum{_format_labels(key)} "
                    f"{_format_value(metric.total(**labels))}"
                )
                lines.append(
                    f"{metric.name}_count{_format_labels(key)} "
                    f"{metric.count(**labels)}"
                )
        else:
            for key, value in metric.series().items():
                lines.append(
                    f"{metric.name}{_format_labels(key)} "
                    f"{_format_value(float(value))}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> Dict[str, List[tuple]]:
    """Parse text exposition back into ``name -> [(labels, value), ...]``.

    A deliberately small parser covering what :func:`metrics_to_prometheus`
    emits — enough for the round-trip tests that pin the escaping rules
    (quoted label values with ``\\\\``, ``\\"`` and ``\\n`` escapes).
    """
    out: Dict[str, List[tuple]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        brace = line.find("{")
        labels: Dict[str, str] = {}
        if brace != -1:
            close = line.rindex("}")
            name = line[:brace]
            body = line[brace + 1 : close]
            value_text = line[close + 1 :].strip()
            index = 0
            while index < len(body):
                eq = body.index("=", index)
                key = body[index:eq].strip().lstrip(",").strip()
                if body[eq + 1] != '"':
                    raise ValueError(f"unquoted label value in {line!r}")
                cursor = eq + 2
                raw: List[str] = []
                while body[cursor] != '"':
                    if body[cursor] == "\\":
                        raw.append(body[cursor : cursor + 2])
                        cursor += 2
                    else:
                        raw.append(body[cursor])
                        cursor += 1
                labels[key] = unescape_label_value("".join(raw))
                index = cursor + 1
        else:
            name, _, value_text = line.partition(" ")
            value_text = value_text.strip()
        value = (
            float("inf") if value_text == "+Inf" else float(value_text)
        )
        out.setdefault(name, []).append((labels, value))
    return out


# -- phase summary --------------------------------------------------------

def phase_totals_records(records: List[Dict[str, Any]]) -> Dict[str, float]:
    """Summed durations of span dicts grouped by their ``phase`` attr."""
    totals: Dict[str, float] = {}
    for record in records:
        phase = (record.get("attrs") or {}).get("phase")
        if phase is not None and record.get("end") is not None:
            totals[str(phase)] = totals.get(str(phase), 0.0) + (
                record["end"] - record["start"]
            )
    return totals


def _phase_table(totals: Dict[str, float], title: str) -> str:
    known = [p for p in PHASE_ORDER if p in totals]
    extra = sorted(p for p in totals if p not in PHASE_ORDER)
    rows = [(p, totals[p]) for p in known + extra]
    if not rows:
        return f"{title}\n(no phase-tagged spans)"
    name_width = max(len("phase"), max(len(name) for name, _ in rows))
    lines = [
        title,
        f"{'phase'.ljust(name_width)}  {'seconds':>10}",
        f"{'-' * name_width}  {'-' * 10}",
    ]
    for name, seconds in rows:
        lines.append(f"{name.ljust(name_width)}  {seconds:10.1f}")
    lines.append(f"{'-' * name_width}  {'-' * 10}")
    lines.append(
        f"{'total'.ljust(name_width)}  {sum(t for _, t in rows):10.1f}"
    )
    return "\n".join(lines)


def phase_summary_records(
    records: List[Dict[str, Any]], title: str = "per-phase summary"
) -> str:
    """ASCII phase table from span dicts (exported JSONL records)."""
    return _phase_table(phase_totals_records(records), title)


def phase_totals(tracer: Tracer) -> Dict[str, float]:
    """Summed durations of finished spans grouped by their ``phase`` attr.

    Only spans explicitly tagged with a ``phase`` attribute contribute, so
    nested untagged detail spans (individual transfers under a scatter,
    say) are never double-counted.
    """
    totals: Dict[str, float] = {}
    for span in tracer.finished_spans():
        phase = span.attrs.get("phase")
        if phase is not None:
            totals[str(phase)] = totals.get(str(phase), 0.0) + span.duration
    return totals


def phase_summary(tracer: Tracer, title: str = "per-phase summary") -> str:
    """ASCII table of phase totals, in the paper's phase order."""
    return _phase_table(phase_totals(tracer), title)


def to_timeline(
    tracer: Tracer,
    timeline: Optional[Timeline] = None,
    phases_only: bool = True,
) -> Timeline:
    """Export finished spans into a :class:`~repro.core.timeline.Timeline`.

    With ``phases_only`` (default) only phase-tagged spans are exported —
    one Gantt row per phase occurrence, reconciling the trace with the
    existing timeline rendering.  Otherwise every finished span is
    exported with its name, laned by phase.
    """
    if timeline is None:
        if tracer.env is None:
            raise ValueError("tracer has no environment to build a Timeline on")
        timeline = Timeline(tracer.env)
    for span in tracer.finished_spans():
        phase = span.attrs.get("phase")
        if phases_only:
            if phase is None:
                continue
            timeline.record(str(phase), span.start, span.end)
        else:
            timeline.record(
                span.name, span.start, span.end, lane=str(phase or "")
            )
    return timeline
