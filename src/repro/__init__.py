"""IPA — Interactive Parallel Dataset Analysis on a (simulated) Grid.

A complete Python reproduction of Alexander, Ananthan, Johnson & Serbo,
"Framework for Interactive Parallel Dataset Analysis on the Grid"
(ICPP Workshops 2006).  See README.md for the tour, DESIGN.md for the
system inventory, and EXPERIMENTS.md for paper-vs-measured results.

Top-level convenience re-exports cover the common entry points::

    from repro import GridSite, SiteConfig, IPAClient
    from repro import run_grid_experiment, run_local_experiment
"""

from repro.client.client import IPAClient
from repro.core.config import Calibration, DEFAULT_CALIBRATION
from repro.core.experiment import (
    GridBreakdown,
    LocalBreakdown,
    run_grid_experiment,
    run_local_experiment,
)
from repro.core.site import GridSite, SiteConfig

__version__ = "1.0.0"

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "GridBreakdown",
    "GridSite",
    "IPAClient",
    "LocalBreakdown",
    "SiteConfig",
    "__version__",
    "run_grid_experiment",
    "run_local_experiment",
]
