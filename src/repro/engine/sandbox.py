"""Sandboxed loading of user analysis source code.

The client ships analysis *source* to the grid ("only a small amount of
code needs to be re-distributed as the user customizes and rapidly develops
the analysis code", §5).  :func:`load_analysis` compiles a source string in
a controlled namespace, locates the :class:`~repro.engine.base.Analysis`
subclass, and instantiates it.  :class:`CodeBundle` is the versioned unit
the managing class loader stages and hot-reloads.

The namespace offers the analysis-facing API (numpy, the AIDA objects, the
kinematics helpers) and blocks general imports — a pragmatic stand-in for
the JVM class-loader isolation of the reference implementation; it is a
simulation substrate, not a security boundary.
"""

from __future__ import annotations

import builtins
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Type

import numpy as np

from repro.aida.cloud import Cloud1D, Cloud2D
from repro.aida.hist1d import Histogram1D
from repro.aida.hist2d import Histogram2D
from repro.aida.ntuple import NTuple
from repro.aida.profile import Profile1D
from repro.dataset import physics
from repro.engine.base import Analysis


class SandboxError(Exception):
    """Raised when user code fails to load or is malformed."""


#: Module prefixes analysis code may import.  Sub-modules must be allowed
#: too because numpy lazily imports its own internals (e.g.
#: ``numpy._core._methods``) *from the caller's frame* when methods like
#: ``ndarray.sum`` first run inside sandboxed code.
_ALLOWED_PREFIXES = ("numpy", "math", "scipy")
_REAL_IMPORT = builtins.__import__


def _restricted_import(name, globals=None, locals=None, fromlist=(), level=0):
    root = name.split(".", 1)[0]
    if root in _ALLOWED_PREFIXES:
        return _REAL_IMPORT(name, globals, locals, fromlist, level)
    raise SandboxError(f"import of {name!r} not allowed in analysis code")


def _build_namespace() -> Dict[str, Any]:
    safe_builtins = dict(vars(builtins))
    safe_builtins["__import__"] = _restricted_import
    return {
        "__builtins__": safe_builtins,
        "np": np,
        "numpy": np,
        "Analysis": Analysis,
        "Histogram1D": Histogram1D,
        "Histogram2D": Histogram2D,
        "Profile1D": Profile1D,
        "Cloud1D": Cloud1D,
        "Cloud2D": Cloud2D,
        "NTuple": NTuple,
        "physics": physics,
    }


def load_analysis(
    source: str,
    class_name: Optional[str] = None,
    parameters: Optional[dict] = None,
) -> Analysis:
    """Compile *source* and instantiate the analysis it defines.

    Parameters
    ----------
    source:
        Python source text defining exactly one :class:`Analysis` subclass
        (or more, with *class_name* picking one).
    class_name:
        Required when the source defines several subclasses.
    parameters:
        Keyword arguments passed to the analysis constructor — how the
        client tunes cuts without editing code.

    Raises
    ------
    SandboxError
        On syntax errors, missing/ambiguous classes, or construction
        failure.
    """
    namespace = _build_namespace()
    try:
        exec(compile(source, "<analysis>", "exec"), namespace)
    except SandboxError:
        raise
    except SyntaxError as exc:
        raise SandboxError(f"syntax error in analysis code: {exc}") from exc
    except Exception as exc:
        raise SandboxError(f"analysis code failed at import: {exc}") from exc

    candidates: Dict[str, Type[Analysis]] = {
        name: obj
        for name, obj in namespace.items()
        if isinstance(obj, type)
        and issubclass(obj, Analysis)
        and obj is not Analysis
    }
    if not candidates:
        raise SandboxError("no Analysis subclass found in source")
    if class_name is not None:
        if class_name not in candidates:
            raise SandboxError(
                f"class {class_name!r} not found; defined: {sorted(candidates)}"
            )
        cls = candidates[class_name]
    elif len(candidates) > 1:
        raise SandboxError(
            f"multiple Analysis subclasses defined ({sorted(candidates)}); "
            "pass class_name"
        )
    else:
        cls = next(iter(candidates.values()))
    try:
        return cls(**(parameters or {}))
    except Exception as exc:
        raise SandboxError(f"analysis construction failed: {exc}") from exc


@dataclass
class CodeBundle:
    """A versioned unit of stageable analysis code.

    The managing class loader stores the latest bundle; engines compare
    :attr:`version` to decide whether to reload (§3.6 dynamic reload).
    """

    source: str
    class_name: Optional[str] = None
    parameters: dict = field(default_factory=dict)
    version: int = 1

    @property
    def size_kb(self) -> float:
        """Source size in kB (drives the tiny stage-code transfer)."""
        return len(self.source.encode()) / 1000.0

    def instantiate(self) -> Analysis:
        """Load and construct the analysis, stamping the bundle version."""
        analysis = load_analysis(self.source, self.class_name, self.parameters)
        analysis.version = self.version
        return analysis

    def updated(
        self,
        source: Optional[str] = None,
        parameters: Optional[dict] = None,
    ) -> "CodeBundle":
        """A new bundle with bumped version and replaced source/parameters."""
        return CodeBundle(
            source=source if source is not None else self.source,
            class_name=self.class_name,
            parameters=(
                dict(parameters) if parameters is not None else dict(self.parameters)
            ),
            version=self.version + 1,
        )
