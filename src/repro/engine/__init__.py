"""Analysis engines: the processes that run user code over dataset parts.

"Analysis engines are processes that accept a dataset and an analysis
script and analyze the dataset using the script to produce a result" (§2).
This package provides:

* the user-code contract (:class:`~repro.engine.base.Analysis` with
  ``start`` / ``process_batch`` / ``process_event`` / ``end`` hooks);
* a source-code **sandbox loader** with versioned hot reload
  (:mod:`repro.engine.sandbox`) — the staging target of the managing class
  loader (§3.5, §3.6);
* the interactive **control state machine** (run / pause / stop / rewind /
  step-N, §3.6) in :mod:`repro.engine.controls`;
* the :class:`~repro.engine.engine.AnalysisEngine` itself, which processes
  events in chunks and emits mergeable snapshots;
* real-CPU execution backends (:mod:`repro.engine.runner`) used by the
  real-parallelism benchmark.
"""

from repro.engine.base import Analysis, AnalysisError
from repro.engine.controls import Command, ControlState, Controller
from repro.engine.engine import AnalysisEngine, ChunkResult, Snapshot
from repro.engine.sandbox import CodeBundle, SandboxError, load_analysis

__all__ = [
    "Analysis",
    "AnalysisEngine",
    "AnalysisError",
    "ChunkResult",
    "CodeBundle",
    "Command",
    "ControlState",
    "Controller",
    "SandboxError",
    "Snapshot",
    "load_analysis",
]
