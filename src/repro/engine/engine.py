"""The analysis engine: chunked event processing with snapshots.

One engine runs per worker node per session.  It holds a dataset part, the
current analysis instance and an AIDA tree; the surrounding harness (the
simulated grid job body, or a real-CPU runner) calls :meth:`process_chunk`
repeatedly, honouring the :class:`~repro.engine.controls.Controller` state
and publishing :class:`Snapshot`\\ s of the tree at a configurable cadence —
that cadence is what delivers the paper's "partial results on time scales
of less than a minute" (§1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.aida.tree import ObjectTree
from repro.dataset.events import EventBatch
from repro.engine.base import Analysis, AnalysisError
from repro.engine.controls import Controller, ControlState


@dataclass(frozen=True)
class Snapshot:
    """A serialized intermediate result from one engine.

    Attributes
    ----------
    engine_id:
        The producing engine.
    sequence:
        Monotonic per-engine snapshot number.
    events_processed:
        Cursor after the producing chunk.
    total_events:
        Size of the engine's dataset part.
    analysis_version:
        Version of the code bundle that produced this snapshot (stale
        versions are dropped by the merger after a reload).
    run_id:
        Increments on every rewind, so results from an abandoned run never
        pollute the current merge.
    tree:
        ``ObjectTree.to_dict()`` payload.  For a delta snapshot it holds
        only the objects changed since snapshot ``base_sequence``.
    final:
        True when the part is exhausted.
    base_sequence:
        ``0`` for a full snapshot (keyframe); for a delta, the sequence
        number of the previously published snapshot the delta applies on
        top of.  A merger whose cached sequence differs detects the gap
        and requests a full resend.
    combiner:
        Id of the leaf combiner this snapshot is routed through when the
        session has a tiered merge (``None`` = published straight to the
        flat root merge).  Stamped by the publish path, not the engine.
    """

    engine_id: str
    sequence: int
    events_processed: int
    total_events: int
    analysis_version: int
    run_id: int
    tree: dict
    final: bool = False
    base_sequence: int = 0
    combiner: Optional[str] = None


@dataclass(frozen=True)
class ChunkResult:
    """Outcome of one :meth:`AnalysisEngine.process_chunk` call."""

    events: int
    cursor: int
    done: bool
    state: str
    snapshot: Optional[Snapshot] = None


class AnalysisEngine:
    """Chunked executor of one analysis over one dataset part.

    Parameters
    ----------
    engine_id:
        Unique name, e.g. ``"engine-3@w3"``.
    chunk_events:
        Events processed per :meth:`process_chunk` call (the granularity of
        control responsiveness and simulated-time accounting).
    snapshot_every_chunks:
        Publish a snapshot every N chunks (1 = after every chunk).
    delta_snapshots:
        When True (default), snapshots after the first carry only objects
        whose version fingerprints changed since the last published
        snapshot; a full keyframe is still emitted every
        *keyframe_every* snapshots so a merger can always resynchronize.
    keyframe_every:
        Cadence of full-snapshot keyframes in delta mode (>= 1; 1 means
        every snapshot is full).
    """

    def __init__(
        self,
        engine_id: str,
        chunk_events: int = 500,
        snapshot_every_chunks: int = 1,
        delta_snapshots: bool = True,
        keyframe_every: int = 8,
    ) -> None:
        if chunk_events < 1:
            raise ValueError("chunk_events must be >= 1")
        if snapshot_every_chunks < 1:
            raise ValueError("snapshot_every_chunks must be >= 1")
        if keyframe_every < 1:
            raise ValueError("keyframe_every must be >= 1")
        self.engine_id = engine_id
        self.chunk_events = chunk_events
        self.snapshot_every_chunks = snapshot_every_chunks
        self.delta_snapshots = delta_snapshots
        self.keyframe_every = keyframe_every
        self.controller = Controller()
        self.tree = ObjectTree()
        self._data: Optional[EventBatch] = None
        self._analysis: Optional[Analysis] = None
        self._cursor = 0
        self._chunks_since_snapshot = 0
        self._sequence = 0
        self._run_id = 0
        self._started = False
        self._ended = False
        # Delta-snapshot state: version fingerprints as of the last
        # published snapshot, and how many snapshots since a keyframe.
        self._published_versions: Optional[Dict[str, Tuple[int, Optional[int]]]] = None
        self._published_sequence = 0
        self._snapshots_since_keyframe = 0
        # Cumulative offsets from parts absorbed before the current one
        # (failure recovery re-dispatches a dead engine's partitions here).
        self._events_base = 0
        self._total_base = 0

    # -- staging ------------------------------------------------------------
    def load_data(self, batch: EventBatch) -> None:
        """Stage the dataset part; resets the cursor and any prior parts."""
        self._data = batch
        self._cursor = 0
        self._ended = False
        self._events_base = 0
        self._total_base = 0

    def load_additional_data(self, batch: EventBatch) -> None:
        """Absorb a further dataset part (partition takeover on recovery).

        The tree and analysis state are kept — AIDA merge semantics make the
        union exact — and progress accounting becomes cumulative across all
        absorbed parts.  The previous part's processed events are folded
        into the base offsets, so snapshots keep reporting monotonically
        increasing ``events_processed``.
        """
        if self._data is None:
            self.load_data(batch)
            return
        self._events_base += self._cursor
        self._total_base += len(self._data)
        self._data = batch
        self._cursor = 0
        self._ended = False

    def load_analysis(self, analysis: Analysis) -> None:
        """(Re)load analysis code.

        On hot reload mid-run the current results are kept (AIDA semantics:
        objects persist; the user typically rewinds to reprocess with the
        new code, §3.6).
        """
        self._analysis = analysis
        self._started = False

    @property
    def analysis(self) -> Optional[Analysis]:
        """The currently loaded analysis instance."""
        return self._analysis

    @property
    def cursor(self) -> int:
        """Events processed so far in the current run (all parts)."""
        return self._events_base + self._cursor

    @property
    def total_events(self) -> int:
        """Events across every absorbed part (0 before staging)."""
        current = len(self._data) if self._data is not None else 0
        return self._total_base + current

    @property
    def done(self) -> bool:
        """True once every event of the part has been processed."""
        return self._data is not None and self._cursor >= len(self._data)

    @property
    def run_id(self) -> int:
        """Increments on every rewind."""
        return self._run_id

    # -- execution ----------------------------------------------------------
    def _ensure_ready(self) -> None:
        if self._data is None:
            raise AnalysisError(f"{self.engine_id}: no dataset part staged")
        if self._analysis is None:
            raise AnalysisError(f"{self.engine_id}: no analysis code loaded")

    def rewind(self) -> None:
        """Reset cursor and results; next chunk starts from event 0."""
        self._cursor = 0
        self._run_id += 1
        self._sequence = 0
        self._chunks_since_snapshot = 0
        self.tree = ObjectTree()
        self._published_versions = None
        self._published_sequence = 0
        self._snapshots_since_keyframe = 0
        self._started = False
        self._ended = False
        self._events_base = 0
        self._total_base = 0

    def process_chunk(self) -> ChunkResult:
        """Apply pending controls, then process up to one chunk of events.

        Returns a :class:`ChunkResult`; ``result.snapshot`` is set when the
        snapshot cadence (or the end of the part) was reached.  When paused
        or stopped, no events are processed.
        """
        self._ensure_ready()
        controller = self.controller
        controller.drain()
        if controller.rewind_requested:
            self.rewind()
            controller.acknowledge_rewind()

        if controller.state in (
            ControlState.PAUSED,
            ControlState.STOPPED,
            ControlState.IDLE,
        ):
            return ChunkResult(
                events=0,
                cursor=self._cursor,
                done=self.done,
                state=controller.state,
            )

        if not self._started:
            self._analysis.start(self.tree)
            self._started = True
            self._ended = False

        allowance = controller.chunk_allowance(self.chunk_events)
        start = self._cursor
        stop = min(start + allowance, len(self._data))
        events = stop - start
        if events > 0:
            chunk = self._data.slice(start, stop)
            try:
                self._analysis.process_batch(chunk, self.tree)
            except Exception as exc:
                raise AnalysisError(
                    f"{self.engine_id}: analysis failed at events "
                    f"[{start}, {stop}): {exc}"
                ) from exc
            self._cursor = stop
            controller.consume_step_budget(events)

        finished = self.done
        if finished and not self._ended:
            self._analysis.end(self.tree)
            self._ended = True

        self._chunks_since_snapshot += 1
        snapshot: Optional[Snapshot] = None
        if finished or self._chunks_since_snapshot >= self.snapshot_every_chunks:
            snapshot = self.take_snapshot(final=finished)
            self._chunks_since_snapshot = 0
        return ChunkResult(
            events=events,
            cursor=self._cursor,
            done=finished,
            state=controller.state,
            snapshot=snapshot,
        )

    def run_to_completion(
        self, publish: Optional[Callable[[Snapshot], None]] = None
    ) -> int:
        """Drive chunks until done/stopped (real-CPU path); returns events.

        The simulated-grid path instead drives :meth:`process_chunk` from a
        job body so each chunk also advances the virtual clock.
        """
        total = 0
        self.controller.run()
        while True:
            result = self.process_chunk()
            total += result.events
            if result.snapshot is not None and publish is not None:
                publish(result.snapshot)
            if result.done or result.state in (
                ControlState.STOPPED,
                ControlState.PAUSED,
                ControlState.IDLE,
            ):
                return total

    # -- snapshots ----------------------------------------------------------
    def take_snapshot(self, final: bool = False, full: bool = False) -> Snapshot:
        """Serialize the current tree as a :class:`Snapshot`.

        In delta mode only objects whose version fingerprint changed since
        the last published snapshot are serialized; a full keyframe is
        forced by *full* (e.g. when the merger reports a sequence gap), on
        the first snapshot of a run, and every :attr:`keyframe_every`
        snapshots.
        """
        self._sequence += 1
        versions = self.tree.versions()
        emit_full = (
            full
            or not self.delta_snapshots
            or self._published_versions is None
            or self._snapshots_since_keyframe >= self.keyframe_every - 1
        )
        if emit_full:
            tree_dict = self.tree.to_dict()
            base_sequence = 0
            self._snapshots_since_keyframe = 0
        else:
            previous = self._published_versions
            # Objects without a data_version cannot prove they are clean.
            dirty = {
                path
                for path, fingerprint in versions.items()
                if fingerprint[1] is None or previous.get(path) != fingerprint
            }
            tree_dict = self.tree.to_dict(only=dirty)
            base_sequence = self._published_sequence
            self._snapshots_since_keyframe += 1
        self._published_versions = versions
        self._published_sequence = self._sequence
        return Snapshot(
            engine_id=self.engine_id,
            sequence=self._sequence,
            events_processed=self._events_base + self._cursor,
            total_events=self.total_events,
            analysis_version=(
                self._analysis.version if self._analysis is not None else 0
            ),
            run_id=self._run_id,
            tree=tree_dict,
            final=final,
            base_sequence=base_sequence,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<AnalysisEngine {self.engine_id!r} "
            f"{self._cursor}/{self.total_events}>"
        )
