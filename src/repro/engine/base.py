"""The user-analysis contract.

Analysis code "should take the records of the dataset as input and run the
analysis" (§2.4).  Users subclass :class:`Analysis` and implement either the
vectorized :meth:`Analysis.process_batch` (preferred — whole event batches,
numpy arrays) or the per-record :meth:`Analysis.process_event`; results go
into the engine-local AIDA :class:`~repro.aida.tree.ObjectTree`, which the
framework merges across engines.
"""

from __future__ import annotations

from typing import Optional

from repro.aida.tree import ObjectTree
from repro.dataset.events import Event, EventBatch


class AnalysisError(Exception):
    """Raised when user analysis code misbehaves."""


class Analysis:
    """Base class for user analysis code.

    Lifecycle (driven by the engine):

    1. :meth:`start` — once per run (and again after a rewind); create the
       histograms here;
    2. :meth:`process_batch` — once per chunk of events (default
       implementation loops over :meth:`process_event`);
    3. :meth:`end` — once when the dataset part is exhausted.

    Attributes
    ----------
    name:
        Identifier shown in session listings.
    version:
        Bumped by the code loader on hot reload so engines can report which
        version produced a snapshot.
    """

    name: str = "analysis"
    version: int = 1

    def start(self, tree: ObjectTree) -> None:
        """Create output objects; called at run start and after rewind."""

    def process_batch(self, batch: EventBatch, tree: ObjectTree) -> None:
        """Process a chunk of events (override for vectorized analyses)."""
        for event in batch:
            self.process_event(event, tree)

    def process_event(self, event: Event, tree: ObjectTree) -> None:
        """Process one record (override for per-event analyses)."""
        raise NotImplementedError(
            "override process_batch or process_event"
        )

    def end(self, tree: ObjectTree) -> None:
        """Finalize (fits, summaries) after the last event."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r} v{self.version}>"
