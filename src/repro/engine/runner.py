"""Real-CPU execution backends.

The discrete-event simulation measures *modelled* time; this module runs
analyses for real, both serially and with ``multiprocessing``, so the
``bench_real_parallel`` benchmark can verify that the 1/N analysis-scaling
claim holds on actual hardware, not just in the cost model.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import List, Optional, Sequence, Tuple

from repro.aida.tree import ObjectTree
from repro.dataset.events import EventBatch
from repro.dataset.format import DatasetReader
from repro.dataset.split import plan_split
from repro.engine.engine import AnalysisEngine
from repro.engine.sandbox import CodeBundle


def run_local(
    bundle: CodeBundle,
    batch: EventBatch,
    chunk_events: int = 2000,
) -> ObjectTree:
    """Run one analysis over a batch in-process; returns the result tree."""
    engine = AnalysisEngine("local", chunk_events=chunk_events)
    engine.load_data(batch)
    engine.load_analysis(bundle.instantiate())
    engine.run_to_completion()
    return engine.tree


def _worker_task(args: Tuple[dict, str, int, int, int]) -> dict:
    """Subprocess entry: read an event range, run the bundle, return a tree.

    Arguments travel as picklable primitives (bundle fields + path + range).
    """
    bundle_state, path, start, stop, chunk_events = args
    bundle = CodeBundle(**bundle_state)
    with DatasetReader(path) as reader:
        batch = reader.read_range(start, stop)
    engine = AnalysisEngine(f"worker-{start}", chunk_events=chunk_events)
    engine.load_data(batch)
    engine.load_analysis(bundle.instantiate())
    engine.run_to_completion()
    return engine.tree.to_dict()


def run_parallel(
    bundle: CodeBundle,
    dataset_path: str,
    n_workers: int,
    chunk_events: int = 2000,
) -> ObjectTree:
    """Run an analysis over a dataset file with *n_workers* processes.

    The dataset is split by events, each worker analyzes its part in a
    separate process, and the partial trees are merged — the real-CPU
    equivalent of the full grid pipeline.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    with DatasetReader(dataset_path) as reader:
        plan = plan_split(reader, n_workers, "by-events")
    bundle_state = {
        "source": bundle.source,
        "class_name": bundle.class_name,
        "parameters": bundle.parameters,
        "version": bundle.version,
    }
    tasks = [
        (bundle_state, str(dataset_path), part.start_event, part.stop_event, chunk_events)
        for part in plan.parts
    ]
    if n_workers == 1:
        results = [_worker_task(tasks[0])]
    else:
        # 'fork' keeps startup cheap; the workload is read-only.
        ctx = mp.get_context("fork")
        with ctx.Pool(processes=n_workers) as pool:
            results = pool.map(_worker_task, tasks)
    merged = ObjectTree()
    for tree_dict in results:
        merged.merge_from(ObjectTree.from_dict(tree_dict))
    return merged
