"""Interactive run controls.

The JAS client offers "interactive controls for the dataset analysis:
ability to rewind, run, run specific no of events and stop analysis"
(Fig. 4).  :class:`Controller` is the mailbox those buttons write to; the
engine polls it between chunks and transitions a small state machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


class Command:
    """Control command verbs (string constants)."""

    RUN = "run"
    PAUSE = "pause"
    STOP = "stop"
    REWIND = "rewind"
    STEP = "step"  # run a specific number of events, then pause

    ALL = frozenset({RUN, PAUSE, STOP, REWIND, STEP})


class ControlState:
    """Engine execution states."""

    IDLE = "idle"          # loaded, not yet started
    RUNNING = "running"
    PAUSED = "paused"
    STOPPED = "stopped"    # terminal for the current run; rewind restarts

    ALL = frozenset({IDLE, RUNNING, PAUSED, STOPPED})


@dataclass(frozen=True)
class ControlMessage:
    """One queued command with an optional argument (STEP's event count)."""

    command: str
    argument: Optional[int] = None

    def __post_init__(self) -> None:
        if self.command not in Command.ALL:
            raise ValueError(f"unknown command {self.command!r}")
        if self.command == Command.STEP:
            if self.argument is None or self.argument < 1:
                raise ValueError("STEP requires a positive event count")


class Controller:
    """Command mailbox plus the engine-side state machine.

    The client (or the session service on its behalf) calls the verb
    methods; the engine calls :meth:`drain` between chunks and adjusts its
    behaviour according to :attr:`state` and :attr:`step_budget`.
    """

    def __init__(self) -> None:
        self._queue: List[ControlMessage] = []
        self.state = ControlState.IDLE
        #: Remaining events allowed by an active STEP command (None = no cap).
        self.step_budget: Optional[int] = None
        #: Set when a REWIND was requested; the engine clears it after
        #: resetting its cursor and histograms.
        self.rewind_requested = False

    # -- client-side verbs -------------------------------------------------
    def run(self) -> None:
        """Start or resume free running."""
        self._queue.append(ControlMessage(Command.RUN))

    def pause(self) -> None:
        """Pause after the current chunk."""
        self._queue.append(ControlMessage(Command.PAUSE))

    def stop(self) -> None:
        """Stop the run (terminal until rewind)."""
        self._queue.append(ControlMessage(Command.STOP))

    def rewind(self) -> None:
        """Reset to the first event and clear results."""
        self._queue.append(ControlMessage(Command.REWIND))

    def step(self, n_events: int) -> None:
        """Run exactly *n_events* more events, then pause."""
        self._queue.append(ControlMessage(Command.STEP, n_events))

    @property
    def pending(self) -> int:
        """Number of undrained commands."""
        return len(self._queue)

    # -- engine side ---------------------------------------------------------
    def drain(self) -> None:
        """Apply all queued commands to the state machine, in order."""
        while self._queue:
            message = self._queue.pop(0)
            self._apply(message)

    def _apply(self, message: ControlMessage) -> None:
        command = message.command
        if command == Command.REWIND:
            self.rewind_requested = True
            self.step_budget = None
            self.state = ControlState.PAUSED
        elif command == Command.STOP:
            self.state = ControlState.STOPPED
            self.step_budget = None
        elif command == Command.PAUSE:
            if self.state == ControlState.RUNNING:
                self.state = ControlState.PAUSED
            self.step_budget = None
        elif command == Command.RUN:
            if self.state != ControlState.STOPPED:
                self.state = ControlState.RUNNING
                self.step_budget = None
        elif command == Command.STEP:
            if self.state != ControlState.STOPPED:
                self.state = ControlState.RUNNING
                self.step_budget = message.argument

    def consume_step_budget(self, n_events: int) -> None:
        """Deduct processed events from an active STEP budget."""
        if self.step_budget is None:
            return
        self.step_budget -= n_events
        if self.step_budget <= 0:
            self.step_budget = None
            self.state = ControlState.PAUSED

    def chunk_allowance(self, default_chunk: int) -> int:
        """Events the engine may process in the next chunk."""
        if self.step_budget is None:
            return default_chunk
        return min(default_chunk, self.step_budget)

    def acknowledge_rewind(self) -> None:
        """Engine confirms it reset its cursor and results."""
        self.rewind_requested = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Controller {self.state} pending={self.pending}>"
