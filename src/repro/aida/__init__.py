"""AIDA-like data-analysis objects (Abstract Interfaces for Data Analysis).

The paper's analysis code produces histograms through the Java AIDA API;
intermediate results are merged at the manager and polled by the client
(§3.7).  This package is a Python equivalent with the same core design
constraints:

* every object is **mergeable** — ``a + b`` combines the statistics of two
  engines' partial results exactly (merge is associative and commutative,
  property-tested), which is what makes the scatter/merge architecture
  correct;
* every object is **serializable** to plain dicts (:func:`to_dict` /
  :func:`from_dict`), which is how results travel from engines to the AIDA
  manager service and on to the polling client;
* histograms carry weighted entries, under/overflow, and per-object moments
  (mean/rms) like their AIDA counterparts.

Public types: :class:`Axis`, :class:`Histogram1D`, :class:`Histogram2D`,
:class:`Profile1D`, :class:`Cloud1D`, :class:`Cloud2D`, :class:`NTuple`,
:class:`ObjectTree`, plus fitting (:mod:`repro.aida.fit`) and ASCII
rendering (:mod:`repro.aida.render`).
"""

from repro.aida.axis import Axis
from repro.aida.cloud import Cloud1D, Cloud2D
from repro.aida.codec import (
    codec_disabled,
    codec_enabled,
    decode_array,
    encode_array,
    payload_nbytes,
    set_codec_enabled,
)
from repro.aida.hist1d import Histogram1D
from repro.aida.hist2d import Histogram2D
from repro.aida.ntuple import NTuple
from repro.aida.profile import Profile1D
from repro.aida.ops import divide, efficiency, normalize, rebin, subtract
from repro.aida.ops2d import divide2d, efficiency2d, normalize2d, subtract2d
from repro.aida.serial import from_dict, merge, to_dict
from repro.aida.tree import ObjectTree, TreeError

__all__ = [
    "Axis",
    "Cloud1D",
    "Cloud2D",
    "Histogram1D",
    "Histogram2D",
    "NTuple",
    "ObjectTree",
    "Profile1D",
    "TreeError",
    "codec_disabled",
    "codec_enabled",
    "decode_array",
    "divide",
    "divide2d",
    "efficiency",
    "efficiency2d",
    "encode_array",
    "from_dict",
    "merge",
    "normalize",
    "normalize2d",
    "payload_nbytes",
    "rebin",
    "set_codec_enabled",
    "subtract",
    "subtract2d",
    "to_dict",
]
