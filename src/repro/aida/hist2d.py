"""Two-dimensional weighted histogram."""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.aida.axis import Axis
from repro.aida.codec import decode_array, encode_array
from repro.aida.hist1d import Histogram1D


class Histogram2D:
    """AIDA-style 2-D histogram with under/overflow on both axes.

    Storage is a ``(xbins + 2) x (ybins + 2)`` weight grid; row/column 0 and
    -1 hold the out-of-range slots for each axis.  Merge and serialization
    semantics mirror :class:`~repro.aida.hist1d.Histogram1D`.
    """

    kind = "Histogram2D"

    def __init__(
        self,
        name: str,
        title: str = "",
        x_axis: Optional[Axis] = None,
        y_axis: Optional[Axis] = None,
        x_bins: Optional[int] = None,
        x_lower: Optional[float] = None,
        x_upper: Optional[float] = None,
        y_bins: Optional[int] = None,
        y_lower: Optional[float] = None,
        y_upper: Optional[float] = None,
    ) -> None:
        if not name:
            raise ValueError("histogram name must be non-empty")
        self.name = name
        self.title = title or name
        self.x_axis = x_axis or Axis(bins=x_bins, lower=x_lower, upper=x_upper)
        self.y_axis = y_axis or Axis(bins=y_bins, lower=y_lower, upper=y_upper)
        shape = (self.x_axis.bins + 2, self.y_axis.bins + 2)
        self._counts = np.zeros(shape, dtype=np.int64)
        self._sumw = np.zeros(shape, dtype=float)
        self._sumw2 = np.zeros(shape, dtype=float)
        # In-range weighted moments.
        self._swx = 0.0
        self._swy = 0.0
        self._swx2 = 0.0
        self._swy2 = 0.0
        # Bumped on every mutation; drives delta-snapshot dirty tracking.
        self._version = 0

    @property
    def data_version(self) -> int:
        """Monotonic mutation counter (fill/reset/merge bump it)."""
        return self._version

    # -- filling ----------------------------------------------------------
    def fill(self, x: float, y: float, weight: float = 1.0) -> None:
        """Add one (x, y) entry."""
        self._version += 1
        sx = self.x_axis.index_to_storage(self.x_axis.coord_to_index(x))
        sy = self.y_axis.index_to_storage(self.y_axis.coord_to_index(y))
        self._counts[sx, sy] += 1
        self._sumw[sx, sy] += weight
        self._sumw2[sx, sy] += weight * weight
        if 1 <= sx <= self.x_axis.bins and 1 <= sy <= self.y_axis.bins:
            self._swx += weight * x
            self._swy += weight * y
            self._swx2 += weight * x * x
            self._swy2 += weight * y * y

    def fill_array(
        self,
        xs: Union[Sequence[float], np.ndarray],
        ys: Union[Sequence[float], np.ndarray],
        weights: Optional[Union[Sequence[float], np.ndarray]] = None,
    ) -> None:
        """Vectorized fill of many (x, y) pairs."""
        self._version += 1
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if xs.shape != ys.shape or xs.ndim != 1:
            raise ValueError("xs and ys must be equal-length 1-D arrays")
        if weights is None:
            w = np.ones_like(xs)
        else:
            w = np.asarray(weights, dtype=float)
            if w.shape != xs.shape:
                raise ValueError("weights must match xs in shape")
        sx = self.x_axis.coords_to_storage(xs)
        sy = self.y_axis.coords_to_storage(ys)
        np.add.at(self._counts, (sx, sy), 1)
        np.add.at(self._sumw, (sx, sy), w)
        np.add.at(self._sumw2, (sx, sy), w * w)
        in_range = (
            (sx >= 1)
            & (sx <= self.x_axis.bins)
            & (sy >= 1)
            & (sy <= self.y_axis.bins)
        )
        xin, yin, win = xs[in_range], ys[in_range], w[in_range]
        self._swx += float(np.dot(win, xin))
        self._swy += float(np.dot(win, yin))
        self._swx2 += float(np.dot(win, xin * xin))
        self._swy2 += float(np.dot(win, yin * yin))

    def reset(self) -> None:
        """Clear all statistics."""
        self._version += 1
        self._counts[:] = 0
        self._sumw[:] = 0.0
        self._sumw2[:] = 0.0
        self._swx = self._swy = self._swx2 = self._swy2 = 0.0

    # -- statistics -------------------------------------------------------
    @property
    def entries(self) -> int:
        """Number of in-range entries."""
        return int(self._counts[1:-1, 1:-1].sum())

    @property
    def all_entries(self) -> int:
        """Entries including out-of-range slots."""
        return int(self._counts.sum())

    @property
    def sum_bin_heights(self) -> float:
        """Sum of in-range weights."""
        return float(self._sumw[1:-1, 1:-1].sum())

    def _mean(self, moment: float) -> float:
        sw = self.sum_bin_heights
        return moment / sw if sw else float("nan")

    @property
    def mean_x(self) -> float:
        """Weighted mean of x for in-range entries."""
        return self._mean(self._swx)

    @property
    def mean_y(self) -> float:
        """Weighted mean of y for in-range entries."""
        return self._mean(self._swy)

    @property
    def rms_x(self) -> float:
        """Weighted RMS of x for in-range entries."""
        sw = self.sum_bin_heights
        if not sw:
            return float("nan")
        mean = self._swx / sw
        return float(np.sqrt(max(0.0, self._swx2 / sw - mean * mean)))

    @property
    def rms_y(self) -> float:
        """Weighted RMS of y for in-range entries."""
        sw = self.sum_bin_heights
        if not sw:
            return float("nan")
        mean = self._swy / sw
        return float(np.sqrt(max(0.0, self._swy2 / sw - mean * mean)))

    # -- per-bin accessors --------------------------------------------------
    def bin_height(self, ix: int, iy: int) -> float:
        """Weight of bin (ix, iy); sentinels accepted on both axes."""
        sx = self.x_axis.index_to_storage(ix)
        sy = self.y_axis.index_to_storage(iy)
        return float(self._sumw[sx, sy])

    def bin_entries(self, ix: int, iy: int) -> int:
        """Entry count of bin (ix, iy)."""
        sx = self.x_axis.index_to_storage(ix)
        sy = self.y_axis.index_to_storage(iy)
        return int(self._counts[sx, sy])

    def bin_error(self, ix: int, iy: int) -> float:
        """Poisson-style error of bin (ix, iy)."""
        sx = self.x_axis.index_to_storage(ix)
        sy = self.y_axis.index_to_storage(iy)
        return float(np.sqrt(self._sumw2[sx, sy]))

    def heights(self) -> np.ndarray:
        """In-range weight grid, shape (x_bins, y_bins) (copy)."""
        return self._sumw[1:-1, 1:-1].copy()

    # -- projections ----------------------------------------------------------
    def projection_x(self, name: Optional[str] = None) -> Histogram1D:
        """Project onto x: sum weights over all in-range y bins."""
        hist = Histogram1D(
            name or f"{self.name}_px", f"{self.title} (proj x)", axis=self.x_axis
        )
        hist._counts = self._counts[:, 1:-1].sum(axis=1)
        hist._sumw = self._sumw[:, 1:-1].sum(axis=1)
        hist._sumw2 = self._sumw2[:, 1:-1].sum(axis=1)
        hist._swx = self._swx
        hist._swx2 = self._swx2
        return hist

    def projection_y(self, name: Optional[str] = None) -> Histogram1D:
        """Project onto y: sum weights over all in-range x bins."""
        hist = Histogram1D(
            name or f"{self.name}_py", f"{self.title} (proj y)", axis=self.y_axis
        )
        hist._counts = self._counts[1:-1, :].sum(axis=0)
        hist._sumw = self._sumw[1:-1, :].sum(axis=0)
        hist._sumw2 = self._sumw2[1:-1, :].sum(axis=0)
        hist._swx = self._swy
        hist._swx2 = self._swy2
        return hist

    # -- algebra ------------------------------------------------------------
    def _check_compatible(self, other: "Histogram2D") -> None:
        if not isinstance(other, Histogram2D):
            raise TypeError(f"cannot combine Histogram2D with {type(other).__name__}")
        if self.x_axis != other.x_axis or self.y_axis != other.y_axis:
            raise ValueError(
                f"incompatible axes for {self.name!r} and {other.name!r}"
            )

    def __iadd__(self, other: "Histogram2D") -> "Histogram2D":
        """Merge *other* into this histogram."""
        self._check_compatible(other)
        self._version += 1
        self._counts += other._counts
        self._sumw += other._sumw
        self._sumw2 += other._sumw2
        self._swx += other._swx
        self._swy += other._swy
        self._swx2 += other._swx2
        self._swy2 += other._swy2
        return self

    def __add__(self, other: "Histogram2D") -> "Histogram2D":
        """Return a merged copy."""
        result = self.copy()
        result += other
        return result

    def copy(self, name: Optional[str] = None) -> "Histogram2D":
        """Deep copy, optionally renamed."""
        clone = Histogram2D(
            name or self.name, self.title, x_axis=self.x_axis, y_axis=self.y_axis
        )
        clone._counts = self._counts.copy()
        clone._sumw = self._sumw.copy()
        clone._sumw2 = self._sumw2.copy()
        clone._swx, clone._swy = self._swx, self._swy
        clone._swx2, clone._swy2 = self._swx2, self._swy2
        return clone

    def __repr__(self) -> str:
        return (
            f"<Histogram2D {self.name!r} "
            f"bins={self.x_axis.bins}x{self.y_axis.bins} "
            f"entries={self.entries}>"
        )

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize to a JSON-compatible dict."""
        return {
            "kind": self.kind,
            "name": self.name,
            "title": self.title,
            "x_axis": self.x_axis.to_dict(),
            "y_axis": self.y_axis.to_dict(),
            "counts": encode_array(self._counts),
            "sumw": encode_array(self._sumw),
            "sumw2": encode_array(self._sumw2),
            "moments": [self._swx, self._swy, self._swx2, self._swy2],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram2D":
        """Reconstruct a histogram serialized with :meth:`to_dict`."""
        hist = cls(
            data["name"],
            data["title"],
            x_axis=Axis.from_dict(data["x_axis"]),
            y_axis=Axis.from_dict(data["y_axis"]),
        )
        hist._counts = decode_array(data["counts"], dtype=np.int64)
        hist._sumw = decode_array(data["sumw"], dtype=float)
        hist._sumw2 = decode_array(data["sumw2"], dtype=float)
        hist._swx, hist._swy, hist._swx2, hist._swy2 = map(
            float, data["moments"]
        )
        return hist
