"""Clouds: unbinned scatter stores with automatic histogram conversion.

An AIDA *cloud* keeps raw (x[, y], weight) points until a configurable
limit, after which it converts itself to a histogram — exactly the right
container for the exploratory "I don't know the binning yet" phase of
interactive analysis.  Merging two clouds concatenates points (or converts
both if either has converted).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.aida.codec import decode_list, encode_array
from repro.aida.hist1d import Histogram1D
from repro.aida.hist2d import Histogram2D

#: Default auto-conversion threshold (number of stored points).
DEFAULT_MAX_POINTS = 100_000
#: Default number of bins used when auto-converting.
AUTO_BINS = 50


def _rebin_hist1d(hist: Histogram1D, axis) -> Histogram1D:
    """Rebin a histogram onto *axis*, representing each bin by its center.

    Needed when merging two converted clouds whose auto-chosen ranges
    differ.  Entry counts, total weight, and the (binning-independent)
    moments are conserved exactly; per-bin placement is approximate at the
    source-bin-width level, as in standard AIDA cloud implementations.
    """
    if hist.axis == axis:
        return hist
    out = Histogram1D(hist.name, hist.title, axis=axis)
    src = hist.axis
    # Representative x for each storage slot: below range for underflow, the
    # upper edge for overflow, bin centers in between.
    reps = np.empty(src.bins + 2)
    reps[0] = np.nextafter(src.lower_edge, -np.inf)
    reps[1:-1] = src.bin_centers()
    reps[-1] = src.upper_edge
    targets = axis.coords_to_storage(reps)
    np.add.at(out._counts, targets, hist._counts)
    np.add.at(out._sumw, targets, hist._sumw)
    np.add.at(out._sumw2, targets, hist._sumw2)
    out._swx = hist._swx
    out._swx2 = hist._swx2
    return out


def _slot_reps(axis) -> np.ndarray:
    """Representative coordinate per storage slot of *axis*."""
    reps = np.empty(axis.bins + 2)
    reps[0] = np.nextafter(axis.lower_edge, -np.inf)
    reps[1:-1] = axis.bin_centers()
    reps[-1] = axis.upper_edge
    return reps


def _rebin_hist2d(hist: Histogram2D, x_axis, y_axis) -> Histogram2D:
    """2-D analogue of :func:`_rebin_hist1d`."""
    if hist.x_axis == x_axis and hist.y_axis == y_axis:
        return hist
    out = Histogram2D(hist.name, hist.title, x_axis=x_axis, y_axis=y_axis)
    tx = x_axis.coords_to_storage(_slot_reps(hist.x_axis))
    ty = y_axis.coords_to_storage(_slot_reps(hist.y_axis))
    grid_x = np.repeat(tx, len(ty))
    grid_y = np.tile(ty, len(tx))
    np.add.at(out._counts, (grid_x, grid_y), hist._counts.ravel())
    np.add.at(out._sumw, (grid_x, grid_y), hist._sumw.ravel())
    np.add.at(out._sumw2, (grid_x, grid_y), hist._sumw2.ravel())
    out._swx, out._swy = hist._swx, hist._swy
    out._swx2, out._swy2 = hist._swx2, hist._swy2
    return out


class Cloud1D:
    """Unbinned 1-D point store with lazy conversion to a histogram.

    Parameters
    ----------
    max_points:
        When more points than this are stored, the cloud converts itself
        into a :class:`Histogram1D` covering the observed range.
    """

    kind = "Cloud1D"

    def __init__(
        self,
        name: str,
        title: str = "",
        max_points: int = DEFAULT_MAX_POINTS,
    ) -> None:
        if not name:
            raise ValueError("cloud name must be non-empty")
        if max_points < 1:
            raise ValueError("max_points must be >= 1")
        self.name = name
        self.title = title or name
        self.max_points = max_points
        self._xs: List[float] = []
        self._ws: List[float] = []
        self._hist: Optional[Histogram1D] = None
        # Bumped on every mutation; drives delta-snapshot dirty tracking.
        self._version = 0

    @property
    def data_version(self) -> int:
        """Monotonic mutation counter (fill/convert/reset/merge bump it)."""
        return self._version

    # -- filling ----------------------------------------------------------
    def fill(self, x: float, weight: float = 1.0) -> None:
        """Add one point, possibly triggering auto-conversion."""
        self._version += 1
        if self._hist is not None:
            self._hist.fill(x, weight)
            return
        self._xs.append(float(x))
        self._ws.append(float(weight))
        if len(self._xs) > self.max_points:
            self.convert()

    @property
    def converted(self) -> bool:
        """Whether the cloud has become a histogram."""
        return self._hist is not None

    @property
    def entries(self) -> int:
        """Total number of points filled."""
        if self._hist is not None:
            return self._hist.all_entries
        return len(self._xs)

    def values(self) -> np.ndarray:
        """Raw x values (only before conversion)."""
        if self._hist is not None:
            raise RuntimeError(f"cloud {self.name!r} already converted")
        return np.asarray(self._xs)

    def weights(self) -> np.ndarray:
        """Raw weights (only before conversion)."""
        if self._hist is not None:
            raise RuntimeError(f"cloud {self.name!r} already converted")
        return np.asarray(self._ws)

    # -- statistics (available in either state) -----------------------------
    @property
    def mean(self) -> float:
        """Weighted mean of the points."""
        if self._hist is not None:
            return self._hist.mean
        if not self._xs:
            return float("nan")
        w = np.asarray(self._ws)
        return float(np.dot(w, self._xs) / w.sum())

    @property
    def rms(self) -> float:
        """Weighted RMS of the points."""
        if self._hist is not None:
            return self._hist.rms
        if not self._xs:
            return float("nan")
        xs = np.asarray(self._xs)
        w = np.asarray(self._ws)
        mean = np.dot(w, xs) / w.sum()
        return float(np.sqrt(max(0.0, np.dot(w, xs * xs) / w.sum() - mean**2)))

    # -- conversion ----------------------------------------------------------
    def convert(
        self,
        bins: int = AUTO_BINS,
        lower: Optional[float] = None,
        upper: Optional[float] = None,
    ) -> Histogram1D:
        """Convert to a histogram (idempotent); returns it."""
        if self._hist is not None:
            return self._hist
        self._version += 1
        xs = np.asarray(self._xs)
        if lower is None:
            lower = float(xs.min()) if xs.size else 0.0
        if upper is None:
            upper = float(xs.max()) if xs.size else 1.0
        if upper <= lower:
            upper = lower + 1.0
        # Pad the top edge so the maximum lands in-range, not in overflow.
        span = upper - lower
        upper = upper + span * 1e-9 + 1e-12
        hist = Histogram1D(self.name, self.title, bins=bins, lower=lower, upper=upper)
        if xs.size:
            hist.fill_array(xs, np.asarray(self._ws))
        self._hist = hist
        self._xs = []
        self._ws = []
        return hist

    def histogram(self) -> Histogram1D:
        """The converted histogram (converting on demand)."""
        return self.convert()

    # -- algebra ------------------------------------------------------------
    def __iadd__(self, other: "Cloud1D") -> "Cloud1D":
        """Merge *other* into this cloud.

        If neither has converted, points are concatenated; otherwise both
        sides are converted (with this cloud's binning) and merged as
        histograms.
        """
        if not isinstance(other, Cloud1D):
            raise TypeError(f"cannot combine Cloud1D with {type(other).__name__}")
        self._version += 1
        if self._hist is None and other._hist is None:
            self._xs.extend(other._xs)
            self._ws.extend(other._ws)
            if len(self._xs) > self.max_points:
                self.convert()
            return self
        # Histogram path: bring both to a common binning.
        if self._hist is None:
            # Adopt the other's axis so the merge is well-defined.
            mine = Histogram1D(self.name, self.title, axis=other.histogram().axis)
            if self._xs:
                mine.fill_array(np.asarray(self._xs), np.asarray(self._ws))
            self._hist = mine
            self._xs, self._ws = [], []
        if other._hist is None:
            theirs = Histogram1D(other.name, other.title, axis=self._hist.axis)
            if other._xs:
                theirs.fill_array(np.asarray(other._xs), np.asarray(other._ws))
        else:
            # Auto-chosen axes can differ: rebin onto mine.
            theirs = _rebin_hist1d(other._hist, self._hist.axis)
        self._hist += theirs
        return self

    def __add__(self, other: "Cloud1D") -> "Cloud1D":
        """Return a merged copy."""
        result = self.copy()
        result += other
        return result

    def copy(self, name: Optional[str] = None) -> "Cloud1D":
        """Deep copy, optionally renamed."""
        clone = Cloud1D(name or self.name, self.title, self.max_points)
        clone._xs = list(self._xs)
        clone._ws = list(self._ws)
        clone._hist = self._hist.copy() if self._hist is not None else None
        return clone

    def reset(self) -> None:
        """Drop all points and any converted histogram."""
        self._version += 1
        self._xs = []
        self._ws = []
        self._hist = None

    def __repr__(self) -> str:
        state = "hist" if self.converted else "points"
        return f"<Cloud1D {self.name!r} entries={self.entries} ({state})>"

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize to a JSON-compatible dict."""
        data = {
            "kind": self.kind,
            "name": self.name,
            "title": self.title,
            "max_points": self.max_points,
        }
        if self._hist is not None:
            data["hist"] = self._hist.to_dict()
        else:
            data["xs"] = encode_array(np.asarray(self._xs, dtype=float))
            data["ws"] = encode_array(np.asarray(self._ws, dtype=float))
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Cloud1D":
        """Reconstruct a cloud serialized with :meth:`to_dict`."""
        cloud = cls(data["name"], data["title"], data["max_points"])
        if "hist" in data:
            cloud._hist = Histogram1D.from_dict(data["hist"])
        else:
            cloud._xs = decode_list(data["xs"])
            cloud._ws = decode_list(data["ws"])
        return cloud


class Cloud2D:
    """Unbinned 2-D point store with lazy conversion to a 2-D histogram."""

    kind = "Cloud2D"

    def __init__(
        self,
        name: str,
        title: str = "",
        max_points: int = DEFAULT_MAX_POINTS,
    ) -> None:
        if not name:
            raise ValueError("cloud name must be non-empty")
        if max_points < 1:
            raise ValueError("max_points must be >= 1")
        self.name = name
        self.title = title or name
        self.max_points = max_points
        self._xs: List[float] = []
        self._ys: List[float] = []
        self._ws: List[float] = []
        self._hist: Optional[Histogram2D] = None
        # Bumped on every mutation; drives delta-snapshot dirty tracking.
        self._version = 0

    @property
    def data_version(self) -> int:
        """Monotonic mutation counter (fill/convert/reset/merge bump it)."""
        return self._version

    def fill(self, x: float, y: float, weight: float = 1.0) -> None:
        """Add one (x, y) point, possibly triggering auto-conversion."""
        self._version += 1
        if self._hist is not None:
            self._hist.fill(x, y, weight)
            return
        self._xs.append(float(x))
        self._ys.append(float(y))
        self._ws.append(float(weight))
        if len(self._xs) > self.max_points:
            self.convert()

    @property
    def converted(self) -> bool:
        """Whether the cloud has become a histogram."""
        return self._hist is not None

    @property
    def entries(self) -> int:
        """Total number of points filled."""
        if self._hist is not None:
            return self._hist.all_entries
        return len(self._xs)

    def convert(self, bins: int = AUTO_BINS) -> Histogram2D:
        """Convert to a 2-D histogram (idempotent); returns it."""
        if self._hist is not None:
            return self._hist
        self._version += 1
        xs = np.asarray(self._xs)
        ys = np.asarray(self._ys)

        def bounds(a: np.ndarray) -> Tuple[float, float]:
            if not a.size:
                return 0.0, 1.0
            lo, hi = float(a.min()), float(a.max())
            if hi <= lo:
                hi = lo + 1.0
            return lo, hi + (hi - lo) * 1e-9 + 1e-12

        x_lo, x_hi = bounds(xs)
        y_lo, y_hi = bounds(ys)
        hist = Histogram2D(
            self.name,
            self.title,
            x_bins=bins,
            x_lower=x_lo,
            x_upper=x_hi,
            y_bins=bins,
            y_lower=y_lo,
            y_upper=y_hi,
        )
        if xs.size:
            hist.fill_array(xs, ys, np.asarray(self._ws))
        self._hist = hist
        self._xs, self._ys, self._ws = [], [], []
        return hist

    def histogram(self) -> Histogram2D:
        """The converted histogram (converting on demand)."""
        return self.convert()

    def __iadd__(self, other: "Cloud2D") -> "Cloud2D":
        """Merge *other* into this cloud (see :meth:`Cloud1D.__iadd__`)."""
        if not isinstance(other, Cloud2D):
            raise TypeError(f"cannot combine Cloud2D with {type(other).__name__}")
        self._version += 1
        if self._hist is None and other._hist is None:
            self._xs.extend(other._xs)
            self._ys.extend(other._ys)
            self._ws.extend(other._ws)
            if len(self._xs) > self.max_points:
                self.convert()
            return self
        if self._hist is None:
            template = other.histogram()
            mine = Histogram2D(
                self.name,
                self.title,
                x_axis=template.x_axis,
                y_axis=template.y_axis,
            )
            if self._xs:
                mine.fill_array(
                    np.asarray(self._xs),
                    np.asarray(self._ys),
                    np.asarray(self._ws),
                )
            self._hist = mine
            self._xs, self._ys, self._ws = [], [], []
        if other._hist is None:
            theirs = Histogram2D(
                other.name,
                other.title,
                x_axis=self._hist.x_axis,
                y_axis=self._hist.y_axis,
            )
            if other._xs:
                theirs.fill_array(
                    np.asarray(other._xs),
                    np.asarray(other._ys),
                    np.asarray(other._ws),
                )
        else:
            theirs = _rebin_hist2d(other._hist, self._hist.x_axis, self._hist.y_axis)
        self._hist += theirs
        return self

    def __add__(self, other: "Cloud2D") -> "Cloud2D":
        """Return a merged copy."""
        result = self.copy()
        result += other
        return result

    def copy(self, name: Optional[str] = None) -> "Cloud2D":
        """Deep copy, optionally renamed."""
        clone = Cloud2D(name or self.name, self.title, self.max_points)
        clone._xs = list(self._xs)
        clone._ys = list(self._ys)
        clone._ws = list(self._ws)
        clone._hist = self._hist.copy() if self._hist is not None else None
        return clone

    def reset(self) -> None:
        """Drop all points and any converted histogram."""
        self._version += 1
        self._xs, self._ys, self._ws = [], [], []
        self._hist = None

    def __repr__(self) -> str:
        state = "hist" if self.converted else "points"
        return f"<Cloud2D {self.name!r} entries={self.entries} ({state})>"

    def to_dict(self) -> dict:
        """Serialize to a JSON-compatible dict."""
        data = {
            "kind": self.kind,
            "name": self.name,
            "title": self.title,
            "max_points": self.max_points,
        }
        if self._hist is not None:
            data["hist"] = self._hist.to_dict()
        else:
            data["xs"] = encode_array(np.asarray(self._xs, dtype=float))
            data["ys"] = encode_array(np.asarray(self._ys, dtype=float))
            data["ws"] = encode_array(np.asarray(self._ws, dtype=float))
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Cloud2D":
        """Reconstruct a cloud serialized with :meth:`to_dict`."""
        cloud = cls(data["name"], data["title"], data["max_points"])
        if "hist" in data:
            cloud._hist = Histogram2D.from_dict(data["hist"])
        else:
            cloud._xs = decode_list(data["xs"])
            cloud._ys = decode_list(data["ys"])
            cloud._ws = decode_list(data["ws"])
        return cloud
