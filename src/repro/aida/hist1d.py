"""One-dimensional weighted histogram with exact merge semantics."""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.aida.axis import OVERFLOW, UNDERFLOW, Axis
from repro.aida.codec import decode_array, encode_array


class Histogram1D:
    """AIDA-style 1-D histogram.

    Storage arrays have length ``bins + 2``: slot 0 is underflow, slots
    ``1..bins`` are in-range, slot ``bins + 1`` is overflow.  Tracked per
    slot: entry counts, sum of weights, sum of squared weights (for
    Poisson-style bin errors).  Global first and second weighted moments of
    in-range entries give :attr:`mean` and :attr:`rms`.

    Merging (``+``) requires identical axes and sums all statistics, so a
    histogram filled on N engines and merged equals the histogram filled on
    one engine with the concatenated data — the invariant the IPA merge
    architecture relies on (property-tested in
    ``tests/test_properties_aida.py``).

    Parameters
    ----------
    name:
        Identifier used as the object's path leaf in the tree.
    title:
        Human-readable title for display.
    bins, lower, upper, edges:
        Binning, forwarded to :class:`~repro.aida.axis.Axis` (or pass an
        ``Axis`` via *axis*).
    """

    kind = "Histogram1D"

    def __init__(
        self,
        name: str,
        title: str = "",
        bins: Optional[int] = None,
        lower: Optional[float] = None,
        upper: Optional[float] = None,
        edges: Optional[Sequence[float]] = None,
        axis: Optional[Axis] = None,
    ) -> None:
        if not name:
            raise ValueError("histogram name must be non-empty")
        self.name = name
        self.title = title or name
        if axis is not None:
            self.axis = axis
        else:
            self.axis = Axis(bins=bins, lower=lower, upper=upper, edges=edges)
        size = self.axis.bins + 2
        self._counts = np.zeros(size, dtype=np.int64)
        self._sumw = np.zeros(size, dtype=float)
        self._sumw2 = np.zeros(size, dtype=float)
        # In-range weighted moments for mean/rms.
        self._swx = 0.0
        self._swx2 = 0.0
        # Bumped on every mutation; drives delta-snapshot dirty tracking.
        self._version = 0

    @property
    def data_version(self) -> int:
        """Monotonic mutation counter (fill/reset/merge/scale bump it)."""
        return self._version

    # -- filling ----------------------------------------------------------
    def fill(self, x: float, weight: float = 1.0) -> None:
        """Add one entry at *x* with the given *weight*."""
        self._version += 1
        index = self.axis.coord_to_index(x)
        slot = self.axis.index_to_storage(index)
        self._counts[slot] += 1
        self._sumw[slot] += weight
        self._sumw2[slot] += weight * weight
        if index not in (UNDERFLOW, OVERFLOW):
            self._swx += weight * x
            self._swx2 += weight * x * x

    def fill_array(
        self,
        xs: Union[Sequence[float], np.ndarray],
        weights: Optional[Union[Sequence[float], np.ndarray]] = None,
    ) -> None:
        """Vectorized fill of many entries at once (the engine hot path)."""
        self._version += 1
        xs = np.asarray(xs, dtype=float)
        if xs.ndim != 1:
            raise ValueError("xs must be 1-D")
        if weights is None:
            w = np.ones_like(xs)
        else:
            w = np.asarray(weights, dtype=float)
            if w.shape != xs.shape:
                raise ValueError("weights must match xs in shape")
        slots = self.axis.coords_to_storage(xs)
        np.add.at(self._counts, slots, 1)
        np.add.at(self._sumw, slots, w)
        np.add.at(self._sumw2, slots, w * w)
        in_range = (slots >= 1) & (slots <= self.axis.bins)
        xin = xs[in_range]
        win = w[in_range]
        self._swx += float(np.dot(win, xin))
        self._swx2 += float(np.dot(win, xin * xin))

    def reset(self) -> None:
        """Clear all statistics (the client's *rewind*, §3.6)."""
        self._version += 1
        self._counts[:] = 0
        self._sumw[:] = 0.0
        self._sumw2[:] = 0.0
        self._swx = 0.0
        self._swx2 = 0.0

    # -- statistics -------------------------------------------------------
    @property
    def entries(self) -> int:
        """Number of in-range entries."""
        return int(self._counts[1:-1].sum())

    @property
    def all_entries(self) -> int:
        """Number of entries including under/overflow."""
        return int(self._counts.sum())

    @property
    def extra_entries(self) -> int:
        """Entries in the under/overflow slots."""
        return int(self._counts[0] + self._counts[-1])

    @property
    def sum_bin_heights(self) -> float:
        """Sum of in-range weights."""
        return float(self._sumw[1:-1].sum())

    @property
    def sum_all_bin_heights(self) -> float:
        """Sum of all weights including under/overflow."""
        return float(self._sumw.sum())

    @property
    def mean(self) -> float:
        """Weighted mean of in-range entries (NaN when empty)."""
        sw = self.sum_bin_heights
        if sw == 0:
            return float("nan")
        return self._swx / sw

    @property
    def rms(self) -> float:
        """Weighted RMS (sqrt of variance) of in-range entries."""
        sw = self.sum_bin_heights
        if sw == 0:
            return float("nan")
        mean = self._swx / sw
        variance = max(0.0, self._swx2 / sw - mean * mean)
        return float(np.sqrt(variance))

    @property
    def max_bin_height(self) -> float:
        """Largest in-range bin weight."""
        return float(self._sumw[1:-1].max()) if self.axis.bins else 0.0

    # -- per-bin accessors --------------------------------------------------
    def bin_entries(self, index: int) -> int:
        """Entry count of a bin (accepts UNDERFLOW/OVERFLOW)."""
        return int(self._counts[self.axis.index_to_storage(index)])

    def bin_height(self, index: int) -> float:
        """Sum of weights of a bin (accepts UNDERFLOW/OVERFLOW)."""
        return float(self._sumw[self.axis.index_to_storage(index)])

    def bin_error(self, index: int) -> float:
        """Poisson-style bin error: sqrt(sum of squared weights)."""
        return float(np.sqrt(self._sumw2[self.axis.index_to_storage(index)]))

    def heights(self) -> np.ndarray:
        """In-range bin heights as an array (copy)."""
        return self._sumw[1:-1].copy()

    def errors(self) -> np.ndarray:
        """In-range bin errors as an array (copy)."""
        return np.sqrt(self._sumw2[1:-1])

    def underflow_height(self) -> float:
        """Weight collected below the axis range."""
        return float(self._sumw[0])

    def overflow_height(self) -> float:
        """Weight collected at/above the axis upper edge."""
        return float(self._sumw[-1])

    # -- algebra ------------------------------------------------------------
    def _check_compatible(self, other: "Histogram1D") -> None:
        if not isinstance(other, Histogram1D):
            raise TypeError(f"cannot combine Histogram1D with {type(other).__name__}")
        if self.axis != other.axis:
            raise ValueError(
                f"incompatible axes for {self.name!r} and {other.name!r}"
            )

    def __iadd__(self, other: "Histogram1D") -> "Histogram1D":
        """Merge *other*'s statistics into this histogram."""
        self._check_compatible(other)
        self._version += 1
        self._counts += other._counts
        self._sumw += other._sumw
        self._sumw2 += other._sumw2
        self._swx += other._swx
        self._swx2 += other._swx2
        return self

    def __add__(self, other: "Histogram1D") -> "Histogram1D":
        """Return a new histogram with both sets of statistics."""
        result = self.copy()
        result += other
        return result

    def scale(self, factor: float) -> None:
        """Multiply every weight by *factor* (keeps entry counts)."""
        self._version += 1
        self._sumw *= factor
        self._sumw2 *= factor * factor
        self._swx *= factor
        self._swx2 *= factor

    def copy(self, name: Optional[str] = None) -> "Histogram1D":
        """Deep copy, optionally renamed."""
        clone = Histogram1D(name or self.name, self.title, axis=self.axis)
        clone._counts = self._counts.copy()
        clone._sumw = self._sumw.copy()
        clone._sumw2 = self._sumw2.copy()
        clone._swx = self._swx
        clone._swx2 = self._swx2
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram1D):
            return NotImplemented
        return (
            self.name == other.name
            and self.axis == other.axis
            and np.array_equal(self._counts, other._counts)
            and np.allclose(self._sumw, other._sumw)
            and np.allclose(self._sumw2, other._sumw2)
            and np.isclose(self._swx, other._swx)
            and np.isclose(self._swx2, other._swx2)
        )

    def __repr__(self) -> str:
        return (
            f"<Histogram1D {self.name!r} bins={self.axis.bins} "
            f"entries={self.entries}>"
        )

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize to a JSON-compatible dict."""
        return {
            "kind": self.kind,
            "name": self.name,
            "title": self.title,
            "axis": self.axis.to_dict(),
            "counts": encode_array(self._counts),
            "sumw": encode_array(self._sumw),
            "sumw2": encode_array(self._sumw2),
            "swx": self._swx,
            "swx2": self._swx2,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram1D":
        """Reconstruct a histogram serialized with :meth:`to_dict`."""
        hist = cls(
            data["name"], data["title"], axis=Axis.from_dict(data["axis"])
        )
        hist._counts = decode_array(data["counts"], dtype=np.int64)
        hist._sumw = decode_array(data["sumw"], dtype=float)
        hist._sumw2 = decode_array(data["sumw2"], dtype=float)
        hist._swx = float(data["swx"])
        hist._swx2 = float(data["swx2"])
        return hist
