"""NTuple: a columnar table of analysis quantities.

An AIDA ntuple is the "write now, histogram later" container: analysis code
appends one row per event, and projections onto any column (optionally with
a cut) produce histograms afterwards.  Columns are kept as growable Python
lists and exposed as numpy arrays for vectorized projections.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.aida.codec import decode_list, encode_array
from repro.aida.hist1d import Histogram1D
from repro.aida.hist2d import Histogram2D


class NTuple:
    """Named-column row store.

    Parameters
    ----------
    name:
        Object name.
    columns:
        Ordered column names; every row must provide one float per column.
    """

    kind = "NTuple"

    def __init__(self, name: str, columns: Sequence[str], title: str = "") -> None:
        if not name:
            raise ValueError("ntuple name must be non-empty")
        if not columns:
            raise ValueError("ntuple needs at least one column")
        if len(set(columns)) != len(columns):
            raise ValueError("duplicate column names")
        self.name = name
        self.title = title or name
        self.columns = tuple(columns)
        self._data: Dict[str, List[float]] = {c: [] for c in columns}
        # Bumped on every mutation; drives delta-snapshot dirty tracking.
        self._version = 0

    @property
    def data_version(self) -> int:
        """Monotonic mutation counter (fill/reset/merge bump it)."""
        return self._version

    # -- filling ----------------------------------------------------------
    def fill(self, **values: float) -> None:
        """Append one row given as keyword arguments (all columns required)."""
        self._version += 1
        if set(values) != set(self.columns):
            missing = set(self.columns) - set(values)
            extra = set(values) - set(self.columns)
            raise ValueError(
                f"row mismatch: missing={sorted(missing)} extra={sorted(extra)}"
            )
        for column in self.columns:
            self._data[column].append(float(values[column]))

    def fill_row(self, row: Sequence[float]) -> None:
        """Append one row given positionally (column order)."""
        self._version += 1
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} values for {len(self.columns)} columns"
            )
        for column, value in zip(self.columns, row):
            self._data[column].append(float(value))

    @property
    def rows(self) -> int:
        """Number of rows stored."""
        return len(self._data[self.columns[0]])

    def column(self, name: str) -> np.ndarray:
        """One column as a numpy array (copy)."""
        if name not in self._data:
            raise KeyError(f"no column {name!r} in ntuple {self.name!r}")
        return np.asarray(self._data[name])

    # -- projections ----------------------------------------------------------
    def project1d(
        self,
        column: str,
        bins: int,
        lower: float,
        upper: float,
        cut: Optional[Callable[[Dict[str, np.ndarray]], np.ndarray]] = None,
        name: Optional[str] = None,
    ) -> Histogram1D:
        """Histogram one column, optionally filtered by a vectorized *cut*.

        The cut receives a dict of column arrays and returns a boolean
        mask — e.g. ``lambda c: c["njets"] >= 2``.
        """
        values = self.column(column)
        if cut is not None:
            mask = np.asarray(
                cut({c: self.column(c) for c in self.columns}), dtype=bool
            )
            values = values[mask]
        hist = Histogram1D(
            name or f"{self.name}_{column}",
            f"{self.title}: {column}",
            bins=bins,
            lower=lower,
            upper=upper,
        )
        hist.fill_array(values)
        return hist

    def project2d(
        self,
        x_column: str,
        y_column: str,
        x_bins: int,
        x_lower: float,
        x_upper: float,
        y_bins: int,
        y_lower: float,
        y_upper: float,
        cut: Optional[Callable[[Dict[str, np.ndarray]], np.ndarray]] = None,
        name: Optional[str] = None,
    ) -> Histogram2D:
        """2-D histogram of two columns, optionally filtered by *cut*."""
        xs = self.column(x_column)
        ys = self.column(y_column)
        if cut is not None:
            mask = np.asarray(
                cut({c: self.column(c) for c in self.columns}), dtype=bool
            )
            xs, ys = xs[mask], ys[mask]
        hist = Histogram2D(
            name or f"{self.name}_{x_column}_{y_column}",
            f"{self.title}: {y_column} vs {x_column}",
            x_bins=x_bins,
            x_lower=x_lower,
            x_upper=x_upper,
            y_bins=y_bins,
            y_lower=y_lower,
            y_upper=y_upper,
        )
        hist.fill_array(xs, ys)
        return hist

    # -- algebra ------------------------------------------------------------
    def __iadd__(self, other: "NTuple") -> "NTuple":
        """Append *other*'s rows (columns must match exactly)."""
        if not isinstance(other, NTuple):
            raise TypeError(f"cannot combine NTuple with {type(other).__name__}")
        if self.columns != other.columns:
            raise ValueError(
                f"column mismatch: {self.columns} vs {other.columns}"
            )
        self._version += 1
        for column in self.columns:
            self._data[column].extend(other._data[column])
        return self

    def __add__(self, other: "NTuple") -> "NTuple":
        """Return a copy with both row sets."""
        result = self.copy()
        result += other
        return result

    def copy(self, name: Optional[str] = None) -> "NTuple":
        """Deep copy, optionally renamed."""
        clone = NTuple(name or self.name, self.columns, self.title)
        for column in self.columns:
            clone._data[column] = list(self._data[column])
        return clone

    def reset(self) -> None:
        """Drop all rows."""
        self._version += 1
        for column in self.columns:
            self._data[column] = []

    def __repr__(self) -> str:
        return (
            f"<NTuple {self.name!r} columns={list(self.columns)} "
            f"rows={self.rows}>"
        )

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize to a JSON-compatible dict."""
        return {
            "kind": self.kind,
            "name": self.name,
            "title": self.title,
            "columns": list(self.columns),
            "data": {
                c: encode_array(np.asarray(v, dtype=float))
                for c, v in self._data.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NTuple":
        """Reconstruct an ntuple serialized with :meth:`to_dict`."""
        nt = cls(data["name"], data["columns"], data["title"])
        for column in nt.columns:
            nt._data[column] = decode_list(data["data"][column])
        return nt
