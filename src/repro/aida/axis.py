"""Binned axis shared by histograms and profiles.

Supports equal-width binning (the common case) and explicit variable bin
edges.  Bin indexing follows the AIDA convention used throughout this
package's storage arrays:

* index ``0`` — underflow (x < lower edge),
* indices ``1 .. bins`` — in-range bins,
* index ``bins + 1`` — overflow (x >= upper edge).

Public methods that take or return *bin numbers* use 0-based in-range
indices (``0 .. bins-1``); the under/overflow slots are reached through the
dedicated accessors on the histogram types.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.aida.codec import decode_array, encode_array

UNDERFLOW = -2
OVERFLOW = -1


class Axis:
    """A 1-D binning of the real line into ``bins`` intervals.

    Parameters
    ----------
    bins:
        Number of in-range bins (>= 1).
    lower, upper:
        Axis range; ``lower < upper``.  Ignored when *edges* is given.
    edges:
        Optional explicit, strictly increasing bin edges (length bins+1);
        overrides ``bins/lower/upper``.
    """

    __slots__ = ("_edges", "_fixed", "_width")

    def __init__(
        self,
        bins: Optional[int] = None,
        lower: Optional[float] = None,
        upper: Optional[float] = None,
        edges: Optional[Sequence[float]] = None,
    ) -> None:
        if edges is not None:
            arr = np.asarray(edges, dtype=float)
            if arr.ndim != 1 or arr.size < 2:
                raise ValueError("edges must be a 1-D sequence of >= 2 values")
            if not np.all(np.diff(arr) > 0):
                raise ValueError("edges must be strictly increasing")
            self._edges = arr
            self._fixed = False
            self._width = float("nan")
        else:
            if bins is None or lower is None or upper is None:
                raise ValueError("provide either edges or bins/lower/upper")
            if bins < 1:
                raise ValueError("bins must be >= 1")
            if not lower < upper:
                raise ValueError("lower must be < upper")
            self._edges = np.linspace(float(lower), float(upper), bins + 1)
            self._fixed = True
            self._width = (upper - lower) / bins

    # -- basic properties -------------------------------------------------
    @property
    def bins(self) -> int:
        """Number of in-range bins."""
        return len(self._edges) - 1

    @property
    def lower_edge(self) -> float:
        """Lower edge of the axis."""
        return float(self._edges[0])

    @property
    def upper_edge(self) -> float:
        """Upper edge of the axis."""
        return float(self._edges[-1])

    @property
    def edges(self) -> np.ndarray:
        """All bin edges (length ``bins + 1``); read-only view."""
        view = self._edges.view()
        view.flags.writeable = False
        return view

    @property
    def fixed_binning(self) -> bool:
        """Whether the axis has equal-width bins."""
        return self._fixed

    # -- bin geometry -------------------------------------------------------
    def bin_lower_edge(self, index: int) -> float:
        """Lower edge of in-range bin *index* (0-based)."""
        self._check_index(index)
        return float(self._edges[index])

    def bin_upper_edge(self, index: int) -> float:
        """Upper edge of in-range bin *index*."""
        self._check_index(index)
        return float(self._edges[index + 1])

    def bin_width(self, index: int) -> float:
        """Width of in-range bin *index*."""
        self._check_index(index)
        return float(self._edges[index + 1] - self._edges[index])

    def bin_center(self, index: int) -> float:
        """Center of in-range bin *index*."""
        self._check_index(index)
        return float(0.5 * (self._edges[index] + self._edges[index + 1]))

    def bin_centers(self) -> np.ndarray:
        """Centers of all in-range bins."""
        return 0.5 * (self._edges[:-1] + self._edges[1:])

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.bins:
            raise IndexError(f"bin index {index} out of range 0..{self.bins - 1}")

    # -- coordinate lookup ----------------------------------------------
    def coord_to_index(self, x: float) -> int:
        """Map a coordinate to a bin index.

        Returns the 0-based in-range index, or :data:`UNDERFLOW` /
        :data:`OVERFLOW` sentinels.  NaN maps to UNDERFLOW.
        """
        if np.isnan(x):
            return UNDERFLOW
        if x < self._edges[0]:
            return UNDERFLOW
        if x >= self._edges[-1]:
            return OVERFLOW
        # searchsorted keeps scalar and vectorized fills bit-identical even
        # at bin edges (a plain division can disagree near linspace edges).
        return int(np.searchsorted(self._edges, x, side="right") - 1)

    def coords_to_storage(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized coordinate -> *storage* index (0=under .. bins+1=over).

        NaNs map to the underflow slot, matching :meth:`coord_to_index`.
        """
        xs = np.asarray(xs, dtype=float)
        idx = np.searchsorted(self._edges, xs, side="right")
        idx = np.clip(idx, 0, self.bins + 1)
        # searchsorted puts x == last edge at bins+1 already; x < first edge
        # at 0 (underflow).  In-range values land at 1..bins.  NaN sorts to
        # the end under 'right'; force it to underflow.
        idx[np.isnan(xs)] = 0
        return idx

    def storage_to_index(self, storage: int) -> int:
        """Convert a storage slot (0..bins+1) to a public index."""
        if storage == 0:
            return UNDERFLOW
        if storage == self.bins + 1:
            return OVERFLOW
        return storage - 1

    def index_to_storage(self, index: int) -> int:
        """Convert a public index (incl. sentinels) to a storage slot."""
        if index == UNDERFLOW:
            return 0
        if index == OVERFLOW:
            return self.bins + 1
        self._check_index(index)
        return index + 1

    # -- comparison / serialization --------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Axis):
            return NotImplemented
        return (
            self.bins == other.bins
            and np.allclose(self._edges, other._edges, rtol=0, atol=0)
        )

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash((self.bins, self.lower_edge, self.upper_edge))

    def __repr__(self) -> str:
        if self._fixed:
            return (
                f"Axis(bins={self.bins}, lower={self.lower_edge}, "
                f"upper={self.upper_edge})"
            )
        return f"Axis(edges=<{self.bins + 1} values>)"

    def to_dict(self) -> dict:
        """Serialize to a plain dict."""
        if self._fixed:
            return {
                "bins": self.bins,
                "lower": self.lower_edge,
                "upper": self.upper_edge,
            }
        return {"edges": encode_array(self._edges)}

    @classmethod
    def from_dict(cls, data: dict) -> "Axis":
        """Reconstruct an axis serialized with :meth:`to_dict`."""
        if "edges" in data:
            return cls(edges=decode_array(data["edges"], dtype=float))
        return cls(bins=data["bins"], lower=data["lower"], upper=data["upper"])
