"""Histogram arithmetic: subtract, divide, efficiency, rebin, normalize.

The AIDA ``IHistogramFactory`` exposes add/subtract/multiply/divide on
histograms; analyses use them for background subtraction and cut
efficiencies (pass/total).  All operations require identical axes and
propagate errors:

* subtract/add: quadrature;
* divide: relative errors in quadrature;
* efficiency: binomial errors ``sqrt(eff (1-eff) / total_entries)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.aida.axis import Axis
from repro.aida.hist1d import Histogram1D


class HistogramOpsError(Exception):
    """Raised on incompatible operands."""


def _check(a: Histogram1D, b: Histogram1D) -> None:
    if a.axis != b.axis:
        raise HistogramOpsError(
            f"incompatible axes: {a.name!r} vs {b.name!r}"
        )


def _from_arrays(
    name: str,
    title: str,
    axis: Axis,
    heights: np.ndarray,
    errors: np.ndarray,
    counts: Optional[np.ndarray] = None,
) -> Histogram1D:
    """Build a histogram directly from per-slot heights/errors."""
    hist = Histogram1D(name, title, axis=axis)
    hist._sumw = np.asarray(heights, dtype=float).copy()
    hist._sumw2 = np.asarray(errors, dtype=float) ** 2
    if counts is not None:
        hist._counts = np.asarray(counts, dtype=np.int64).copy()
    return hist


def subtract(
    a: Histogram1D, b: Histogram1D, name: Optional[str] = None
) -> Histogram1D:
    """``a - b`` with errors added in quadrature (background subtraction)."""
    _check(a, b)
    return _from_arrays(
        name or f"{a.name}_minus_{b.name}",
        f"{a.title} - {b.title}",
        a.axis,
        a._sumw - b._sumw,
        np.sqrt(a._sumw2 + b._sumw2),
    )


def divide(
    a: Histogram1D, b: Histogram1D, name: Optional[str] = None
) -> Histogram1D:
    """``a / b`` bin by bin; empty denominator bins yield 0 with error 0.

    Relative errors add in quadrature (uncorrelated-samples assumption).
    """
    _check(a, b)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(b._sumw != 0, a._sumw / b._sumw, 0.0)
        rel_a = np.where(a._sumw != 0, np.sqrt(a._sumw2) / np.abs(a._sumw), 0.0)
        rel_b = np.where(b._sumw != 0, np.sqrt(b._sumw2) / np.abs(b._sumw), 0.0)
        err = np.abs(ratio) * np.sqrt(rel_a**2 + rel_b**2)
    return _from_arrays(
        name or f"{a.name}_over_{b.name}",
        f"{a.title} / {b.title}",
        a.axis,
        ratio,
        err,
    )


def efficiency(
    passed: Histogram1D, total: Histogram1D, name: Optional[str] = None
) -> Histogram1D:
    """Cut efficiency passed/total with binomial errors.

    Requires ``0 <= passed <= total`` per bin (a subset selection).
    """
    _check(passed, total)
    if np.any(passed._sumw > total._sumw + 1e-9) or np.any(passed._sumw < -1e-12):
        raise HistogramOpsError("passed must be a subset of total per bin")
    with np.errstate(divide="ignore", invalid="ignore"):
        eff = np.where(total._sumw > 0, passed._sumw / total._sumw, 0.0)
        n = np.where(total._counts > 0, total._counts, 1)
        err = np.where(
            total._counts > 0,
            np.sqrt(np.clip(eff * (1.0 - eff), 0.0, None) / n),
            0.0,
        )
    return _from_arrays(
        name or f"{passed.name}_eff",
        f"efficiency({passed.title})",
        passed.axis,
        eff,
        err,
    )


def rebin(hist: Histogram1D, factor: int, name: Optional[str] = None) -> Histogram1D:
    """Merge every *factor* adjacent bins (bins must divide evenly).

    Entry counts, weights and moments are conserved exactly.
    """
    if factor < 1:
        raise HistogramOpsError("factor must be >= 1")
    if factor == 1:
        return hist.copy(name)
    bins = hist.axis.bins
    if bins % factor != 0:
        raise HistogramOpsError(
            f"{bins} bins not divisible by rebin factor {factor}"
        )
    new_axis = Axis(edges=hist.axis.edges[::factor])
    out = Histogram1D(name or hist.name, hist.title, axis=new_axis)
    inner = lambda arr: arr[1:-1].reshape(-1, factor).sum(axis=1)
    out._counts[1:-1] = inner(hist._counts)
    out._counts[0], out._counts[-1] = hist._counts[0], hist._counts[-1]
    out._sumw[1:-1] = inner(hist._sumw)
    out._sumw[0], out._sumw[-1] = hist._sumw[0], hist._sumw[-1]
    out._sumw2[1:-1] = inner(hist._sumw2)
    out._sumw2[0], out._sumw2[-1] = hist._sumw2[0], hist._sumw2[-1]
    out._swx = hist._swx
    out._swx2 = hist._swx2
    return out


def normalize(
    hist: Histogram1D, to: float = 1.0, name: Optional[str] = None
) -> Histogram1D:
    """Scale so the in-range integral equals *to* (no-op when empty)."""
    out = hist.copy(name)
    integral = out.sum_bin_heights
    if integral != 0:
        out.scale(to / integral)
    return out
