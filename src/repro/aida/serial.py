"""Serialization and merge dispatch for AIDA objects.

Engines ship snapshots to the AIDA manager as plain dicts (the stand-in for
Java serialization over RMI); these helpers turn any supported object into a
dict and back, and merge two compatible objects regardless of concrete type.
"""

from __future__ import annotations

from typing import Any, Dict, Type

from repro.aida.cloud import Cloud1D, Cloud2D
from repro.aida.hist1d import Histogram1D
from repro.aida.hist2d import Histogram2D
from repro.aida.ntuple import NTuple
from repro.aida.profile import Profile1D

_REGISTRY: Dict[str, Type] = {
    "Histogram1D": Histogram1D,
    "Histogram2D": Histogram2D,
    "Profile1D": Profile1D,
    "Cloud1D": Cloud1D,
    "Cloud2D": Cloud2D,
    "NTuple": NTuple,
}


def to_dict(obj: Any) -> dict:
    """Serialize any supported AIDA object to a JSON-compatible dict."""
    kind = getattr(obj, "kind", None)
    if kind not in _REGISTRY:
        raise TypeError(f"cannot serialize {type(obj).__name__}")
    return obj.to_dict()


def from_dict(data: dict) -> Any:
    """Reconstruct an AIDA object from its :func:`to_dict` form."""
    if data.get("kind") == "ObjectTree":
        from repro.aida.tree import ObjectTree

        return ObjectTree.from_dict(data)
    try:
        cls = _REGISTRY[data["kind"]]
    except KeyError:
        raise TypeError(f"unknown object kind {data.get('kind')!r}") from None
    return cls.from_dict(data)


def merge(left: Any, right: Any) -> Any:
    """Return a new object combining *left* and *right* (via ``+``).

    Both operands must be the same kind with compatible structure; the
    inputs are not modified.
    """
    if getattr(left, "kind", None) != getattr(right, "kind", None):
        raise TypeError(
            f"cannot merge {type(left).__name__} with {type(right).__name__}"
        )
    return left + right
