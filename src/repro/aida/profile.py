"""Profile histogram: per-x-bin mean and spread of a y quantity."""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.aida.axis import Axis
from repro.aida.codec import decode_array, encode_array


class Profile1D:
    """AIDA-style 1-D profile.

    For each x bin it tracks the weighted moments of y so the bin *height*
    is the mean of y and the bin *spread* its RMS — the standard tool for
    "average response vs. coordinate" plots.  Merging sums the moments, so
    distributed filling is exact.
    """

    kind = "Profile1D"

    def __init__(
        self,
        name: str,
        title: str = "",
        bins: Optional[int] = None,
        lower: Optional[float] = None,
        upper: Optional[float] = None,
        edges: Optional[Sequence[float]] = None,
        axis: Optional[Axis] = None,
    ) -> None:
        if not name:
            raise ValueError("profile name must be non-empty")
        self.name = name
        self.title = title or name
        self.axis = axis or Axis(bins=bins, lower=lower, upper=upper, edges=edges)
        size = self.axis.bins + 2
        self._counts = np.zeros(size, dtype=np.int64)
        self._sumw = np.zeros(size, dtype=float)
        self._sumwy = np.zeros(size, dtype=float)
        self._sumwy2 = np.zeros(size, dtype=float)
        # Bumped on every mutation; drives delta-snapshot dirty tracking.
        self._version = 0

    @property
    def data_version(self) -> int:
        """Monotonic mutation counter (fill/reset/merge bump it)."""
        return self._version

    # -- filling ----------------------------------------------------------
    def fill(self, x: float, y: float, weight: float = 1.0) -> None:
        """Add one (x, y) sample."""
        self._version += 1
        slot = self.axis.index_to_storage(self.axis.coord_to_index(x))
        self._counts[slot] += 1
        self._sumw[slot] += weight
        self._sumwy[slot] += weight * y
        self._sumwy2[slot] += weight * y * y

    def fill_array(
        self,
        xs: Union[Sequence[float], np.ndarray],
        ys: Union[Sequence[float], np.ndarray],
        weights: Optional[Union[Sequence[float], np.ndarray]] = None,
    ) -> None:
        """Vectorized fill of many samples."""
        self._version += 1
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if xs.shape != ys.shape or xs.ndim != 1:
            raise ValueError("xs and ys must be equal-length 1-D arrays")
        w = (
            np.ones_like(xs)
            if weights is None
            else np.asarray(weights, dtype=float)
        )
        if w.shape != xs.shape:
            raise ValueError("weights must match xs in shape")
        slots = self.axis.coords_to_storage(xs)
        np.add.at(self._counts, slots, 1)
        np.add.at(self._sumw, slots, w)
        np.add.at(self._sumwy, slots, w * ys)
        np.add.at(self._sumwy2, slots, w * ys * ys)

    def reset(self) -> None:
        """Clear all statistics."""
        self._version += 1
        self._counts[:] = 0
        self._sumw[:] = 0.0
        self._sumwy[:] = 0.0
        self._sumwy2[:] = 0.0

    # -- accessors ----------------------------------------------------------
    @property
    def entries(self) -> int:
        """Number of in-range samples."""
        return int(self._counts[1:-1].sum())

    def bin_entries(self, index: int) -> int:
        """Sample count in a bin (sentinels accepted)."""
        return int(self._counts[self.axis.index_to_storage(index)])

    def bin_height(self, index: int) -> float:
        """Mean of y in the bin (NaN when empty)."""
        slot = self.axis.index_to_storage(index)
        sw = self._sumw[slot]
        return float(self._sumwy[slot] / sw) if sw else float("nan")

    def bin_spread(self, index: int) -> float:
        """RMS of y in the bin (NaN when empty)."""
        slot = self.axis.index_to_storage(index)
        sw = self._sumw[slot]
        if not sw:
            return float("nan")
        mean = self._sumwy[slot] / sw
        return float(np.sqrt(max(0.0, self._sumwy2[slot] / sw - mean * mean)))

    def bin_error(self, index: int) -> float:
        """Error on the mean: spread / sqrt(entries) (NaN when empty)."""
        n = self.bin_entries(index)
        if n == 0:
            return float("nan")
        return self.bin_spread(index) / np.sqrt(n)

    def heights(self) -> np.ndarray:
        """Mean of y per in-range bin (NaN for empty bins)."""
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                self._sumw[1:-1] > 0,
                self._sumwy[1:-1] / self._sumw[1:-1],
                np.nan,
            )

    # -- algebra ------------------------------------------------------------
    def __iadd__(self, other: "Profile1D") -> "Profile1D":
        """Merge *other*'s samples into this profile."""
        if not isinstance(other, Profile1D):
            raise TypeError(f"cannot combine Profile1D with {type(other).__name__}")
        if self.axis != other.axis:
            raise ValueError(
                f"incompatible axes for {self.name!r} and {other.name!r}"
            )
        self._version += 1
        self._counts += other._counts
        self._sumw += other._sumw
        self._sumwy += other._sumwy
        self._sumwy2 += other._sumwy2
        return self

    def __add__(self, other: "Profile1D") -> "Profile1D":
        """Return a merged copy."""
        result = self.copy()
        result += other
        return result

    def copy(self, name: Optional[str] = None) -> "Profile1D":
        """Deep copy, optionally renamed."""
        clone = Profile1D(name or self.name, self.title, axis=self.axis)
        clone._counts = self._counts.copy()
        clone._sumw = self._sumw.copy()
        clone._sumwy = self._sumwy.copy()
        clone._sumwy2 = self._sumwy2.copy()
        return clone

    def __repr__(self) -> str:
        return f"<Profile1D {self.name!r} bins={self.axis.bins} entries={self.entries}>"

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize to a JSON-compatible dict."""
        return {
            "kind": self.kind,
            "name": self.name,
            "title": self.title,
            "axis": self.axis.to_dict(),
            "counts": encode_array(self._counts),
            "sumw": encode_array(self._sumw),
            "sumwy": encode_array(self._sumwy),
            "sumwy2": encode_array(self._sumwy2),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Profile1D":
        """Reconstruct a profile serialized with :meth:`to_dict`."""
        prof = cls(data["name"], data["title"], axis=Axis.from_dict(data["axis"]))
        prof._counts = decode_array(data["counts"], dtype=np.int64)
        prof._sumw = decode_array(data["sumw"], dtype=float)
        prof._sumwy = decode_array(data["sumwy"], dtype=float)
        prof._sumwy2 = decode_array(data["sumwy2"], dtype=float)
        return prof
