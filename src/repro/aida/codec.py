"""Compact wire codec for the numpy arrays inside AIDA payloads.

Every engine snapshot ships histogram statistics to the AIDA manager as
plain dicts (the stand-in for Java serialization over RMI, §3.7).  The
seed implementation spelled every array out as a Python list via
``tolist()`` — readable, but ~18 bytes per float once JSON-encoded and a
full list↔ndarray conversion on both ends of the hot merge path.

This module encodes arrays as dtype-tagged raw bytes instead (base64 in
the JSON form), cutting the steady-state payload to ~10.7 bytes per float
(8 raw × 4/3 base64) and replacing the element-wise list conversion with a
single ``frombuffer`` on decode.  Small arrays stay plain lists — below
:data:`MIN_CODEC_SIZE` elements the base64 envelope would not pay for its
own framing, and tiny payloads stay human-readable in logs and tests.

:func:`decode_array` accepts both forms, so pre-codec payloads (and
hand-written test fixtures) keep deserializing unchanged.
"""

from __future__ import annotations

import base64
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional, Union

import numpy as np

#: Arrays with fewer elements than this are serialized as plain lists.
MIN_CODEC_SIZE = 24

#: Marker key of an encoded-array dict (unlikely to collide with real data).
ENCODED_KEY = "__ndarray__"

_enabled = True


def codec_enabled() -> bool:
    """Whether :func:`encode_array` currently emits the compact form."""
    return _enabled


def set_codec_enabled(flag: bool) -> None:
    """Globally enable/disable the compact form (lists are always legal)."""
    global _enabled
    _enabled = bool(flag)


@contextmanager
def codec_disabled() -> Iterator[None]:
    """Context manager: force plain-list encoding (the pre-codec wire form).

    Used by benchmarks to measure the old payload path and by tests that
    want to pin the fallback behaviour.
    """
    previous = _enabled
    set_codec_enabled(False)
    try:
        yield
    finally:
        set_codec_enabled(previous)


def encode_array(array: np.ndarray) -> Union[list, dict]:
    """Serialize *array* to its JSON-compatible wire form.

    Returns a dtype-tagged base64 dict for arrays of at least
    :data:`MIN_CODEC_SIZE` elements (when the codec is enabled), otherwise
    a plain (possibly nested) list.
    """
    array = np.ascontiguousarray(array)
    if not _enabled or array.size < MIN_CODEC_SIZE:
        return array.tolist()
    return {
        ENCODED_KEY: 1,
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def is_encoded(data: Any) -> bool:
    """Whether *data* is the compact encoded-array form."""
    return isinstance(data, dict) and ENCODED_KEY in data


def decode_array(data: Any, dtype: Optional[Any] = None) -> np.ndarray:
    """Reconstruct an array from either wire form (list or encoded dict).

    The returned array is always freshly allocated and writable — callers
    mutate histogram storage in place.  With *dtype* the result is cast
    (for lists this happens during construction, for raw bytes only when
    the stored dtype differs).
    """
    if is_encoded(data):
        raw = base64.b64decode(data["data"])
        array = np.frombuffer(raw, dtype=np.dtype(data["dtype"]))
        array = array.reshape(tuple(data["shape"])).copy()
        if dtype is not None and array.dtype != np.dtype(dtype):
            array = array.astype(dtype)
        return array
    return np.array(data, dtype=dtype)


def decode_list(data: Any) -> List[float]:
    """Decode either wire form into a plain list of floats.

    For containers whose in-memory representation is a growable list
    (clouds, ntuple columns) rather than an ndarray.
    """
    if is_encoded(data):
        return decode_array(data).tolist()
    return [float(v) for v in data]


def payload_nbytes(data: Any) -> int:
    """Deterministic JSON-size estimate of a payload, in bytes.

    A cheap recursive model (numbers at their decimal width, strings/bytes
    their length, containers the sum of their parts plus 2 bytes of framing
    per element) — close to ``len(json.dumps(...))`` without building the
    actual string in one piece on the hot path.  Non-JSON objects count a
    flat 64 bytes so service-level accounting never raises.
    """
    if data is None or isinstance(data, bool):
        return 4
    if isinstance(data, (int, float)):
        return len(repr(data))
    if isinstance(data, str):
        return len(data) + 2
    if isinstance(data, (bytes, bytearray)):
        return len(data)
    if isinstance(data, np.ndarray):
        return int(data.nbytes)
    if isinstance(data, dict):
        return sum(
            payload_nbytes(k) + payload_nbytes(v) + 2 for k, v in data.items()
        )
    if isinstance(data, (list, tuple, set, frozenset)):
        return sum(payload_nbytes(v) + 2 for v in data)
    return 64
