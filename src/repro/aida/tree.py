"""Hierarchical tree of named analysis objects.

Mirrors AIDA's ``ITree``: analysis objects live at slash-separated paths
(``/higgs/dijet_mass``), directories are created on demand, and the JAS
client browses this tree to pick which histogram to display (§3.7, Fig. 4).
The tree is also the unit the AIDA manager merges: merging two trees merges
every object present in both and copies objects present in only one.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Union


class TreeError(Exception):
    """Raised for invalid tree paths or operations."""


def split_path(path: str) -> Tuple[str, ...]:
    """Normalize a slash path into components; rejects empty components."""
    if not path or not path.startswith("/"):
        raise TreeError(f"path must be absolute (got {path!r})")
    parts = tuple(p for p in path.split("/") if p)
    for part in parts:
        if part in (".", ".."):
            raise TreeError(f"relative component {part!r} not allowed")
    return parts


def join_path(parts: Tuple[str, ...]) -> str:
    """Inverse of :func:`split_path`."""
    return "/" + "/".join(parts)


class _Directory:
    __slots__ = ("subdirs", "objects")

    def __init__(self) -> None:
        self.subdirs: Dict[str, "_Directory"] = {}
        self.objects: Dict[str, object] = {}


class ObjectTree:
    """A mounted hierarchy of analysis objects.

    All stored objects are expected to expose the small AIDA protocol used
    across this package: ``name``, ``kind``, ``to_dict()``, ``copy()`` and
    (for mergeables) ``__iadd__``.
    """

    def __init__(self) -> None:
        self._root = _Directory()
        # Per-path put generation: bumped whenever an object is (re)stored
        # at a path, so replacing an object is visible to dirty tracking
        # even when the new object's own data_version happens to match.
        self._put_gen: Dict[str, int] = {}
        self._put_serial = 0

    # -- directories ------------------------------------------------------
    def mkdir(self, path: str) -> None:
        """Create a directory (and parents) at *path*; idempotent."""
        node = self._root
        for part in split_path(path):
            if part in node.objects:
                raise TreeError(f"object exists at {part!r}; cannot mkdir")
            node = node.subdirs.setdefault(part, _Directory())

    def _walk_to(self, parts: Tuple[str, ...]) -> _Directory:
        node = self._root
        for part in parts:
            try:
                node = node.subdirs[part]
            except KeyError:
                raise TreeError(f"no such directory {join_path(parts)!r}") from None
        return node

    def ls(self, path: str = "/") -> List[str]:
        """Names in a directory: subdirectories (with ``/``) then objects."""
        parts = split_path(path) if path != "/" else ()
        node = self._walk_to(parts)
        return sorted(f"{d}/" for d in node.subdirs) + sorted(node.objects)

    def is_dir(self, path: str) -> bool:
        """Whether *path* names an existing directory."""
        if path == "/":
            return True
        try:
            self._walk_to(split_path(path))
            return True
        except TreeError:
            return False

    # -- objects ----------------------------------------------------------
    def put(self, path: str, obj: object) -> None:
        """Store *obj* at *path*, creating parent directories."""
        parts = split_path(path)
        if not parts:
            raise TreeError("cannot store an object at /")
        *dirs, leaf = parts
        node = self._root
        for part in dirs:
            if part in node.objects:
                raise TreeError(f"object exists at {part!r}; cannot descend")
            node = node.subdirs.setdefault(part, _Directory())
        if leaf in node.subdirs:
            raise TreeError(f"directory exists at {path!r}; cannot store object")
        node.objects[leaf] = obj
        self._put_serial += 1
        self._put_gen[join_path(parts)] = self._put_serial

    def get(self, path: str) -> object:
        """Fetch the object at *path* (raises :class:`TreeError` if absent)."""
        parts = split_path(path)
        *dirs, leaf = parts
        node = self._walk_to(tuple(dirs))
        try:
            return node.objects[leaf]
        except KeyError:
            raise TreeError(f"no object at {path!r}") from None

    def exists(self, path: str) -> bool:
        """Whether an object is stored at *path*."""
        try:
            self.get(path)
            return True
        except TreeError:
            return False

    def remove(self, path: str) -> None:
        """Delete the object or (empty or not) directory at *path*."""
        parts = split_path(path)
        *dirs, leaf = parts
        node = self._walk_to(tuple(dirs))
        full = join_path(parts)
        if leaf in node.objects:
            del node.objects[leaf]
            self._put_gen.pop(full, None)
        elif leaf in node.subdirs:
            del node.subdirs[leaf]
            prefix = full + "/"
            for key in [k for k in self._put_gen if k.startswith(prefix)]:
                del self._put_gen[key]
        else:
            raise TreeError(f"nothing at {path!r}")

    # -- traversal ----------------------------------------------------------
    def walk(self) -> Iterator[Tuple[str, object]]:
        """Yield every (path, object) pair in depth-first sorted order."""

        def recurse(node: _Directory, prefix: Tuple[str, ...]):
            for name in sorted(node.objects):
                yield join_path(prefix + (name,)), node.objects[name]
            for name in sorted(node.subdirs):
                yield from recurse(node.subdirs[name], prefix + (name,))

        yield from recurse(self._root, ())

    def paths(self) -> List[str]:
        """All object paths in the tree."""
        return [path for path, _ in self.walk()]

    def find(self, name: str) -> List[str]:
        """Paths of every object whose leaf name equals *name*."""
        return [p for p in self.paths() if p.rsplit("/", 1)[-1] == name]

    def __len__(self) -> int:
        return sum(1 for _ in self.walk())

    def __contains__(self, path: str) -> bool:
        return self.exists(path)

    # -- dirty tracking ------------------------------------------------------
    def versions(self) -> Dict[str, Tuple[int, Optional[int]]]:
        """Per-path ``(put_generation, data_version)`` fingerprints.

        The put generation changes when an object is (re)stored at a path;
        the data version is the object's own mutation counter (``None`` for
        objects without one, which delta snapshots must then treat as
        always dirty).  Together they let a publisher decide which objects
        changed since a previous call without hashing any payloads.
        """
        return {
            path: (
                self._put_gen.get(path, 0),
                getattr(obj, "data_version", None),
            )
            for path, obj in self.walk()
        }

    # -- merge / copy ----------------------------------------------------------
    def merge_from(self, other: "ObjectTree") -> None:
        """Merge another tree into this one.

        Objects at paths present in both trees are combined with ``+=``;
        objects only in *other* are deep-copied in.  This is the operation
        the AIDA manager applies to every engine snapshot.
        """
        for path, obj in other.walk():
            if self.exists(path):
                mine = self.get(path)
                try:
                    mine += obj  # type: ignore[operator]
                except TypeError as exc:
                    raise TreeError(
                        f"cannot merge object at {path!r}: {exc}"
                    ) from exc
                # += on immutable containers returns a new object.
                self.remove(path)
                self.put(path, mine)
            else:
                self.put(path, obj.copy())  # type: ignore[attr-defined]

    def copy(self) -> "ObjectTree":
        """Deep copy of the whole tree."""
        clone = ObjectTree()
        for path, obj in self.walk():
            clone.put(path, obj.copy())  # type: ignore[attr-defined]
        return clone

    def reset_all(self) -> None:
        """Reset every object in place (the rewind operation)."""
        for _, obj in self.walk():
            obj.reset()  # type: ignore[attr-defined]

    def __repr__(self) -> str:
        return f"<ObjectTree {len(self)} objects>"

    # -- serialization ------------------------------------------------------
    def to_dict(
        self, only: Optional[Union[Set[str], FrozenSet[str]]] = None
    ) -> dict:
        """Serialize the tree (delegates to each object's ``to_dict``).

        With *only*, serialize just the objects at those paths — the
        delta-snapshot form published by engines when most of the tree is
        unchanged.
        """
        return {
            "kind": "ObjectTree",
            "objects": {
                path: obj.to_dict()  # type: ignore[attr-defined]
                for path, obj in self.walk()
                if only is None or path in only
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ObjectTree":
        """Reconstruct a tree serialized with :meth:`to_dict`."""
        from repro.aida.serial import from_dict as object_from_dict

        tree = cls()
        for path, obj_data in data["objects"].items():
            tree.put(path, object_from_dict(obj_data))
        return tree
