"""Least-squares fitting of histograms (the AIDA ``IFitter`` equivalent).

The paper's Higgs search fits a Gaussian peak over background to the dijet
invariant-mass spectrum.  This module provides the standard shapes
(gaussian, exponential, polynomial, gaussian + linear background) fitted to
histogram bin contents with Poisson errors via ``scipy.optimize.curve_fit``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.aida.hist1d import Histogram1D


class FitError(Exception):
    """Raised when a fit cannot be performed or fails to converge."""


@dataclass
class FitResult:
    """Outcome of a histogram fit.

    Attributes
    ----------
    parameters:
        Best-fit parameter values by name.
    errors:
        1-sigma parameter uncertainties by name.
    chi2:
        Chi-squared of the fit over bins with nonzero error.
    ndf:
        Degrees of freedom (fitted bins minus parameters).
    function:
        The fitted callable ``f(x, *params)``.
    values:
        Best-fit parameters in function order.
    """

    parameters: Dict[str, float]
    errors: Dict[str, float]
    chi2: float
    ndf: int
    function: Callable
    values: Tuple[float, ...]

    @property
    def chi2_per_ndf(self) -> float:
        """Reduced chi-squared (inf when ndf == 0)."""
        return self.chi2 / self.ndf if self.ndf > 0 else float("inf")

    def __call__(self, x):
        """Evaluate the fitted curve at *x*."""
        return self.function(np.asarray(x, dtype=float), *self.values)


def gaussian(x, amplitude, mean, sigma):
    """Gaussian peak: ``amplitude * exp(-(x-mean)^2 / (2 sigma^2))``."""
    return amplitude * np.exp(-0.5 * ((x - mean) / sigma) ** 2)


def exponential(x, amplitude, slope):
    """Falling exponential: ``amplitude * exp(slope * x)``."""
    return amplitude * np.exp(slope * x)


def linear(x, intercept, gradient):
    """Straight line."""
    return intercept + gradient * x


def quadratic(x, c0, c1, c2):
    """Second-order polynomial."""
    return c0 + c1 * x + c2 * x * x


def gaussian_plus_linear(x, amplitude, mean, sigma, intercept, gradient):
    """Signal peak over a linear background — the Higgs-search shape."""
    return gaussian(x, amplitude, mean, sigma) + linear(x, intercept, gradient)


_NAMED_SHAPES: Dict[str, Tuple[Callable, Tuple[str, ...]]] = {
    "gaussian": (gaussian, ("amplitude", "mean", "sigma")),
    "exponential": (exponential, ("amplitude", "slope")),
    "linear": (linear, ("intercept", "gradient")),
    "quadratic": (quadratic, ("c0", "c1", "c2")),
    "gaussian+linear": (
        gaussian_plus_linear,
        ("amplitude", "mean", "sigma", "intercept", "gradient"),
    ),
}


def _default_seed(shape: str, hist: Histogram1D) -> Sequence[float]:
    centers = hist.axis.bin_centers()
    heights = hist.heights()
    peak = float(heights.max()) if heights.size else 1.0
    mean = hist.mean if np.isfinite(hist.mean) else float(centers.mean())
    rms = hist.rms if np.isfinite(hist.rms) and hist.rms > 0 else 1.0
    if shape == "gaussian":
        return (peak, mean, rms)
    if shape == "exponential":
        return (max(peak, 1e-9), -0.1)
    if shape == "linear":
        return (float(heights.mean()) if heights.size else 0.0, 0.0)
    if shape == "quadratic":
        return (float(heights.mean()) if heights.size else 0.0, 0.0, 0.0)
    if shape == "gaussian+linear":
        base = float(np.median(heights)) if heights.size else 0.0
        return (max(peak - base, 1e-9), mean, max(rms / 2, 1e-6), base, 0.0)
    raise FitError(f"unknown shape {shape!r}")


def fit_histogram(
    hist: Histogram1D,
    shape: str = "gaussian",
    seed: Optional[Sequence[float]] = None,
    fit_range: Optional[Tuple[float, float]] = None,
) -> FitResult:
    """Fit a named *shape* to a histogram's in-range bins.

    Bins with zero error (empty bins) are weighted as error 1 so they still
    constrain the fit mildly, matching common HEP practice.

    Parameters
    ----------
    shape:
        One of ``gaussian``, ``exponential``, ``linear``, ``quadratic``,
        ``gaussian+linear``.
    seed:
        Optional starting parameters; a heuristic seed is derived from the
        histogram moments otherwise.
    fit_range:
        Optional (low, high) sub-range of the axis to fit.

    Raises
    ------
    FitError
        On unknown shapes, too few bins, or optimizer failure.
    """
    if shape not in _NAMED_SHAPES:
        raise FitError(f"unknown shape {shape!r}")
    function, names = _NAMED_SHAPES[shape]
    centers = hist.axis.bin_centers()
    heights = hist.heights()
    errors = hist.errors()

    mask = np.ones_like(centers, dtype=bool)
    if fit_range is not None:
        low, high = fit_range
        mask &= (centers >= low) & (centers <= high)
    x = centers[mask]
    y = heights[mask]
    err = errors[mask]
    if x.size < len(names):
        raise FitError(
            f"{x.size} bins cannot constrain {len(names)} parameters"
        )
    sigma = np.where(err > 0, err, 1.0)

    p0 = list(seed) if seed is not None else list(_default_seed(shape, hist))
    try:
        popt, pcov = optimize.curve_fit(
            function, x, y, p0=p0, sigma=sigma, absolute_sigma=True, maxfev=20000
        )
    except (RuntimeError, optimize.OptimizeWarning) as exc:
        raise FitError(f"fit failed: {exc}") from exc

    residuals = (y - function(x, *popt)) / sigma
    chi2 = float(np.sum(residuals**2))
    perr = np.sqrt(np.clip(np.diag(pcov), 0, None))
    return FitResult(
        parameters=dict(zip(names, map(float, popt))),
        errors=dict(zip(names, map(float, perr))),
        chi2=chi2,
        ndf=int(x.size - len(names)),
        function=function,
        values=tuple(map(float, popt)),
    )
