"""2-D histogram arithmetic: subtract, divide, efficiency, normalize.

The 2-D counterparts of :mod:`repro.aida.ops`, with the same error
conventions; used for background subtraction and per-cell efficiencies on
correlation plots (e.g. the Z-vs-Higgs mass plane of the sample analysis).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.aida.hist2d import Histogram2D
from repro.aida.ops import HistogramOpsError


def _check(a: Histogram2D, b: Histogram2D) -> None:
    if a.x_axis != b.x_axis or a.y_axis != b.y_axis:
        raise HistogramOpsError(
            f"incompatible axes: {a.name!r} vs {b.name!r}"
        )


def _from_grids(
    name: str,
    title: str,
    template: Histogram2D,
    heights: np.ndarray,
    errors: np.ndarray,
    counts: Optional[np.ndarray] = None,
) -> Histogram2D:
    out = Histogram2D(
        name, title, x_axis=template.x_axis, y_axis=template.y_axis
    )
    out._sumw = np.asarray(heights, dtype=float).copy()
    out._sumw2 = np.asarray(errors, dtype=float) ** 2
    if counts is not None:
        out._counts = np.asarray(counts, dtype=np.int64).copy()
    return out


def subtract2d(
    a: Histogram2D, b: Histogram2D, name: Optional[str] = None
) -> Histogram2D:
    """``a - b`` cell by cell with errors in quadrature."""
    _check(a, b)
    return _from_grids(
        name or f"{a.name}_minus_{b.name}",
        f"{a.title} - {b.title}",
        a,
        a._sumw - b._sumw,
        np.sqrt(a._sumw2 + b._sumw2),
    )


def divide2d(
    a: Histogram2D, b: Histogram2D, name: Optional[str] = None
) -> Histogram2D:
    """``a / b`` cell by cell; empty denominator cells give 0 ± 0."""
    _check(a, b)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(b._sumw != 0, a._sumw / b._sumw, 0.0)
        rel_a = np.where(a._sumw != 0, np.sqrt(a._sumw2) / np.abs(a._sumw), 0.0)
        rel_b = np.where(b._sumw != 0, np.sqrt(b._sumw2) / np.abs(b._sumw), 0.0)
        err = np.abs(ratio) * np.sqrt(rel_a**2 + rel_b**2)
    return _from_grids(
        name or f"{a.name}_over_{b.name}",
        f"{a.title} / {b.title}",
        a,
        ratio,
        err,
    )


def efficiency2d(
    passed: Histogram2D, total: Histogram2D, name: Optional[str] = None
) -> Histogram2D:
    """Per-cell binomial efficiency passed/total (passed ⊆ total)."""
    _check(passed, total)
    if np.any(passed._sumw > total._sumw + 1e-9) or np.any(
        passed._sumw < -1e-12
    ):
        raise HistogramOpsError("passed must be a subset of total per cell")
    with np.errstate(divide="ignore", invalid="ignore"):
        eff = np.where(total._sumw > 0, passed._sumw / total._sumw, 0.0)
        n = np.where(total._counts > 0, total._counts, 1)
        err = np.where(
            total._counts > 0,
            np.sqrt(np.clip(eff * (1.0 - eff), 0.0, None) / n),
            0.0,
        )
    return _from_grids(
        name or f"{passed.name}_eff",
        f"efficiency({passed.title})",
        passed,
        eff,
        err,
    )


def normalize2d(
    hist: Histogram2D, to: float = 1.0, name: Optional[str] = None
) -> Histogram2D:
    """Scale so the in-range integral equals *to* (no-op when empty)."""
    out = hist.copy(name)
    integral = out.sum_bin_heights
    if integral != 0:
        factor = to / integral
        out._sumw *= factor
        out._sumw2 *= factor * factor
        out._swx *= factor
        out._swy *= factor
        out._swx2 *= factor
        out._swy2 *= factor
    return out
