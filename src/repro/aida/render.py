"""ASCII rendering of analysis objects for the headless client dashboard.

The JAS3 client displayed live-updating histogram plots (Fig. 4); our
headless client renders the same content as terminal text: vertical bar
charts for 1-D histograms/profiles and a density grid for 2-D histograms.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.aida.hist1d import Histogram1D
from repro.aida.hist2d import Histogram2D
from repro.aida.profile import Profile1D

#: Characters from light to dark for 2-D density cells.
_SHADES = " .:-=+*#%@"


def render_hist1d(
    hist: Histogram1D,
    width: int = 60,
    height: int = 12,
    show_stats: bool = True,
) -> str:
    """Render a 1-D histogram as a vertical-bar ASCII chart.

    Bins are resampled onto ``width`` columns (summing weights) and scaled
    to ``height`` text rows.
    """
    if width < 4 or height < 2:
        raise ValueError("width must be >= 4 and height >= 2")
    heights = hist.heights()
    bins = heights.size
    columns = min(width, bins)
    # Aggregate adjacent bins into columns.
    edges = np.linspace(0, bins, columns + 1).astype(int)
    col_values = np.array(
        [heights[edges[i]:edges[i + 1]].sum() for i in range(columns)]
    )
    peak = col_values.max() if col_values.size and col_values.max() > 0 else 1.0

    rows: List[str] = []
    for level in range(height, 0, -1):
        threshold = peak * (level - 0.5) / height
        line = "".join("█" if v >= threshold else " " for v in col_values)
        rows.append(f"|{line}|")
    axis_line = f"+{'-' * columns}+"
    lo = f"{hist.axis.lower_edge:g}"
    hi = f"{hist.axis.upper_edge:g}"
    pad = max(1, columns + 2 - len(lo) - len(hi))
    label = lo + " " * pad + hi
    lines = [hist.title, *rows, axis_line, label]
    if show_stats:
        lines.append(
            f"entries={hist.entries}  mean={hist.mean:.4g}  "
            f"rms={hist.rms:.4g}  max={hist.max_bin_height:g}"
        )
    return "\n".join(lines)


def render_hist2d(hist: Histogram2D, max_cells: int = 40) -> str:
    """Render a 2-D histogram as a shaded density grid."""
    grid = hist.heights()
    x_bins, y_bins = grid.shape
    x_cells = min(max_cells, x_bins)
    y_cells = min(max_cells // 2, y_bins)
    x_edges = np.linspace(0, x_bins, x_cells + 1).astype(int)
    y_edges = np.linspace(0, y_bins, y_cells + 1).astype(int)
    cells = np.zeros((x_cells, y_cells))
    for i in range(x_cells):
        for j in range(y_cells):
            cells[i, j] = grid[
                x_edges[i]:x_edges[i + 1], y_edges[j]:y_edges[j + 1]
            ].sum()
    peak = cells.max() if cells.max() > 0 else 1.0
    lines = [hist.title]
    # Highest y at the top.
    for j in range(y_cells - 1, -1, -1):
        row = "".join(
            _SHADES[min(int(cells[i, j] / peak * (len(_SHADES) - 1)), len(_SHADES) - 1)]
            for i in range(x_cells)
        )
        lines.append(f"|{row}|")
    lines.append(f"+{'-' * x_cells}+")
    lines.append(f"entries={hist.entries}")
    return "\n".join(lines)


def render_profile(profile: Profile1D, width: int = 60, height: int = 10) -> str:
    """Render a profile's bin means as an ASCII chart (NaN bins blank)."""
    heights = profile.heights()
    finite = heights[np.isfinite(heights)]
    if finite.size == 0:
        return f"{profile.title}\n(empty profile)"
    lo, hi = float(finite.min()), float(finite.max())
    if hi <= lo:
        hi = lo + 1.0
    bins = heights.size
    columns = min(width, bins)
    edges = np.linspace(0, bins, columns + 1).astype(int)
    col_vals = []
    for i in range(columns):
        chunk = heights[edges[i]:edges[i + 1]]
        chunk = chunk[np.isfinite(chunk)]
        col_vals.append(float(chunk.mean()) if chunk.size else float("nan"))
    rows: List[str] = []
    for level in range(height, 0, -1):
        threshold = lo + (hi - lo) * (level - 0.5) / height
        line = "".join(
            "█" if np.isfinite(v) and v >= threshold else " " for v in col_vals
        )
        rows.append(f"|{line}|")
    lines = [profile.title, *rows, f"+{'-' * columns}+"]
    lines.append(f"entries={profile.entries}  y-range=[{lo:.4g}, {hi:.4g}]")
    return "\n".join(lines)


def render_object(obj: object, **kwargs) -> str:
    """Dispatch rendering on object type (fallback: ``repr``)."""
    if isinstance(obj, Histogram1D):
        return render_hist1d(obj, **kwargs)
    if isinstance(obj, Histogram2D):
        return render_hist2d(obj, **kwargs)
    if isinstance(obj, Profile1D):
        return render_profile(obj, **kwargs)
    converter = getattr(obj, "histogram", None)
    if callable(converter):
        return render_object(converter(), **kwargs)
    return repr(obj)
