"""Benchmark support: the paper's analytic model, table formatting, surfaces.

* :mod:`repro.bench.model` — the exact fitted equations of §4
  (``T_local = 11.5 X``; ``T_grid = 0.338 X + 53 + (62 + 5.3 X)/N``), their
  crossover analysis, and least-squares refits of the same functional forms
  to our simulated data;
* :mod:`repro.bench.tables` — paper-vs-measured table rendering shared by
  every benchmark;
* :mod:`repro.bench.surface` — Figure 5 surface generation.
"""

from repro.bench.model import (
    PaperModel,
    fit_grid_model,
    fit_local_model,
    grid_time,
    local_time,
)
from repro.bench.profiling import ProfileReport, profile_analysis
from repro.bench.surface import SurfaceResult, compute_surfaces
from repro.bench.tables import ComparisonTable, format_seconds

__all__ = [
    "ComparisonTable",
    "PaperModel",
    "ProfileReport",
    "SurfaceResult",
    "compute_surfaces",
    "fit_grid_model",
    "fit_local_model",
    "format_seconds",
    "grid_time",
    "local_time",
    "profile_analysis",
]
