"""Figure 5: analysis-time surfaces over dataset size and node count.

The paper's Figure 5 plots ``T_local(X, N)`` (flat in N) and
``T_grid(X, N)`` as surfaces, showing the grid (blue) dipping below the
local case (gold) for large datasets and node counts.  We regenerate the
same series from either the paper's analytic model or from full simulator
runs, and compute the crossover contour (the X below which local wins at
each N).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.bench.model import PaperModel


@dataclass
class SurfaceResult:
    """Grids of local and grid times over (size, nodes).

    ``local`` and ``grid`` have shape ``(len(sizes), len(nodes))``;
    ``crossover_mb[j]`` is the dataset size where the grid starts winning
    at ``nodes[j]``.
    """

    sizes_mb: np.ndarray
    nodes: np.ndarray
    local: np.ndarray
    grid: np.ndarray
    crossover_mb: np.ndarray

    def grid_wins(self) -> np.ndarray:
        """Boolean mask where the grid is faster."""
        return self.grid < self.local

    def to_csv(self) -> str:
        """Long-format CSV: ``size_mb,nodes,local_s,grid_s`` per lattice point.

        Plot-ready form of Figure 5 for any external tool.
        """
        lines = ["size_mb,nodes,local_s,grid_s"]
        for i, size in enumerate(self.sizes_mb):
            for j, n in enumerate(self.nodes):
                lines.append(
                    f"{size:g},{int(n)},{self.local[i, j]:.3f},"
                    f"{self.grid[i, j]:.3f}"
                )
        return "\n".join(lines)

    def render_ascii(self, width_label: str = "X [MB]") -> str:
        """Text rendering: G where grid wins, L where local wins."""
        lines = [f"grid-vs-local ({width_label} down, N across)"]
        header = "        " + " ".join(f"{int(n):>4d}" for n in self.nodes)
        lines.append(header)
        wins = self.grid_wins()
        for i, size in enumerate(self.sizes_mb):
            cells = " ".join(
                f"{'G' if wins[i, j] else 'L':>4s}"
                for j in range(len(self.nodes))
            )
            lines.append(f"{size:7.1f} {cells}")
        return "\n".join(lines)


def compute_surfaces(
    sizes_mb: Sequence[float],
    nodes: Sequence[int],
    local_fn: Optional[Callable[[float], float]] = None,
    grid_fn: Optional[Callable[[float, int], float]] = None,
    model: PaperModel = PaperModel(),
) -> SurfaceResult:
    """Evaluate the two surfaces on a (sizes x nodes) lattice.

    By default the paper's analytic model supplies the times; pass
    ``local_fn(size)`` / ``grid_fn(size, nodes)`` to use simulator
    measurements instead (as ``bench_figure5.py`` does).
    """
    sizes = np.asarray(list(sizes_mb), dtype=float)
    node_array = np.asarray(list(nodes), dtype=float)
    if sizes.size == 0 or node_array.size == 0:
        raise ValueError("need at least one size and one node count")

    local = np.empty((sizes.size, node_array.size))
    grid = np.empty_like(local)
    for i, size in enumerate(sizes):
        local_value = (
            local_fn(float(size)) if local_fn is not None else model.local(size)
        )
        for j, n in enumerate(node_array):
            local[i, j] = local_value
            grid[i, j] = (
                grid_fn(float(size), int(n))
                if grid_fn is not None
                else model.grid(size, n)
            )

    crossover = np.empty(node_array.size)
    for j in range(node_array.size):
        wins = grid[:, j] < local[:, j]
        if not wins.any():
            crossover[j] = float("inf")
        elif wins.all():
            crossover[j] = float(sizes[0])
        else:
            first = int(np.argmax(wins))
            # Linear interpolation between the bracketing sizes.
            x0, x1 = sizes[first - 1], sizes[first]
            d0 = local[first - 1, j] - grid[first - 1, j]
            d1 = local[first, j] - grid[first, j]
            crossover[j] = float(x0 + (x1 - x0) * (-d0) / (d1 - d0))
    return SurfaceResult(
        sizes_mb=sizes,
        nodes=node_array,
        local=local,
        grid=grid,
        crossover_mb=crossover,
    )
