"""Paper-vs-measured table rendering shared by the benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

Number = Union[int, float]


def format_seconds(value: Optional[Number]) -> str:
    """Human formatting: ``93 s``, ``4 m 19 s``, ``1.2 h``, or ``-``."""
    if value is None:
        return "-"
    seconds = float(value)
    if seconds < 0:
        return f"-{format_seconds(-seconds)}"
    if seconds < 120:
        return f"{seconds:.0f} s" if seconds >= 10 else f"{seconds:.1f} s"
    if seconds < 3600:
        total = int(round(seconds))
        minutes, rest = divmod(total, 60)
        return f"{minutes} m {rest:02d} s"
    return f"{seconds / 3600:.2f} h"


@dataclass
class ComparisonTable:
    """A simple fixed-width table with a title and aligned columns."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[str]] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        """Append one row; cells are stringified."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([str(cell) for cell in cells])

    def render(self) -> str:
        """Render the table as text."""
        widths = [
            max(len(str(column)), *(len(row[i]) for row in self.rows))
            if self.rows
            else len(str(column))
            for i, column in enumerate(self.columns)
        ]

        def line(cells):
            return "  ".join(
                str(cell).ljust(width) for cell, width in zip(cells, widths)
            ).rstrip()

        separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
        parts = [self.title, separator, line(self.columns), separator]
        parts.extend(line(row) for row in self.rows)
        parts.append(separator)
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()
