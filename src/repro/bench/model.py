"""The paper's analytic cost model (§4) and refits of our simulated data.

The paper fits, from its measurements (X = dataset MB, N = nodes)::

    T_local = 6.2 X + 5.3 X            = 11.5 X
    T_grid  = 0.13 X + 0.25 X + (46 + 62/N) + 7 + 5.3 X / N
            = 0.338 X + 53 + (62 + 5.3 X) / N      [paper's printed form]

(The printed 0.338 coefficient does not equal 0.13 + 0.25; we keep the
printed form as the canonical "paper model" and note the discrepancy in
EXPERIMENTS.md.)

Conclusions the paper draws — reproduced in ``bench_equations.py`` and
``bench_figure5.py``:

1. for large datasets (≫ ~10 MB) the WAN transfer dominates the local case
   (6.2 X vs 0.34 X), so the grid wins;
2. for long analyses the grid gives a 1/N speed-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import optimize


@dataclass(frozen=True)
class PaperModel:
    """Coefficients of the §4 equations (defaults = the paper's values)."""

    local_per_mb: float = 11.5
    grid_per_mb: float = 0.338
    grid_fixed: float = 53.0
    grid_per_node_fixed: float = 62.0
    grid_per_node_per_mb: float = 5.3

    def local(self, x_mb) -> np.ndarray:
        """``T_local(X)`` in seconds."""
        return self.local_per_mb * np.asarray(x_mb, dtype=float)

    def grid(self, x_mb, n_nodes) -> np.ndarray:
        """``T_grid(X, N)`` in seconds."""
        x = np.asarray(x_mb, dtype=float)
        n = np.asarray(n_nodes, dtype=float)
        return (
            self.grid_per_mb * x
            + self.grid_fixed
            + (self.grid_per_node_fixed + self.grid_per_node_per_mb * x) / n
        )

    def crossover_size(self, n_nodes: float) -> float:
        """Dataset size where grid and local cost the same, for N nodes.

        Solves ``local(X) == grid(X, N)`` for X; the grid wins above it.
        """
        n = float(n_nodes)
        # a X = b X + c + (d + e X)/n  ->  X (a - b - e/n) = c + d/n
        denominator = (
            self.local_per_mb - self.grid_per_mb - self.grid_per_node_per_mb / n
        )
        if denominator <= 0:
            return float("inf")
        return (self.grid_fixed + self.grid_per_node_fixed / n) / denominator


def local_time(x_mb, model: PaperModel = PaperModel()) -> np.ndarray:
    """Paper-model local analysis time."""
    return model.local(x_mb)


def grid_time(x_mb, n_nodes, model: PaperModel = PaperModel()) -> np.ndarray:
    """Paper-model grid analysis time."""
    return model.grid(x_mb, n_nodes)


def fit_local_model(
    sizes_mb: Sequence[float], times_s: Sequence[float]
) -> Tuple[float, float]:
    """Fit ``T = a X`` to measured local times; returns (a, rms residual)."""
    x = np.asarray(sizes_mb, dtype=float)
    y = np.asarray(times_s, dtype=float)
    if x.size < 1:
        raise ValueError("need at least one measurement")
    a = float(np.dot(x, y) / np.dot(x, x))
    residual = float(np.sqrt(np.mean((y - a * x) ** 2))) if x.size > 1 else 0.0
    return a, residual


def fit_grid_model(
    sizes_mb: Sequence[float],
    nodes: Sequence[float],
    times_s: Sequence[float],
) -> Tuple[PaperModel, float]:
    """Fit the paper's grid functional form to measured (X, N, T) triples.

    ``T = b X + c + (d + e X)/N`` — linear in the coefficients, solved by
    least squares.  Returns the fitted model (with the paper's local
    coefficient retained) and the RMS residual.
    """
    x = np.asarray(sizes_mb, dtype=float)
    n = np.asarray(nodes, dtype=float)
    y = np.asarray(times_s, dtype=float)
    if not (x.shape == n.shape == y.shape):
        raise ValueError("inputs must have matching shapes")
    if x.size < 4:
        raise ValueError("need at least 4 measurements for 4 coefficients")
    design = np.column_stack([x, np.ones_like(x), 1.0 / n, x / n])
    coefficients, *_ = np.linalg.lstsq(design, y, rcond=None)
    b, c, d, e = map(float, coefficients)
    fitted = PaperModel(
        grid_per_mb=b,
        grid_fixed=c,
        grid_per_node_fixed=d,
        grid_per_node_per_mb=e,
    )
    residual = float(np.sqrt(np.mean((design @ coefficients - y) ** 2)))
    return fitted, residual
