"""Profiling helpers for the analysis hot path.

Per the optimization workflow this codebase follows (make it work → make
it reliably tested → *measure* before optimizing), this module wraps
``cProfile`` around the engine's real event-processing path so users can
find their analysis's bottleneck before reaching for vectorization::

    report = profile_analysis(CodeBundle(my_source), batch)
    print(report.render())
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dataset.events import EventBatch
from repro.engine.engine import AnalysisEngine
from repro.engine.sandbox import CodeBundle


@dataclass
class HotSpot:
    """One row of the profile: where the time went."""

    function: str
    calls: int
    cumulative_seconds: float
    total_seconds: float


@dataclass
class ProfileReport:
    """Outcome of :func:`profile_analysis`."""

    events: int
    wall_seconds: float
    hotspots: List[HotSpot]

    @property
    def events_per_second(self) -> float:
        """Throughput of the analysis over the profiled batch."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.events / self.wall_seconds

    def render(self, top: int = 10) -> str:
        """Human-readable top-N table."""
        lines = [
            f"profiled {self.events} events in {self.wall_seconds:.3f} s "
            f"({self.events_per_second:,.0f} events/s)",
            f"{'cumtime':>9}  {'tottime':>9}  {'calls':>8}  function",
        ]
        for spot in self.hotspots[:top]:
            lines.append(
                f"{spot.cumulative_seconds:9.4f}  {spot.total_seconds:9.4f}  "
                f"{spot.calls:8d}  {spot.function}"
            )
        return "\n".join(lines)


def profile_analysis(
    bundle: CodeBundle,
    batch: EventBatch,
    chunk_events: int = 2000,
    top: int = 25,
) -> ProfileReport:
    """Run *bundle* over *batch* under cProfile; returns a report.

    The engine machinery is included in the profile (it is part of the
    real hot path), but the dominant entries for a typical user analysis
    are its own ``process_batch``/``process_event`` internals.
    """
    engine = AnalysisEngine("profiler", chunk_events=chunk_events)
    engine.load_data(batch)
    engine.load_analysis(bundle.instantiate())

    profiler = cProfile.Profile()
    profiler.enable()
    engine.run_to_completion()
    profiler.disable()

    stats = pstats.Stats(profiler, stream=io.StringIO())
    stats.sort_stats("cumulative")
    total_time = stats.total_tt

    hotspots: List[HotSpot] = []
    for func, (calls, _, tottime, cumtime, _) in stats.stats.items():
        filename, line, name = func
        short = filename.rsplit("/", 1)[-1]
        hotspots.append(
            HotSpot(
                function=f"{short}:{line}({name})",
                calls=calls,
                cumulative_seconds=cumtime,
                total_seconds=tottime,
            )
        )
    hotspots.sort(key=lambda spot: spot.cumulative_seconds, reverse=True)
    return ProfileReport(
        events=len(batch),
        wall_seconds=total_time,
        hotspots=hotspots[:top],
    )
