"""Heartbeat tracking and recovery configuration.

Engines beat by calling ``WorkerRegistryService.heartbeat`` every
``heartbeat_interval`` simulated seconds; the session service runs one
:class:`HeartbeatMonitor` sweep loop per session and declares an engine
dead when its last beat is older than ``heartbeat_timeout``.  Detection
latency is therefore bounded by ``heartbeat_timeout + check_period``
measured from the engine's final beat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.resilience.retry import RetryPolicy
from repro.sim import Environment


@dataclass(frozen=True)
class RecoveryConfig:
    """Tunables of the heartbeat/recovery subsystem.

    Parameters
    ----------
    heartbeat_interval:
        Seconds between engine heartbeats.
    heartbeat_timeout:
        An engine whose last beat is older than this is declared dead.
    check_period:
        Monitor sweep interval; defaults to ``heartbeat_interval``.
    spare_timeout:
        How long recovery waits for a spare engine to register before
        falling back to survivor takeover.
    dispatch_ack_timeout:
        How long recovery waits for a takeover acknowledgement before
        leaving the partition orphaned for the next sweep.
    close_grace:
        How long ``SessionService.close`` waits for engines to shut down
        gracefully before force-cancelling their jobs.
    restage_policy:
        Retry schedule for re-staging orphaned partitions over GridFTP.
    """

    heartbeat_interval: float = 5.0
    heartbeat_timeout: float = 20.0
    check_period: Optional[float] = None
    spare_timeout: float = 60.0
    dispatch_ack_timeout: float = 120.0
    close_grace: float = 120.0
    restage_policy: RetryPolicy = RetryPolicy(
        max_attempts=3, base_delay=1.0, multiplier=2.0, max_delay=30.0
    )

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ValueError("heartbeat_timeout must exceed heartbeat_interval")
        if self.check_period is not None and self.check_period <= 0:
            raise ValueError("check_period must be > 0")

    @property
    def period(self) -> float:
        """Effective monitor sweep interval."""
        return self.check_period or self.heartbeat_interval


class HeartbeatMonitor:
    """Per-session staleness detector over the registry's beat records."""

    def __init__(
        self,
        env: Environment,
        registry,
        session_id: str,
        config: RecoveryConfig,
    ) -> None:
        self.env = env
        self.registry = registry
        self.session_id = session_id
        self.config = config
        self._watched: Dict[str, bool] = {}
        #: engine_id -> timeout scale factor in (0, 1]; fed by straggler
        #: detection so a flagged engine is declared dead sooner.
        self._suspicion: Dict[str, float] = {}

    def watch(self, engine_id: str) -> None:
        """Start watching an engine; seeds its beat clock at *now*."""
        self._watched[engine_id] = True
        self.registry.heartbeat(self.session_id, engine_id)

    def unwatch(self, engine_id: str) -> None:
        """Stop watching an engine (dead, shut down, or unrecoverable)."""
        self._watched.pop(engine_id, None)
        self._suspicion.pop(engine_id, None)

    def suspect(self, engine_id: str, factor: float = 0.5) -> None:
        """Shorten an engine's effective heartbeat timeout by *factor*.

        A straggler-detection hint: a flagged engine that then goes
        silent is quarantined after ``timeout * factor`` instead of the
        full timeout.  The factor is floored so the effective timeout
        always exceeds one heartbeat interval — a merely-slow engine
        that still beats on schedule can never be declared dead by
        suspicion alone.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")
        floor = self.config.heartbeat_interval / self.config.heartbeat_timeout
        self._suspicion[engine_id] = max(factor, min(1.0, floor * 1.5))

    def clear_suspicion(self, engine_id: str) -> None:
        """Drop the suspicion hint for an engine (idempotent)."""
        self._suspicion.pop(engine_id, None)

    def timeout_for(self, engine_id: str) -> float:
        """Effective staleness timeout for one engine (hints applied)."""
        return self.config.heartbeat_timeout * self._suspicion.get(
            engine_id, 1.0
        )

    @property
    def watched(self) -> List[str]:
        """Engines currently under watch."""
        return list(self._watched)

    def last_beat(self, engine_id: str) -> Optional[float]:
        """Simulated time of the engine's most recent heartbeat."""
        return self.registry.last_heartbeat(self.session_id, engine_id)

    def stale(self) -> List[str]:
        """Watched engines whose last beat exceeds their timeout, sorted.

        Each engine's timeout is the configured one scaled by any
        suspicion hint (see :meth:`suspect`).
        """
        now = self.env.now
        out = []
        for engine_id in self._watched:
            last = self.last_beat(engine_id)
            if last is None or now - last > self.timeout_for(engine_id):
                out.append(engine_id)
        return sorted(out)
