"""Reusable retry policy with exponential backoff and deterministic jitter.

Every layer that retries — GridFTP transfers, GRAM submissions, service
envelope dispatch, recovery re-staging — shares this one policy object
instead of hard-coding its own fixed delay.  Jitter is derived from a
seeded RNG keyed on ``(seed, salt, attempt)`` so simulation runs remain
bit-for-bit reproducible: the same policy applied to the same operation
sequence always produces the same delays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry schedule.

    Parameters
    ----------
    max_attempts:
        Total number of tries (first attempt included); must be >= 1.
    base_delay:
        Delay before the first retry, in simulated seconds.
    multiplier:
        Backoff factor: retry *n* (0-based) waits
        ``base_delay * multiplier**n``, capped at ``max_delay``.
    max_delay:
        Ceiling on a single delay.
    jitter:
        Fractional jitter amplitude in ``[0, 1)``: each delay is scaled by
        a factor drawn uniformly from ``[1 - jitter, 1 + jitter]``.  With
        the default ``0.0`` delays are exact, which keeps timing-sensitive
        calibration tests deterministic.
    seed:
        Seed mixed into the jitter RNG (ignored when ``jitter == 0``).
    deadline:
        Optional budget in simulated seconds: once the cumulative delay
        would exceed it, :meth:`delay` returns ``None`` and the caller
        should give up even if attempts remain.
    """

    max_attempts: int = 3
    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.0
    seed: int = 0
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")
        if self.max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.deadline is not None and self.deadline < 0:
            raise ValueError("deadline must be >= 0")

    @property
    def max_retries(self) -> int:
        """Number of retries after the first attempt."""
        return self.max_attempts - 1

    def delay(self, attempt: int, salt: object = None) -> float:
        """Backoff delay after failed attempt *attempt* (0-based).

        ``salt`` distinguishes concurrent operations sharing one policy
        (e.g. a transfer id) so their jitter streams are independent but
        still deterministic.
        """
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        base = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        if self.jitter == 0.0:
            return base
        rng = random.Random(f"{self.seed}|{salt!r}|{attempt}")
        factor = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return base * factor

    def delays(self, salt: object = None) -> list:
        """All retry delays in order, honouring ``deadline`` if set."""
        out = []
        spent = 0.0
        for attempt in range(self.max_retries):
            d = self.delay(attempt, salt)
            if self.deadline is not None and spent + d > self.deadline:
                break
            spent += d
            out.append(d)
        return out

    def should_retry(self, attempt: int, elapsed: float = 0.0) -> bool:
        """Whether another try is allowed after failed attempt *attempt*."""
        if attempt + 1 >= self.max_attempts:
            return False
        if self.deadline is not None:
            if elapsed + self.delay(attempt) > self.deadline:
                return False
        return True

    def with_attempts(self, max_attempts: int) -> "RetryPolicy":
        """Copy of this policy with a different attempt budget."""
        from dataclasses import replace

        return replace(self, max_attempts=max_attempts)


def retrying(env, make_attempt, policy: RetryPolicy, retry_on, salt: object = None):
    """Generator helper: run ``make_attempt()`` under *policy*.

    ``make_attempt`` must return a fresh generator per call; exceptions of
    type(s) *retry_on* trigger a backoff-and-retry, anything else
    propagates.  Yields from inside a simulation process::

        result = yield from retrying(env, attempt, policy, TransferError)

    Returns the successful attempt's value, or raises the last error once
    the policy is exhausted.
    """
    start = env.now
    last_error: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        try:
            result = yield from make_attempt()
            return result
        except retry_on as exc:
            last_error = exc
            if not policy.should_retry(attempt, env.now - start):
                break
            yield env.timeout(policy.delay(attempt, salt))
    assert last_error is not None
    raise last_error
